"""File-system scanning: parallel walkers, trace files, and the
scanner family GUFI uses to pull metadata from diverse source systems.
"""

from .scanners import (
    COST_PRESETS,
    HPSS_SQL,
    LESTER,
    TREEWALK_LUSTRE,
    TREEWALK_NFS,
    LesterScanner,
    ScanCostModel,
    ScanResult,
    SnapshotScanner,
    SQLScanner,
    TreeWalkScanner,
    make_scanner,
    record_from_inode,
)
from .trace import (
    FIELD_SEP,
    XATTR_SEP,
    DirStanza,
    TraceRecord,
    merge_traces,
    read_trace,
    split_trace,
    write_trace,
)
from .faults import BuildCrash, Fault, FaultPlan, FiredFault, InjectedFault
from .walker import (
    FatalWalkError,
    ParallelTreeWalker,
    RetryPolicy,
    WalkStats,
    default_worker_count,
)

__all__ = [
    "split_trace",
    "merge_traces",
    "BuildCrash",
    "FatalWalkError",
    "Fault",
    "FaultPlan",
    "FiredFault",
    "InjectedFault",
    "RetryPolicy",
    "COST_PRESETS",
    "DirStanza",
    "FIELD_SEP",
    "HPSS_SQL",
    "LESTER",
    "LesterScanner",
    "ParallelTreeWalker",
    "SQLScanner",
    "ScanCostModel",
    "ScanResult",
    "SnapshotScanner",
    "TREEWALK_LUSTRE",
    "TREEWALK_NFS",
    "TraceRecord",
    "TreeWalkScanner",
    "WalkStats",
    "XATTR_SEP",
    "default_worker_count",
    "make_scanner",
    "read_trace",
    "record_from_inode",
    "write_trace",
]
