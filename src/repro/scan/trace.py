"""GUFI trace format: the interchange between scanners and builders.

A trace is a flat text file produced by a source-file-system scan and
consumed by ``trace2index`` (paper §III-C1, artifact ``gufi_dir2trace``
/ ``gufi_trace2index``). Records are grouped in *stanzas*: one
directory record followed by the records of that directory's
non-directory entries. Stanza grouping is what lets the ingest tool
parallelise per-directory database creation without re-sorting.

Field layout (one record per line, fields separated by ``\\x1e``):

    path type ino mode nlink uid gid size blksize blocks
    atime mtime ctime linkname xattrs

``type`` is ``d``/``f``/``l``; ``linkname`` is empty unless ``l``;
``xattrs`` packs ``name=hex(value)`` pairs joined by ``\\x1f``.
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

FIELD_SEP = "\x1e"
XATTR_SEP = "\x1f"

_NUM_FIELDS = 15


@dataclass
class TraceRecord:
    """One scanned entry; the unit the index's ``entries`` table stores."""

    path: str
    ftype: str  # 'd' | 'f' | 'l'
    ino: int
    mode: int  # permission bits (low 12)
    nlink: int
    uid: int
    gid: int
    size: int
    blksize: int
    blocks: int
    atime: int
    mtime: int
    ctime: int
    linkname: str = ""
    xattrs: dict[str, bytes] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1] or "/"

    @property
    def parent(self) -> str:
        head = self.path.rsplit("/", 1)[0]
        return head or "/"

    def encode(self) -> str:
        xa = XATTR_SEP.join(
            f"{k}={v.hex()}" for k, v in sorted(self.xattrs.items())
        )
        fields = (
            self.path,
            self.ftype,
            str(self.ino),
            str(self.mode),
            str(self.nlink),
            str(self.uid),
            str(self.gid),
            str(self.size),
            str(self.blksize),
            str(self.blocks),
            str(self.atime),
            str(self.mtime),
            str(self.ctime),
            self.linkname,
            xa,
        )
        return FIELD_SEP.join(fields)

    @staticmethod
    def decode(line: str) -> "TraceRecord":
        parts = line.rstrip("\n").split(FIELD_SEP)
        if len(parts) != _NUM_FIELDS:
            raise ValueError(
                f"malformed trace record: {len(parts)} fields, want {_NUM_FIELDS}"
            )
        xattrs: dict[str, bytes] = {}
        if parts[14]:
            for pair in parts[14].split(XATTR_SEP):
                k, _, v = pair.partition("=")
                xattrs[k] = bytes.fromhex(v)
        return TraceRecord(
            path=parts[0],
            ftype=parts[1],
            ino=int(parts[2]),
            mode=int(parts[3]),
            nlink=int(parts[4]),
            uid=int(parts[5]),
            gid=int(parts[6]),
            size=int(parts[7]),
            blksize=int(parts[8]),
            blocks=int(parts[9]),
            atime=int(parts[10]),
            mtime=int(parts[11]),
            ctime=int(parts[12]),
            linkname=parts[13],
            xattrs=xattrs,
        )


@dataclass
class DirStanza:
    """A directory record plus its immediate non-directory entries."""

    directory: TraceRecord
    entries: list[TraceRecord] = field(default_factory=list)

    def __post_init__(self):
        if self.directory.ftype != "d":
            raise ValueError(f"stanza head must be a directory: {self.directory.path}")


def write_trace(stanzas: Iterable[DirStanza], dest: Path | io.TextIOBase) -> int:
    """Serialise stanzas to ``dest``; returns records written."""
    own = isinstance(dest, (str, Path))
    fh = open(dest, "w", encoding="utf-8") if own else dest
    n = 0
    try:
        for st in stanzas:
            fh.write(st.directory.encode() + "\n")
            n += 1
            for e in st.entries:
                fh.write(e.encode() + "\n")
                n += 1
    finally:
        if own:
            fh.close()
    return n


def split_trace(
    src: Path | str, dest_dir: Path | str, n_parts: int
) -> list[Path]:
    """Split a trace into ``n_parts`` stanza-aligned part files.

    Large sites scan on one node and ingest on many; stanza alignment
    (never splitting a directory from its entries) lets each part feed
    an independent ``trace2index`` worker whose outputs compose into
    one index (directories are created with ``makedirs`` semantics).
    Parts are balanced by record count. Returns the part paths.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    dest = Path(dest_dir)
    dest.mkdir(parents=True, exist_ok=True)
    stanzas = list(read_trace(Path(src)))
    total = sum(1 + len(s.entries) for s in stanzas)
    target = max(1, total // n_parts)
    paths: list[Path] = []
    bucket: list[DirStanza] = []
    count = 0
    for stanza in stanzas:
        bucket.append(stanza)
        count += 1 + len(stanza.entries)
        if count >= target and len(paths) < n_parts - 1:
            path = dest / f"part_{len(paths):04d}.trace"
            write_trace(bucket, path)
            paths.append(path)
            bucket, count = [], 0
    path = dest / f"part_{len(paths):04d}.trace"
    write_trace(bucket, path)
    paths.append(path)
    return paths


def merge_traces(parts: Iterable[Path | str], dest: Path | str) -> int:
    """Concatenate stanza-aligned trace parts back into one file.
    Returns records written."""
    n = 0
    with open(dest, "w", encoding="utf-8") as out:
        for part in parts:
            for stanza in read_trace(Path(part)):
                out.write(stanza.directory.encode() + "\n")
                n += 1
                for e in stanza.entries:
                    out.write(e.encode() + "\n")
                    n += 1
    return n


def read_trace(src: Path | io.TextIOBase) -> Iterator[DirStanza]:
    """Stream stanzas back from a trace file.

    Directory records open a new stanza; non-directory records attach
    to the most recent one. A leading non-directory record is a format
    error (every entry's parent must have been scanned).
    """
    own = isinstance(src, (str, Path))
    fh = open(src, encoding="utf-8") if own else src
    current: DirStanza | None = None
    try:
        for line in fh:
            if not line.strip():
                continue
            rec = TraceRecord.decode(line)
            if rec.ftype == "d":
                if current is not None:
                    yield current
                current = DirStanza(directory=rec)
            else:
                if current is None:
                    raise ValueError(
                        f"entry {rec.path!r} precedes any directory record"
                    )
                current.entries.append(rec)
        if current is not None:
            yield current
    finally:
        if own:
            fh.close()
