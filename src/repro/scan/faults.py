"""Deterministic fault injection for build and scan paths.

Index builds at the paper's scale (§III-A3, §III-C1) run for hours
against file systems that fail routinely: a directory read times out,
a node dies mid-scan, a disk fills while a database is half-written.
Reproducing those failures deterministically is what makes the
crash-safe build path (:mod:`repro.core.checkpoint`,
``BuildOptions(resume=True)``) *testable*: a seeded :class:`FaultPlan`
fires the same faults at the same points on every run, so a test can
kill a build at exactly the Nth directory, resume it, and assert the
result is byte-identical to an uninterrupted build.

Fault sites are plain strings fired by instrumented code:

* ``"walker.expand"`` — :class:`~repro.scan.walker.ParallelTreeWalker`
  fires before each ``expand()`` call (key = the work item);
* ``"build_dir_db"`` — entry of one directory's database build
  (key = source path);
* ``"build_dir_db.commit"`` — after all temp files are written, before
  the publishing renames (the worst possible crash point);
* ``"xattr_shards"`` — before each xattr side-database bucket write
  (key = side database file name), for mid-shard failures;
* ``"vfs.readdir"`` / ``"vfs.get_inode"`` — source-tree reads, via
  :meth:`~repro.fs.tree.VFSTree.set_fault_plan`.

Two fault kinds model the two real-world failure classes:

* ``io`` — a transient :class:`InjectedFault` (an ``IOError``), the
  kind a :class:`~repro.scan.walker.RetryPolicy` retries with backoff;
* ``crash`` — a :class:`BuildCrash` (a
  :class:`~repro.scan.walker.FatalWalkError`), which aborts the whole
  walk the way a killed process would, leaving partial on-disk state
  for the resume path to repair.

Plans are thread-safe and sleep-free; paired with a
:class:`RetryPolicy` whose ``sleep`` is a virtual clock's ``charge``,
backoff behaviour is testable in microseconds.
"""

from __future__ import annotations

import random
import threading
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from .walker import FatalWalkError


class InjectedFault(IOError):
    """A planned transient I/O failure (retryable)."""


class BuildCrash(FatalWalkError):
    """A planned hard failure: simulates the process dying here.

    Unlike :class:`InjectedFault` this is never retried and never
    recorded as a per-item error — it propagates out of the walk,
    abandoning in-flight work exactly as ``kill -9`` would (minus the
    partial files already on disk, which the resume path must handle).
    """


@dataclass(frozen=True)
class Fault:
    """One planned failure at a named site.

    ``at`` triggers on the Nth invocation of the site (1-based, counted
    across all threads); ``path`` triggers whenever the fired key
    matches. ``times`` bounds how often the fault fires — a transient
    fault with ``times=2`` fails twice and then heals, which is what a
    bounded retry policy must survive.
    """

    kind: str  # "io" | "crash"
    site: str
    at: int | None = None
    path: str | None = None
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("io", "crash"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if (self.at is None) == (self.path is None):
            raise ValueError("exactly one of at/path must be set")
        if self.at is not None and self.at < 1:
            raise ValueError("at is 1-based")
        if self.times < 1:
            raise ValueError("times must be >= 1")


@dataclass
class FiredFault:
    """Log entry: one fault actually raised (for test assertions)."""

    site: str
    invocation: int
    key: str | None
    kind: str


class FaultPlan:
    """A deterministic schedule of failures.

    The plan owns per-site invocation counters; instrumented code calls
    :meth:`fire` at each site and the plan raises when a planned fault
    matches. All state is guarded by one lock, so concurrent walker
    threads observe a single global invocation order per site — which
    is what makes "kill the build at directory 12" well-defined even
    under an 8-thread build (12 directories will have *entered* the
    build when the crash fires, regardless of interleaving).
    """

    def __init__(self, faults: Iterable[Fault] = (), seed: int = 0):
        self.faults = list(faults)
        self.seed = seed
        self.fired: list[FiredFault] = []
        self._counts: dict[str, int] = {}
        self._spent: dict[int, int] = {}  # fault index -> times fired
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def crash_at(cls, site: str, at: int) -> "FaultPlan":
        """Kill the process at the ``at``-th invocation of ``site``."""
        return cls([Fault(kind="crash", site=site, at=at)])

    @classmethod
    def io_at(cls, site: str, at: int, times: int = 1) -> "FaultPlan":
        """Transient I/O errors for invocations ``at .. at+times-1``."""
        return cls([Fault(kind="io", site=site, at=at, times=times)])

    @classmethod
    def flaky_paths(
        cls, site: str, paths: Iterable[str], times: int = 1
    ) -> "FaultPlan":
        """Each named key fails ``times`` times at ``site``, then heals."""
        return cls(
            [Fault(kind="io", site=site, path=p, times=times) for p in paths]
        )

    @classmethod
    def sample_flaky(
        cls,
        site: str,
        paths: Sequence[str],
        fraction: float,
        seed: int,
        times: int = 1,
    ) -> "FaultPlan":
        """A seeded random subset of ``paths`` becomes flaky — the
        deterministic stand-in for "some directories time out"."""
        rng = random.Random(seed)
        k = max(1, int(len(paths) * fraction)) if paths else 0
        chosen = rng.sample(list(paths), k) if k else []
        plan = cls.flaky_paths(site, chosen, times=times)
        plan.seed = seed
        return plan

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a CLI fault spec: ``kind:site:at[xTIMES]`` clauses
        joined by ``;`` — e.g. ``crash:build_dir_db:12`` or
        ``io:vfs.readdir:3x2;io:build_dir_db:7``."""
        faults = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            parts = clause.split(":")
            if len(parts) != 3:
                raise ValueError(
                    f"bad fault clause {clause!r} (want kind:site:at[xTIMES])"
                )
            kind, site, trigger = parts
            times = 1
            if "x" in trigger:
                trigger, _, times_s = trigger.partition("x")
                times = int(times_s)
            faults.append(
                Fault(kind=kind, site=site, at=int(trigger), times=times)
            )
        if not faults:
            raise ValueError(f"empty fault spec {spec!r}")
        return cls(faults)

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def fire(self, site: str, key: str | None = None) -> None:
        """Record one invocation of ``site`` and raise if a planned
        fault matches. Called by instrumented code; a no-op when
        nothing matches."""
        with self._lock:
            n = self._counts.get(site, 0) + 1
            self._counts[site] = n
            for i, f in enumerate(self.faults):
                if f.site != site:
                    continue
                spent = self._spent.get(i, 0)
                if spent >= f.times:
                    continue
                if f.at is not None:
                    if not (f.at <= n < f.at + f.times):
                        continue
                elif f.path != key:
                    continue
                self._spent[i] = spent + 1
                self.fired.append(FiredFault(site, n, key, f.kind))
                if f.kind == "crash":
                    raise BuildCrash(
                        f"injected crash at {site} invocation {n}"
                        + (f" ({key})" if key else "")
                    )
                raise InjectedFault(
                    f"injected I/O error at {site} invocation {n}"
                    + (f" ({key})" if key else "")
                )

    def count(self, site: str) -> int:
        """Invocations of ``site`` so far."""
        with self._lock:
            return self._counts.get(site, 0)

    def reset(self) -> None:
        """Rearm the plan (counters, spent faults, firing log)."""
        with self._lock:
            self._counts.clear()
            self._spent.clear()
            self.fired.clear()
