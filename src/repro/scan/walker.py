"""Parallel tree descent (paper §III-C).

All of GUFI's tools — scanners, index builders, and the query engine —
are built on one code base: a thread pool descending a tree, each
directory processed by exactly one thread, with discovered
sub-directories handed to the shared work queue. This module is that
code base. It is generic over the node type: callers supply an
``expand(item) -> iterable of child items`` function, so the same pool
walks an in-memory VFS, an on-disk index hierarchy, or a list of
database shards.

Hot-path accounting is lock-free: every counter a worker touches per
item (items handled, completion timestamp, errors) lives in a slot
owned by that worker alone, and the slots are merged once after the
walk. Children are handed off as *one* batched queue put per expanded
directory; a worker keeps its current batch local (depth-biased, which
also bounds queue memory on wide trees) and shares the remainder only
when the shared queue has run dry and siblings may be idle.

Failure handling has three tiers, matching what a production walker
meets on a billion-entry file system:

* transient errors (an NFS directory read timing out) are retried in
  place with bounded backoff when the caller supplies a
  :class:`RetryPolicy` — the item never leaves its worker;
* permanent errors are recorded in ``WalkStats.errors`` and do not
  stop other work (an unreadable directory must not kill a scan);
* :class:`FatalWalkError` (e.g. an injected
  :class:`~repro.scan.faults.BuildCrash`) aborts the whole walk:
  workers drain the queue without processing and the exception
  propagates, simulating process death for crash-safety tests.

Per-thread completion times are recorded because Fig 8c plots exactly
that: when each worker finishes its last unit of work, revealing the
effective concurrency of differently-sharded indexes. Fig 8c's
completion times (and ``items_per_thread``) count every item a worker
*handled* — successes and failures alike, since the thread was busy
either way — while ``items_processed`` counts only successful
expansions and ``items_errored`` the failures.

Observability: each walk is one ``walker.walk`` span whose context is
propagated into the worker threads (so spans the ``expand`` callback
opens nest correctly under the caller's trace), and the merged
per-thread tallies — including retry attempts that backoff then
*succeeded*, which no caller-visible error ever reports — are folded
into the process metrics registry once per walk.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Any, TypeVar

from repro import obs

T = TypeVar("T")


def default_worker_count() -> int:
    """Worker threads to use when the caller doesn't say: the CPUs this
    process may actually run on (its affinity mask — a container or
    cpuset grants fewer than the machine has), falling back to the
    machine count where affinity is unsupported."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


class FatalWalkError(Exception):
    """An error that must abort the entire walk (simulated process
    death, resource exhaustion). Never retried, never recorded as a
    per-item error: it propagates out of :meth:`ParallelTreeWalker.walk`
    after the pool shuts down."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient per-item failures.

    ``sleep`` is injectable so tests (and cost-model experiments) can
    charge a :class:`~repro.sim.clock.VirtualClock` instead of
    sleeping: ``RetryPolicy(sleep=clock.charge)``.
    """

    #: additional attempts after the first failure
    retries: int = 2
    #: seconds before the first retry
    backoff: float = 0.005
    multiplier: float = 2.0
    max_backoff: float = 0.25
    #: exception types considered transient; everything else is
    #: recorded immediately
    retry_on: tuple[type[BaseException], ...] = (OSError,)
    sleep: Callable[[float], Any] = time.sleep

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), capped."""
        return min(self.max_backoff, self.backoff * self.multiplier**attempt)

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        return attempt < self.retries and isinstance(exc, self.retry_on)


@dataclass
class WalkStats:
    """Outcome of one parallel walk."""

    #: items whose expand() completed without raising
    items_processed: int = 0
    #: items whose expand() raised (recorded in ``errors``); the
    #: walker's Fig 8c bookkeeping counts processed + errored
    items_errored: int = 0
    #: retry attempts performed under the :class:`RetryPolicy` (an item
    #: that failed twice then succeeded contributes 2)
    items_retried: int = 0
    elapsed: float = 0.0
    #: wall-clock offset (from walk start) at which each worker thread
    #: finished its final item; sorted ascending. Fig 8c's y-axis.
    thread_completion_times: list[float] = field(default_factory=list)
    #: items handled per worker thread (successes + failures), keyed
    #: by thread index
    items_per_thread: dict[int, int] = field(default_factory=dict)
    #: exceptions raised by expand(), with the offending item
    errors: list[tuple[Any, Exception]] = field(default_factory=list)

    @property
    def effective_concurrency(self) -> float:
        """Mean fraction of the walk each thread spent busy — 1.0 means
        all threads finished together (perfect balance)."""
        if not self.thread_completion_times or self.elapsed <= 0:
            return 0.0
        return sum(self.thread_completion_times) / (
            len(self.thread_completion_times) * self.elapsed
        )


class ParallelTreeWalker:
    """A reusable work pool over tree-shaped work.

    ``nthreads`` matches the paper's ``-n`` flag; ``None`` means
    :func:`default_worker_count` — the CPUs this process is allowed to
    run on. The pool is created per :meth:`walk` call (walks are long
    relative to thread start-up, and per-call pools keep the
    completion-time bookkeeping simple).
    """

    def __init__(self, nthreads: int | None = None):
        if nthreads is None:
            nthreads = default_worker_count()
        if nthreads < 1:
            raise ValueError("nthreads must be >= 1")
        self.nthreads = nthreads

    def walk(
        self,
        roots: Iterable[T],
        expand: Callable[[T], Iterable[T]],
        *,
        collect_errors: bool = True,
        retry: RetryPolicy | None = None,
        faults: Any | None = None,
    ) -> WalkStats:
        """Process ``roots`` and everything ``expand`` discovers.

        ``expand`` is called once per item from exactly one worker
        thread; the items it returns are enqueued (as one batch) for
        any worker. Exceptions from ``expand`` are retried per
        ``retry`` (when transient), then recorded in the returned stats
        (or re-raised after the walk if ``collect_errors`` is False);
        they do not stop other work — matching how a production walker
        must survive unreadable directories. :class:`FatalWalkError`
        aborts the walk and is re-raised.

        ``faults`` is an optional
        :class:`~repro.scan.faults.FaultPlan`-shaped object whose
        ``fire("walker.expand", item)`` runs before each expansion
        (inside the retry loop, so transient injected faults exercise
        the backoff path).
        """
        # The queue carries *batches* (lists of items): one put per
        # expanded directory instead of one per child.
        work: queue.Queue = queue.Queue()
        root_list = list(roots)
        stats = WalkStats()
        if not root_list:
            return stats
        work.put(root_list)

        start = time.monotonic()
        # One slot per worker; each worker writes only its own slot,
        # so no lock is ever taken on the per-item path.
        last_done = [0.0] * self.nthreads
        handled = [0] * self.nthreads
        errored = [0] * self.nthreads
        retried = [0] * self.nthreads
        errors_per_thread: list[list[tuple[Any, Exception]]] = [
            [] for _ in range(self.nthreads)
        ]
        fatal: list[FatalWalkError | None] = [None] * self.nthreads
        abort = threading.Event()

        def attempt_expand(tid: int, item: T) -> list[T] | None:
            """One item through the retry loop. Returns children on
            success, None when the item failed permanently (recorded)."""
            attempt = 0
            while True:
                try:
                    if faults is not None:
                        faults.fire("walker.expand", item)
                    children = expand(item)
                    return list(children) if children else []
                except FatalWalkError as exc:
                    fatal[tid] = exc
                    abort.set()
                    return None
                except Exception as exc:  # noqa: BLE001 - survive bad dirs
                    if retry is not None and retry.should_retry(exc, attempt):
                        retried[tid] += 1
                        retry.sleep(retry.delay(attempt))
                        attempt += 1
                        continue
                    errors_per_thread[tid].append((item, exc))
                    errored[tid] += 1
                    return None

        otr = obs.tracer()
        walk_span = (
            otr.start("walker.walk", nthreads=self.nthreads)
            if otr.enabled
            else None
        )
        # captured on the caller thread so worker spans nest under it
        span_ctx = otr.current_context() if otr.enabled else None

        def worker(tid: int) -> None:
            if span_ctx is not None:
                otr.adopt(span_ctx)
            while True:
                batch = work.get()  # blocks; sentinels wake us to exit
                if batch is _SENTINEL:
                    work.task_done()
                    return
                try:
                    while batch:
                        if abort.is_set():
                            # Simulated process death: drop remaining
                            # work so the queue drains and the fatal
                            # error can propagate.
                            break
                        item = batch.pop()
                        if batch and work.empty():
                            # Siblings may be starving: hand the rest
                            # of the batch off in one put.
                            work.put(batch)
                            batch = []
                        kids = attempt_expand(tid, item)
                        if kids is None:
                            if fatal[tid] is not None:
                                break
                        else:
                            handled[tid] += 1
                            if kids:
                                batch.extend(kids)
                        last_done[tid] = time.monotonic() - start
                finally:
                    # One task_done per get: items kept local are
                    # covered by their originating batch.
                    work.task_done()

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"walker-{i}", daemon=True)
            for i in range(self.nthreads)
        ]
        try:
            for t in threads:
                t.start()
            work.join()  # all enqueued batches processed (or dropped on abort)
            for _ in threads:
                work.put(_SENTINEL)
            for t in threads:
                t.join()

            fatal_exc = next((f for f in fatal if f is not None), None)
            if fatal_exc is not None:
                raise fatal_exc
        finally:
            if walk_span is not None:
                otr.end(
                    walk_span,
                    items=sum(handled),
                    errors=sum(errored),
                    retries=sum(retried),
                )

        stats.elapsed = time.monotonic() - start
        stats.items_processed = sum(handled)
        stats.items_errored = sum(errored)
        stats.items_retried = sum(retried)
        stats.thread_completion_times = sorted(last_done)
        stats.items_per_thread = {
            i: handled[i] + errored[i] for i in range(self.nthreads)
        }
        for errs in errors_per_thread:
            stats.errors.extend(errs)
        rec = obs.metrics()
        if rec.enabled:
            rec.counter("gufi_walker_walks_total")
            rec.counter("gufi_walker_items_total", stats.items_processed)
            rec.counter("gufi_walker_items_errored_total", stats.items_errored)
            rec.counter("gufi_walker_retries_total", stats.items_retried)
            rec.observe("gufi_walker_walk_seconds", stats.elapsed)
        if not collect_errors and stats.errors:
            raise stats.errors[0][1]
        return stats


class _Sentinel:
    __slots__ = ()


_SENTINEL = _Sentinel()
