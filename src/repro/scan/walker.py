"""Parallel breadth-first tree descent (paper §III-C).

All of GUFI's tools — scanners, index builders, and the query engine —
are built on one code base: a thread pool descending a tree in
breadth-first order, each directory processed by exactly one thread,
with discovered sub-directories appended to a shared work queue. This
module is that code base. It is generic over the node type: callers
supply an ``expand(item) -> iterable of child items`` function, so the
same pool walks an in-memory VFS, an on-disk index hierarchy, or a
list of database shards.

Per-thread completion times are recorded because Fig 8c plots exactly
that: when each worker finishes its last unit of work, revealing the
effective concurrency of differently-sharded indexes.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Any, TypeVar

T = TypeVar("T")


@dataclass
class WalkStats:
    """Outcome of one parallel walk."""

    items_processed: int = 0
    elapsed: float = 0.0
    #: wall-clock offset (from walk start) at which each worker thread
    #: finished its final item; sorted ascending. Fig 8c's y-axis.
    thread_completion_times: list[float] = field(default_factory=list)
    #: items handled per worker thread, keyed by thread index
    items_per_thread: dict[int, int] = field(default_factory=dict)
    #: exceptions raised by expand(), with the offending item
    errors: list[tuple[Any, Exception]] = field(default_factory=list)

    @property
    def effective_concurrency(self) -> float:
        """Mean fraction of the walk each thread spent busy — 1.0 means
        all threads finished together (perfect balance)."""
        if not self.thread_completion_times or self.elapsed <= 0:
            return 0.0
        return sum(self.thread_completion_times) / (
            len(self.thread_completion_times) * self.elapsed
        )


class ParallelTreeWalker:
    """A reusable breadth-first work pool.

    ``nthreads`` matches the paper's ``-n`` flag. The pool is created
    per :meth:`walk` call (walks are long relative to thread start-up,
    and per-call pools keep the completion-time bookkeeping simple).
    """

    def __init__(self, nthreads: int = 8):
        if nthreads < 1:
            raise ValueError("nthreads must be >= 1")
        self.nthreads = nthreads

    def walk(
        self,
        roots: Iterable[T],
        expand: Callable[[T], Iterable[T]],
        *,
        collect_errors: bool = True,
    ) -> WalkStats:
        """Process ``roots`` and everything ``expand`` discovers.

        ``expand`` is called once per item from exactly one worker
        thread; the items it returns are enqueued for any worker.
        Exceptions from ``expand`` are recorded in the returned stats
        (or re-raised after the walk if ``collect_errors`` is False)
        and do not stop other work — matching how a production walker
        must survive unreadable directories.
        """
        work: queue.Queue = queue.Queue()
        nroots = 0
        for r in roots:
            work.put(r)
            nroots += 1
        stats = WalkStats()
        if nroots == 0:
            return stats

        lock = threading.Lock()
        start = time.monotonic()
        last_done = [0.0] * self.nthreads
        per_thread = [0] * self.nthreads
        first_error: list[Exception] = []

        def worker(tid: int) -> None:
            while True:
                item = work.get()  # blocks; sentinels wake us to exit
                if item is _SENTINEL:
                    work.task_done()
                    return
                try:
                    children = expand(item)
                    if children:
                        for child in children:
                            work.put(child)
                except Exception as exc:  # noqa: BLE001 - survive bad dirs
                    with lock:
                        stats.errors.append((item, exc))
                        if not first_error:
                            first_error.append(exc)
                finally:
                    now = time.monotonic() - start
                    with lock:
                        per_thread[tid] += 1
                        last_done[tid] = now
                        stats.items_processed += 1
                    work.task_done()

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"walker-{i}", daemon=True)
            for i in range(self.nthreads)
        ]
        for t in threads:
            t.start()
        work.join()  # all enqueued items processed
        for _ in threads:
            work.put(_SENTINEL)
        for t in threads:
            t.join()

        stats.elapsed = time.monotonic() - start
        stats.thread_completion_times = sorted(last_done)
        stats.items_per_thread = {i: n for i, n in enumerate(per_thread)}
        if not collect_errors and first_error:
            raise first_error[0]
        return stats


class _Sentinel:
    __slots__ = ()


_SENTINEL = _Sentinel()
