"""Source-file-system scanners (paper §III-A3, Table I).

Index construction starts with a privileged metadata scan of each
source file system. The paper uses whichever mechanism each system
offers:

* a generic threaded breadth-first **tree walk** (NFS, most systems),
* **Lester**-style direct inode-table scans (Lustre MDT, Spectrum
  Scale ILM) — much faster because they bypass the namespace,
* **SQL dumps** of database-backed archives (HPSS) — fast per row but
  inherently sequential,
* **snapshot** scans (ZFS/WAFL) — a tree walk over a frozen, consistent
  image.

Each scanner here produces the same output — a stream of
:class:`~repro.scan.trace.DirStanza` — and reports both the wall time
of the in-memory walk and a *modelled* scan time: the per-operation
costs the same scan would incur against the real source system,
divided by the scan's usable parallelism. Cost constants are
calibrated to Table I's throughputs (tree walks ≈ tens of µs/entry
with a threaded client, Lester ≈ 11 µs/row, HPSS SQL ≈ 38 µs/row).
"""

from __future__ import annotations

import posixpath
import threading
import time
from dataclasses import dataclass

from repro.fs.inode import FileType, Inode
from repro.fs.snapshot import snapshot
from repro.fs.tree import VFSTree

from .trace import DirStanza, TraceRecord
from .walker import ParallelTreeWalker, WalkStats


@dataclass(frozen=True)
class ScanCostModel:
    """Per-operation costs of scanning a real source system."""

    name: str
    per_stat: float  # seconds per per-entry attribute fetch
    per_readdir_entry: float  # seconds per name listed
    parallelizable: bool  # can multiple client threads help?
    parallel_efficiency: float = 0.85  # fraction of linear speedup kept


TREEWALK_NFS = ScanCostModel(
    "treewalk-nfs", per_stat=300e-6, per_readdir_entry=30e-6, parallelizable=True
)
TREEWALK_LUSTRE = ScanCostModel(
    "treewalk-lustre", per_stat=450e-6, per_readdir_entry=40e-6, parallelizable=True
)
LESTER = ScanCostModel(
    "lester", per_stat=11e-6, per_readdir_entry=0.0, parallelizable=False
)
HPSS_SQL = ScanCostModel(
    "hpss-sql", per_stat=38e-6, per_readdir_entry=0.0, parallelizable=False
)

COST_PRESETS = {
    m.name: m for m in (TREEWALK_NFS, TREEWALK_LUSTRE, LESTER, HPSS_SQL)
}


@dataclass
class ScanResult:
    """Everything a scan produced."""

    stanzas: list[DirStanza]
    wall_time: float
    modeled_time: float
    nthreads: int
    cost_model: ScanCostModel
    walk_stats: WalkStats | None = None
    #: raw op counts, so modelled times can be re-evaluated for a
    #: different deployment (e.g. more scan clients than this run used)
    n_stat_ops: int = 0
    n_listed_ops: int = 0

    def modeled_time_at(self, nthreads: int) -> float:
        """Modelled scan time if the deployment ran ``nthreads``
        scanner threads against the same source system."""
        return _modeled_time(
            self.cost_model, self.n_stat_ops, self.n_listed_ops, nthreads
        )

    @property
    def num_dirs(self) -> int:
        return len(self.stanzas)

    @property
    def num_entries(self) -> int:
        return sum(len(s.entries) for s in self.stanzas)

    @property
    def total_records(self) -> int:
        return self.num_dirs + self.num_entries


def record_from_inode(path: str, inode: Inode) -> TraceRecord:
    """Serialise an inode into the trace record the index stores."""
    return TraceRecord(
        path=path,
        ftype=inode.ftype.value,
        ino=inode.ino,
        mode=inode.mode,
        nlink=inode.nlink,
        uid=inode.uid,
        gid=inode.gid,
        size=inode.size,
        blksize=4096,
        blocks=(inode.size + 511) // 512,
        atime=inode.atime,
        mtime=inode.mtime,
        ctime=inode.ctime,
        linkname=inode.symlink_target or "",
        xattrs=dict(inode.xattrs),
    )


def _modeled_time(
    cost: ScanCostModel, n_stats: int, n_listed: int, nthreads: int
) -> float:
    total = n_stats * cost.per_stat + n_listed * cost.per_readdir_entry
    if not cost.parallelizable or nthreads <= 1:
        return total
    speedup = 1.0 + (nthreads - 1) * cost.parallel_efficiency
    return total / speedup


class TreeWalkScanner:
    """Generic threaded breadth-first scan of a live source tree.

    Runs as a privileged process (root credentials) so permissions
    never hide parts of the namespace — exactly the paper's model.
    """

    def __init__(
        self,
        tree: VFSTree,
        nthreads: int = 8,
        cost_model: ScanCostModel = TREEWALK_NFS,
    ):
        self.tree = tree
        self.nthreads = nthreads
        self.cost_model = cost_model

    def scan(self, top: str = "/") -> ScanResult:
        stanzas: list[DirStanza] = []
        lock = threading.Lock()
        n_stats = 0
        n_listed = 0

        def expand(dirpath: str) -> list[str]:
            nonlocal n_stats, n_listed
            dir_inode = self.tree.get_inode(dirpath)
            entries = self.tree.readdir(dirpath)
            stanza = DirStanza(directory=record_from_inode(dirpath, dir_inode))
            subdirs: list[str] = []
            for e in entries:
                child_path = posixpath.join(dirpath, e.name)
                if e.ftype is FileType.DIRECTORY:
                    subdirs.append(child_path)
                else:
                    inode = self.tree.get_inode(child_path)
                    stanza.entries.append(record_from_inode(child_path, inode))
            with lock:
                stanzas.append(stanza)
                n_stats += 1 + len(entries)
                n_listed += len(entries)
            return subdirs

        t0 = time.monotonic()
        walker = ParallelTreeWalker(self.nthreads)
        stats = walker.walk([posixpath.normpath(top)], expand)
        wall = time.monotonic() - t0
        return ScanResult(
            stanzas=stanzas,
            wall_time=wall,
            modeled_time=_modeled_time(self.cost_model, n_stats, n_listed, self.nthreads),
            nthreads=self.nthreads,
            cost_model=self.cost_model,
            walk_stats=stats,
            n_stat_ops=n_stats,
            n_listed_ops=n_listed,
        )


class SnapshotScanner(TreeWalkScanner):
    """Tree walk over a consistent snapshot (WAFL/ZFS-style sources).

    The scan sees a frozen image, so concurrent mutation of the live
    tree cannot tear the index; the snapshot itself costs a constant.
    """

    SNAPSHOT_COST = 2.0  # seconds to create/clone a snapshot

    def scan(self, top: str = "/") -> ScanResult:
        live = self.tree
        self.tree = snapshot(live)
        try:
            result = super().scan(top)
        finally:
            self.tree = live
        result.modeled_time += self.SNAPSHOT_COST
        return result


class _InodeTableScanner:
    """Shared machinery for namespace-bypassing scans: read every
    (path, inode) pair straight from the metadata store, then regroup
    into directory stanzas."""

    def __init__(self, tree: VFSTree, cost_model: ScanCostModel):
        self.tree = tree
        self.cost_model = cost_model
        self.nthreads = 1  # the paper: these scans do not parallelise

    def scan(self, top: str = "/") -> ScanResult:
        t0 = time.monotonic()
        top = posixpath.normpath(top)
        prefix = top if top.endswith("/") else top + "/"
        dirs: dict[str, DirStanza] = {}
        pending: list[TraceRecord] = []
        n_rows = 0
        for path, inode in self.tree.iter_inodes():
            if path != top and not path.startswith(prefix):
                continue
            n_rows += 1
            rec = record_from_inode(path, inode)
            if rec.ftype == "d":
                dirs[path] = DirStanza(directory=rec)
            else:
                pending.append(rec)
        for rec in pending:
            parent = dirs.get(rec.parent)
            if parent is None:
                raise ValueError(f"orphan entry in inode scan: {rec.path}")
            parent.entries.append(rec)
        stanzas = [dirs[p] for p in sorted(dirs)]
        wall = time.monotonic() - t0
        return ScanResult(
            stanzas=stanzas,
            wall_time=wall,
            modeled_time=_modeled_time(self.cost_model, n_rows, 0, 1),
            nthreads=1,
            cost_model=self.cost_model,
            n_stat_ops=n_rows,
        )


class LesterScanner(_InodeTableScanner):
    """Lustre MDT inode-table scan (Lester) / Spectrum Scale ILM scan.

    Reads inodes directly on the metadata server, bypassing namespace
    RPCs — Table I's /scratch1 scans 109 M entries in 19 minutes this
    way versus 216 minutes for a comparable tree walk.
    """

    def __init__(self, tree: VFSTree):
        super().__init__(tree, LESTER)


class SQLScanner(_InodeTableScanner):
    """HPSS-style SQL dump of an archive's metadata tables. Fast per
    row but strictly sequential (§III-A4: 'large tape archives where
    the SQL-based scanning technology cannot be parallelized')."""

    def __init__(self, tree: VFSTree):
        super().__init__(tree, HPSS_SQL)


def make_scanner(
    kind: str, tree: VFSTree, nthreads: int = 8
) -> TreeWalkScanner | _InodeTableScanner:
    """Factory keyed by Table I's scan-type column."""
    if kind == "treewalk":
        return TreeWalkScanner(tree, nthreads=nthreads)
    if kind == "snapshot":
        return SnapshotScanner(tree, nthreads=nthreads)
    if kind == "lester":
        return LesterScanner(tree)
    if kind == "sql":
        return SQLScanner(tree)
    raise ValueError(f"unknown scanner kind {kind!r}")
