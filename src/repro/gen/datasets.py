"""Scaled presets for the paper's evaluation datasets.

Paper-scale namespaces (millions of directories, tens of millions of
files) would take hours to generate and index in pure Python, so each
preset takes a ``scale`` factor applied to the paper's counts. The
default scales keep each benchmark in the seconds range while leaving
the distributional structure (ownership skew, permission mixes, depth)
intact; pass ``scale=1.0`` to attempt full size.

Paper reference counts:

* Fig 1 workload — Linux 5.8.9 source tree: ~4.7 K dirs, 74 K files.
* Dataset 1 (§IV, Table II) — anonymised NFS home: 1.6 M dirs, 13.2 M files.
* Dataset 2 (§IV, Table II) — Lustre scratch: 2.2 M dirs, 64.7 M files.
* Table I — /users 6.1M/43M, /proj 35.7M/263M, /scratch1 7.4M/102M,
  /scratch2 16.5M/225M, /archive 5.7M/193M (dirs/files).
"""

from __future__ import annotations

from .namespace import GeneratedNamespace, Layout, NamespaceSpec, build_namespace


def _scaled(n: int, scale: float, minimum: int = 8) -> int:
    return max(minimum, int(n * scale))


def linux_kernel_tree(scale: float = 1.0, seed: int = 1) -> GeneratedNamespace:
    """The Fig 1 workload: a kernel-source-shaped tree (single owner,
    world readable, ~16 files per directory, small files)."""
    spec = NamespaceSpec(
        name="linux-5.8.9",
        n_dirs=_scaled(4700, scale),
        n_files=_scaled(74_000, scale),
        layout=Layout.KERNEL,
        n_users=1,
        seed=seed,
        mean_fanout=3.2,
        file_size_median=8 * 1024,
        file_size_sigma=1.6,
        symlink_fraction=0.0005,
    )
    return build_namespace(spec)


def dataset1(scale: float = 0.01, seed: int = 11) -> GeneratedNamespace:
    """Anonymised NFS home file system (1.6 M dirs / 13.2 M files at
    scale=1). Used for the disk-utilisation study (Fig 7)."""
    spec = NamespaceSpec(
        name="dataset1-nfs-home",
        n_dirs=_scaled(1_600_000, scale),
        n_files=_scaled(13_200_000, scale),
        layout=Layout.HOME,
        n_users=max(4, int(150 * min(1.0, scale * 20))),
        seed=seed,
        mean_fanout=2.8,
    )
    return build_namespace(spec)


def dataset2(scale: float = 0.002, seed: int = 22) -> GeneratedNamespace:
    """Production Lustre scratch (2.2 M dirs / 64.7 M files at
    scale=1). The macro-benchmark namespace (Figs 8, 9, 10)."""
    spec = NamespaceSpec(
        name="dataset2-lustre-scratch",
        n_dirs=_scaled(2_200_000, scale),
        n_files=_scaled(64_700_000, scale),
        layout=Layout.SCRATCH,
        n_users=max(6, int(150 * min(1.0, scale * 100))),
        seed=seed,
        mean_fanout=3.0,
        file_size_median=256 * 1024,  # scratch files skew larger
        file_size_sigma=3.0,
    )
    return build_namespace(spec)


# ----------------------------------------------------------------------
# Table I file systems. Counts are the paper's, scaled.
# ----------------------------------------------------------------------

_TABLE1 = {
    # name: (layout, dirs, files)
    "/users": (Layout.HOME, 6_100_000, 43_000_000),
    "/proj": (Layout.PROJECT, 35_700_000, 263_000_000),
    "/scratch1": (Layout.SCRATCH, 7_400_000, 102_000_000),
    "/scratch2": (Layout.SCRATCH, 16_500_000, 225_000_000),
    "/archive": (Layout.ARCHIVE, 5_700_000, 193_000_000),
}

#: scan type each Table I file system uses in the paper
TABLE1_SCAN_TYPE = {
    "/users": "treewalk",
    "/proj": "treewalk",
    "/scratch1": "lester",
    "/scratch2": "treewalk",
    "/archive": "sql",
}


def table1_namespace(
    name: str, scale: float = 2e-4, seed: int | None = None
) -> GeneratedNamespace:
    """Generate one of the five Table I namespaces at ``scale``."""
    import zlib

    layout, n_dirs, n_files = _TABLE1[name]
    spec = NamespaceSpec(
        name=f"table1{name.replace('/', '-')}",
        n_dirs=_scaled(n_dirs, scale),
        n_files=_scaled(n_files, scale),
        layout=layout,
        n_users=24,
        # crc32, not hash(): str hashes are randomised per process and
        # namespaces must be reproducible across runs.
        seed=seed if seed is not None else zlib.crc32(name.encode()) % 10_000,
    )
    return build_namespace(spec)


def table1_names() -> list[str]:
    return list(_TABLE1)


def table1_paper_counts(name: str) -> tuple[int, int]:
    """(dirs, files) the paper reports for ``name``."""
    _, d, f = _TABLE1[name]
    return d, f
