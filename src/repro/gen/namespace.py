"""Synthetic namespace builder.

Turns a :class:`NamespaceSpec` into a populated
:class:`~repro.fs.tree.VFSTree` with the structural properties the
paper's experiments depend on:

* heavy-tailed ownership (a few users own most entries) — drives the
  user-query speedups of Fig 10b;
* per-area permission *homogeneity* (home trees are single-owner and
  uniform; project trees mix users, groups, and modes) — drives the
  rollup-rate spread (741× home vs 77× project, §IV-B);
* heavy-tailed directory sizes — drives the Brindexer shard-size
  imbalance of Fig 8c;
* log-normal file sizes and exponential staleness — give the du- and
  purge-style queries realistic aggregates.
"""

from __future__ import annotations

import posixpath
import random
from dataclasses import dataclass, field
from enum import Enum

from repro.fs.errors import FSError
from repro.fs.tree import VFSTree

from .distributions import Population, Sampler


class Layout(Enum):
    """Area archetypes, after the paper's /home /project /scratch
    /archive mount taxonomy (§I) plus a kernel-source tree for Fig 1."""

    HOME = "home"
    PROJECT = "project"
    SCRATCH = "scratch"
    ARCHIVE = "archive"
    KERNEL = "kernel"


@dataclass(frozen=True)
class AreaPolicy:
    """Ownership and mode policy for one top-level area subtree."""

    uid: int
    gid: int
    dir_mode: int
    file_mode: int
    #: probability a directory deviates from the area policy (different
    #: owner or mode) — the source of rollup-blocking diversity
    deviation_p: float = 0.0


@dataclass
class NamespaceSpec:
    """Parameters for one generated namespace."""

    name: str
    n_dirs: int
    n_files: int
    layout: Layout
    n_users: int = 20
    seed: int = 0
    mean_fanout: float = 3.0
    file_size_median: float = 16 * 1024
    file_size_sigma: float = 2.6
    symlink_fraction: float = 0.01
    #: per-spec overrides; filled from layout defaults if None
    population: Population | None = None

    def __post_init__(self):
        if self.population is None:
            self.population = Population.make(self.n_users)


@dataclass
class GeneratedNamespace:
    """A built namespace plus the bookkeeping experiments need."""

    spec: NamespaceSpec
    tree: VFSTree
    #: every directory path, in creation (BFS) order
    dirs: list[str]
    #: every non-directory path
    files: list[str]
    #: top-level area root for each user area (e.g. /home/u1007)
    area_roots: dict[str, AreaPolicy] = field(default_factory=dict)

    @property
    def total_entries(self) -> int:
        return len(self.dirs) + len(self.files)


def _area_policies(
    spec: NamespaceSpec, sampler: Sampler
) -> list[tuple[str, AreaPolicy]]:
    """Create the top-level areas for the layout and return
    (area_root_path, policy) pairs. Area count tracks the user
    population; Zipf weighting later decides how much each area grows."""
    pop = spec.population
    assert pop is not None
    areas: list[tuple[str, AreaPolicy]] = []
    if spec.layout is Layout.KERNEL:
        areas.append(
            ("/linux", AreaPolicy(uid=0, gid=0, dir_mode=0o755, file_mode=0o644))
        )
        return areas
    if spec.layout in (Layout.HOME, Layout.SCRATCH):
        base = "/home" if spec.layout is Layout.HOME else "/scratch"
        for uid in pop.uids:
            # Most home trees are private; some are group/world visible.
            r = sampler.rng.random()
            if r < 0.70:
                dmode, fmode = 0o700, 0o600
            elif r < 0.90:
                dmode, fmode = 0o750, 0o640
            else:
                dmode, fmode = 0o755, 0o644
            areas.append(
                (
                    f"{base}/u{uid}",
                    AreaPolicy(
                        uid=uid,
                        gid=pop.primary_gid[uid],
                        dir_mode=dmode,
                        file_mode=fmode,
                        deviation_p=0.002 if spec.layout is Layout.HOME else 0.02,
                    ),
                )
            )
        return areas
    # PROJECT / ARCHIVE: shared-group areas with diverse membership.
    base = "/proj" if spec.layout is Layout.PROJECT else "/archive"
    n_areas = max(2, len(pop.shared_gids))
    for i in range(n_areas):
        gid = pop.shared_gids[i % len(pop.shared_gids)]
        owner = pop.uids[sampler.zipf_index(len(pop.uids))]
        dmode = sampler.rng.choice([0o770, 0o775, 0o750, 0o2770])
        areas.append(
            (
                f"{base}/proj{i:03d}",
                AreaPolicy(
                    uid=owner,
                    gid=gid,
                    dir_mode=dmode,
                    file_mode=dmode & 0o666,
                    deviation_p=0.06,  # mixed ownership blocks rollup
                ),
            )
        )
    return areas


def _deviate(
    policy: AreaPolicy, spec: NamespaceSpec, sampler: Sampler
) -> AreaPolicy:
    """Produce a within-area deviation — the source of rollup-blocking
    diversity. In private home trees only the owner can create
    sub-directories, so deviations there are mode changes by the same
    owner (a world-readable subdir in a private home); shared project
    and scratch areas additionally grow foreign-owner private dirs and
    group changes — which is why the paper's project spaces roll up an
    order of magnitude worse than home spaces (77x vs 741x)."""
    pop = spec.population
    assert pop is not None
    r = sampler.rng.random()
    if spec.layout is Layout.HOME or r >= 0.5:
        if r < 0.8 or spec.layout is Layout.HOME:
            # same owner, world-readable
            return AreaPolicy(
                uid=policy.uid, gid=policy.gid, dir_mode=0o755,
                file_mode=0o644, deviation_p=policy.deviation_p,
            )
        # different group
        gid = sampler.rng.choice(pop.shared_gids)
        return AreaPolicy(
            uid=policy.uid, gid=gid, dir_mode=policy.dir_mode,
            file_mode=policy.file_mode, deviation_p=policy.deviation_p,
        )
    # different owner, private (shared areas only)
    uid = pop.uids[sampler.zipf_index(len(pop.uids))]
    return AreaPolicy(
        uid=uid, gid=pop.primary_gid[uid], dir_mode=0o700, file_mode=0o600,
        deviation_p=policy.deviation_p,
    )


def build_namespace(spec: NamespaceSpec) -> GeneratedNamespace:
    """Materialise ``spec`` into a VFS tree.

    Directory growth is breadth-first from the area roots with Zipf
    weighting across areas, so popular users/projects grow deep, wide
    subtrees; files are then distributed with a heavy-tailed
    files-per-directory law.
    """
    sampler = Sampler(spec.seed)
    tree = VFSTree()
    areas = _area_policies(spec, sampler)

    # Top-level containers (/home, /proj, ...) then area roots.
    created_dirs: list[str] = []
    policies: dict[str, AreaPolicy] = {}
    tops = sorted({posixpath.dirname(p) for p, _ in areas})
    for top in tops:
        tree.makedirs(top, mode=0o755, uid=0, gid=0)
    for path, policy in areas:
        tree.mkdir(path, mode=policy.dir_mode, uid=policy.uid, gid=policy.gid)
        created_dirs.append(path)
        policies[path] = policy

    # Grow the directory forest, BFS, Zipf-weighted across areas.
    frontier: list[list[str]] = [[p] for p, _ in areas]
    n_dirs = len(created_dirs)
    stall = 0
    while n_dirs < spec.n_dirs and stall < 10_000:
        ai = sampler.zipf_index(len(frontier), skew=1.05)
        bucket = frontier[ai]
        if not bucket:
            stall += 1
            continue
        stall = 0
        parent = bucket[sampler.rng.randrange(len(bucket))]
        fanout = sampler.fanout(mean=spec.mean_fanout)
        if fanout == 0:
            # Leaf: drop it from the frontier so growth moves on.
            bucket.remove(parent)
            if not bucket:
                bucket.append(areas[ai][0])  # never exhaust an area
            continue
        policy = policies[parent]
        for _ in range(fanout):
            if n_dirs >= spec.n_dirs:
                break
            child_policy = policy
            if sampler.rng.random() < policy.deviation_p:
                child_policy = _deviate(policy, spec, sampler)
            child = posixpath.join(parent, sampler.dirname())
            if tree.exists(child):
                continue
            tree.mkdir(
                child,
                mode=child_policy.dir_mode,
                uid=child_policy.uid,
                gid=child_policy.gid,
            )
            created_dirs.append(child)
            policies[child] = child_policy
            bucket.append(child)
            n_dirs += 1

    # Distribute files. Walk directories repeatedly (Zipf-weighted so
    # hot directories accumulate) until the file budget is spent.
    files: list[str] = []
    n_files = 0
    horizon = 3 * 365 * 86400
    tree.set_time(horizon + 1)  # "now" for staleness maths
    order = list(created_dirs)
    while n_files < spec.n_files:
        d = order[sampler.zipf_index(len(order), skew=1.02)]
        count = min(sampler.files_in_dir(), spec.n_files - n_files)
        policy = policies[d]
        for _ in range(count):
            name = sampler.filename()
            path = posixpath.join(d, name)
            if tree.exists(path):
                continue
            mtime = horizon - sampler.age_seconds(horizon)
            if sampler.rng.random() < spec.symlink_fraction:
                target = order[sampler.rng.randrange(len(order))]
                tree.symlink(path, target, uid=policy.uid, gid=policy.gid)
            else:
                tree.create_file(
                    path,
                    size=sampler.file_size(
                        spec.file_size_median, spec.file_size_sigma
                    ),
                    mode=policy.file_mode,
                    uid=policy.uid,
                    gid=policy.gid,
                    mtime=mtime,
                )
            files.append(path)
            n_files += 1

    return GeneratedNamespace(
        spec=spec,
        tree=tree,
        dirs=sorted(created_dirs),
        files=sorted(files),
        area_roots=dict(areas),
    )


class NamespaceMutator:
    """Seeded random mutation driver over a generated namespace.

    Produces the workload the changefeed consumer must keep up with:
    each :meth:`mutate` step applies one random namespace mutation —
    create/unlink/rename (files and whole directory subtrees), mkdir/
    rmdir, chmod/chown/utime, setxattr/removexattr — as root, keeping
    the :class:`GeneratedNamespace` bookkeeping (``dirs``/``files``)
    consistent so tests and benchmarks can keep sampling live paths.
    Every decision comes from one seeded RNG, so a (namespace seed,
    mutator seed) pair replays the identical mutation sequence.

    Ops that land on an impossible target (rename into its own
    subtree, rmdir of a non-empty directory, a name collision) are
    retried with a fresh sample rather than counted, so ``mutate(n)``
    performs exactly ``n`` real mutations whenever any op is possible.
    """

    #: op → relative weight; structural ops dominate, matching real
    #: changelog traffic (Robinhood's pipelines see mostly creates)
    DEFAULT_WEIGHTS = {
        "create_file": 30,
        "mkdir": 8,
        "unlink": 14,
        "rmdir": 3,
        "rename_file": 10,
        "rename_dir": 4,
        "chmod": 10,
        "chown": 5,
        "utime": 6,
        "setxattr": 7,
        "removexattr": 3,
    }

    def __init__(
        self,
        ns: GeneratedNamespace,
        seed: int = 0,
        weights: dict[str, int] | None = None,
    ):
        self.ns = ns
        self.rng = random.Random(seed)
        self.sampler = Sampler(seed ^ 0x5EED)
        self.weights = dict(weights or self.DEFAULT_WEIGHTS)
        #: (op, path) log of every mutation actually applied
        self.applied: list[tuple[str, str]] = []
        #: paths we have set xattrs on (for removexattr targets)
        self._xattrs: dict[str, list[str]] = {}
        self._serial = 0

    # ------------------------------------------------------------------
    def mutate(self, n: int = 1) -> list[tuple[str, str]]:
        """Apply ``n`` random mutations; returns the (op, path) log
        slice for this call."""
        start = len(self.applied)
        ops = list(self.weights)
        weights = [self.weights[o] for o in ops]
        for _ in range(n):
            for _attempt in range(64):
                op = self.rng.choices(ops, weights=weights)[0]
                if self._try(op):
                    break
            else:
                raise RuntimeError("no mutation possible on this namespace")
        return self.applied[start:]

    # ------------------------------------------------------------------
    def _fresh_name(self, prefix: str) -> str:
        self._serial += 1
        return f"{prefix}{self._serial:05d}"

    def _pick(self, seq: list[str]) -> str | None:
        return seq[self.rng.randrange(len(seq))] if seq else None

    def _is_symlink(self, path: str) -> bool:
        try:
            return self.ns.tree.lstat(path).ftype.value == "l"
        except FSError:
            return True

    def _try(self, op: str) -> bool:
        tree = self.ns.tree
        try:
            if op == "create_file":
                d = self._pick(self.ns.dirs)
                if d is None:
                    return False
                path = posixpath.join(d, self._fresh_name("mf"))
                tree.create_file(
                    path,
                    size=self.sampler.file_size(16 * 1024, 2.0),
                    mode=self.rng.choice([0o600, 0o640, 0o644]),
                    uid=self.rng.choice(self._uids()),
                    gid=self.rng.choice(self._gids()),
                )
                self.ns.files.append(path)
            elif op == "mkdir":
                d = self._pick(self.ns.dirs)
                if d is None:
                    return False
                path = posixpath.join(d, self._fresh_name("md"))
                tree.mkdir(
                    path,
                    mode=self.rng.choice([0o700, 0o750, 0o755, 0o770]),
                    uid=self.rng.choice(self._uids()),
                    gid=self.rng.choice(self._gids()),
                )
                self.ns.dirs.append(path)
            elif op == "unlink":
                path = self._pick(self.ns.files)
                if path is None:
                    return False
                tree.unlink(path)
                self.ns.files.remove(path)
                self._xattrs.pop(path, None)
            elif op == "rmdir":
                path = self._pick(self.ns.dirs)
                if path is None or tree.readdir(path):
                    return False
                tree.rmdir(path)
                self.ns.dirs.remove(path)
                self._xattrs.pop(path, None)
            elif op == "rename_file":
                src = self._pick(self.ns.files)
                d = self._pick(self.ns.dirs)
                if src is None or d is None:
                    return False
                dst = posixpath.join(d, self._fresh_name("rf"))
                tree.rename(src, dst)
                self.ns.files[self.ns.files.index(src)] = dst
                if src in self._xattrs:
                    self._xattrs[dst] = self._xattrs.pop(src)
                path = src
            elif op == "rename_dir":
                src = self._pick(self.ns.dirs)
                d = self._pick(self.ns.dirs)
                if src is None or d is None:
                    return False
                if d == src or d.startswith(src + "/"):
                    return False
                dst = posixpath.join(d, self._fresh_name("rd"))
                tree.rename(src, dst)
                self._remap_prefix(src, dst)
                path = src
            elif op == "chmod":
                path = self._pick(self.ns.files + self.ns.dirs)
                if path is None or self._is_symlink(path):
                    return False
                tree.chmod(
                    path, self.rng.choice([0o600, 0o640, 0o644, 0o700, 0o755])
                )
            elif op == "chown":
                path = self._pick(self.ns.files + self.ns.dirs)
                if path is None or self._is_symlink(path):
                    return False
                tree.chown(
                    path, self.rng.choice(self._uids()),
                    self.rng.choice(self._gids()),
                )
            elif op == "utime":
                path = self._pick(self.ns.files)
                if path is None or self._is_symlink(path):
                    return False
                now = max(1, tree.stat("/").st_mtime)
                tree.utime(path, now, self.rng.randrange(1, now + 1))
            elif op == "setxattr":
                path = self._pick(self.ns.files + self.ns.dirs)
                if path is None or self._is_symlink(path):
                    return False
                name = f"user.m{self.rng.randrange(4)}"
                tree.setxattr(path, name, self.sampler.xattr_value(8))
                names = self._xattrs.setdefault(path, [])
                if name not in names:
                    names.append(name)
            elif op == "removexattr":
                candidates = [p for p, ns_ in self._xattrs.items() if ns_]
                path = self._pick(candidates)
                if path is None:
                    return False
                names = self._xattrs[path]
                name = names[self.rng.randrange(len(names))]
                tree.removexattr(path, name)
                names.remove(name)
            else:  # pragma: no cover
                raise ValueError(f"unknown mutation op {op!r}")
        except FSError:
            return False
        self.applied.append((op, path))
        return True

    def _remap_prefix(self, src: str, dst: str) -> None:
        """Rewrite bookkeeping paths after a directory rename."""
        def remap(p: str) -> str:
            if p == src:
                return dst
            if p.startswith(src + "/"):
                return dst + p[len(src):]
            return p

        self.ns.dirs[:] = [remap(p) for p in self.ns.dirs]
        self.ns.files[:] = [remap(p) for p in self.ns.files]
        self._xattrs = {remap(p): v for p, v in self._xattrs.items()}

    def _uids(self) -> list[int]:
        pop = self.ns.spec.population
        return list(pop.uids) if pop is not None else [0]

    def _gids(self) -> list[int]:
        pop = self.ns.spec.population
        if pop is None:
            return [0]
        return sorted({*pop.primary_gid.values(), *pop.shared_gids})


def apply_xattrs(
    ns: GeneratedNamespace,
    fraction: float,
    sentinel: tuple[str, bytes] = ("user.ext", b"1"),
    needle: tuple[str, bytes] = ("user.needle", b"found-me"),
    extra_per_file: int = 2,
    seed: int = 99,
) -> tuple[list[str], str]:
    """Populate xattrs on ``fraction`` of non-directories (Fig 9 setup).

    Every selected file gets the well-known ``sentinel`` name-value
    pair plus ``extra_per_file`` random attributes; exactly one file
    additionally gets the unique ``needle``. Returns (tagged paths,
    needle path).
    """
    sampler = Sampler(seed)
    tagged: list[str] = []
    for path in ns.files:
        # user.* xattrs are not permitted on symlinks (Linux), and
        # tagging through one would decorate its target instead.
        if ns.tree.lstat(path).ftype.value == "l":
            continue
        if sampler.rng.random() < fraction:
            ns.tree.setxattr(path, sentinel[0], sentinel[1])
            for i in range(extra_per_file):
                ns.tree.setxattr(
                    path, f"user.tag{i}", sampler.xattr_value(8)
                )
            tagged.append(path)
    if not tagged:  # guarantee at least one for the needle
        path = ns.files[0]
        ns.tree.setxattr(path, sentinel[0], sentinel[1])
        tagged.append(path)
    needle_path = tagged[sampler.rng.randrange(len(tagged))]
    ns.tree.setxattr(needle_path, needle[0], needle[1])
    return tagged, needle_path
