"""Synthetic namespace builder.

Turns a :class:`NamespaceSpec` into a populated
:class:`~repro.fs.tree.VFSTree` with the structural properties the
paper's experiments depend on:

* heavy-tailed ownership (a few users own most entries) — drives the
  user-query speedups of Fig 10b;
* per-area permission *homogeneity* (home trees are single-owner and
  uniform; project trees mix users, groups, and modes) — drives the
  rollup-rate spread (741× home vs 77× project, §IV-B);
* heavy-tailed directory sizes — drives the Brindexer shard-size
  imbalance of Fig 8c;
* log-normal file sizes and exponential staleness — give the du- and
  purge-style queries realistic aggregates.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from enum import Enum

from repro.fs.tree import VFSTree

from .distributions import Population, Sampler


class Layout(Enum):
    """Area archetypes, after the paper's /home /project /scratch
    /archive mount taxonomy (§I) plus a kernel-source tree for Fig 1."""

    HOME = "home"
    PROJECT = "project"
    SCRATCH = "scratch"
    ARCHIVE = "archive"
    KERNEL = "kernel"


@dataclass(frozen=True)
class AreaPolicy:
    """Ownership and mode policy for one top-level area subtree."""

    uid: int
    gid: int
    dir_mode: int
    file_mode: int
    #: probability a directory deviates from the area policy (different
    #: owner or mode) — the source of rollup-blocking diversity
    deviation_p: float = 0.0


@dataclass
class NamespaceSpec:
    """Parameters for one generated namespace."""

    name: str
    n_dirs: int
    n_files: int
    layout: Layout
    n_users: int = 20
    seed: int = 0
    mean_fanout: float = 3.0
    file_size_median: float = 16 * 1024
    file_size_sigma: float = 2.6
    symlink_fraction: float = 0.01
    #: per-spec overrides; filled from layout defaults if None
    population: Population | None = None

    def __post_init__(self):
        if self.population is None:
            self.population = Population.make(self.n_users)


@dataclass
class GeneratedNamespace:
    """A built namespace plus the bookkeeping experiments need."""

    spec: NamespaceSpec
    tree: VFSTree
    #: every directory path, in creation (BFS) order
    dirs: list[str]
    #: every non-directory path
    files: list[str]
    #: top-level area root for each user area (e.g. /home/u1007)
    area_roots: dict[str, AreaPolicy] = field(default_factory=dict)

    @property
    def total_entries(self) -> int:
        return len(self.dirs) + len(self.files)


def _area_policies(
    spec: NamespaceSpec, sampler: Sampler
) -> list[tuple[str, AreaPolicy]]:
    """Create the top-level areas for the layout and return
    (area_root_path, policy) pairs. Area count tracks the user
    population; Zipf weighting later decides how much each area grows."""
    pop = spec.population
    assert pop is not None
    areas: list[tuple[str, AreaPolicy]] = []
    if spec.layout is Layout.KERNEL:
        areas.append(
            ("/linux", AreaPolicy(uid=0, gid=0, dir_mode=0o755, file_mode=0o644))
        )
        return areas
    if spec.layout in (Layout.HOME, Layout.SCRATCH):
        base = "/home" if spec.layout is Layout.HOME else "/scratch"
        for uid in pop.uids:
            # Most home trees are private; some are group/world visible.
            r = sampler.rng.random()
            if r < 0.70:
                dmode, fmode = 0o700, 0o600
            elif r < 0.90:
                dmode, fmode = 0o750, 0o640
            else:
                dmode, fmode = 0o755, 0o644
            areas.append(
                (
                    f"{base}/u{uid}",
                    AreaPolicy(
                        uid=uid,
                        gid=pop.primary_gid[uid],
                        dir_mode=dmode,
                        file_mode=fmode,
                        deviation_p=0.002 if spec.layout is Layout.HOME else 0.02,
                    ),
                )
            )
        return areas
    # PROJECT / ARCHIVE: shared-group areas with diverse membership.
    base = "/proj" if spec.layout is Layout.PROJECT else "/archive"
    n_areas = max(2, len(pop.shared_gids))
    for i in range(n_areas):
        gid = pop.shared_gids[i % len(pop.shared_gids)]
        owner = pop.uids[sampler.zipf_index(len(pop.uids))]
        dmode = sampler.rng.choice([0o770, 0o775, 0o750, 0o2770])
        areas.append(
            (
                f"{base}/proj{i:03d}",
                AreaPolicy(
                    uid=owner,
                    gid=gid,
                    dir_mode=dmode,
                    file_mode=dmode & 0o666,
                    deviation_p=0.06,  # mixed ownership blocks rollup
                ),
            )
        )
    return areas


def _deviate(
    policy: AreaPolicy, spec: NamespaceSpec, sampler: Sampler
) -> AreaPolicy:
    """Produce a within-area deviation — the source of rollup-blocking
    diversity. In private home trees only the owner can create
    sub-directories, so deviations there are mode changes by the same
    owner (a world-readable subdir in a private home); shared project
    and scratch areas additionally grow foreign-owner private dirs and
    group changes — which is why the paper's project spaces roll up an
    order of magnitude worse than home spaces (77x vs 741x)."""
    pop = spec.population
    assert pop is not None
    r = sampler.rng.random()
    if spec.layout is Layout.HOME or r >= 0.5:
        if r < 0.8 or spec.layout is Layout.HOME:
            # same owner, world-readable
            return AreaPolicy(
                uid=policy.uid, gid=policy.gid, dir_mode=0o755,
                file_mode=0o644, deviation_p=policy.deviation_p,
            )
        # different group
        gid = sampler.rng.choice(pop.shared_gids)
        return AreaPolicy(
            uid=policy.uid, gid=gid, dir_mode=policy.dir_mode,
            file_mode=policy.file_mode, deviation_p=policy.deviation_p,
        )
    # different owner, private (shared areas only)
    uid = pop.uids[sampler.zipf_index(len(pop.uids))]
    return AreaPolicy(
        uid=uid, gid=pop.primary_gid[uid], dir_mode=0o700, file_mode=0o600,
        deviation_p=policy.deviation_p,
    )


def build_namespace(spec: NamespaceSpec) -> GeneratedNamespace:
    """Materialise ``spec`` into a VFS tree.

    Directory growth is breadth-first from the area roots with Zipf
    weighting across areas, so popular users/projects grow deep, wide
    subtrees; files are then distributed with a heavy-tailed
    files-per-directory law.
    """
    sampler = Sampler(spec.seed)
    tree = VFSTree()
    areas = _area_policies(spec, sampler)

    # Top-level containers (/home, /proj, ...) then area roots.
    created_dirs: list[str] = []
    policies: dict[str, AreaPolicy] = {}
    tops = sorted({posixpath.dirname(p) for p, _ in areas})
    for top in tops:
        tree.makedirs(top, mode=0o755, uid=0, gid=0)
    for path, policy in areas:
        tree.mkdir(path, mode=policy.dir_mode, uid=policy.uid, gid=policy.gid)
        created_dirs.append(path)
        policies[path] = policy

    # Grow the directory forest, BFS, Zipf-weighted across areas.
    frontier: list[list[str]] = [[p] for p, _ in areas]
    n_dirs = len(created_dirs)
    stall = 0
    while n_dirs < spec.n_dirs and stall < 10_000:
        ai = sampler.zipf_index(len(frontier), skew=1.05)
        bucket = frontier[ai]
        if not bucket:
            stall += 1
            continue
        stall = 0
        parent = bucket[sampler.rng.randrange(len(bucket))]
        fanout = sampler.fanout(mean=spec.mean_fanout)
        if fanout == 0:
            # Leaf: drop it from the frontier so growth moves on.
            bucket.remove(parent)
            if not bucket:
                bucket.append(areas[ai][0])  # never exhaust an area
            continue
        policy = policies[parent]
        for _ in range(fanout):
            if n_dirs >= spec.n_dirs:
                break
            child_policy = policy
            if sampler.rng.random() < policy.deviation_p:
                child_policy = _deviate(policy, spec, sampler)
            child = posixpath.join(parent, sampler.dirname())
            if tree.exists(child):
                continue
            tree.mkdir(
                child,
                mode=child_policy.dir_mode,
                uid=child_policy.uid,
                gid=child_policy.gid,
            )
            created_dirs.append(child)
            policies[child] = child_policy
            bucket.append(child)
            n_dirs += 1

    # Distribute files. Walk directories repeatedly (Zipf-weighted so
    # hot directories accumulate) until the file budget is spent.
    files: list[str] = []
    n_files = 0
    horizon = 3 * 365 * 86400
    tree.set_time(horizon + 1)  # "now" for staleness maths
    order = list(created_dirs)
    while n_files < spec.n_files:
        d = order[sampler.zipf_index(len(order), skew=1.02)]
        count = min(sampler.files_in_dir(), spec.n_files - n_files)
        policy = policies[d]
        for _ in range(count):
            name = sampler.filename()
            path = posixpath.join(d, name)
            if tree.exists(path):
                continue
            mtime = horizon - sampler.age_seconds(horizon)
            if sampler.rng.random() < spec.symlink_fraction:
                target = order[sampler.rng.randrange(len(order))]
                tree.symlink(path, target, uid=policy.uid, gid=policy.gid)
            else:
                tree.create_file(
                    path,
                    size=sampler.file_size(
                        spec.file_size_median, spec.file_size_sigma
                    ),
                    mode=policy.file_mode,
                    uid=policy.uid,
                    gid=policy.gid,
                    mtime=mtime,
                )
            files.append(path)
            n_files += 1

    return GeneratedNamespace(
        spec=spec,
        tree=tree,
        dirs=sorted(created_dirs),
        files=sorted(files),
        area_roots=dict(areas),
    )


def apply_xattrs(
    ns: GeneratedNamespace,
    fraction: float,
    sentinel: tuple[str, bytes] = ("user.ext", b"1"),
    needle: tuple[str, bytes] = ("user.needle", b"found-me"),
    extra_per_file: int = 2,
    seed: int = 99,
) -> tuple[list[str], str]:
    """Populate xattrs on ``fraction`` of non-directories (Fig 9 setup).

    Every selected file gets the well-known ``sentinel`` name-value
    pair plus ``extra_per_file`` random attributes; exactly one file
    additionally gets the unique ``needle``. Returns (tagged paths,
    needle path).
    """
    sampler = Sampler(seed)
    tagged: list[str] = []
    for path in ns.files:
        # user.* xattrs are not permitted on symlinks (Linux), and
        # tagging through one would decorate its target instead.
        if ns.tree.lstat(path).ftype.value == "l":
            continue
        if sampler.rng.random() < fraction:
            ns.tree.setxattr(path, sentinel[0], sentinel[1])
            for i in range(extra_per_file):
                ns.tree.setxattr(
                    path, f"user.tag{i}", sampler.xattr_value(8)
                )
            tagged.append(path)
    if not tagged:  # guarantee at least one for the needle
        path = ns.files[0]
        ns.tree.setxattr(path, sentinel[0], sentinel[1])
        tagged.append(path)
    needle_path = tagged[sampler.rng.randrange(len(tagged))]
    ns.tree.setxattr(needle_path, needle[0], needle[1])
    return tagged, needle_path
