"""Seeded statistical samplers for synthetic namespace generation.

Production HPC namespaces have heavy-tailed structure: a few users own
most files, most directories are small while a handful are enormous,
and file sizes span nine orders of magnitude. The samplers here give
namespace generators those shapes deterministically (every generator
takes a seed) so experiments are reproducible run-to-run.
"""

from __future__ import annotations

import math
import random
import string
from dataclasses import dataclass

_NAME_ALPHABET = string.ascii_lowercase + string.digits + "_-"
_EXTENSIONS = [
    "", ".txt", ".dat", ".h5", ".nc", ".log", ".bin", ".py", ".c", ".h",
    ".out", ".err", ".ckpt", ".json", ".csv", ".tar", ".gz", ".silo",
]


@dataclass
class Sampler:
    """Bundle of seeded samplers sharing one :class:`random.Random`."""

    seed: int = 0

    def __post_init__(self):
        self.rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    def file_size(self, median: float = 16 * 1024, sigma: float = 2.6) -> int:
        """Log-normal file size in bytes. Defaults give a median of
        16 KiB with a heavy tail into the multi-GB range, matching
        published HPC file-size surveys."""
        return max(0, int(self.rng.lognormvariate(math.log(median), sigma)))

    # ------------------------------------------------------------------
    # Counts
    # ------------------------------------------------------------------
    def fanout(self, mean: float = 3.0, maximum: int = 200) -> int:
        """Number of subdirectories for a directory: geometric-ish with
        an occasional wide directory."""
        if self.rng.random() < 0.02:  # rare very wide directory
            return self.rng.randint(int(mean * 4), maximum)
        # geometric with the given mean, clamped
        p = 1.0 / (1.0 + mean)
        n = 0
        while self.rng.random() > p and n < maximum:
            n += 1
        return n

    def files_in_dir(self, mean: float = 10.0, maximum: int = 100_000) -> int:
        """Files per directory: most directories hold a handful, a few
        hold thousands (the 'large directories are true outliers'
        observation the paper makes about Brindexer's hash shards)."""
        r = self.rng.random()
        if r < 0.01:
            return min(maximum, int(self.rng.paretovariate(0.9) * mean * 20))
        return min(maximum, max(0, int(self.rng.expovariate(1.0 / mean))))

    def zipf_index(self, n: int, skew: float = 1.1) -> int:
        """Pick an index in [0, n) with Zipf-like popularity (index 0
        most popular). Used for owner assignment: a few users own most
        of the namespace."""
        if n <= 1:
            return 0
        # Rejection-free inverse-CDF approximation for bounded Zipf.
        h = (n ** (1.0 - skew) - 1.0) / (1.0 - skew) if skew != 1.0 else math.log(n)
        u = self.rng.random() * h
        if skew != 1.0:
            k = int(((u * (1.0 - skew)) + 1.0) ** (1.0 / (1.0 - skew)))
        else:
            k = int(math.exp(u))
        return min(max(k - 1, 0), n - 1)

    # ------------------------------------------------------------------
    # Names
    # ------------------------------------------------------------------
    def dirname(self) -> str:
        length = self.rng.randint(3, 14)
        return "".join(self.rng.choice(_NAME_ALPHABET) for _ in range(length))

    def filename(self) -> str:
        length = self.rng.randint(3, 20)
        stem = "".join(self.rng.choice(_NAME_ALPHABET) for _ in range(length))
        return stem + self.rng.choice(_EXTENSIONS)

    def xattr_value(self, nbytes: int = 16) -> bytes:
        return bytes(self.rng.getrandbits(8) for _ in range(nbytes))

    # ------------------------------------------------------------------
    # Timestamps
    # ------------------------------------------------------------------
    def age_seconds(self, horizon: int = 3 * 365 * 86400) -> int:
        """How long ago an entry was last modified; exponential, so
        most data is recent but a long stale tail exists (what purge
        policies hunt for)."""
        return min(horizon, int(self.rng.expovariate(1.0 / (horizon / 6))))


@dataclass(frozen=True)
class Population:
    """A user/group population for a namespace.

    ``uids`` and ``gids`` are parallel universes: each uid has a
    primary gid, and ``shared_gids`` are project groups users may
    additionally belong to.
    """

    uids: tuple[int, ...]
    primary_gid: dict[int, int]
    shared_gids: tuple[int, ...]

    @staticmethod
    def make(n_users: int, n_shared_groups: int = 8, base_uid: int = 1000) -> "Population":
        uids = tuple(range(base_uid, base_uid + n_users))
        primary = {uid: uid for uid in uids}  # per-user private group
        shared = tuple(range(100, 100 + n_shared_groups))
        return Population(uids=uids, primary_gid=primary, shared_gids=shared)
