"""Synthetic namespace generation (stand-in for production traces).

The paper's datasets are real production namespaces (and the released
traces are multi-GB); this package generates statistically similar
namespaces at configurable scale, preserving the ownership skew,
permission mixes, and size distributions the experiments exercise.
"""

from .datasets import (
    TABLE1_SCAN_TYPE,
    dataset1,
    dataset2,
    linux_kernel_tree,
    table1_names,
    table1_namespace,
    table1_paper_counts,
)
from .distributions import Population, Sampler
from .namespace import (
    AreaPolicy,
    GeneratedNamespace,
    Layout,
    NamespaceSpec,
    apply_xattrs,
    build_namespace,
)

__all__ = [
    "AreaPolicy",
    "GeneratedNamespace",
    "Layout",
    "NamespaceSpec",
    "Population",
    "Sampler",
    "TABLE1_SCAN_TYPE",
    "apply_xattrs",
    "build_namespace",
    "dataset1",
    "dataset2",
    "linux_kernel_tree",
    "table1_names",
    "table1_namespace",
    "table1_paper_counts",
]
