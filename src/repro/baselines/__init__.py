"""Baseline systems the paper compares GUFI against: the Brindexer
hash-partitioned index (Figs 8, 10) and the classic POSIX metadata
tools over cost-modelled file systems (Figs 1, 9).
"""

from .brindexer import (
    BrindexerBuildResult,
    BrindexerIndex,
    BrindexerQueryResult,
)
from .posix_tools import ToolResult, du_s, find_getfattr, find_ls, find_names

__all__ = [
    "BrindexerBuildResult",
    "BrindexerIndex",
    "BrindexerQueryResult",
    "ToolResult",
    "du_s",
    "find_getfattr",
    "find_ls",
    "find_names",
]
