"""Classic POSIX metadata tools over a (cost-modelled) file system.

These are the Fig 1 and Fig 9 baselines:

* :func:`find_ls` — ``find <top> -ls``: a recursive walk issuing one
  readdir per directory and one (l)stat per entry;
* :func:`du_s` — ``du -s <top>``: the same walk, summing block usage;
* :func:`find_getfattr` — ``find … | xargs getfattr -n <attr>``: walk
  (or use a pre-generated file list) then fetch one attribute per
  file. POSIX offers no "which files have xattrs?" query, so cost is
  proportional to *total* files regardless of how many carry the
  attribute — the asymmetry Fig 9a exposes.

All tools run against a :class:`~repro.fs.mounts.MountedFS`, so every
operation charges the mount's per-op latency to its virtual clock;
results report that modelled time alongside wall time. ``find`` and
``du`` are sequential (they are in reality); ``getfattr`` fan-out via
``xargs -P`` is modelled with a parallel-efficiency divisor.
"""

from __future__ import annotations

import posixpath
import time
from dataclasses import dataclass

from repro.fs.errors import FSError, PermissionDenied
from repro.fs.inode import FileType
from repro.fs.mounts import MountedFS
from repro.fs.permissions import ROOT, Credentials


@dataclass
class ToolResult:
    """Outcome of one tool run."""

    entries_seen: int
    matches: int
    modeled_time: float  # seconds on the modelled file system
    wall_time: float  # seconds the in-memory simulation took
    bytes_total: int = 0


def _walk(
    mount: MountedFS, top: str, creds: Credentials
) -> tuple[list[tuple[str, object]], int]:
    """Sequential recursive descent: readdir + lstat per entry,
    exactly the syscall pattern ``find`` generates. Returns
    ((path, stat) pairs, directories the credentials could not read
    — which find reports as 'Permission denied' and skips)."""
    out: list[tuple[str, object]] = []
    denied = 0
    stack = [posixpath.normpath(top)]
    while stack:
        d = stack.pop()
        try:
            st = mount.lstat(d, creds)
        except FSError:
            denied += 1
            continue
        out.append((d, st))
        try:
            entries = mount.readdir(d, creds)
        except PermissionDenied:
            denied += 1
            continue
        except FSError:
            continue
        for e in entries:
            child = posixpath.join(d, e.name)
            if e.ftype is FileType.DIRECTORY:
                stack.append(child)
            else:
                try:
                    cst = mount.lstat(child, creds)
                except FSError:
                    denied += 1
                    continue
                out.append((child, cst))
    return out, denied


def find_ls(
    mount: MountedFS, top: str = "/", creds: Credentials = ROOT
) -> ToolResult:
    """``find <top> -ls``: list every entry with its attributes."""
    t0_wall = time.monotonic()
    t0_model = mount.clock.now
    listed, _ = _walk(mount, top, creds)
    return ToolResult(
        entries_seen=len(listed),
        matches=len(listed),
        modeled_time=mount.clock.now - t0_model,
        wall_time=time.monotonic() - t0_wall,
    )


def du_s(
    mount: MountedFS, top: str = "/", creds: Credentials = ROOT
) -> ToolResult:
    """``du -s <top>``: total bytes under the tree."""
    t0_wall = time.monotonic()
    t0_model = mount.clock.now
    listed, _ = _walk(mount, top, creds)
    total = sum(st.st_size for _, st in listed)
    return ToolResult(
        entries_seen=len(listed),
        matches=len(listed),
        modeled_time=mount.clock.now - t0_model,
        wall_time=time.monotonic() - t0_wall,
        bytes_total=total,
    )


def find_names(
    mount: MountedFS,
    top: str = "/",
    name_substring: str | None = None,
    creds: Credentials = ROOT,
) -> ToolResult:
    """``find <top> -name '*substr*'``: the interactive single-name
    search §II motivates (a user hunting one file in a huge subtree)."""
    t0_wall = time.monotonic()
    t0_model = mount.clock.now
    listed, _ = _walk(mount, top, creds)
    matches = [
        p for p, _ in listed
        if name_substring is None or name_substring in posixpath.basename(p)
    ]
    return ToolResult(
        entries_seen=len(listed),
        matches=len(matches),
        modeled_time=mount.clock.now - t0_model,
        wall_time=time.monotonic() - t0_wall,
    )


def find_getfattr(
    mount: MountedFS,
    top: str = "/",
    attr_name: str = "user.ext",
    value_substring: str | None = None,
    creds: Credentials = ROOT,
    file_list: list[str] | None = None,
    xargs_parallel: int = 1,
    parallel_efficiency: float = 0.85,
) -> ToolResult:
    """Fig 9's XFS baselines.

    Without ``file_list``: ``find … -type f -o -type l`` walks the
    tree, then ``getfattr`` runs per file. With ``file_list`` (the
    paper's pre-generated list variant): the walk is skipped and only
    the per-file getfattr cost remains. Either way every file pays a
    getxattr round trip — there is no POSIX call to select files
    *with* attributes.

    ``xargs_parallel`` models ``xargs -P N``: the getfattr phase's
    modelled time divides by the usual imperfect-speedup factor.
    """
    t0_wall = time.monotonic()
    walk_model = 0.0
    if file_list is None:
        t0_model = mount.clock.now
        listed, _ = _walk(mount, top, creds)
        file_list = [
            p for p, st in listed
            if (st.st_mode & 0o170000) != 0o040000  # not a directory
        ]
        walk_model = mount.clock.now - t0_model

    t0_model = mount.clock.now
    matches = 0
    for path in file_list:
        try:
            # getfattr -h: never follow symlinks (the paper's flag)
            value = mount.getxattr(path, attr_name, creds, follow=False)
        except FSError:
            continue
        if value_substring is None or value_substring.encode() in value:
            matches += 1
    fattr_model = mount.clock.now - t0_model
    if xargs_parallel > 1:
        speedup = 1.0 + (xargs_parallel - 1) * parallel_efficiency
        fattr_model /= speedup
    return ToolResult(
        entries_seen=len(file_list),
        matches=matches,
        modeled_time=walk_model + fattr_model,
        wall_time=time.monotonic() - t0_wall,
    )
