"""Brindexer baseline (Paul et al., CCGRID'20), built from the paper's
description in §IV/§V.

Brindexer is the state-of-the-art comparator in Figs 8 and 10. Its
design differs from GUFI in exactly the ways the experiments probe:

* **hash partitioning** — each entry is routed to one of (typically
  256) SQLite databases by a hash of its *parent directory*, so large
  directories produce outlier shards (Fig 8c's imbalance);
* **flattened schema** — every row stores its full parent path,
  because the hierarchy is not preserved on disk (Fig 8b's per-entry
  space overhead);
* **no summary/tsummary tables** — aggregate queries scan every row;
* **no permission enforcement** — the paper is explicit that
  Brindexer "currently cannot enforce standard user-oriented
  permission access control": a per-user query is just a ``WHERE
  uid = ?`` filter that still reads the entire index (Fig 10b);
* **thread-per-database queries** with a parent merge, which we
  reproduce with the same thread pool the GUFI engine uses so the two
  systems' measurements are comparable.
"""

from __future__ import annotations

import hashlib
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.scan.trace import DirStanza
from repro.scan.walker import ParallelTreeWalker, WalkStats
from repro.sim.blktrace import IOTracer

# Schema parity with GUFI's entries table (an index answering the same
# queries must hold the same attributes) plus the flattened layout's
# defining cost: every row carries its full parent path.
_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    parent      TEXT,
    name        TEXT,
    type        TEXT,
    inode       INTEGER,
    mode        INTEGER,
    nlink       INTEGER,
    uid         INTEGER,
    gid         INTEGER,
    size        INTEGER,
    blksize     INTEGER,
    blocks      INTEGER,
    atime       INTEGER,
    mtime       INTEGER,
    ctime       INTEGER,
    linkname    TEXT,
    xattr_names TEXT
);
"""


def _shard_of(parent: str, n_shards: int) -> int:
    """Stable hash of the parent directory path → shard id."""
    digest = hashlib.md5(parent.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little") % n_shards


def _row(rec) -> tuple:
    from repro.core.schema import pack_xattr_names

    return (
        rec.parent, rec.name, rec.ftype, rec.ino, rec.mode, rec.nlink,
        rec.uid, rec.gid, rec.size, rec.blksize, rec.blocks, rec.atime,
        rec.mtime, rec.ctime, rec.linkname, pack_xattr_names(rec.xattrs),
    )


@dataclass
class BrindexerQueryResult:
    rows: list[tuple]
    elapsed: float
    shards_read: int
    walk_stats: WalkStats | None = None


@dataclass
class BrindexerBuildResult:
    seconds: float
    rows_inserted: int


class BrindexerIndex:
    """A flat, hash-partitioned metadata index."""

    def __init__(self, root: Path | str, n_shards: int = 256):
        self.root = Path(root)
        self.n_shards = n_shards

    def shard_path(self, i: int) -> Path:
        return self.root / f"shard_{i:04d}.db"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        stanzas: list[DirStanza],
        root: Path | str,
        n_shards: int = 256,
    ) -> tuple["BrindexerIndex", BrindexerBuildResult]:
        """Route every record (directories included, so directory-size
        queries are answerable) to its parent-hash shard."""
        t0 = time.monotonic()
        idx = cls(root, n_shards)
        idx.root.mkdir(parents=True, exist_ok=True)
        buckets: list[list[tuple]] = [[] for _ in range(n_shards)]
        n = 0
        for stanza in stanzas:
            d = stanza.directory
            buckets[_shard_of(d.parent, n_shards)].append(_row(d))
            n += 1
            shard = _shard_of(d.path, n_shards)
            for e in stanza.entries:
                buckets[shard].append(_row(e))
                n += 1
        for i, rows in enumerate(buckets):
            conn = sqlite3.connect(idx.shard_path(i), isolation_level=None)
            try:
                conn.execute("PRAGMA page_size = 4096")
                conn.execute("PRAGMA journal_mode = MEMORY")
                conn.execute("PRAGMA synchronous = OFF")
                conn.execute(_SCHEMA)
                conn.execute("BEGIN")
                conn.executemany(
                    "INSERT INTO entries VALUES "
                    "(?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
                    rows,
                )
                conn.execute("COMMIT")
            finally:
                conn.close()
        return idx, BrindexerBuildResult(
            seconds=time.monotonic() - t0, rows_inserted=n
        )

    # ------------------------------------------------------------------
    # Statistics (Fig 8b)
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        return sum(
            self.shard_path(i).stat().st_size
            for i in range(self.n_shards)
            if self.shard_path(i).exists()
        )

    def shard_sizes(self) -> list[int]:
        return sorted(
            self.shard_path(i).stat().st_size
            for i in range(self.n_shards)
            if self.shard_path(i).exists()
        )

    def total_rows(self) -> int:
        total = 0
        for i in range(self.n_shards):
            conn = sqlite3.connect(self.shard_path(i))
            try:
                (n,) = conn.execute("SELECT COUNT(*) FROM entries").fetchone()
                total += n
            finally:
                conn.close()
        return total

    # ------------------------------------------------------------------
    # Queries: thread per shard, parent merges (the Brindexer model).
    # ------------------------------------------------------------------
    def query(
        self,
        shard_sql: str,
        params: tuple = (),
        nthreads: int | None = None,
        tracer: IOTracer | None = None,
    ) -> BrindexerQueryResult:
        """Run ``shard_sql`` against every shard concurrently and
        concatenate the results. There is no permission gating: every
        shard is always read in full (the paper's Fig 10b point)."""
        nthreads = nthreads or self.n_shards
        rows: list[tuple] = []
        lock = threading.Lock()

        def expand(i: int) -> list:
            path = self.shard_path(i)
            if tracer is not None:
                tracer.record(str(path), path.stat().st_size)
            conn = sqlite3.connect(
                f"file:{path}?mode=ro&immutable=1", uri=True
            )
            try:
                got = conn.execute(shard_sql, params).fetchall()
            finally:
                conn.close()
            if got:
                with lock:
                    rows.extend(got)
            return []

        t0 = time.monotonic()
        walker = ParallelTreeWalker(min(nthreads, self.n_shards))
        stats = walker.walk(range(self.n_shards), expand)
        elapsed = time.monotonic() - t0
        if stats.errors:
            _, exc = stats.errors[0]
            raise RuntimeError(f"brindexer query failed: {exc}") from exc
        return BrindexerQueryResult(
            rows=rows,
            elapsed=elapsed,
            shards_read=self.n_shards,
            walk_stats=stats,
        )

    # ------------------------------------------------------------------
    # The paper's four macro-benchmark queries (root or uid-filtered).
    # ------------------------------------------------------------------
    def list_names(self, uid: int | None = None, **kw) -> BrindexerQueryResult:
        sql = "SELECT name FROM entries WHERE type != 'd'"
        if uid is not None:
            sql += f" AND uid = {int(uid)}"
        return self.query(sql, **kw)

    def dir_sizes(self, uid: int | None = None, **kw) -> BrindexerQueryResult:
        """Directory name+size. Without summary tables this needs a
        per-directory aggregate over all entries — a GROUP BY across
        the full index (why GUFI wins 8.2× on query 2)."""
        sql = (
            "SELECT parent, TOTAL(size) FROM entries"
            + (f" WHERE uid = {int(uid)}" if uid is not None else "")
            + " GROUP BY parent"
        )
        return self.query(sql, **kw)

    def du(self, uid: int | None = None, **kw) -> BrindexerQueryResult:
        """Space used: a full scan — Brindexer has no summary or
        tree-summary shortcut, so queries 3 and 4 cost the same."""
        sql = "SELECT TOTAL(size) FROM entries"
        if uid is not None:
            sql += f" WHERE uid = {int(uid)}"
        result = self.query(sql, **kw)
        total = sum(r[0] or 0 for r in result.rows)
        result.rows = [(total,)]
        return result
