"""The asyncio serving layer: GUFI as a multi-tenant service.

The paper's access model is "ssh to the server and run a tool"
(§III-A5's web portal is a thin wrapper over the same synchronous
calls). :class:`~repro.core.server.GUFIServer` reproduces that model
and stays the synchronous core; this package layers the *service*
shape a production deployment needs on top of it:

* :mod:`repro.serve.app` — :class:`GUFIApp`, a stdlib-only
  ASGI-compatible application: authenticates via
  :class:`~repro.core.server.IdentityProvider`, dispatches tool calls
  to the credential-scoped warm-session LRU through a bounded
  worker-thread executor, returns JSON;
* :mod:`repro.serve.qos` — the QoS machinery: per-tenant token-bucket
  rate limits (:class:`TokenBucket`), per-tenant concurrency quotas
  (:class:`TenantQuota`), and global admission control with a bounded
  wait queue and load shedding (:class:`AdmissionController`);
* :mod:`repro.serve.cursors` — opaque HMAC-signed resumption cursors
  for cross-request result paging (tenant-bound, staleness-proof);
* :mod:`repro.serve.codec` — JSON-safe row/result encoding and the
  canonical row digest cursors validate against;
* :mod:`repro.serve.http` — a minimal asyncio HTTP/1.1 bridge so the
  app serves real sockets without any third-party server;
* :mod:`repro.serve.client` — an in-process ASGI client (tests and
  benchmarks drive the full request path without sockets).

Deadlines are *enforced*, not just observed: each request carries a
:class:`~repro.core.engine.CancelToken` threaded through the engine's
traversal loop, so a query past its deadline stops walking the tree
within one directory instead of finishing late (the missing piece
that turns :class:`~repro.obs.slowlog.SlowQueryLog` thresholds into
policy).

Serving metrics (the ``gufi_serve_*`` series, exported at
``/metrics`` in Prometheus text): ``gufi_serve_requests_total``,
``gufi_serve_rejected_total``, ``gufi_serve_shed_total``,
``gufi_serve_timeouts_total``, ``gufi_serve_queue_depth``,
``gufi_serve_request_seconds``.
"""

from .app import GUFIApp
from .client import ASGIClient, ClientResponse
from .codec import canonical_json, jsonable, rows_digest
from .cursors import CursorError, CursorExpired, decode_cursor, encode_cursor
from .http import serve
from .qos import (
    AdmissionController,
    LoadShed,
    QuotaExceeded,
    RateLimited,
    TenantQuota,
    TokenBucket,
)

__all__ = [
    "ASGIClient",
    "AdmissionController",
    "ClientResponse",
    "CursorError",
    "CursorExpired",
    "GUFIApp",
    "LoadShed",
    "QuotaExceeded",
    "RateLimited",
    "TenantQuota",
    "TokenBucket",
    "canonical_json",
    "decode_cursor",
    "encode_cursor",
    "jsonable",
    "rows_digest",
    "serve",
]
