"""A minimal asyncio HTTP/1.1 bridge for the ASGI app.

The serving subsystem must be runnable without any third-party
server, so this module speaks just enough HTTP/1.1 to put
:class:`~repro.serve.app.GUFIApp` on a socket: request-line +
headers, a ``Content-Length`` body (no chunked uploads — the JSON
invoke bodies are small), keep-alive by default, and a
``Content-Length``-framed response. Anything fancier (TLS, HTTP/2,
chunked streaming) belongs to a real ASGI server in front; the app
itself is standard ASGI, so ``uvicorn repro...:app`` works unchanged
where one is available.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable

#: request body bytes we will buffer (invoke bodies are small JSON)
MAX_BODY = 8 * 1024 * 1024
#: header-section bound (one line or 100 of them, this is plenty)
MAX_HEADER_BYTES = 64 * 1024

ASGIApp = Callable[[dict, Any, Any], Awaitable[None]]


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, list[tuple[bytes, bytes]], bytes] | None:
    """One parsed request ``(method, path, headers, body)``, or None
    on EOF / malformed input (the connection is then closed)."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line or len(line) > MAX_HEADER_BYTES:
        return None
    try:
        method, target, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        return None
    headers: list[tuple[bytes, bytes]] = []
    total = 0
    while True:
        hline = await reader.readline()
        total += len(hline)
        if total > MAX_HEADER_BYTES:
            return None
        if hline in (b"\r\n", b"\n", b""):
            break
        name, _, value = hline.partition(b":")
        headers.append((name.strip().lower(), value.strip()))
    length = 0
    for name, value in headers:
        if name == b"content-length":
            try:
                length = int(value)
            except ValueError:
                return None
    if length < 0 or length > MAX_BODY:
        return None
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method, path, headers, body


async def _respond(
    app: ASGIApp,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    headers: list[tuple[bytes, bytes]],
    body: bytes,
    keep_alive: bool,
) -> None:
    scope = {
        "type": "http",
        "asgi": {"version": "3.0"},
        "http_version": "1.1",
        "method": method,
        "path": path,
        "raw_path": path.encode("latin-1"),
        "query_string": b"",
        "headers": headers,
    }
    received = False

    async def receive() -> dict:
        nonlocal received
        if received:
            return {"type": "http.disconnect"}
        received = True
        return {"type": "http.request", "body": body, "more_body": False}

    async def send(message: dict) -> None:
        if message["type"] == "http.response.start":
            status = message["status"]
            writer.write(f"HTTP/1.1 {status} \r\n".encode("latin-1"))
            for name, value in message.get("headers", []):
                writer.write(name + b": " + value + b"\r\n")
            writer.write(
                b"connection: keep-alive\r\n"
                if keep_alive
                else b"connection: close\r\n"
            )
            writer.write(b"\r\n")
        elif message["type"] == "http.response.body":
            writer.write(message.get("body", b""))

    await app(scope, receive, send)
    await writer.drain()


async def _handle_connection(
    app: ASGIApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            request = await _read_request(reader)
            if request is None:
                break
            method, path, headers, body = request
            keep_alive = not any(
                n == b"connection" and v.lower() == b"close"
                for n, v in headers
            )
            await _respond(
                app, writer, method, path, headers, body, keep_alive
            )
            if not keep_alive:
                break
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


async def serve(
    app: ASGIApp,
    host: str = "127.0.0.1",
    port: int = 8080,
    ready: "asyncio.Event | None" = None,
) -> None:
    """Serve ``app`` forever on ``host:port`` (cancel to stop).

    ``ready`` is set once the listening socket is bound (tests and
    the CLI use it to sequence client startup); the actual bound port
    is stashed on it as ``ready.port``, so ``port=0`` (ephemeral) is
    usable from tests."""
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(app, r, w), host, port
    )
    if ready is not None:
        ready.port = server.sockets[0].getsockname()[1]
        ready.set()
    async with server:
        await server.serve_forever()
