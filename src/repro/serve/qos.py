"""QoS primitives: rate limits, tenant quotas, admission control.

Robinhood's experience with billions-of-entry namespaces (PAPERS.md)
is that shared metadata services die without throttling: one tenant's
flood queues behind everyone's requests until every response is late.
The serving layer therefore rejects early and cheaply, in three
rings, before a request ever reaches the engine:

1. **per-tenant token bucket** (:class:`TokenBucket`) — sustained
   request *rate* per tenant, with a burst allowance; over-rate
   requests are rejected immediately with a retry-after hint;
2. **per-tenant concurrency quota** (:class:`TenantQuota`) — how many
   requests one tenant may have in flight at once, so a single tenant
   cannot occupy every executor slot even while under its rate;
3. **global admission control** (:class:`AdmissionController`) — a
   fixed number of execution slots plus a *bounded* wait queue.
   Queue-full and deadline-exceeded-while-queued requests are shed
   (HTTP 503 with retry-after) instead of piling on: an unbounded
   queue converts overload into unbounded latency for every tenant
   (queue collapse — ``benchmarks/bench_serving.py`` measures exactly
   this), a bounded one converts it into fast, honest rejections.

The bucket and quota are thread-safe (the sync server may share
them); the admission controller is single-event-loop asyncio, which
is what makes it lock-free — state mutations never cross an
``await``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from typing import Callable

from repro import obs


class RateLimited(Exception):
    """Per-tenant request rate exceeded; retry after ``retry_after``
    seconds."""

    def __init__(self, tenant: str, retry_after: float) -> None:
        super().__init__(
            f"rate limit exceeded for {tenant!r}; "
            f"retry in {retry_after:.2f}s"
        )
        self.tenant = tenant
        self.retry_after = retry_after


class QuotaExceeded(Exception):
    """Per-tenant concurrency quota exhausted."""

    def __init__(self, tenant: str, limit: int) -> None:
        super().__init__(
            f"{tenant!r} already has {limit} requests in flight"
        )
        self.tenant = tenant
        self.limit = limit


class LoadShed(Exception):
    """Admission control rejected the request (``reason`` is
    ``queue_full`` or ``deadline``); retry after ``retry_after``."""

    def __init__(self, reason: str, retry_after: float) -> None:
        super().__init__(f"load shed ({reason})")
        self.reason = reason
        self.retry_after = retry_after


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second refill up to
    ``burst``; each request takes one token.

    :meth:`acquire` never sleeps — it returns 0.0 on admission or the
    seconds until a token will exist (the retry-after hint). The
    clock is injectable so tests drive time deterministically.
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated", "_lock", "_clock")

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, rate)
        self._tokens = self.burst
        self._clock = clock
        self._updated = clock()
        self._lock = threading.Lock()

    def acquire(self, n: float = 1.0) -> float:
        """Take ``n`` tokens. Returns 0.0 (admitted) or the seconds
        until ``n`` tokens will have accumulated (rejected)."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated) * self.rate
            )
            self._updated = now
            if self._tokens >= n:
                self._tokens -= n
                return 0.0
            return (n - self._tokens) / self.rate


class TenantQuota:
    """Per-tenant in-flight request counter with a shared limit.

    ``limit=None`` disables the quota (every acquire succeeds)."""

    def __init__(self, limit: int | None) -> None:
        if limit is not None and limit <= 0:
            raise ValueError("limit must be > 0 (or None to disable)")
        self.limit = limit
        self._inflight: dict[str, int] = {}
        self._lock = threading.Lock()

    def acquire(self, tenant: str) -> None:
        """Claim a slot for ``tenant`` or raise :class:`QuotaExceeded`."""
        if self.limit is None:
            return
        with self._lock:
            n = self._inflight.get(tenant, 0)
            if n >= self.limit:
                raise QuotaExceeded(tenant, self.limit)
            self._inflight[tenant] = n + 1

    def release(self, tenant: str) -> None:
        if self.limit is None:
            return
        with self._lock:
            n = self._inflight.get(tenant, 0) - 1
            if n > 0:
                self._inflight[tenant] = n
            else:
                self._inflight.pop(tenant, None)

    def inflight(self, tenant: str) -> int:
        with self._lock:
            return self._inflight.get(tenant, 0)


class AdmissionController:
    """``max_inflight`` execution slots plus a bounded FIFO wait queue.

    Asyncio-only: every method runs on the event loop, so there is no
    lock — no state mutation crosses an ``await``. A request past the
    slot count waits in the queue (its wait is bounded by its own
    deadline); a request past the *queue* bound is shed immediately.
    Slot handoff is direct: :meth:`release` wakes the oldest waiter
    and transfers the slot without the in-flight count ever dipping,
    so FIFO order is exact and no late arrival can steal a slot from
    the queue head.

    ``retry_after`` scales with queue depth at rejection time — a
    deeper queue means a longer suggested backoff — which is what
    keeps shed-and-retry traffic from re-arriving in lockstep.
    """

    def __init__(
        self,
        max_inflight: int,
        queue_limit: int,
        retry_after: float = 0.5,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be > 0")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.max_inflight = max_inflight
        self.queue_limit = queue_limit
        self.retry_after = retry_after
        self.inflight = 0
        self._waiters: deque[asyncio.Future] = deque()
        #: requests shed, by reason (mirrored into obs when enabled)
        self.shed = {"queue_full": 0, "deadline": 0}

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    def _retry_hint(self) -> float:
        return self.retry_after * (1.0 + len(self._waiters) / max(
            1, self.queue_limit
        ))

    def _gauge(self) -> None:
        rec = obs.metrics()
        if rec.enabled:
            rec.gauge("gufi_serve_queue_depth", float(len(self._waiters)))

    def _shed(self, reason: str) -> LoadShed:
        self.shed[reason] += 1
        rec = obs.metrics()
        if rec.enabled:
            rec.counter("gufi_serve_shed_total", reason=reason)
        return LoadShed(reason, self._retry_hint())

    async def acquire(self, timeout: float | None = None) -> None:
        """Claim an execution slot, queuing up to ``timeout`` seconds.

        Raises :class:`LoadShed` when the queue is full on arrival
        (``queue_full``) or the deadline lapses while queued
        (``deadline``)."""
        if self.inflight < self.max_inflight and not self._waiters:
            self.inflight += 1
            self._gauge()
            return
        if len(self._waiters) >= self.queue_limit:
            raise self._shed("queue_full")
        if timeout is not None and timeout <= 0:
            raise self._shed("deadline")
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        self._waiters.append(fut)
        self._gauge()
        handle = None
        if timeout is not None:
            handle = loop.call_later(timeout, self._expire, fut)
        try:
            # a granted future means the releaser already transferred
            # its slot to us (inflight unchanged); an expired one
            # raises LoadShed directly
            await fut
        except asyncio.CancelledError:
            # the request was torn down while queued (client gone):
            # give back whatever we hold — a granted slot, or our
            # queue position
            if fut.done() and not fut.cancelled() and fut.exception() is None:
                self.release()
            else:
                self._discard(fut)
            raise
        finally:
            if handle is not None:
                handle.cancel()
            self._gauge()

    def _expire(self, fut: asyncio.Future) -> None:
        if not fut.done():
            self._discard(fut)
            fut.set_exception(self._shed("deadline"))

    def _discard(self, fut: asyncio.Future) -> None:
        try:
            self._waiters.remove(fut)
        except ValueError:
            pass

    def release(self) -> None:
        """Return a slot: hand it to the oldest live waiter, or free it."""
        while self._waiters:
            fut = self._waiters.popleft()
            if not fut.done():
                fut.set_result(None)
                self._gauge()
                return
        self.inflight = max(0, self.inflight - 1)
