"""JSON codecs for the serving layer.

The engine's rows are tuples of whatever SQLite produced — ints,
floats, text, ``None``, and occasionally ``bytes`` (xattr blobs).
JSON has no bytes type, so :func:`jsonable` maps them through a
tagged base64 envelope (``{"__bytes__": "<b64>"}``) instead of
guessing an encoding; everything else converts structurally (tuples
to lists, non-string dict keys to strings — ``space_by_user`` returns
``dict[int, int]``).

:func:`canonical_json` is the *stable* serialization (sorted keys,
no whitespace) that cursor payloads and the row digest are built
from: two equal values must serialize to the same bytes or cursor
validation would produce false expiries.
"""

from __future__ import annotations

import base64
import hashlib
import json
from typing import Any


def jsonable(obj: Any) -> Any:
    """``obj`` converted to JSON-representable types, recursively."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, bytes):
        return {"__bytes__": base64.b64encode(obj).decode("ascii")}
    if isinstance(obj, (list, tuple)):
        return [jsonable(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(jsonable(v) for v in obj)
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    # last resort: the repr is at least stable for simple value types
    return str(obj)


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text of ``obj`` (sorted keys, compact)."""
    return json.dumps(
        jsonable(obj), sort_keys=True, separators=(",", ":")
    )


def rows_digest(rows: list[tuple]) -> str:
    """A short stable digest of a full result row set.

    Cursors carry it so a replayed page request can prove the result
    it is paging is byte-identical to the one the cursor was issued
    against — any index change between pages flips the digest and the
    cursor expires cleanly instead of serving stale (or shifted)
    rows."""
    h = hashlib.sha256()
    for row in rows:
        h.update(canonical_json(row).encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()[:32]
