"""An in-process ASGI client: drive the app without sockets.

Tests and benchmarks need hundreds of concurrent requests through
the *full* request path — auth, QoS rings, executor, cursors — but
none of that requires a TCP connection: ASGI is just an async
callable. :class:`ASGIClient` builds the scope, feeds the body, and
collects the response, so a stress test is ``asyncio.gather`` over
plain coroutines and measures the serving layer rather than loopback
socket throughput.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any


@dataclass
class ClientResponse:
    """One collected ASGI response."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")


class ASGIClient:
    """Minimal in-process client for an ASGI application."""

    def __init__(self, app: Any) -> None:
        self.app = app

    async def request(
        self,
        method: str,
        path: str,
        user: str | None = None,
        json_body: Any | None = None,
        headers: dict[str, str] | None = None,
    ) -> ClientResponse:
        body = b""
        hdrs: list[tuple[bytes, bytes]] = []
        if user is not None:
            hdrs.append((b"x-gufi-user", user.encode("latin-1")))
        if json_body is not None:
            body = json.dumps(json_body).encode("utf-8")
            hdrs.append((b"content-type", b"application/json"))
        for name, value in (headers or {}).items():
            hdrs.append(
                (name.lower().encode("latin-1"), value.encode("latin-1"))
            )
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method,
            "path": path,
            "raw_path": path.encode("latin-1"),
            "query_string": b"",
            "headers": hdrs,
        }
        sent = False

        async def receive() -> dict:
            nonlocal sent
            if sent:
                return {"type": "http.disconnect"}
            sent = True
            return {"type": "http.request", "body": body, "more_body": False}

        response = ClientResponse(status=500)
        chunks: list[bytes] = []

        async def send(message: dict) -> None:
            if message["type"] == "http.response.start":
                response.status = message["status"]
                response.headers = {
                    k.decode("latin-1"): v.decode("latin-1")
                    for k, v in message.get("headers", [])
                }
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))

        await self.app(scope, receive, send)
        response.body = b"".join(chunks)
        return response

    async def invoke(
        self,
        user: str,
        tool: str | None = None,
        start: str = "/",
        args: dict | None = None,
        page_size: int | None = None,
        cursor: str | None = None,
        deadline_ms: float | None = None,
    ) -> ClientResponse:
        """Shorthand for ``POST /v1/invoke``."""
        req: dict[str, Any] = {"start": start}
        if tool is not None:
            req["tool"] = tool
        if args is not None:
            req["args"] = args
        if page_size is not None:
            req["page_size"] = page_size
        if cursor is not None:
            req["cursor"] = cursor
        if deadline_ms is not None:
            req["deadline_ms"] = deadline_ms
        return await self.request(
            "POST", "/v1/invoke", user=user, json_body=req
        )
