"""`GUFIApp` — the ASGI application over the synchronous server.

Request lifecycle (one ``POST /v1/invoke``):

1. **authenticate** — the ``x-gufi-user`` header names the tenant;
   the :class:`~repro.core.server.IdentityProvider` resolves it (and
   :class:`~repro.core.server.GUFIServer` re-resolves per §III-A5 at
   dispatch, so the two can never disagree for long);
2. **QoS rings** (cheapest first, see :mod:`repro.serve.qos`):
   per-tenant token bucket → per-tenant concurrency quota → global
   admission control with its bounded wait queue; every rejection is
   a structured JSON error with ``retry_after``;
3. **execute** — the tool call runs on a bounded worker-thread
   executor (as many workers as admission slots, so the executor
   never queues), carrying a :class:`~repro.core.engine.CancelToken`
   armed with the request deadline: traversal observes it once per
   directory and a late query dies mid-walk with a structured
   ``deadline_exceeded`` error instead of finishing late;
4. **page** — row-producing tools (``query``/``find``/
   ``xattr_search``) collect into a
   :class:`~repro.core.engine.PaginatedSink` and, when the client
   asked for pages, the response carries an opaque resumption cursor
   (:mod:`repro.serve.cursors`). A cursor replay re-runs the query —
   O(rows) against the materialized
   :class:`~repro.core.engine.ResultCache` — and serves the next
   page only if the full row digest still matches; otherwise the
   cursor has expired and the client restarts, never seeing rows
   that shifted underneath it.

``GET /metrics`` serves the process metrics in Prometheus text
(:func:`repro.obs.export.to_prometheus`); ``GET /healthz`` is the
load-balancer probe. The app is stdlib-only and callable in-process
(:class:`repro.serve.client.ASGIClient`) or over sockets
(:func:`repro.serve.http.serve`).
"""

from __future__ import annotations

import asyncio
import json
import secrets
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any

from repro import obs
from repro.obs.export import to_prometheus

from repro.core.engine import (
    CancelToken,
    PaginatedSink,
    QueryCancelled,
    QueryPermissionError,
    QueryResult,
    QuerySpec,
)
from repro.core.server import (
    AuthenticationError,
    GUFIServer,
    ToolNotAllowed,
)
from repro.core.tools import FindFilters

from .codec import canonical_json, jsonable, rows_digest
from .cursors import (
    CursorError,
    CursorExpired,
    decode_cursor,
    encode_cursor,
)
from .qos import (
    AdmissionController,
    LoadShed,
    QuotaExceeded,
    TenantQuota,
    TokenBucket,
)

#: tools whose result is a pageable row set (they accept ``sink=``)
_ROW_TOOLS = frozenset({"query", "find", "xattr_search"})

#: QuerySpec fields a remote caller may set. ``output_prefix`` is
#: deliberately absent: it writes files on the server.
_SPEC_FIELDS = frozenset(
    {"I", "T", "S", "E", "J", "G", "xattrs", "t_no_prune"}
)


class _HTTPError(Exception):
    """Internal: mapped straight to a structured JSON error response."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after


class GUFIApp:
    """The serving layer's ASGI application (see module docstring).

    One instance fronts one :class:`~repro.core.server.GUFIServer`.
    QoS knobs:

    ``max_inflight``
        executor slots — queries running concurrently (and the worker
        thread count);
    ``queue_limit``
        admission wait-queue bound; arrivals past it are shed;
    ``tenant_qps`` / ``tenant_burst``
        per-tenant token-bucket rate (None disables rate limiting);
    ``tenant_concurrency``
        per-tenant in-flight cap (None disables);
    ``deadline_s``
        default per-request deadline; a request may *lower* it via
        ``deadline_ms`` but never raise it past this cap.
    """

    def __init__(
        self,
        server: GUFIServer,
        max_inflight: int = 4,
        queue_limit: int = 16,
        tenant_qps: float | None = None,
        tenant_burst: float | None = None,
        tenant_concurrency: int | None = None,
        deadline_s: float = 30.0,
        cursor_secret: bytes | None = None,
        retry_after: float = 0.5,
    ) -> None:
        self.server = server
        self.deadline_s = deadline_s
        self.admission = AdmissionController(
            max_inflight, queue_limit, retry_after=retry_after
        )
        self.quota = TenantQuota(tenant_concurrency)
        self.tenant_qps = tenant_qps
        self.tenant_burst = tenant_burst
        self._buckets: dict[str, TokenBucket] = {}
        self._secret = cursor_secret or secrets.token_bytes(32)
        self.executor = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="gufi-serve"
        )

    def close(self) -> None:
        """Stop the executor (in-flight requests finish first)."""
        self.executor.shutdown(wait=True)

    def __enter__(self) -> "GUFIApp":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # ASGI surface
    # ------------------------------------------------------------------
    async def __call__(self, scope: dict, receive: Any, send: Any) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - ws etc.
            raise RuntimeError(f"unsupported scope {scope['type']!r}")
        status, content_type, body = await self._handle(scope, receive)
        await send(
            {
                "type": "http.response.start",
                "status": status,
                "headers": [
                    (b"content-type", content_type),
                    (b"content-length", str(len(body)).encode("ascii")),
                ],
            }
        )
        await send({"type": "http.response.body", "body": body})

    @staticmethod
    async def _lifespan(receive: Any, send: Any) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _handle(
        self, scope: dict, receive: Any
    ) -> tuple[int, bytes, bytes]:
        method = scope.get("method", "GET")
        path = scope.get("path", "/")
        if method == "GET" and path == "/healthz":
            return self._json(200, {"ok": True})
        if method == "GET" and path == "/metrics":
            text = to_prometheus(obs.snapshot())
            return 200, b"text/plain; version=0.0.4", text.encode("utf-8")
        if method == "POST" and path == "/v1/invoke":
            body = await self._read_body(receive)
            headers = {
                k.decode("latin-1").lower(): v.decode("latin-1")
                for k, v in scope.get("headers", [])
            }
            try:
                payload = await self._invoke(headers, body)
            except _HTTPError as exc:
                return self._error_response(exc)
            except Exception as exc:  # noqa: BLE001 - ASGI boundary
                return self._error_response(
                    _HTTPError(
                        500, "internal", f"{type(exc).__name__}: {exc}"
                    )
                )
            return self._json(200, payload)
        return self._json(
            404,
            {
                "ok": False,
                "error": {
                    "code": "not_found",
                    "message": f"no route {method} {path}",
                },
            },
        )

    @staticmethod
    async def _read_body(receive: Any) -> bytes:
        chunks: list[bytes] = []
        while True:
            message = await receive()
            if message["type"] != "http.request":  # pragma: no cover
                break
            chunks.append(message.get("body", b""))
            if not message.get("more_body", False):
                break
        return b"".join(chunks)

    @staticmethod
    def _json(status: int, payload: dict) -> tuple[int, bytes, bytes]:
        body = json.dumps(payload).encode("utf-8")
        return status, b"application/json", body

    @classmethod
    def _error_response(cls, exc: _HTTPError) -> tuple[int, bytes, bytes]:
        err: dict[str, Any] = {
            "ok": False,
            "error": {"code": exc.code, "message": exc.message},
        }
        if exc.retry_after is not None:
            err["retry_after"] = round(exc.retry_after, 3)
        return cls._json(exc.status, err)

    # ------------------------------------------------------------------
    # The invoke pipeline
    # ------------------------------------------------------------------
    async def _invoke(self, headers: dict, body: bytes) -> dict:
        user = headers.get("x-gufi-user")
        if not user:
            raise _HTTPError(
                401, "auth_required", "missing x-gufi-user header"
            )
        try:
            self.server.identity.authenticate(user)
        except AuthenticationError as exc:
            self._reject("auth")
            raise _HTTPError(401, "auth_failed", str(exc)) from exc
        try:
            req = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(
                400, "bad_request", f"invalid JSON body: {exc}"
            ) from exc
        if not isinstance(req, dict):
            raise _HTTPError(400, "bad_request", "body must be an object")

        cursor_payload = None
        if req.get("cursor") is not None:
            cursor_payload = self._open_cursor(user, req["cursor"])
            tool = cursor_payload["t"]
        else:
            tool = req.get("tool")
            if not isinstance(tool, str) or not tool:
                raise _HTTPError(400, "bad_request", "missing tool name")
        rec = obs.metrics()
        if rec.enabled:
            rec.counter("gufi_serve_requests_total", tool=tool)

        # QoS ring 1: per-tenant rate
        wait = self._bucket(user)
        if wait > 0:
            self._reject("rate_limit")
            raise _HTTPError(
                429, "rate_limited",
                f"per-tenant rate limit exceeded for {user!r}",
                retry_after=wait,
            )
        # QoS ring 2: per-tenant concurrency
        try:
            self.quota.acquire(user)
        except QuotaExceeded as exc:
            self._reject("concurrency")
            raise _HTTPError(
                429, "quota_exceeded", str(exc),
                retry_after=self.admission.retry_after,
            ) from exc
        try:
            return await self._admitted(user, tool, req, cursor_payload)
        finally:
            self.quota.release(user)

    async def _admitted(
        self,
        user: str,
        tool: str,
        req: dict,
        cursor_payload: dict | None,
    ) -> dict:
        deadline = self.deadline_s
        if req.get("deadline_ms") is not None:
            try:
                deadline = min(deadline, float(req["deadline_ms"]) / 1000.0)
            except (TypeError, ValueError) as exc:
                raise _HTTPError(
                    400, "bad_request", "deadline_ms must be a number"
                ) from exc
        token = CancelToken.after(deadline)
        # QoS ring 3: global admission (bounded queue, shed past it;
        # the queue wait burns the request's own deadline)
        try:
            await self.admission.acquire(timeout=token.remaining())
        except LoadShed as exc:
            raise _HTTPError(
                503, "overloaded", str(exc), retry_after=exc.retry_after
            ) from exc
        t0 = time.perf_counter()
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self.executor,
                partial(
                    self._invoke_sync, user, tool, req, cursor_payload, token
                ),
            )
        except QueryCancelled as exc:
            rec = obs.metrics()
            if rec.enabled:
                rec.counter("gufi_serve_timeouts_total", tool=tool)
            raise _HTTPError(
                504, "deadline_exceeded",
                f"query exceeded its {deadline * 1000:.0f}ms deadline "
                f"({exc})",
            ) from exc
        except CursorExpired as exc:
            raise _HTTPError(410, "cursor_expired", str(exc)) from exc
        except AuthenticationError as exc:
            self._reject("auth")
            raise _HTTPError(401, "auth_failed", str(exc)) from exc
        except (QueryPermissionError, ToolNotAllowed) as exc:
            raise _HTTPError(403, "permission_denied", str(exc)) from exc
        except FileNotFoundError as exc:
            raise _HTTPError(404, "not_found", str(exc)) from exc
        except (TypeError, ValueError, KeyError) as exc:
            raise _HTTPError(
                400, "bad_request", f"{type(exc).__name__}: {exc}"
            ) from exc
        finally:
            self.admission.release()
            rec = obs.metrics()
            if rec.enabled:
                rec.observe(
                    "gufi_serve_request_seconds",
                    time.perf_counter() - t0,
                    tool=tool,
                )

    # ------------------------------------------------------------------
    # Worker-thread half
    # ------------------------------------------------------------------
    def _invoke_sync(
        self,
        user: str,
        tool: str,
        req: dict,
        cursor_payload: dict | None,
        token: CancelToken,
    ) -> dict:
        if cursor_payload is not None:
            start = cursor_payload["s"]
            args = json.loads(cursor_payload["a"])
            page = int(cursor_payload["p"]) + 1
            page_size: int | None = int(cursor_payload["n"])
        else:
            start = req.get("start", "/")
            args = req.get("args") or {}
            if not isinstance(args, dict):
                raise ValueError("args must be an object")
            page = 0
            page_size = req.get("page_size")
            if page_size is not None:
                page_size = int(page_size)
                if page_size <= 0:
                    raise ValueError("page_size must be > 0")
        kwargs = self._build_kwargs(tool, dict(args))
        kwargs["cancel"] = token
        sink: PaginatedSink | None = None
        if tool in _ROW_TOOLS:
            sink = PaginatedSink(
                page_size or self.server.RESPONSE_PAGE_SIZE,
                max_rows=self.server.max_rows,
            )
            kwargs["sink"] = sink
        result = self.server.invoke(user, tool, start, **kwargs)
        if not isinstance(result, QueryResult):
            return {"ok": True, "tool": tool, "result": jsonable(result)}
        meta = {
            "elapsed": result.elapsed,
            "dirs_visited": result.dirs_visited,
            "dirs_denied": result.dirs_denied,
            "truncated": result.truncated,
            "cached": result.cached,
            "total_rows": len(result.rows),
        }
        if page_size is None or sink is None:
            return {
                "ok": True, "tool": tool,
                "rows": jsonable(result.rows), "meta": meta,
            }
        digest = rows_digest(result.rows)
        if cursor_payload is not None and digest != cursor_payload["d"]:
            raise CursorExpired(
                "the result set changed since this cursor was issued; "
                "restart from the first page"
            )
        next_cursor = None
        if page + 1 < sink.num_pages:
            next_cursor = encode_cursor(
                self._secret,
                {
                    "u": user, "t": tool, "s": start,
                    "a": canonical_json(args),
                    "p": page, "n": page_size, "d": digest,
                },
            )
        return {
            "ok": True, "tool": tool,
            "rows": jsonable(sink.page(page)),
            "meta": meta,
            "page": page,
            "num_pages": sink.num_pages,
            "next_cursor": next_cursor,
        }

    @staticmethod
    def _build_kwargs(tool: str, args: dict) -> dict:
        """Lift wire-shaped args into the server's calling convention.

        Scalar args pass through; ``query``'s spec dict becomes a
        :class:`QuerySpec` (wire-settable fields only) and ``find``'s
        filters dict a :class:`FindFilters` — both raise ``TypeError``
        on unknown keys, which the app maps to 400."""
        if tool == "query":
            spec = args.pop("spec", None)
            if not isinstance(spec, dict):
                raise ValueError("query requires an args.spec object")
            if args:
                raise ValueError(
                    f"unsupported query args: {sorted(args)}"
                )
            bad = set(spec) - _SPEC_FIELDS
            if bad:
                raise ValueError(
                    f"spec fields not settable remotely: {sorted(bad)}"
                )
            args["spec"] = QuerySpec(**spec)
        elif tool == "find":
            extra = set(args) - {"filters", "planned"}
            if extra:
                raise ValueError(f"unsupported find args: {sorted(extra)}")
            filters = args.pop("filters", None)
            if filters is not None:
                if not isinstance(filters, dict):
                    raise ValueError("args.filters must be an object")
                args["filters"] = FindFilters(**filters)
        elif "sink" in args or "cancel" in args:
            # the serving layer owns these; a wire value could smuggle
            # arbitrary objects into the dispatch path
            raise ValueError("sink/cancel are not wire-settable")
        return args

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _bucket(self, user: str) -> float:
        """Per-tenant rate check: 0.0 or the retry-after hint."""
        if self.tenant_qps is None:
            return 0.0
        bucket = self._buckets.get(user)
        if bucket is None:
            bucket = self._buckets.setdefault(
                user, TokenBucket(self.tenant_qps, self.tenant_burst)
            )
        return bucket.acquire()

    def _open_cursor(self, user: str, token: Any) -> dict:
        if not isinstance(token, str):
            raise _HTTPError(400, "invalid_cursor", "cursor must be a string")
        try:
            payload = decode_cursor(self._secret, token)
        except CursorError as exc:
            raise _HTTPError(400, "invalid_cursor", str(exc)) from exc
        try:
            issued_to = payload["u"]
            for field in ("t", "s", "a", "p", "n", "d"):
                payload[field]
        except KeyError as exc:
            raise _HTTPError(
                400, "invalid_cursor", "cursor payload incomplete"
            ) from exc
        if issued_to != user:
            # tenant-bound: a cursor never crosses principals
            raise _HTTPError(
                403, "invalid_cursor",
                "cursor was issued to a different tenant",
            )
        return payload

    @staticmethod
    def _reject(reason: str) -> None:
        rec = obs.metrics()
        if rec.enabled:
            rec.counter("gufi_serve_rejected_total", reason=reason)
