"""Opaque, tenant-bound resumption cursors.

A tenant paging a 100k-row result must not hold server-side session
state between requests (any instance behind a balancer must be able
to serve page N+1), so the cursor *is* the state: a base64 envelope
of the canonical-JSON payload plus a truncated HMAC-SHA256 tag keyed
by the app's secret. The payload names the query (tool, start,
canonical args), the paging position (page index, page size), the
issuing tenant, and the digest of the full row set the cursor was
cut against.

Three properties fall out:

* **opaque** — clients cannot mint or modify cursors (the tag covers
  the whole payload); a tampered or truncated token fails
  :func:`decode_cursor` with :class:`CursorError`, never a crash;
* **tenant-bound** — the authenticated caller must match the
  payload's tenant; a cursor replayed by (or leaked to) another
  tenant is invalid *before* any query runs, and the query itself
  would re-run under the thief's own credentials anyway;
* **staleness-proof** — the serving layer re-derives the row digest
  on every page request (cheap: the materialized
  :class:`~repro.core.engine.ResultCache` replays the run) and
  compares it to the payload's; an index change between pages flips
  the digest and the cursor expires (:class:`CursorExpired`) instead
  of silently serving rows that shifted under the client.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import hmac
import json
from typing import Any

from .codec import canonical_json

#: bytes of the HMAC-SHA256 tag kept in the token (128-bit tags are
#: ample for a non-bearer, per-process-secret credential)
_TAG_LEN = 16


class CursorError(Exception):
    """Malformed, forged, or foreign-tenant cursor."""


class CursorExpired(CursorError):
    """The result set changed since the cursor was issued; the client
    must restart from page 0."""


def encode_cursor(secret: bytes, payload: dict[str, Any]) -> str:
    """Sign ``payload`` into an opaque URL-safe token."""
    body = canonical_json(payload).encode("utf-8")
    tag = hmac.new(secret, body, hashlib.sha256).digest()[:_TAG_LEN]
    return (
        base64.urlsafe_b64encode(body).rstrip(b"=").decode("ascii")
        + "."
        + base64.urlsafe_b64encode(tag).rstrip(b"=").decode("ascii")
    )


def _unb64(text: str) -> bytes:
    pad = "=" * (-len(text) % 4)
    return base64.urlsafe_b64decode(text + pad)


def decode_cursor(secret: bytes, token: str) -> dict[str, Any]:
    """Verify and decode a token; :class:`CursorError` on anything
    that is not a tag-valid cursor minted with ``secret``."""
    try:
        body_b64, tag_b64 = token.split(".", 1)
        body = _unb64(body_b64)
        tag = _unb64(tag_b64)
    except (ValueError, binascii.Error) as exc:
        raise CursorError("malformed cursor") from exc
    want = hmac.new(secret, body, hashlib.sha256).digest()[:_TAG_LEN]
    if not hmac.compare_digest(tag, want):
        raise CursorError("cursor signature mismatch")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CursorError("malformed cursor payload") from exc
    if not isinstance(payload, dict):
        raise CursorError("malformed cursor payload")
    return payload
