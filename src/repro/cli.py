"""Command-line interface mirroring the GUFI tool family.

Subcommands map one-to-one onto the paper's executables::

    repro-gufi dir2index   <namespace.trace|--demo> <index_root>
    repro-gufi trace2index <trace_file> <index_root>
    repro-gufi query       <index_root> [-I/-T/-S/-E/-J/-G SQL] [-n N]
    repro-gufi find        <index_root> [--name LIKE] [--type f|l] ...
    repro-gufi du          <index_root> [--start PATH] [--tsummary]
    repro-gufi rollup      <index_root> [-L limit]
    repro-gufi unrollup    <index_root> <dir>
    repro-gufi bfti        <index_root> [--start PATH]
    repro-gufi stats       <index_root>
    repro-gufi experiments [fig1|table1|fig7|fig8|fig9|fig10|rollup|ingest|all]

Credentials for query tools come from ``--uid/--gid/--groups``
(default root), standing in for the authenticated identity the
deployed system gets from LDAP via its restricted shell (§III-A5).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.build import BuildOptions, BuildResult, trace2index
from repro.core.index import GUFIIndex
from repro.core.plan import QueryPlan
from repro.core.engine import QueryEngine
from repro.core.query import QuerySpec
from repro.core.rollup import rollup, unrollup_dir, visible_db_count
from repro.core.tools import FindFilters, GUFITools
from repro.core.tsummary import build_tsummary
from repro.fs.permissions import Credentials
from repro.scan.faults import BuildCrash, FaultPlan
from repro.scan.walker import RetryPolicy


def _creds(args: argparse.Namespace) -> Credentials:
    groups = frozenset(int(g) for g in (args.groups or "").split(",") if g)
    return Credentials(uid=args.uid, gid=args.gid, groups=groups)


def _add_identity(p: argparse.ArgumentParser) -> None:
    p.add_argument("--uid", type=int, default=0, help="querying uid (default root)")
    p.add_argument("--gid", type=int, default=0)
    p.add_argument("--groups", default="", help="comma-separated supplementary gids")


def _add_threads(p: argparse.ArgumentParser) -> None:
    p.add_argument("-n", "--nthreads", type=int, default=4,
                   help="worker threads (the paper's -n flag)")


def _add_processes(p: argparse.ArgumentParser) -> None:
    p.add_argument("--processes", type=int, default=1,
                   help="worker processes for scatter-gather execution "
                        "(1 = single-process)")


def _add_result_cache(p: argparse.ArgumentParser) -> None:
    p.add_argument("--result-cache", action="store_true",
                   help="materialize query results and replay them while "
                        "the visited directories' stamps (and the "
                        "changefeed cursor) prove them current")
    p.add_argument("--result-cache-mb", type=float, default=64.0,
                   metavar="MB",
                   help="result-cache byte budget (default 64)")


def _result_cache(args: argparse.Namespace):
    """A ResultCache per the CLI flags, or None when disabled."""
    if not getattr(args, "result_cache", False):
        return None
    from repro.core.engine import ResultCache

    return ResultCache(
        max_bytes=max(1, int(args.result_cache_mb * 1024 * 1024))
    )


def _add_obs(p: argparse.ArgumentParser) -> None:
    p.add_argument("--metrics", action="store_true",
                   help="record process metrics and print the table on exit")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write Prometheus-format metrics to FILE on exit")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="record spans; write a JSON-lines trace to FILE")
    p.add_argument("--slow-query-ms", type=float, default=None, metavar="MS",
                   help="log operations slower than MS milliseconds")


def _obs_begin(args: argparse.Namespace) -> bool:
    """Enable the requested observability components (if any)."""
    from repro import obs

    want_metrics = bool(
        getattr(args, "metrics", False) or getattr(args, "metrics_out", None)
    )
    tracing = getattr(args, "trace_out", None) is not None
    slow_ms = getattr(args, "slow_query_ms", None)
    if not (want_metrics or tracing or slow_ms is not None):
        return False
    obs.enable(metrics=want_metrics, tracing=tracing, slow_query_ms=slow_ms)
    return True


def _obs_end(args: argparse.Namespace) -> None:
    """Export whatever was recorded, then disable."""
    from pathlib import Path

    from repro import obs
    from repro.obs.export import (
        render_metrics,
        render_slow_log,
        to_prometheus,
        write_trace_jsonl,
    )

    try:
        if getattr(args, "metrics", False):
            print(render_metrics(obs.snapshot()), file=sys.stderr)
        metrics_out = getattr(args, "metrics_out", None)
        if metrics_out:
            Path(metrics_out).write_text(
                to_prometheus(obs.snapshot()), encoding="utf-8"
            )
            print(f"# wrote metrics to {metrics_out}", file=sys.stderr)
        trace_out = getattr(args, "trace_out", None)
        if trace_out:
            n = write_trace_jsonl(trace_out, obs.tracer().spans())
            print(f"# wrote {n} spans to {trace_out}", file=sys.stderr)
        if getattr(args, "slow_query_ms", None) is not None:
            print(render_slow_log(obs.slow_log()), file=sys.stderr)
    finally:
        obs.disable()


def _build_opts(args: argparse.Namespace) -> BuildOptions:
    faults = FaultPlan.parse(args.fault_plan) if args.fault_plan else None
    optional = ("names_fts",) if getattr(args, "fts_names", False) else ()
    return BuildOptions(
        nthreads=args.nthreads,
        resume=args.resume,
        retry=RetryPolicy(retries=args.retries),
        faults=faults,
        optional_artifacts=optional,
    )


def _report_build(result: BuildResult) -> int:
    extra = ""
    if result.dirs_skipped:
        extra += f", {result.dirs_skipped} resumed-over"
    if result.dirs_retried:
        extra += f", {result.dirs_retried} retries"
    print(
        f"indexed {result.dirs_created} dirs / {result.entries_inserted} "
        f"entries in {result.seconds:.2f}s "
        f"({result.rows_per_second:.0f} rows/s){extra}"
    )
    if result.errors:
        for path, exc in result.errors:
            print(f"# failed {path}: {exc}", file=sys.stderr)
        print(
            f"# {len(result.errors)} dirs failed; journal kept — "
            "rerun with --resume to finish",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_trace2index(args: argparse.Namespace) -> int:
    try:
        result = trace2index(args.trace, args.index_root, _build_opts(args))
    except BuildCrash as exc:
        print(f"# build crashed: {exc}", file=sys.stderr)
        print("# rerun with --resume to continue from the journal",
              file=sys.stderr)
        return 1
    return _report_build(result)


def cmd_demo_index(args: argparse.Namespace) -> int:
    from repro.core.build import dir2index
    from repro.gen import dataset2

    ns = dataset2(scale=args.scale)
    result = dir2index(
        ns.tree, args.index_root, opts=BuildOptions(nthreads=args.nthreads)
    )
    print(
        f"demo namespace: {result.dirs_created} dirs / "
        f"{result.entries_inserted} entries indexed in {result.seconds:.2f}s"
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    index = GUFIIndex.open(args.index_root)
    spec = QuerySpec(
        I=args.init, T=args.tsum, S=args.sum, E=args.entries,
        J=args.join, G=args.final, xattrs=args.xattrs,
        output_prefix=args.output,
    )
    plan = None
    if args.min_level is not None or args.max_level is not None:
        # Raw user SQL may read any table, so only the *depth window*
        # is planned (entries_shaped=False disables the stats gates).
        plan = QueryPlan(
            min_level=args.min_level,
            max_level=args.max_level,
            entries_shaped=False,
        )
    q = QueryEngine(index, creds=_creds(args), nthreads=args.nthreads,
                    processes=args.processes,
                    result_cache=_result_cache(args))
    result = q.run(spec, args.start, plan=plan)
    for row in result.rows:
        print("\t".join("" if v is None else str(v) for v in row))
    if result.output_files:
        for path in result.output_files:
            print(f"# wrote {path}", file=sys.stderr)
    print(
        f"# {result.dirs_visited} dirs visited, {result.dirs_denied} denied, "
        f"{result.dirs_pruned_by_plan} plan-pruned, "
        f"{result.elapsed:.3f}s",
        file=sys.stderr,
    )
    return 0


def cmd_find(args: argparse.Namespace) -> int:
    index = GUFIIndex.open(args.index_root)
    tools = GUFITools(index, creds=_creds(args), nthreads=args.nthreads,
                      processes=args.processes,
                      result_cache=_result_cache(args))
    filters = FindFilters(
        name_like=args.name, ftype=args.type,
        min_size=args.min_size, max_size=args.max_size,
        min_level=args.min_level, max_level=args.max_level,
    )
    result = tools.find(args.start, filters, planned=not args.no_plan)
    for path, ftype, size in sorted(result.rows):
        print(f"{ftype}\t{size}\t{path}")
    print(
        f"# {result.dirs_visited} dirs visited, "
        f"{result.dbs_opened} dbs opened, "
        f"{result.dirs_pruned_by_plan} plan-pruned, "
        f"{result.attaches_elided} attaches elided",
        file=sys.stderr,
    )
    return 0


def cmd_du(args: argparse.Namespace) -> int:
    index = GUFIIndex.open(args.index_root)
    tools = GUFITools(index, creds=_creds(args), nthreads=args.nthreads)
    print(tools.du(args.start, use_tsummary=args.tsummary))
    return 0


def cmd_rollup(args: argparse.Namespace) -> int:
    index = GUFIIndex.open(args.index_root)
    stats = rollup(index, limit=args.limit, nthreads=args.nthreads)
    print(
        f"rolled {stats.rolled}/{stats.total_dirs} dirs in "
        f"{stats.elapsed:.2f}s (blocked: {stats.blocked_perms} perms, "
        f"{stats.blocked_limit} limit, {stats.blocked_child} child); "
        f"visible DBs now {visible_db_count(index)}"
    )
    return 0


def cmd_unrollup(args: argparse.Namespace) -> int:
    index = GUFIIndex.open(args.index_root)
    unrollup_dir(index, args.dir)
    print(f"unrolled {args.dir}")
    return 0


def cmd_bfti(args: argparse.Namespace) -> int:
    index = GUFIIndex.open(args.index_root)
    result = build_tsummary(index, args.start)
    print(
        f"tsummary at {args.start}: {result.rows_written} rows from "
        f"{result.dirs_scanned} dirs in {result.seconds:.2f}s"
    )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    index = GUFIIndex.open(args.index_root)
    if args.full:
        from repro.core.stats import collect_stats, render_stats

        stats = collect_stats(
            index, start=args.start, creds=_creds(args), nthreads=args.nthreads
        )
        print(render_stats(stats))
        return 0
    n_dbs = index.count_dbs()
    print(f"databases:   {n_dbs}")
    print(f"visible DBs: {visible_db_count(index)}")
    print(f"entries:     {index.total_entries()}")
    print(f"index bytes: {index.total_db_bytes()}")
    return 0


def cmd_index_migrate(args: argparse.Namespace) -> int:
    from repro.store.migrate import migrate_index

    result = migrate_index(args.index_root, resume=args.resume)
    print(
        f"migrated {result.dirs_migrated}/{result.dirs_seen} dirs "
        f"({result.dirs_skipped} already current, "
        f"{result.steps_applied} schema steps, "
        f"{result.side_dbs_migrated} side dbs)"
    )
    if result.errors:
        for path, msg in result.errors:
            print(f"# failed {path}: {msg}", file=sys.stderr)
        print(
            f"# {len(result.errors)} dirs failed; journal kept — "
            "rerun with --resume to finish",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_index_doctor(args: argparse.Namespace) -> int:
    from repro.store.doctor import doctor

    report = doctor(args.index_root)
    versions = ", ".join(
        f"v{v}: {n}" for v, n in sorted(report.versions.items())
    ) or "none"
    print(f"dirs:            {report.dirs_seen}")
    print(f"schema versions: {versions}")
    print(f"xattr side dbs:  {report.side_dbs}")
    print(f"sidecars:        {report.sidecars}")
    if report.dirs_outdated:
        print(f"outdated dirs:   {report.dirs_outdated} (run `index migrate`)")
    if report.dirs_newer:
        print(f"newer-schema dirs: {report.dirs_newer} (upgrade this tool)")
    for sp, shard in report.missing_shards:
        print(f"# {sp}: tracked xattr shard {shard} missing", file=sys.stderr)
    for sp, name in report.stale_partials:
        print(f"# {sp}: stale staging file {name}", file=sys.stderr)
    for sp, msg in report.errors:
        print(f"# {sp}: {msg}", file=sys.stderr)
    if report.healthy:
        print("index is healthy")
        return 0
    print("# index has problems", file=sys.stderr)
    return 1


def cmd_search(args: argparse.Namespace) -> int:
    """The portal search bar from the command line."""
    from repro.core.search import parse

    index = GUFIIndex.open(args.index_root)
    parsed = parse(args.query, now=args.now)
    if args.no_plan:
        f = parsed.filters
        plan = None
        if f.min_level is not None or f.max_level is not None:
            # the depth window is semantic — it survives --no-plan
            plan = QueryPlan(
                min_level=f.min_level,
                max_level=f.max_level,
                entries_shaped=False,
            )
    else:
        plan = parsed.to_plan()
    q = QueryEngine(index, creds=_creds(args), nthreads=args.nthreads)
    result = q.run(parsed.to_spec(), args.start, plan=plan)
    for row in sorted(result.rows):
        print("\t".join(str(v) for v in row))
    print(
        f"# {len(result.rows)} matches from {result.dirs_visited} dirs "
        f"({result.dirs_pruned_by_plan} plan-pruned, "
        f"{result.attaches_elided} attaches elided)",
        file=sys.stderr,
    )
    return 0


def cmd_changefeed(args: argparse.Namespace) -> int:
    """In-process incremental-indexing demo driver.

    The source namespaces here are simulated in memory, so this
    subcommand owns the whole loop a deployed site would split across
    processes: it generates a namespace, builds its index, attaches a
    change journal, then alternates seeded random mutation bursts with
    ``changefeed2index`` applies. ``--watch`` keeps cycling (bounded by
    ``--cycles``), printing one line per apply — the shape of a real
    changelog-tailing daemon."""
    import time as _time

    from repro.core.build import dir2index
    from repro.core.changefeed import changefeed2index
    from repro.fs.changelog import ChangeJournal, ChangelogOverflow
    from repro.gen import dataset2
    from repro.gen.namespace import NamespaceMutator

    ns = dataset2(scale=args.scale)
    opts = BuildOptions(nthreads=args.nthreads)
    result = dir2index(ns.tree, args.index_root, opts=opts)
    index = GUFIIndex.open(args.index_root)
    journal = ChangeJournal(capacity=args.journal_capacity)
    ns.tree.set_changelog(journal)
    mutator = NamespaceMutator(ns, seed=args.seed)
    print(
        f"demo namespace: {result.dirs_created} dirs / "
        f"{result.entries_inserted} entries indexed; journal attached"
    )

    cycles = args.cycles if args.watch else 1
    for cycle in range(cycles):
        mutator.mutate(args.mutations)
        try:
            r = changefeed2index(index, ns.tree, journal, opts=opts)
        except ChangelogOverflow:
            print(
                "# journal overflowed — falling back to full rebuild",
                file=sys.stderr,
            )
            result = dir2index(ns.tree, args.index_root, opts=opts)
            index = GUFIIndex.open(args.index_root)
            continue
        print(
            f"cycle {cycle}: {r.events_raw} events "
            f"({r.events_coalesced} coalesced) -> {r.dirs_rebuilt} dirs "
            f"rebuilt, {r.dirs_moved} moved, {r.dirs_removed} removed "
            f"in {r.seconds * 1000:.1f}ms (cursor {r.cursor})"
        )
        if args.watch and args.interval > 0 and cycle + 1 < cycles:
            _time.sleep(args.interval)
    return 0


def cmd_split_trace(args: argparse.Namespace) -> int:
    from repro.scan.trace import split_trace

    parts = split_trace(args.trace, args.dest_dir, args.parts)
    for p in parts:
        print(p)
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro import harness

    which = args.which
    runners = {
        "fig1": lambda: print(harness.fig1().render()),
        "table1": lambda: print(harness.table1().render()),
        "fig7": lambda: print(harness.fig7().render()),
        "fig8": lambda: _print_fig8(),
        "fig9": lambda: print(harness.fig9().render()),
        "fig10": lambda: _print_fig10(),
        "rollup": lambda: print(harness.rollup_reduction().render()),
        "ingest": lambda: print(harness.ingest_rate().render()),
        "resilience": lambda: print(harness.build_resilience().render()),
        "planning": lambda: print(harness.planning_ablation().render()),
    }

    def _print_fig8():
        a, c, _ = harness.fig8()
        print(a.render())
        print()
        print(c.render())

    def _print_fig10():
        a, b = harness.fig10()
        print(a.render())
        print()
        print(b.render())

    targets = list(runners) if which == "all" else [which]
    for t in targets:
        runners[t]()
        print()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro import obs
    from repro.core.server import GUFIServer, IdentityProvider
    from repro.serve import GUFIApp
    from repro.serve.http import serve

    # /metrics is part of the serving contract: record even without
    # an explicit --metrics flag
    metrics_enabled_here = not obs.metrics().enabled
    if metrics_enabled_here:
        obs.enable(metrics=True)

    if args.passwd:
        with open(args.passwd, encoding="utf-8") as fh:
            passwd_text = fh.read()
        group_text = ""
        if args.group:
            with open(args.group, encoding="utf-8") as fh:
                group_text = fh.read()
        identity = IdentityProvider.from_passwd(passwd_text, group_text)
    else:
        # demo principals matching the generated demo namespace
        identity = IdentityProvider()
        identity.add_user("root", uid=0, gid=0)
        identity.add_user("alice", uid=1001, gid=1001)
        identity.add_user("bob", uid=1002, gid=1002)
        identity.add_user("carol", uid=1003, gid=1003,
                          groups=frozenset({100}))

    index = GUFIIndex(args.index_root)
    with GUFIServer(
        index, identity, nthreads=args.nthreads,
        result_cache_mb=args.result_cache_mb,
    ) as server, GUFIApp(
        server,
        max_inflight=args.max_inflight,
        queue_limit=args.queue_limit,
        tenant_qps=args.tenant_qps,
        tenant_burst=args.tenant_burst,
        tenant_concurrency=args.tenant_concurrency,
        deadline_s=args.deadline_ms / 1000.0,
    ) as app:
        print(f"serving {args.index_root} on "
              f"http://{args.host}:{args.port} "
              f"(inflight={args.max_inflight} queue={args.queue_limit})")
        try:
            asyncio.run(serve(app, host=args.host, port=args.port))
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            if metrics_enabled_here:
                obs.disable()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gufi",
        description="GUFI reproduction: index, query, and benchmark tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("trace2index", help="ingest a trace file into an index")
    p.add_argument("trace")
    p.add_argument("index_root")
    p.add_argument("--resume", action="store_true",
                   help="skip directories the build journal proves done")
    p.add_argument("--fault-plan", default=None,
                   help="inject faults: 'kind:site:at[xTIMES];...' "
                        "e.g. 'crash:build_dir_db:12' or 'io:walker.expand:3x2'")
    p.add_argument("--retries", type=int, default=2,
                   help="retries per directory on transient errors")
    p.add_argument("--fts-names", action="store_true",
                   help="also build the per-directory FTS5 name-search "
                        "sidecar (requires SQLite FTS5)")
    _add_threads(p)
    _add_obs(p)
    p.set_defaults(func=cmd_trace2index)

    p = sub.add_parser("demo-index", help="generate a demo namespace and index it")
    p.add_argument("index_root")
    p.add_argument("--scale", type=float, default=0.0005)
    _add_threads(p)
    p.set_defaults(func=cmd_demo_index)

    p = sub.add_parser("query", help="run raw gufi_query-style SQL")
    p.add_argument("index_root")
    p.add_argument("--start", default="/")
    p.add_argument("-I", dest="init", default=None)
    p.add_argument("-T", dest="tsum", default=None)
    p.add_argument("-S", dest="sum", default=None)
    p.add_argument("-E", dest="entries", default=None)
    p.add_argument("-J", dest="join", default=None)
    p.add_argument("-G", dest="final", default=None)
    p.add_argument("--xattrs", action="store_true")
    p.add_argument("-o", "--output", default=None,
                   help="stream rows to per-thread files <prefix>.<n>")
    p.add_argument("-y", "--min-level", type=int, default=None,
                   help="process only dirs >= this level below start")
    p.add_argument("-z", "--max-level", type=int, default=None,
                   help="process only dirs <= this level below start "
                        "(descent stops there too)")
    _add_threads(p)
    _add_processes(p)
    _add_result_cache(p)
    _add_identity(p)
    _add_obs(p)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("find", help="gufi_find")
    p.add_argument("index_root")
    p.add_argument("--start", default="/")
    p.add_argument("--name", default=None, help="SQL LIKE pattern")
    p.add_argument("--type", default=None, choices=["f", "l"])
    p.add_argument("--min-size", type=int, default=None)
    p.add_argument("--max-size", type=int, default=None)
    p.add_argument("--min-level", type=int, default=None,
                   help="depth window lower bound (gufi_query -y)")
    p.add_argument("--max-level", type=int, default=None,
                   help="depth window upper bound (gufi_query -z)")
    p.add_argument("--no-plan", action="store_true",
                   help="disable summary-statistics pruning "
                        "(results are identical; for comparison)")
    _add_threads(p)
    _add_processes(p)
    _add_result_cache(p)
    _add_identity(p)
    _add_obs(p)
    p.set_defaults(func=cmd_find)

    p = sub.add_parser("du", help="gufi_du")
    p.add_argument("index_root")
    p.add_argument("--start", default="/")
    p.add_argument("--tsummary", action="store_true")
    _add_threads(p)
    _add_identity(p)
    _add_obs(p)
    p.set_defaults(func=cmd_du)

    p = sub.add_parser("rollup", help="roll up an index (admin)")
    p.add_argument("index_root")
    p.add_argument("-L", "--limit", type=int, default=None)
    _add_threads(p)
    _add_obs(p)
    p.set_defaults(func=cmd_rollup)

    p = sub.add_parser("unrollup", help="undo one directory's rollup (admin)")
    p.add_argument("index_root")
    p.add_argument("dir")
    p.set_defaults(func=cmd_unrollup)

    p = sub.add_parser("bfti", help="build tree summary (admin)")
    p.add_argument("index_root")
    p.add_argument("--start", default="/")
    p.set_defaults(func=cmd_bfti)

    p = sub.add_parser("stats", help="index statistics")
    p.add_argument("index_root")
    p.add_argument("--full", action="store_true",
                   help="full gufi_stats-style characterisation")
    p.add_argument("--start", default="/")
    _add_threads(p)
    _add_identity(p)
    _add_obs(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "index", help="index maintenance: schema migrate, health doctor"
    )
    isub = p.add_subparsers(dest="index_command", required=True)
    ip = isub.add_parser(
        "migrate",
        help="upgrade every directory database to the current schema "
             "version (per-directory, resumable)",
    )
    ip.add_argument("index_root")
    ip.add_argument("--resume", action="store_true",
                    help="skip directories the migrate journal proves done")
    ip.set_defaults(func=cmd_index_migrate)
    ip = isub.add_parser(
        "doctor",
        help="read-only health report: schema versions, missing xattr "
             "shards, stale staging files",
    )
    ip.add_argument("index_root")
    ip.set_defaults(func=cmd_index_doctor)

    p = sub.add_parser("search", help="portal search-bar query language")
    p.add_argument("index_root")
    p.add_argument("query", help="e.g. '*.h5 size>>100m older:90d'")
    p.add_argument("--start", default="/")
    p.add_argument("--now", type=int, default=None,
                   help="reference timestamp for older:/newer:")
    p.add_argument("--no-plan", action="store_true",
                   help="disable summary-statistics pruning "
                        "(results are identical; for comparison)")
    _add_threads(p)
    _add_identity(p)
    _add_obs(p)
    p.set_defaults(func=cmd_search)

    p = sub.add_parser(
        "changefeed2index",
        help="incremental indexing demo: mutate a namespace and apply "
             "the change journal to its index",
    )
    p.add_argument("index_root")
    p.add_argument("--scale", type=float, default=0.0005,
                   help="demo namespace scale (as demo-index)")
    p.add_argument("--seed", type=int, default=0,
                   help="mutation sequence seed")
    p.add_argument("--mutations", type=int, default=50,
                   help="mutations per cycle")
    p.add_argument("--journal-capacity", type=int, default=65536,
                   help="journal bound; overflow forces a full rebuild")
    p.add_argument("--watch", action="store_true",
                   help="keep cycling mutate/apply instead of one batch")
    p.add_argument("--cycles", type=int, default=5,
                   help="cycles to run with --watch")
    p.add_argument("--interval", type=float, default=0.0,
                   help="seconds to sleep between --watch cycles")
    _add_threads(p)
    _add_obs(p)
    p.set_defaults(func=cmd_changefeed)

    p = sub.add_parser(
        "serve",
        help="multi-tenant HTTP serving over the restricted server",
    )
    p.add_argument("index_root")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument("--max-inflight", type=int, default=4,
                   help="global execution slots (worker threads)")
    p.add_argument("--queue-limit", type=int, default=16,
                   help="bounded admission queue; overflow is shed (503)")
    p.add_argument("--tenant-qps", type=float, default=None,
                   help="per-tenant sustained request rate (default: off)")
    p.add_argument("--tenant-burst", type=float, default=None,
                   help="per-tenant burst allowance (default: max(1, qps))")
    p.add_argument("--tenant-concurrency", type=int, default=None,
                   help="per-tenant in-flight request cap (default: off)")
    p.add_argument("--deadline-ms", type=float, default=30_000.0,
                   help="default per-request deadline; clients may only "
                        "shorten it")
    p.add_argument("--passwd", default=None,
                   help="passwd-format file of principals "
                        "(default: demo users)")
    p.add_argument("--group", default=None,
                   help="group-format file of supplementary memberships")
    p.add_argument("--result-cache-mb", type=float, default=64.0,
                   metavar="MB",
                   help="shared result-cache byte budget (default 64)")
    _add_threads(p)
    _add_obs(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("split-trace",
                       help="split a trace for distributed ingest")
    p.add_argument("trace")
    p.add_argument("dest_dir")
    p.add_argument("-p", "--parts", type=int, default=4)
    p.set_defaults(func=cmd_split_trace)

    p = sub.add_parser("experiments", help="regenerate paper tables/figures")
    p.add_argument(
        "which",
        choices=["fig1", "table1", "fig7", "fig8", "fig9", "fig10",
                 "rollup", "ingest", "resilience", "planning", "all"],
    )
    p.set_defaults(func=cmd_experiments)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    obs_on = _obs_begin(args)
    try:
        return args.func(args)
    finally:
        if obs_on:
            _obs_end(args)


if __name__ == "__main__":
    raise SystemExit(main())
