"""``blktrace``-style I/O accounting for index reads (Fig 7).

The paper captures block-level disk accesses with ``blktrace`` while a
query runs, then divides bytes by query time to get achieved device
throughput. Our equivalent instruments the database layer: every
SQLite file the query engine opens reports the bytes it will read
(database files are read in full by the scan-style queries Fig 7
uses), tagged with the worker thread and a timestamp, so experiments
can compute both total volume and the concurrency profile offered to
the (modelled) device.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ReadEvent:
    """One logical read: ``nbytes`` from file ``path`` by ``thread``."""

    path: str
    nbytes: int
    thread: str
    t: float  # wall-clock seconds when issued (monotonic origin)


@dataclass
class IOTracer:
    """Thread-safe collector of :class:`ReadEvent` records.

    Pass an instance to the query engine (``GUFIQuery(tracer=...)``)
    or the Brindexer query; ``record`` is cheap (a lock + append).
    """

    events: list[ReadEvent] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _t0: float = field(default_factory=time.monotonic, repr=False)

    def record(self, path: str, nbytes: int) -> None:
        ev = ReadEvent(
            path=path,
            nbytes=nbytes,
            thread=threading.current_thread().name,
            t=time.monotonic() - self._t0,
        )
        with self._lock:
            self.events.append(ev)

    def reset(self) -> None:
        with self._lock:
            self.events.clear()
            self._t0 = time.monotonic()

    # ------------------------------------------------------------------
    # Aggregations used by the Fig 7 harness
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(e.nbytes for e in self.events)

    @property
    def num_reads(self) -> int:
        with self._lock:
            return len(self.events)

    def bytes_by_thread(self) -> dict[str, int]:
        out: dict[str, int] = {}
        with self._lock:
            for e in self.events:
                out[e.thread] = out.get(e.thread, 0) + e.nbytes
        return out

    def concurrency_profile(self, nbuckets: int = 50) -> list[int]:
        """Distinct threads issuing reads per time bucket — a coarse
        offered-queue-depth series over the run."""
        with self._lock:
            if not self.events:
                return []
            t_max = max(e.t for e in self.events) or 1e-9
            buckets: list[set[str]] = [set() for _ in range(nbuckets)]
            for e in self.events:
                idx = min(nbuckets - 1, int(e.t / t_max * nbuckets))
                buckets[idx].add(e.thread)
        return [len(b) for b in buckets]

    def mean_read_size(self) -> float:
        with self._lock:
            if not self.events:
                return 0.0
            return sum(e.nbytes for e in self.events) / len(self.events)
