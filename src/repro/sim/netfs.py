"""Per-operation cost models for file-system metadata access (Fig 1).

Figure 1 of the paper measures ``find -ls`` and ``du -s`` over the
Linux 5.8.9 source tree on GPFS, Lustre, NFS, a local file system, and
GUFI. The dominant term for the network file systems is metadata RPC
latency: every ``stat`` and every ``readdir`` batch is a round trip to
a metadata server. We model each file-system *client* as a set of
per-operation latencies charged to a :class:`VirtualClock`.

The constants below are calibrated to public latency ballparks (and to
reproduce Fig 1's ordering): parallel file systems pay ~0.3–1 ms per
metadata RPC, NFS with client caching somewhat less per op on this
read-only workload, and a local file system pays only in-kernel costs
on cached inodes (microseconds). They are parameters, not hard-coded —
every experiment accepts a custom :class:`NetFSCostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .clock import VirtualClock


@dataclass(frozen=True)
class NetFSCostModel:
    """Latency charged per metadata operation, in seconds.

    ``readdir`` is charged per *batch* of ``readdir_batch`` entries
    plus a per-entry unmarshalling cost, matching how NFS READDIRPLUS
    and Lustre statahead amortise round trips.
    """

    name: str
    stat: float  # one stat/getattr RPC
    readdir_rpc: float  # one readdir round trip
    readdir_per_entry: float  # per-entry decode cost
    readdir_batch: int  # entries returned per round trip
    getxattr: float  # one getxattr RPC
    opendir: float  # open/lookup cost per directory

    def charge_stat(self, clock: VirtualClock, n: int = 1) -> None:
        clock.charge(self.stat * n)

    def charge_readdir(self, clock: VirtualClock, nentries: int) -> None:
        rpcs = max(1, -(-nentries // self.readdir_batch))  # ceil div
        clock.charge(
            self.opendir + rpcs * self.readdir_rpc + nentries * self.readdir_per_entry
        )

    def charge_getxattr(self, clock: VirtualClock, n: int = 1) -> None:
        clock.charge(self.getxattr * n)


# ----------------------------------------------------------------------
# Presets. Values chosen to land each system in its Fig 1 regime:
# GPFS and Lustre are the slow outliers (uncached small metadata RPCs),
# NFS is in between, the local FS is fast, and GUFI (measured for real,
# not modelled) is fastest.
# ----------------------------------------------------------------------

GPFS = NetFSCostModel(
    name="gpfs",
    stat=900e-6,
    readdir_rpc=1200e-6,
    readdir_per_entry=4e-6,
    readdir_batch=32,
    getxattr=900e-6,
    opendir=600e-6,
)

LUSTRE = NetFSCostModel(
    name="lustre",
    stat=600e-6,
    readdir_rpc=800e-6,
    readdir_per_entry=3e-6,
    readdir_batch=64,
    getxattr=600e-6,
    opendir=400e-6,
)

NFS = NetFSCostModel(
    name="nfs",
    stat=250e-6,
    readdir_rpc=400e-6,
    readdir_per_entry=2e-6,
    readdir_batch=128,  # READDIRPLUS piggybacks attributes
    getxattr=250e-6,
    opendir=200e-6,
)

# Cold-cache local file system: the paper drops caches before each
# measurement, so stats hit the SSD (tens of µs) rather than the
# dentry cache (single µs — see TMPFS_LOCAL for the warm figure).
XFS_LOCAL = NetFSCostModel(
    name="xfs-local",
    stat=60e-6,
    readdir_rpc=100e-6,
    readdir_per_entry=1e-6,
    readdir_batch=1024,
    getxattr=70e-6,
    opendir=40e-6,
)

TMPFS_LOCAL = NetFSCostModel(
    name="tmpfs-local",
    stat=1e-6,
    readdir_rpc=3e-6,
    readdir_per_entry=0.1e-6,
    readdir_batch=4096,
    getxattr=1.5e-6,
    opendir=1e-6,
)

PRESETS: dict[str, NetFSCostModel] = {
    m.name: m for m in (GPFS, LUSTRE, NFS, XFS_LOCAL, TMPFS_LOCAL)
}
