"""Virtual time for cost-model-driven experiments.

Experiments that would require hardware we do not have (remote file
system RPC latency in Fig 1, SSD bandwidth ceilings in Fig 7) run on a
virtual clock: operations *charge* simulated seconds instead of
sleeping, so a benchmark that models a 20-minute production scan
completes in milliseconds while still reporting the modelled time.
"""

from __future__ import annotations

import threading


class VirtualClock:
    """A monotonically advancing simulated clock (seconds, float).

    Thread-safe; concurrent chargers serialise their advances, which
    models a *sequential* consumer (correct for Fig 1's single-threaded
    ``find``/``du``). Parallel-device time is computed analytically by
    the SSD model instead of by interleaving charges.
    """

    def __init__(self, start: float = 0.0):
        self._t = float(start)
        self._lock = threading.Lock()

    @property
    def now(self) -> float:
        with self._lock:
            return self._t

    def charge(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        with self._lock:
            self._t += seconds
            return self._t

    def reset(self, to: float = 0.0) -> None:
        with self._lock:
            self._t = float(to)


class StopwatchRegion:
    """Measure the virtual-time cost of a region::

        with StopwatchRegion(clock) as sw:
            ... charged operations ...
        print(sw.elapsed)
    """

    def __init__(self, clock: VirtualClock):
        self._clock = clock
        self.elapsed = 0.0

    def __enter__(self) -> "StopwatchRegion":
        self._start = self._clock.now
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = self._clock.now - self._start
