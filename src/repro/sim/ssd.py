"""SSD and storage-host throughput models (Fig 7).

Figure 7 shows that GUFI's per-directory sharding generates enough
concurrent reads to saturate one or two NVMe SSDs (~3.2 GB/s each in
the paper's Samsung 1725A testbed), while with four SSDs the *host*
becomes the bottleneck. We reproduce the curve analytically: the
query engine reports the read volume and offered concurrency it
generated (via :class:`~repro.sim.blktrace.IOTracer`), and the device
model converts that into achievable throughput.

The throughput model is the standard queue-depth saturation curve for
flash: a single sequential stream achieves ``stream_bw``; adding
parallel streams scales linearly until the device ceiling, i.e.

    T(q) = min(max_bw, q * stream_bw)        per device,

with an additional small-read penalty (reads below ``min_efficient_read``
waste a full page fetch) and, at the array level, a host ceiling
(PCIe/memory/CPU) that caps the aggregate regardless of device count.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SSDModel:
    """A single flash device.

    Defaults approximate the paper's Samsung PM1725a: ~3.2 GB/s
    sustained read, saturating around queue depth ~100 for the small
    (tens-of-KB) reads a non-rolled-up GUFI index generates.
    """

    name: str = "pm1725a"
    max_bw: float = 3.2e9  # bytes/s at saturation
    stream_bw: float = 30e6  # bytes/s for one synchronous stream
    min_efficient_read: int = 16 * 1024  # reads below this waste bandwidth

    def effective_bytes(self, nbytes: int, nreads: int) -> int:
        """Bytes the device actually transfers: small reads are padded
        to the page-fetch minimum."""
        if nreads <= 0:
            return nbytes
        mean = nbytes / nreads
        if mean >= self.min_efficient_read:
            return nbytes
        return nreads * self.min_efficient_read

    def throughput(self, queue_depth: float) -> float:
        """Achievable read bandwidth at a given offered queue depth."""
        if queue_depth <= 0:
            return 0.0
        return min(self.max_bw, queue_depth * self.stream_bw)

    @property
    def saturation_qd(self) -> float:
        """Queue depth at which the device ceiling is reached."""
        return self.max_bw / self.stream_bw


@dataclass(frozen=True)
class StorageHost:
    """A server hosting ``n_ssds`` devices with a host-side ceiling.

    ``host_max_bw`` models the paper's observation that their dual-
    Xeon server could drive ~2 SSDs (≈5.3 GB/s observed at 82%
    utilisation of 6.4 GB/s) but not 4 (12.8 GB/s ceiling unused).
    """

    ssd: SSDModel
    n_ssds: int = 1
    host_max_bw: float = 6.0e9  # bytes/s the host can actually move

    @property
    def device_ceiling(self) -> float:
        return self.ssd.max_bw * self.n_ssds

    def throughput(self, queue_depth: float) -> float:
        """Aggregate achievable bandwidth: offered queue depth is
        spread across devices; the host ceiling caps the sum."""
        if queue_depth <= 0:
            return 0.0
        per_dev_qd = queue_depth / self.n_ssds
        dev_total = self.ssd.throughput(per_dev_qd) * self.n_ssds
        return min(dev_total, self.host_max_bw)

    def utilization(self, queue_depth: float) -> float:
        """Fraction of the *device* ceiling achieved (the paper's
        utilisation metric)."""
        ceiling = self.device_ceiling
        if ceiling <= 0:
            return 0.0
        return self.throughput(queue_depth) / ceiling

    def query_time(self, nbytes: int, nreads: int, queue_depth: float) -> float:
        """Modelled seconds to read ``nbytes`` in ``nreads`` requests
        at the given offered concurrency."""
        eff = self.ssd.effective_bytes(nbytes, nreads)
        bw = self.throughput(queue_depth)
        if bw <= 0:
            return float("inf")
        return eff / bw
