"""Device and remote-file-system cost models.

Substitutes for the hardware the paper measures directly: virtual
clocks charged by per-operation latency models (Fig 1's network file
systems) and analytic SSD/host throughput models fed by byte-accurate
I/O traces from the query engine (Fig 7).
"""

from .blktrace import IOTracer, ReadEvent
from .clock import StopwatchRegion, VirtualClock
from .netfs import (
    GPFS,
    LUSTRE,
    NFS,
    PRESETS,
    TMPFS_LOCAL,
    XFS_LOCAL,
    NetFSCostModel,
)
from .ssd import SSDModel, StorageHost

__all__ = [
    "GPFS",
    "IOTracer",
    "LUSTRE",
    "NFS",
    "NetFSCostModel",
    "PRESETS",
    "ReadEvent",
    "SSDModel",
    "StopwatchRegion",
    "StorageHost",
    "TMPFS_LOCAL",
    "VirtualClock",
    "XFS_LOCAL",
]
