"""Consistent point-in-time snapshots of a :class:`VFSTree`.

Network file systems with snapshot capability (WAFL, ZFS — paper
§III-A3) let GUFI scan a frozen namespace so the index reflects one
consistent instant. We reproduce that by cloning the node graph under
the tree lock; scans of the snapshot then proceed without blocking
(or being perturbed by) concurrent mutation of the live tree.

Snapshots also power the paper's "two complete namespace snapshots a
few hours apart enable passive data-movement measurement" observation
(§III-A4): :func:`diff_snapshots` computes created/removed/changed
entry sets between two snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .inode import FileType
from .tree import VFSTree, _Node


def snapshot(tree: VFSTree) -> VFSTree:
    """Return an independent deep copy of ``tree`` taken atomically."""
    with tree._lock:
        clone = VFSTree.__new__(VFSTree)
        clone._alloc = tree._alloc  # shared allocator keeps inos unique
        clone._clock = tree._clock
        import threading

        clone._lock = threading.RLock()
        clone._nfiles = tree._nfiles
        clone._ndirs = tree._ndirs
        clone._nsymlinks = tree._nsymlinks
        # fault plans and changelogs target the *live* source, not its
        # frozen image (snapshot scans must not re-emit events)
        clone._faults = None
        clone._changelog = None
        clone._root = _clone_node(tree._root, None)
        return clone


def _clone_node(node: _Node, parent: _Node | None) -> _Node:
    new = _Node(node.inode.clone(), parent)
    if node.children is not None:
        assert new.children is not None
        for name, child in node.children.items():
            new.children[name] = _clone_node(child, new)
    return new


@dataclass
class SnapshotDiff:
    """Namespace delta between two snapshots (paths keyed)."""

    created: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    #: paths present in both but with differing size/mtime/mode/owner
    changed: list[str] = field(default_factory=list)
    #: net bytes added (sum of created+grown minus removed+shrunk sizes)
    bytes_delta: int = 0

    @property
    def total_mutations(self) -> int:
        return len(self.created) + len(self.removed) + len(self.changed)


def diff_snapshots(old: VFSTree, new: VFSTree) -> SnapshotDiff:
    """Compare two snapshots of (nominally) the same namespace.

    This is the passive data-movement query the paper says dual
    snapshots enable: which files appeared, disappeared, or changed
    between index builds, and how many bytes moved.
    """
    old_map = {p: i for p, i in old.iter_inodes()}
    new_map = {p: i for p, i in new.iter_inodes()}
    diff = SnapshotDiff()
    for path, inode in new_map.items():
        prev = old_map.get(path)
        if prev is None:
            diff.created.append(path)
            if inode.ftype is FileType.FILE:
                diff.bytes_delta += inode.size
        elif (
            prev.size != inode.size
            or prev.mtime != inode.mtime
            or prev.mode != inode.mode
            or prev.uid != inode.uid
            or prev.gid != inode.gid
        ):
            diff.changed.append(path)
            diff.bytes_delta += inode.size - prev.size
    for path, inode in old_map.items():
        if path not in new_map:
            diff.removed.append(path)
            if inode.ftype is FileType.FILE:
                diff.bytes_delta -= inode.size
    diff.created.sort()
    diff.removed.sort()
    diff.changed.sort()
    return diff


# keep the private-node import honest for type checkers
_ = _Node
