"""Bounded change journal for a :class:`~repro.fs.tree.VFSTree`.

Production metadata indexes go stale at the pull interval: the paper's
site rebuilds every index on a 4-hour cycle (§III-A4), so freshness
costs O(tree) per cycle no matter how little changed. Robinhood and
Lustre changelogs show the alternative — the file system records every
namespace mutation in a sequence-numbered journal and consumers keep
derived state fresh in O(changes). This module is that journal for the
simulated source tree: :meth:`VFSTree.set_changelog` attaches one, and
every successful mutating operation emits a :class:`ChangeEvent` under
the tree lock, so event order is exactly namespace mutation order.

Design points mirroring real changelogs (Lustre ``changelog_reader``,
Robinhood's pipeline):

* **Monotonic sequence numbers** — each event gets the next ``seq``;
  consumers track a *cursor* (the last seq they have durably applied)
  and :meth:`drain` returns everything after it.
* **Bounded retention** — the journal keeps at most ``capacity``
  events. When a consumer lags far enough that events it has not seen
  were evicted, :meth:`drain` raises :class:`ChangelogOverflow`; the
  consumer must fall back to a full rescan (exactly what Lustre's
  ``changelog_clear`` laggards face).
* **Consumer acknowledgement** — :meth:`release` discards events at or
  below a cursor the consumer has checkpointed, keeping the retained
  window small when consumers keep up.
* **Drain-time coalescing** — repeated metadata events against the
  same (inode, path) collapse to the first one in a drained batch.
  Coalescing happens at *drain* time, never at append time, so it can
  never merge an event a consumer has already applied into one it has
  not (the cursor makes append-time merging unsound).

Coalescing is safe by construction: the consumer maps every event to
the set of index directories it dirties, and a metadata event on an
(inode, path) that an earlier retained event already covers dirties
nothing new — chmod/chown/utime/setxattr/removexattr on a file all
dirty the parent directory, and on a directory all dirty the directory
itself, exactly like the create that may precede them. Structural
events (create/unlink/rmdir/rename) are never coalesced.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

#: ops that only change an existing inode's attributes; these coalesce
METADATA_OPS = frozenset(
    {"chmod", "chown", "utime", "setxattr", "removexattr"}
)

#: every op a journal can carry
ALL_OPS = METADATA_OPS | {"create", "unlink", "rmdir", "rename"}


class ChangelogOverflow(Exception):
    """The journal evicted events the consumer has not applied; only a
    full rebuild can recover the lost delta."""


@dataclass(frozen=True)
class ChangeEvent:
    """One namespace mutation, in the journal's global order.

    ``path`` is the canonical (symlink-free) path of the affected
    entry; for ``rename`` it is the source and ``dst_path`` the
    destination. ``ftype`` is the entry's type (``d``/``f``/``l``) so
    consumers can tell a directory rename (index subtree move) from a
    file rename (two parent-directory touches) without a lookup.
    """

    seq: int
    op: str
    path: str
    ino: int
    ftype: str
    dst_path: str | None = None

    @property
    def is_dir(self) -> bool:
        return self.ftype == "d"


@dataclass(frozen=True)
class ChangeBatch:
    """The result of one :meth:`ChangeJournal.drain`.

    ``events`` are coalesced and in sequence order; ``cursor`` is the
    sequence number the consumer should checkpoint once the whole
    batch is durably applied (it covers every raw event up to and
    including it, coalesced or not).
    """

    events: tuple[ChangeEvent, ...]
    cursor: int
    raw_count: int
    coalesced: int


class ChangeJournal:
    """Thread-safe bounded event journal with cursor-based draining.

    One journal serves one tree; multiple consumers may drain with
    independent cursors, but :meth:`release` should only be driven by
    the slowest one (this codebase uses a single consumer per index).
    """

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[ChangeEvent] = deque()
        self._next_seq = 1
        self._lock = threading.Lock()
        #: lifetime counters (monotonic, survive release())
        self.events_total = 0
        self.dropped_total = 0

    # ------------------------------------------------------------------
    # Producer side (called by VFSTree under its own lock)
    # ------------------------------------------------------------------
    def emit(
        self,
        op: str,
        path: str,
        ino: int,
        ftype: str,
        dst_path: str | None = None,
    ) -> ChangeEvent:
        """Append one event, evicting the oldest when over capacity."""
        if op not in ALL_OPS:
            raise ValueError(f"unknown changelog op {op!r}")
        with self._lock:
            event = ChangeEvent(
                seq=self._next_seq, op=op, path=path, ino=ino,
                ftype=ftype, dst_path=dst_path,
            )
            self._next_seq += 1
            self._events.append(event)
            self.events_total += 1
            while len(self._events) > self.capacity:
                self._events.popleft()
                self.dropped_total += 1
            return event

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    @property
    def head(self) -> int:
        """Sequence number of the newest event ever emitted (0 when
        nothing has been emitted yet)."""
        with self._lock:
            return self._next_seq - 1

    @property
    def oldest_retained(self) -> int:
        """Smallest seq still in the journal (head+1 when empty)."""
        with self._lock:
            return self._events[0].seq if self._events else self._next_seq

    def overflowed(self, cursor: int) -> bool:
        """Would a consumer at ``cursor`` have lost events? True when
        any event in ``(cursor, head]`` has been evicted."""
        with self._lock:
            first = self._events[0].seq if self._events else self._next_seq
            return cursor + 1 < first

    def drain(
        self, cursor: int, limit: int | None = None
    ) -> ChangeBatch:
        """Return the coalesced events after ``cursor``.

        The journal is *not* modified — events stay retained until
        :meth:`release` acknowledges them, so a consumer that crashes
        between drain and checkpoint re-drains the same batch.
        Raises :class:`ChangelogOverflow` when events in the window
        were evicted; an empty batch keeps ``cursor`` unchanged.
        """
        with self._lock:
            first = self._events[0].seq if self._events else self._next_seq
            if cursor + 1 < first:
                raise ChangelogOverflow(
                    f"cursor {cursor} predates oldest retained event "
                    f"{first} ({self.dropped_total} dropped)"
                )
            pending = [e for e in self._events if e.seq > cursor]
        if limit is not None:
            pending = pending[:limit]
        if not pending:
            return ChangeBatch(events=(), cursor=cursor, raw_count=0,
                               coalesced=0)
        kept: list[ChangeEvent] = []
        seen: set[tuple[int, str]] = set()
        coalesced = 0
        for e in pending:
            key = (e.ino, e.path)
            if e.op in METADATA_OPS and key in seen:
                coalesced += 1
                continue
            kept.append(e)
            seen.add(key)
        return ChangeBatch(
            events=tuple(kept),
            cursor=pending[-1].seq,
            raw_count=len(pending),
            coalesced=coalesced,
        )

    def release(self, cursor: int) -> int:
        """Discard events with ``seq <= cursor`` (the consumer has
        checkpointed them). Returns how many were discarded."""
        n = 0
        with self._lock:
            while self._events and self._events[0].seq <= cursor:
                self._events.popleft()
                n += 1
        return n

    def events_between(
        self, after: int, upto: int
    ) -> list[ChangeEvent] | None:
        """Retained events with ``after < seq <= upto`` — or ``None``
        when part of that window has been evicted (callers needing the
        delta must then fall back to path diffing)."""
        if upto <= after:
            return []
        with self._lock:
            first = self._events[0].seq if self._events else self._next_seq
            if after + 1 < first:
                return None
            return [e for e in self._events if after < e.seq <= upto]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
