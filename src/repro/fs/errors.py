"""POSIX-style error hierarchy for the simulated file system.

Each exception mirrors an errno the real syscall interface would
return, so scanner and index code can be written against the same
failure modes a kernel-backed walk would see.
"""

from __future__ import annotations

import errno


class FSError(OSError):
    """Base class for all simulated file-system errors.

    Subclasses set :attr:`ERRNO`; the message always includes the path
    that triggered the failure so walkers can log actionable errors.
    """

    ERRNO: int = errno.EIO

    def __init__(self, path: str, message: str | None = None):
        self.path = path
        msg = message or self.__class__.__doc__ or self.__class__.__name__
        super().__init__(self.ERRNO, f"{msg.splitlines()[0]}: {path!r}")


class NoSuchEntry(FSError):
    """No such file or directory (ENOENT)."""

    ERRNO = errno.ENOENT


class PermissionDenied(FSError):
    """Permission denied (EACCES)."""

    ERRNO = errno.EACCES


class AlreadyExists(FSError):
    """File exists (EEXIST)."""

    ERRNO = errno.EEXIST


class NotADirectory(FSError):
    """Not a directory (ENOTDIR)."""

    ERRNO = errno.ENOTDIR


class IsADirectory(FSError):
    """Is a directory (EISDIR)."""

    ERRNO = errno.EISDIR


class NotEmpty(FSError):
    """Directory not empty (ENOTEMPTY)."""

    ERRNO = errno.ENOTEMPTY


class NoSuchAttr(FSError):
    """No such extended attribute (ENODATA)."""

    ERRNO = errno.ENODATA


class TooManyLinks(FSError):
    """Too many levels of symbolic links (ELOOP)."""

    ERRNO = errno.ELOOP


class InvalidArgument(FSError):
    """Invalid argument (EINVAL)."""

    ERRNO = errno.EINVAL


class ReadOnly(FSError):
    """Read-only file system (EROFS)."""

    ERRNO = errno.EROFS
