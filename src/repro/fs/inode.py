"""Inode and stat structures for the simulated POSIX file system.

An :class:`Inode` carries exactly the metadata GUFI indexes: type,
mode, uid/gid, size, link count, timestamps, xattrs, and (for
symlinks) the target. Directory entries live in the owning
:class:`~repro.fs.tree.VFSTree`, keyed by name, mirroring how a real
file system separates dirents from inodes.
"""

from __future__ import annotations

import enum
import stat as stat_mod
import threading
from dataclasses import dataclass, field


class FileType(enum.Enum):
    """Subset of POSIX file types that metadata indexes care about."""

    FILE = "f"
    DIRECTORY = "d"
    SYMLINK = "l"

    @property
    def ifmt(self) -> int:
        """The ``S_IFMT`` bits for this type."""
        return _IFMT[self]


_IFMT = {
    FileType.FILE: stat_mod.S_IFREG,
    FileType.DIRECTORY: stat_mod.S_IFDIR,
    FileType.SYMLINK: stat_mod.S_IFLNK,
}


@dataclass(frozen=True)
class StatResult:
    """Immutable snapshot of an inode's metadata, like ``os.stat_result``.

    This is the record scanners serialise into trace files and the
    index stores in its ``entries`` tables.
    """

    st_ino: int
    st_mode: int  # type bits | permission bits
    st_nlink: int
    st_uid: int
    st_gid: int
    st_size: int
    st_blksize: int
    st_blocks: int
    st_atime: int
    st_mtime: int
    st_ctime: int

    @property
    def ftype(self) -> FileType:
        fmt = stat_mod.S_IFMT(self.st_mode)
        for ft, bits in _IFMT.items():
            if bits == fmt:
                return ft
        raise ValueError(f"unknown file type bits {fmt:o}")

    @property
    def perm(self) -> int:
        """Permission bits only (the low 12 bits, incl. setuid/sticky)."""
        return stat_mod.S_IMODE(self.st_mode)


# Default block accounting matches common local file systems: 4 KiB
# logical blocks reported in 512-byte units, as stat(2) does.
BLKSIZE = 4096


class InodeAllocator:
    """Thread-safe monotonically increasing inode number source."""

    def __init__(self, start: int = 1):
        self._next = start
        self._lock = threading.Lock()

    def allocate(self) -> int:
        with self._lock:
            ino = self._next
            self._next += 1
            return ino


@dataclass
class Inode:
    """Mutable inode record.

    ``xattrs`` maps attribute name (e.g. ``user.tag``) to a byte
    value. ``symlink_target`` is set only for symlinks. Directory
    children are tracked by the tree, not the inode, but ``nlink``
    is kept POSIX-consistent (2 + number of subdirectories for dirs).
    """

    ino: int
    ftype: FileType
    mode: int  # permission bits only
    uid: int
    gid: int
    size: int = 0
    nlink: int = 1
    atime: int = 0
    mtime: int = 0
    ctime: int = 0
    xattrs: dict[str, bytes] = field(default_factory=dict)
    symlink_target: str | None = None

    def __post_init__(self) -> None:
        if self.ftype is FileType.DIRECTORY:
            self.nlink = max(self.nlink, 2)
        if self.ftype is FileType.SYMLINK:
            if self.symlink_target is None:
                raise ValueError("symlink inode requires a target")
            self.size = len(self.symlink_target)

    def stat(self) -> StatResult:
        """Produce an immutable stat snapshot of this inode."""
        blocks = (self.size + 511) // 512
        return StatResult(
            st_ino=self.ino,
            st_mode=self.ftype.ifmt | (self.mode & 0o7777),
            st_nlink=self.nlink,
            st_uid=self.uid,
            st_gid=self.gid,
            st_size=self.size,
            st_blksize=BLKSIZE,
            st_blocks=blocks,
            st_atime=self.atime,
            st_mtime=self.mtime,
            st_ctime=self.ctime,
        )

    def clone(self) -> "Inode":
        """Deep copy for snapshots; xattr dict is copied, values shared
        (bytes are immutable)."""
        return Inode(
            ino=self.ino,
            ftype=self.ftype,
            mode=self.mode,
            uid=self.uid,
            gid=self.gid,
            size=self.size,
            nlink=self.nlink,
            atime=self.atime,
            mtime=self.mtime,
            ctime=self.ctime,
            xattrs=dict(self.xattrs),
            symlink_target=self.symlink_target,
        )
