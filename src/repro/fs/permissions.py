"""POSIX permission semantics, reproduced bit-for-bit in user space.

GUFI's security model (paper §III-A) rests on the observation that the
index tree replicates source-tree ownership and mode bits, so standard
POSIX checks gate what a user's query may traverse. In the paper the
kernel performs those checks; here (single-uid container) we implement
``access(2)`` semantics explicitly and apply them wherever the paper
relies on the OS:

* the query engine's breadth-first descent (search ``x`` on each
  directory, read ``r`` to list it),
* the "stat needs every ancestor searchable, not the entry readable"
  rule for metadata visibility,
* xattr *value* access (requires read permission on the entry, like
  file data), versus xattr *names* (metadata-protected).
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Permission bit masks (octal), kept explicit for readability in checks.
R_USR, W_USR, X_USR = 0o400, 0o200, 0o100
R_GRP, W_GRP, X_GRP = 0o040, 0o020, 0o010
R_OTH, W_OTH, X_OTH = 0o004, 0o002, 0o001

READ, WRITE, EXECUTE = 4, 2, 1

ROOT_UID = 0


@dataclass(frozen=True)
class Credentials:
    """An identity performing file-system or index operations.

    ``groups`` is the full supplementary group set; ``gid`` is always
    treated as a member group even if absent from ``groups``.
    """

    uid: int
    gid: int
    groups: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self):
        object.__setattr__(self, "groups", frozenset(self.groups) | {self.gid})

    @property
    def is_root(self) -> bool:
        return self.uid == ROOT_UID

    def in_group(self, gid: int) -> bool:
        return gid in self.groups


ROOT = Credentials(uid=ROOT_UID, gid=0)


def mode_bits_for(mode: int, uid: int, gid: int, creds: Credentials) -> int:
    """Return the rwx bit triplet (0-7) that applies to ``creds``.

    POSIX picks exactly one class — owner, then group, then other —
    and does *not* fall through: an owner denied read does not gain it
    from a permissive "other" class.
    """
    if creds.uid == uid:
        return (mode >> 6) & 0o7
    if creds.in_group(gid):
        return (mode >> 3) & 0o7
    return mode & 0o7


def check_access(
    mode: int, uid: int, gid: int, creds: Credentials, want: int
) -> bool:
    """``access(2)``: may ``creds`` perform ``want`` (R|W|X mask)?

    Root bypasses read/write checks always, and execute checks when
    any execute bit is set anywhere in the mode (the kernel rule for
    directories is simpler — root always may search — which this
    also satisfies since we only call it for directories here).
    """
    if creds.is_root:
        if want & EXECUTE and not (mode & (X_USR | X_GRP | X_OTH)):
            # Root may always search directories; for regular files
            # exec requires at least one x bit. Callers pass directory
            # modes for traversal, which virtually always carry x, so
            # keep the conservative file rule and special-case dirs at
            # the call site via `root_is_dir`.
            return False
        return True
    bits = mode_bits_for(mode, uid, gid, creds)
    return (bits & want) == want


def can_search_dir(mode: int, uid: int, gid: int, creds: Credentials) -> bool:
    """May ``creds`` use this directory as a path component (x bit)?"""
    if creds.is_root:
        return True
    return bool(mode_bits_for(mode, uid, gid, creds) & EXECUTE)


def can_read_dir(mode: int, uid: int, gid: int, creds: Credentials) -> bool:
    """May ``creds`` list this directory's names (r bit)?"""
    if creds.is_root:
        return True
    return bool(mode_bits_for(mode, uid, gid, creds) & READ)


def can_read_entry(mode: int, uid: int, gid: int, creds: Credentials) -> bool:
    """May ``creds`` read the entry's *contents* (file data or xattr
    values)? Metadata (stat, xattr names) needs only ancestor search
    bits, not this."""
    if creds.is_root:
        return True
    return bool(mode_bits_for(mode, uid, gid, creds) & READ)


def can_write_entry(mode: int, uid: int, gid: int, creds: Credentials) -> bool:
    if creds.is_root:
        return True
    return bool(mode_bits_for(mode, uid, gid, creds) & WRITE)


def format_mode(ftype_char: str, mode: int) -> str:
    """Render ``drwxr-xr-x``-style strings for ls-like output."""
    out = [ftype_char if ftype_char != "f" else "-"]
    for shift in (6, 3, 0):
        bits = (mode >> shift) & 0o7
        out.append("r" if bits & READ else "-")
        out.append("w" if bits & WRITE else "-")
        out.append("x" if bits & EXECUTE else "-")
    return "".join(out)
