"""A mounted view of a VFS tree with per-operation access costs.

:class:`MountedFS` binds a :class:`~repro.fs.tree.VFSTree` to a
:class:`~repro.sim.netfs.NetFSCostModel` and a
:class:`~repro.sim.clock.VirtualClock`: every metadata operation both
executes against the tree *and* charges the clock with the latency
that operation would incur on the modelled file system (a Lustre
client, an NFS mount, a local XFS...). The Fig 1 baselines
(`find -ls`, `du -s`) run against MountedFS instances so their
reported times reflect each file system's metadata RPC costs.
"""

from __future__ import annotations

from repro.sim.clock import VirtualClock
from repro.sim.netfs import NetFSCostModel

from .inode import StatResult
from .permissions import ROOT, Credentials
from .tree import DirEntry, VFSTree


class MountedFS:
    """Cost-charging façade over a VFS tree.

    Only the read-side metadata operations used by query baselines are
    exposed; index *construction* scans use the scanner classes in
    :mod:`repro.scan`, which have their own cost accounting.
    """

    def __init__(
        self,
        tree: VFSTree,
        cost_model: NetFSCostModel,
        clock: VirtualClock | None = None,
    ):
        self.tree = tree
        self.cost = cost_model
        self.clock = clock if clock is not None else VirtualClock()

    @property
    def name(self) -> str:
        return self.cost.name

    def stat(self, path: str, creds: Credentials = ROOT) -> StatResult:
        self.cost.charge_stat(self.clock)
        return self.tree.stat(path, creds)

    def lstat(self, path: str, creds: Credentials = ROOT) -> StatResult:
        self.cost.charge_stat(self.clock)
        return self.tree.lstat(path, creds)

    def readdir(self, path: str, creds: Credentials = ROOT) -> list[DirEntry]:
        entries = self.tree.readdir(path, creds)
        self.cost.charge_readdir(self.clock, len(entries))
        return entries

    def getxattr(
        self,
        path: str,
        name: str,
        creds: Credentials = ROOT,
        follow: bool = True,
    ) -> bytes:
        self.cost.charge_getxattr(self.clock)
        return self.tree.getxattr(path, name, creds, follow=follow)

    def listxattr(self, path: str, creds: Credentials = ROOT) -> list[str]:
        self.cost.charge_getxattr(self.clock)
        return self.tree.listxattr(path, creds)
