"""Simulated POSIX file-system substrate.

Stands in for the production source file systems (NFS, Lustre, HPSS,
local XFS) the paper scans and queries: an in-memory namespace with
full POSIX ownership, permission, timestamp, symlink, and extended-
attribute semantics, plus consistent snapshots and mount-point cost
models for remote-access latency.
"""

from .errors import (
    AlreadyExists,
    FSError,
    InvalidArgument,
    IsADirectory,
    NoSuchAttr,
    NoSuchEntry,
    NotADirectory,
    NotEmpty,
    PermissionDenied,
    ReadOnly,
    TooManyLinks,
)
from .changelog import (
    METADATA_OPS,
    ChangeBatch,
    ChangeEvent,
    ChangeJournal,
    ChangelogOverflow,
)
from .inode import BLKSIZE, FileType, Inode, StatResult
from .mounts import MountedFS
from .permissions import (
    ROOT,
    Credentials,
    can_read_dir,
    can_read_entry,
    can_search_dir,
    can_write_entry,
    check_access,
    format_mode,
    mode_bits_for,
)
from .snapshot import SnapshotDiff, diff_snapshots, snapshot
from .tree import DirEntry, VFSTree

__all__ = [
    "AlreadyExists",
    "BLKSIZE",
    "ChangeBatch",
    "ChangeEvent",
    "ChangeJournal",
    "ChangelogOverflow",
    "Credentials",
    "DirEntry",
    "METADATA_OPS",
    "FSError",
    "FileType",
    "Inode",
    "InvalidArgument",
    "IsADirectory",
    "MountedFS",
    "NoSuchAttr",
    "NoSuchEntry",
    "NotADirectory",
    "NotEmpty",
    "PermissionDenied",
    "ROOT",
    "ReadOnly",
    "SnapshotDiff",
    "StatResult",
    "TooManyLinks",
    "VFSTree",
    "can_read_dir",
    "can_read_entry",
    "can_search_dir",
    "can_write_entry",
    "check_access",
    "diff_snapshots",
    "format_mode",
    "mode_bits_for",
    "snapshot",
]
