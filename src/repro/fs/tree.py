"""In-memory POSIX file-system tree (the "source file system").

This is the substrate standing in for the NFS/Lustre/HPSS namespaces
GUFI scans in the paper. It models exactly what metadata indexing
consumes: a hierarchical namespace of directories, files, and
symlinks, each with full POSIX ownership/mode/timestamps and extended
attributes, with permission checks applied per-credential on every
operation.

The tree is thread-safe (a single reader-friendly lock; operations are
short) so the parallel breadth-first scanners in :mod:`repro.scan` can
walk it concurrently, as GUFI's threaded walkers do against real file
systems.
"""

from __future__ import annotations

import posixpath
import threading
from collections.abc import Callable, Iterator
from dataclasses import dataclass

from .errors import (
    AlreadyExists,
    InvalidArgument,
    IsADirectory,
    NoSuchAttr,
    NoSuchEntry,
    NotADirectory,
    NotEmpty,
    PermissionDenied,
    TooManyLinks,
)
from .inode import FileType, Inode, InodeAllocator, StatResult
from .permissions import (
    ROOT,
    Credentials,
    can_read_dir,
    can_read_entry,
    can_search_dir,
    can_write_entry,
)

MAX_SYMLINK_DEPTH = 40  # Linux's ELOOP limit


@dataclass
class DirEntry:
    """A (name, inode) pair as returned by :meth:`VFSTree.readdir`."""

    name: str
    ino: int
    ftype: FileType


class _Node:
    """Internal tree node: an inode plus (for directories) children."""

    __slots__ = ("inode", "children", "parent")

    def __init__(self, inode: Inode, parent: "_Node | None"):
        self.inode = inode
        self.parent = parent
        self.children: dict[str, _Node] | None = (
            {} if inode.ftype is FileType.DIRECTORY else None
        )


class VFSTree:
    """A simulated POSIX namespace rooted at ``/``.

    All mutating and credential-checked operations take a
    :class:`Credentials`; the privileged scanner interface
    (:meth:`walk`, :meth:`stat_ino`) uses root credentials, matching
    the paper's privileged source-tree scans.
    """

    def __init__(self, root_mode: int = 0o755, root_uid: int = 0, root_gid: int = 0):
        self._alloc = InodeAllocator()
        self._clock = 0
        self._lock = threading.RLock()
        root_inode = Inode(
            ino=self._alloc.allocate(),
            ftype=FileType.DIRECTORY,
            mode=root_mode,
            uid=root_uid,
            gid=root_gid,
        )
        self._root = _Node(root_inode, parent=None)
        self._nfiles = 0
        self._ndirs = 1
        self._nsymlinks = 0
        #: optional FaultPlan-shaped object (see repro.scan.faults)
        #: firing "vfs.readdir"/"vfs.get_inode" — lets tests make
        #: source-tree reads fail deterministically, like a flaky NFS
        self._faults = None
        #: optional ChangeJournal (see repro.fs.changelog) receiving
        #: one event per successful namespace mutation, emitted under
        #: the tree lock so journal order == mutation order
        self._changelog = None

    def set_fault_plan(self, plan) -> None:
        """Attach a deterministic fault plan to this tree's read
        operations (``None`` detaches). Duck-typed: anything with
        ``fire(site, key)`` works."""
        self._faults = plan

    def set_changelog(self, journal) -> None:
        """Attach a change journal recording every namespace mutation
        (``None`` detaches). Duck-typed: anything with
        ``emit(op, path, ino, ftype, dst_path=None)`` works."""
        self._changelog = journal

    def _node_path(self, node: _Node) -> str:
        """Canonical (symlink-free) absolute path of an attached node,
        reconstructed through parent pointers. Called under the lock."""
        parts: list[str] = []
        while node.parent is not None:
            parent = node.parent
            assert parent.children is not None
            for name, child in parent.children.items():
                if child is node:
                    parts.append(name)
                    break
            else:  # pragma: no cover - would mean a corrupted tree
                raise RuntimeError("node detached from tree")
            node = parent
        return "/" + "/".join(reversed(parts))

    def _emit(
        self,
        op: str,
        path: str,
        inode: Inode,
        dst_path: str | None = None,
    ) -> None:
        if self._changelog is not None:
            self._changelog.emit(
                op, path, inode.ino, inode.ftype.value, dst_path=dst_path
            )

    # ------------------------------------------------------------------
    # Counters / time
    # ------------------------------------------------------------------
    @property
    def num_dirs(self) -> int:
        return self._ndirs

    @property
    def num_files(self) -> int:
        return self._nfiles

    @property
    def num_symlinks(self) -> int:
        return self._nsymlinks

    def _now(self) -> int:
        """Logical timestamp: a monotone counter, so generated trees
        are deterministic regardless of wall-clock."""
        self._clock += 1
        return self._clock

    def set_time(self, value: int) -> None:
        """Advance the logical clock (e.g. to age entries for purge-
        policy examples). Only moves forward."""
        with self._lock:
            self._clock = max(self._clock, value)

    # ------------------------------------------------------------------
    # Path resolution
    # ------------------------------------------------------------------
    @staticmethod
    def _split(path: str) -> list[str]:
        norm = posixpath.normpath(path)
        if not norm.startswith("/"):
            raise InvalidArgument(path, "paths must be absolute")
        return [p for p in norm.split("/") if p]

    def _resolve(
        self,
        path: str,
        creds: Credentials,
        *,
        follow: bool = True,
        _depth: int = 0,
    ) -> _Node:
        """Walk ``path`` from the root, enforcing search permission on
        every directory component, following symlinks if ``follow``."""
        if _depth > MAX_SYMLINK_DEPTH:
            raise TooManyLinks(path)
        node = self._root
        parts = self._split(path)
        for i, part in enumerate(parts):
            inode = node.inode
            if inode.ftype is not FileType.DIRECTORY:
                raise NotADirectory("/" + "/".join(parts[:i]))
            if not can_search_dir(inode.mode, inode.uid, inode.gid, creds):
                raise PermissionDenied("/" + "/".join(parts[:i]))
            assert node.children is not None
            child = node.children.get(part)
            if child is None:
                raise NoSuchEntry("/" + "/".join(parts[: i + 1]))
            if child.inode.ftype is FileType.SYMLINK:
                is_last = i == len(parts) - 1
                if is_last and not follow:
                    return child
                target = child.inode.symlink_target
                assert target is not None
                rest = "/".join(parts[i + 1 :])
                if not target.startswith("/"):
                    target = "/" + "/".join(parts[:i] + [target])
                full = target if not rest else posixpath.join(target, rest)
                return self._resolve(full, creds, follow=follow, _depth=_depth + 1)
            node = child
        return node

    def _resolve_parent(
        self, path: str, creds: Credentials
    ) -> tuple[_Node, str]:
        parts = self._split(path)
        if not parts:
            raise InvalidArgument(path, "cannot operate on /")
        parent_path = "/" + "/".join(parts[:-1])
        parent = self._resolve(parent_path, creds, follow=True)
        if parent.inode.ftype is not FileType.DIRECTORY:
            raise NotADirectory(parent_path)
        return parent, parts[-1]

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------
    def _insert(
        self,
        path: str,
        creds: Credentials,
        inode_factory: Callable[[int, int], Inode],
    ) -> Inode:
        with self._lock:
            parent, name = self._resolve_parent(path, creds)
            p_inode = parent.inode
            if not can_search_dir(p_inode.mode, p_inode.uid, p_inode.gid, creds):
                raise PermissionDenied(path)
            if not can_write_entry(p_inode.mode, p_inode.uid, p_inode.gid, creds):
                raise PermissionDenied(path)
            assert parent.children is not None
            if name in parent.children:
                raise AlreadyExists(path)
            now = self._now()
            inode = inode_factory(self._alloc.allocate(), now)
            node = _Node(inode, parent)
            parent.children[name] = node
            p_inode.mtime = p_inode.ctime = now
            if inode.ftype is FileType.DIRECTORY:
                p_inode.nlink += 1
                self._ndirs += 1
            elif inode.ftype is FileType.FILE:
                self._nfiles += 1
            else:
                self._nsymlinks += 1
            self._emit(
                "create", posixpath.join(self._node_path(parent), name), inode
            )
            return inode

    def mkdir(
        self,
        path: str,
        mode: int = 0o755,
        creds: Credentials = ROOT,
        uid: int | None = None,
        gid: int | None = None,
    ) -> Inode:
        """Create a directory. ``uid``/``gid`` override the creating
        credentials (privileged restore semantics, like tar as root)."""
        return self._insert(
            path,
            creds,
            lambda ino, now: Inode(
                ino=ino,
                ftype=FileType.DIRECTORY,
                mode=mode,
                uid=creds.uid if uid is None else uid,
                gid=creds.gid if gid is None else gid,
                atime=now,
                mtime=now,
                ctime=now,
            ),
        )

    def makedirs(
        self,
        path: str,
        mode: int = 0o755,
        creds: Credentials = ROOT,
        uid: int | None = None,
        gid: int | None = None,
    ) -> None:
        """``mkdir -p``: create all missing components."""
        parts = self._split(path)
        cur = ""
        for part in parts:
            cur = f"{cur}/{part}"
            try:
                self.mkdir(cur, mode=mode, creds=creds, uid=uid, gid=gid)
            except AlreadyExists:
                continue

    def create_file(
        self,
        path: str,
        size: int = 0,
        mode: int = 0o644,
        creds: Credentials = ROOT,
        uid: int | None = None,
        gid: int | None = None,
        mtime: int | None = None,
    ) -> Inode:
        """Create a regular file of ``size`` logical bytes. Content is
        never stored — metadata indexing needs only the size."""

        def factory(ino: int, now: int) -> Inode:
            ts = now if mtime is None else mtime
            return Inode(
                ino=ino,
                ftype=FileType.FILE,
                mode=mode,
                uid=creds.uid if uid is None else uid,
                gid=creds.gid if gid is None else gid,
                size=size,
                atime=ts,
                mtime=ts,
                ctime=ts,
            )

        return self._insert(path, creds, factory)

    def symlink(
        self,
        path: str,
        target: str,
        creds: Credentials = ROOT,
        uid: int | None = None,
        gid: int | None = None,
    ) -> Inode:
        """Create a symbolic link at ``path`` pointing to ``target``."""
        return self._insert(
            path,
            creds,
            lambda ino, now: Inode(
                ino=ino,
                ftype=FileType.SYMLINK,
                mode=0o777,
                uid=creds.uid if uid is None else uid,
                gid=creds.gid if gid is None else gid,
                symlink_target=target,
                atime=now,
                mtime=now,
                ctime=now,
            ),
        )

    # ------------------------------------------------------------------
    # Removal
    # ------------------------------------------------------------------
    def unlink(self, path: str, creds: Credentials = ROOT) -> None:
        """Remove a file or symlink."""
        with self._lock:
            parent, name = self._resolve_parent(path, creds)
            p = parent.inode
            if not (
                can_search_dir(p.mode, p.uid, p.gid, creds)
                and can_write_entry(p.mode, p.uid, p.gid, creds)
            ):
                raise PermissionDenied(path)
            assert parent.children is not None
            node = parent.children.get(name)
            if node is None:
                raise NoSuchEntry(path)
            if node.inode.ftype is FileType.DIRECTORY:
                raise IsADirectory(path)
            canon = posixpath.join(self._node_path(parent), name)
            del parent.children[name]
            p.mtime = p.ctime = self._now()
            if node.inode.ftype is FileType.FILE:
                self._nfiles -= 1
            else:
                self._nsymlinks -= 1
            self._emit("unlink", canon, node.inode)

    def rmdir(self, path: str, creds: Credentials = ROOT) -> None:
        """Remove an empty directory."""
        with self._lock:
            parent, name = self._resolve_parent(path, creds)
            p = parent.inode
            if not (
                can_search_dir(p.mode, p.uid, p.gid, creds)
                and can_write_entry(p.mode, p.uid, p.gid, creds)
            ):
                raise PermissionDenied(path)
            assert parent.children is not None
            node = parent.children.get(name)
            if node is None:
                raise NoSuchEntry(path)
            if node.inode.ftype is not FileType.DIRECTORY:
                raise NotADirectory(path)
            assert node.children is not None
            if node.children:
                raise NotEmpty(path)
            canon = posixpath.join(self._node_path(parent), name)
            del parent.children[name]
            p.nlink -= 1
            p.mtime = p.ctime = self._now()
            self._ndirs -= 1
            self._emit("rmdir", canon, node.inode)

    def rename(
        self, old: str, new: str, creds: Credentials = ROOT
    ) -> None:
        """``rename(2)``: move an entry (file, symlink, or directory
        subtree) to a new path. Requires write+search on both parent
        directories; refuses to replace an existing destination (the
        overwrite flavours are not needed by the indexing workloads)."""
        with self._lock:
            src_parent, src_name = self._resolve_parent(old, creds)
            dst_parent, dst_name = self._resolve_parent(new, creds)
            for parent, path in ((src_parent, old), (dst_parent, new)):
                p = parent.inode
                if not (
                    can_search_dir(p.mode, p.uid, p.gid, creds)
                    and can_write_entry(p.mode, p.uid, p.gid, creds)
                ):
                    raise PermissionDenied(path)
            assert src_parent.children is not None
            assert dst_parent.children is not None
            node = src_parent.children.get(src_name)
            if node is None:
                raise NoSuchEntry(old)
            if dst_name in dst_parent.children:
                raise AlreadyExists(new)
            # moving a directory into its own subtree would orphan it
            if node.inode.ftype is FileType.DIRECTORY:
                probe = dst_parent
                while probe is not None:
                    if probe is node:
                        raise InvalidArgument(new, "destination inside source")
                    probe = probe.parent
            canon_old = posixpath.join(self._node_path(src_parent), src_name)
            del src_parent.children[src_name]
            dst_parent.children[dst_name] = node
            node.parent = dst_parent
            now = self._now()
            if node.inode.ftype is FileType.DIRECTORY:
                src_parent.inode.nlink -= 1
                dst_parent.inode.nlink += 1
            src_parent.inode.mtime = src_parent.inode.ctime = now
            dst_parent.inode.mtime = dst_parent.inode.ctime = now
            node.inode.ctime = now
            canon_new = posixpath.join(self._node_path(dst_parent), dst_name)
            self._emit("rename", canon_old, node.inode, dst_path=canon_new)

    # ------------------------------------------------------------------
    # Metadata access
    # ------------------------------------------------------------------
    def stat(self, path: str, creds: Credentials = ROOT) -> StatResult:
        """``stat(2)``: requires search on all ancestors only (§III-A1:
        there is no requirement that the entry itself be readable)."""
        with self._lock:
            return self._resolve(path, creds, follow=True).inode.stat()

    def lstat(self, path: str, creds: Credentials = ROOT) -> StatResult:
        with self._lock:
            return self._resolve(path, creds, follow=False).inode.stat()

    def readlink(self, path: str, creds: Credentials = ROOT) -> str:
        with self._lock:
            node = self._resolve(path, creds, follow=False)
            if node.inode.ftype is not FileType.SYMLINK:
                raise InvalidArgument(path, "not a symlink")
            assert node.inode.symlink_target is not None
            return node.inode.symlink_target

    def readdir(self, path: str, creds: Credentials = ROOT) -> list[DirEntry]:
        """``readdir``: requires the directory's read bit."""
        if self._faults is not None:
            self._faults.fire("vfs.readdir", path)
        with self._lock:
            node = self._resolve(path, creds, follow=True)
            inode = node.inode
            if inode.ftype is not FileType.DIRECTORY:
                raise NotADirectory(path)
            if not can_read_dir(inode.mode, inode.uid, inode.gid, creds):
                raise PermissionDenied(path)
            inode.atime = self._now()
            assert node.children is not None
            return [
                DirEntry(name=n, ino=c.inode.ino, ftype=c.inode.ftype)
                for n, c in sorted(node.children.items())
            ]

    def chmod(self, path: str, mode: int, creds: Credentials = ROOT) -> None:
        with self._lock:
            node = self._resolve(path, creds, follow=True)
            inode = node.inode
            if not creds.is_root and creds.uid != inode.uid:
                raise PermissionDenied(path)
            inode.mode = mode & 0o7777
            inode.ctime = self._now()
            self._emit("chmod", self._node_path(node), inode)

    def chown(
        self, path: str, uid: int, gid: int, creds: Credentials = ROOT
    ) -> None:
        with self._lock:
            if not creds.is_root:
                raise PermissionDenied(path, "chown requires privilege")
            node = self._resolve(path, creds, follow=True)
            node.inode.uid = uid
            node.inode.gid = gid
            node.inode.ctime = self._now()
            self._emit("chown", self._node_path(node), node.inode)

    def utime(
        self, path: str, atime: int, mtime: int, creds: Credentials = ROOT
    ) -> None:
        with self._lock:
            node = self._resolve(path, creds, follow=True)
            inode = node.inode
            if not creds.is_root and creds.uid != inode.uid:
                raise PermissionDenied(path)
            inode.atime = atime
            inode.mtime = mtime
            inode.ctime = self._now()
            self._emit("utime", self._node_path(node), inode)

    # ------------------------------------------------------------------
    # Extended attributes (§III-A2 protection rules)
    # ------------------------------------------------------------------
    def setxattr(
        self, path: str, name: str, value: bytes, creds: Credentials = ROOT
    ) -> None:
        """Setting an xattr requires write permission on the entry."""
        with self._lock:
            node = self._resolve(path, creds, follow=True)
            inode = node.inode
            if not can_write_entry(inode.mode, inode.uid, inode.gid, creds):
                raise PermissionDenied(path)
            inode.xattrs[name] = bytes(value)
            inode.ctime = self._now()
            self._emit("setxattr", self._node_path(node), inode)

    def getxattr(
        self,
        path: str,
        name: str,
        creds: Credentials = ROOT,
        follow: bool = True,
    ) -> bytes:
        """Xattr *values* are protected like file data: read bit needed.

        ``follow=False`` is ``lgetxattr``/``getfattr -h``: the symlink
        itself is examined, and (like Linux) symlinks carry no user
        xattrs, so the attribute is reported absent.
        """
        with self._lock:
            node = self._resolve(path, creds, follow=follow)
            inode = node.inode
            if inode.ftype is FileType.SYMLINK:
                raise NoSuchAttr(path, f"no xattr {name!r} (symlink)")
            if not can_read_entry(inode.mode, inode.uid, inode.gid, creds):
                raise PermissionDenied(path)
            try:
                return inode.xattrs[name]
            except KeyError:
                raise NoSuchAttr(path, f"no xattr {name!r}") from None

    def listxattr(self, path: str, creds: Credentials = ROOT) -> list[str]:
        """Xattr *names* are metadata: only ancestor search bits gate
        access (enforced by path resolution), not the entry's read bit."""
        with self._lock:
            node = self._resolve(path, creds, follow=True)
            return sorted(node.inode.xattrs)

    def removexattr(
        self, path: str, name: str, creds: Credentials = ROOT
    ) -> None:
        with self._lock:
            node = self._resolve(path, creds, follow=True)
            inode = node.inode
            if not can_write_entry(inode.mode, inode.uid, inode.gid, creds):
                raise PermissionDenied(path)
            if name not in inode.xattrs:
                raise NoSuchAttr(path, f"no xattr {name!r}")
            del inode.xattrs[name]
            inode.ctime = self._now()
            self._emit("removexattr", self._node_path(node), inode)

    # ------------------------------------------------------------------
    # Privileged scanner interface
    # ------------------------------------------------------------------
    def walk(
        self, top: str = "/", creds: Credentials = ROOT
    ) -> Iterator[tuple[str, list[str], list[str]]]:
        """``os.walk``-style breadth-first iterator (dirpath, dirnames,
        filenames+symlinks). Entries the credentials cannot list are
        silently skipped, as ``find`` does (with a warning on stderr in
        the real tool)."""
        queue = [posixpath.normpath(top)]
        while queue:
            dirpath = queue.pop(0)
            try:
                entries = self.readdir(dirpath, creds)
            except (PermissionDenied, NoSuchEntry, NotADirectory):
                continue
            dirnames = [e.name for e in entries if e.ftype is FileType.DIRECTORY]
            others = [e.name for e in entries if e.ftype is not FileType.DIRECTORY]
            yield dirpath, dirnames, others
            queue.extend(posixpath.join(dirpath, d) for d in dirnames)

    def iter_inodes(self) -> Iterator[tuple[str, Inode]]:
        """Inode-order-ish iterator over (path, inode) pairs without
        permission checks — the substrate for 'fast inode scan' tools
        (Lester / Spectrum Scale ILM) that read metadata tables
        directly on the server, bypassing the namespace."""
        stack: list[tuple[str, _Node]] = [("/", self._root)]
        while stack:
            path, node = stack.pop()
            yield path, node.inode
            if node.children is not None:
                for name, child in node.children.items():
                    stack.append((posixpath.join(path, name), child))

    def get_inode(self, path: str, creds: Credentials = ROOT) -> Inode:
        """Privileged direct inode access (scanners, snapshot tooling)."""
        if self._faults is not None:
            self._faults.fire("vfs.get_inode", path)
        with self._lock:
            return self._resolve(path, creds, follow=False).inode

    def exists(self, path: str, creds: Credentials = ROOT) -> bool:
        try:
            self._resolve(path, creds, follow=False)
            return True
        except (NoSuchEntry, NotADirectory, PermissionDenied):
            return False
