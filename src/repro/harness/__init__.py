"""Benchmark harness: experiment drivers (one per paper table/figure)
and result-table rendering."""

from .experiments import (
    DEFAULT_THREADS,
    build_resilience,
    fig1,
    fig7,
    fig8,
    fig9,
    fig10,
    ingest_rate,
    modeled_gufi_time,
    planning_ablation,
    rollup_reduction,
    table1,
)
from . import paper
from .results import ResultTable, ascii_chart, fmt_bytes, fmt_duration, fmt_value

__all__ = [
    "paper",
    "DEFAULT_THREADS",
    "ResultTable",
    "ascii_chart",
    "build_resilience",
    "fig1",
    "fig10",
    "fig7",
    "fig8",
    "fig9",
    "fmt_bytes",
    "fmt_duration",
    "fmt_value",
    "ingest_rate",
    "modeled_gufi_time",
    "planning_ablation",
    "rollup_reduction",
    "table1",
]
