"""The paper's reported numbers, as data.

EXPERIMENTS.md narrates paper-versus-measured; this module carries the
paper's side machine-readably so benches and tests can assert shape
claims against the source instead of against constants scattered
through the code.

Every value is transcribed from the SC 2022 paper (tables, figures,
and evaluation prose); section references are in the field comments.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperTable1Row:
    filesystem: str
    fstype: str
    dirs: int
    files: int
    scan_type: str
    scan_minutes: float
    index_creation: str  # "in-situ" or seconds as text


#: Table I verbatim.
TABLE1: tuple[PaperTable1Row, ...] = (
    PaperTable1Row("/users", "NFS", 6_100_000, 43_000_000, "treewalk", 50, "in-situ"),
    PaperTable1Row("/proj", "NFS", 35_700_000, 263_000_000, "treewalk", 133, "in-situ"),
    PaperTable1Row("/scratch1", "Lustre", 7_400_000, 102_000_000, "lester", 19, "158s"),
    PaperTable1Row("/scratch2", "Lustre", 16_500_000, 225_000_000, "treewalk", 216, "in-situ"),
    PaperTable1Row("/archive", "HPSS", 5_700_000, 193_000_000, "sql", 125, "229s"),
)

#: Table II: evaluation datasets.
DATASET1_DIRS, DATASET1_FILES = 1_600_000, 13_200_000
DATASET2_DIRS, DATASET2_FILES = 2_200_000, 64_700_000

#: Fig 1 workload.
FIG1_KERNEL_FILES = 74_000

#: Fig 7 (§IV-A): saturation thread count for one SSD; observed
#: two-SSD throughput and utilisation; device ceilings.
FIG7_SATURATION_THREADS = 112
FIG7_TWO_SSD_GBPS = 5.26
FIG7_TWO_SSD_UTILISATION = 0.82
FIG7_SSD_GBPS = 3.2

#: Fig 8 (§IV-B): rollup process time band at limits >= 10K; the
#: sweet-spot limit and its rollup/query times; NONE and MAX query
#: times for the full-touch query.
FIG8_ROLLUP_SECONDS_BAND = (367.0, 485.0)
FIG8_BEST_LIMIT = 250_000
FIG8_BEST_ROLLUP_SECONDS = 367.0
FIG8_BEST_QUERY_SECONDS = 2.6
FIG8_NONE_QUERY_SECONDS = 18.0
FIG8_MAX_QUERY_SECONDS = 8.0
#: Brindexer shard sizes ranged 24-80 MB; GUFI 250K produced 34K
#: databases with the largest at 29 MB.
FIG8_BRINDEXER_SHARD_MB = (24, 80)
FIG8_GUFI_250K_DBS = 34_000
FIG8_GUFI_250K_LARGEST_MB = 29

#: §IV-B prose: database-count reduction from unlimited rollup.
ROLLUP_REDUCTION_MEAN = 386
ROLLUP_REDUCTION_HOME_MAX = 741
ROLLUP_REDUCTION_PROJECT_MIN = 77

#: Fig 9 (§IV-C): GUFI speedup over XFS find+getfattr per coverage,
#: and the stab-query gain band.
FIG9_SPEEDUPS = {0.25: 33.0, 0.5: 22.0, 1.0: 12.0}
FIG9_STAB_GAIN = (2.0, 5.0)

#: Fig 10 (§IV-D): admin-query speedups over Brindexer.
FIG10_SPEEDUPS = (1.5, 8.2, 6.3, 230.0)
FIG10_USERS_SAMPLED = 150
#: tsummary build time, before vs after the 250K rollup.
TSUMMARY_SECONDS_UNROLLED = 14.8
TSUMMARY_SECONDS_ROLLED = 0.368

#: §III-A4 ingest prose.
INGEST_MILLION_DIRS_SECONDS = 18.0
INGEST_100M_ROWS_SECONDS = 120.0

#: §IV intro: implementation size.
PAPER_LOC_C = 14_000


def fig10_expected_ordering() -> list[int]:
    """Indices of the four queries sorted by expected speedup,
    ascending — the shape benches assert (query 4 dominates)."""
    return sorted(range(4), key=lambda i: FIG10_SPEEDUPS[i])
