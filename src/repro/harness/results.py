"""Result tables for the benchmark harness.

Every experiment driver returns a :class:`ResultTable` that renders
the same rows/series the paper's table or figure reports, so a
benchmark run's stdout is directly comparable with the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def fmt_value(v: Any) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.4f}"
    if isinstance(v, int) and abs(v) >= 10000:
        return f"{v:,}"
    return str(v)


def fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024:
            return f"{n:.1f} {unit}"
        n /= 1024
    return f"{n:.1f} PiB"


def fmt_duration(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} µs"
    if seconds < 1:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120:
        return f"{seconds:.2f} s"
    return f"{seconds / 60:.1f} min"


def ascii_chart(
    title: str,
    series: dict[str, list[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    logx: bool = False,
) -> str:
    """Plot one or more (x, y) series as a character grid — enough to
    eyeball the paper's figure shapes (saturation knees, crossovers)
    straight from a terminal. Each series gets a distinct glyph."""
    glyphs = "*o+x#@%&"
    points: list[tuple[float, float, str]] = []
    legend = []
    for i, (name, pts) in enumerate(series.items()):
        g = glyphs[i % len(glyphs)]
        legend.append(f"{g} {name}")
        for x, y in pts:
            points.append((float(x), float(y), g))
    if not points:
        return f"{title}\n(no data)"
    import math

    def tx(x: float) -> float:
        return math.log10(max(x, 1e-12)) if logx else x

    xs = [tx(p[0]) for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xr = (x1 - x0) or 1.0
    yr = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (x, y, g) in points:
        col = int((tx(x) - x0) / xr * (width - 1))
        row = height - 1 - int((y - y0) / yr * (height - 1))
        grid[row][col] = g
    lines = [title, "=" * len(title)]
    for i, row in enumerate(grid):
        label = (
            f"{y1:>10.3g} |" if i == 0
            else f"{y0:>10.3g} |" if i == height - 1
            else "           |"
        )
        lines.append(label + "".join(row))
    lines.append("           +" + "-" * width)
    xlab = "log10(x)" if logx else "x"
    lines.append(
        f"            {x0 if not logx else 10**x0:<.4g}"
        + " " * (width - 16)
        + f"{x1 if not logx else 10**x1:>.4g}  ({xlab})"
    )
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


@dataclass
class ResultTable:
    """A titled table of experiment results."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> list[Any]:
        i = self.columns.index(name)
        return [r[i] for r in self.rows]

    def render(self) -> str:
        cells = [[fmt_value(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        )
        lines.append(sep)
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for n in self.notes:
            lines.append(f"  note: {n}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated rendering for external plotting."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(row)
        return buf.getvalue()

    def to_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(fmt_value(v) for v in row) + " |")
        for n in self.notes:
            lines.append(f"\n*{n}*")
        return "\n".join(lines)
