"""Experiment drivers: one function per table/figure in the paper.

Each driver builds its workload, runs the systems under comparison,
and returns :class:`ResultTable` objects whose rows mirror what the
paper reports. Benchmarks in ``benchmarks/`` are thin wrappers that
call these drivers (and time the interesting parts with
pytest-benchmark); EXPERIMENTS.md is generated from the same output.

Scale factors default to sizes that run in seconds on a laptop; the
paper's full-scale counts are noted in each table so extrapolated
comparisons are explicit.
"""

from __future__ import annotations

import shutil
import tempfile
import time

from repro.baselines.brindexer import BrindexerIndex
from repro.baselines.posix_tools import du_s, find_getfattr, find_ls
from repro.core.build import BuildOptions, build_from_stanzas, dir2index
from repro.core.engine import QueryEngine
from repro.core.query import (
    Q1_LIST_NAMES,
    Q2_DIR_SIZES,
    Q3_DU_SUMMARIES,
    QuerySpec,
)
from repro.core.rollup import rollup, visible_db_bytes, visible_db_count
from repro.core.tsummary import build_tsummary
from repro.fs.mounts import MountedFS
from repro.fs.permissions import Credentials
from repro.gen import datasets
from repro.gen.namespace import apply_xattrs
from repro.scan.scanners import make_scanner
from repro.sim.blktrace import IOTracer
from repro.sim.netfs import GPFS, LUSTRE, NFS, XFS_LOCAL
from repro.sim.ssd import SSDModel, StorageHost

from .results import ResultTable

#: default worker threads — this sandbox serialises syscalls, so more
#: threads do not help wall-clock here (see DESIGN.md); the engine
#: itself supports hundreds.
DEFAULT_THREADS = 4

#: per-database fixed cost (open + query setup) used when converting a
#: measured GUFI I/O trace to a modelled query time on the paper's
#: hardware. Chosen so an empty-db open ≈ a few hundred µs, matching
#: the paper's discussion of open overheads on fast local storage.
PER_DB_OVERHEAD = 300e-6

#: per-result-row cost (format + emit) for the C implementation. Row
#: volume is what separates scan from stab queries (Fig 9b) and makes
#: GUFI's Fig 9a speedup shrink as xattr coverage grows — the index
#: returns every match, and matches scale with coverage.
PER_ROW_OVERHEAD = 1e-6


def modeled_gufi_time(
    tracer: IOTracer, nthreads: int, host: StorageHost, nrows: int = 0
) -> float:
    """Modelled seconds for a GUFI query on the paper's storage: the
    recorded read volume through the device model at the offered
    concurrency, per-database fixed costs amortised across the thread
    pool, and (optionally) per-result-row emission costs."""
    io_time = host.query_time(tracer.total_bytes, tracer.num_reads, nthreads)
    open_time = tracer.num_reads * PER_DB_OVERHEAD / max(1, nthreads)
    return io_time + open_time + nrows * PER_ROW_OVERHEAD


# ======================================================================
# Figure 1 — metadata query time across file systems
# ======================================================================

def fig1(scale: float = 0.25, nthreads: int = DEFAULT_THREADS) -> ResultTable:
    """``find -ls`` and ``du -s`` over a Linux-kernel-shaped tree on
    GPFS / Lustre / NFS / local XFS (per-op latency models) vs GUFI
    (measured, plus a modelled time on paper-like storage)."""
    ns = datasets.linux_kernel_tree(scale=scale)
    table = ResultTable(
        title=(
            f"Fig 1: query time, kernel-source tree "
            f"({ns.tree.num_dirs} dirs / "
            f"{ns.tree.num_files + ns.tree.num_symlinks} files; paper: 74K files)"
        ),
        columns=["system", "find -ls (s)", "du -s (s)"],
    )
    for model in (GPFS, LUSTRE, NFS, XFS_LOCAL):
        mount = MountedFS(ns.tree, model)
        r_find = find_ls(mount, "/")
        r_du = du_s(mount, "/")
        table.add(model.name, r_find.modeled_time, r_du.modeled_time)

    tmp = tempfile.mkdtemp(prefix="fig1_idx_")
    try:
        built = dir2index(ns.tree, tmp, opts=BuildOptions(nthreads=nthreads))
        host = StorageHost(SSDModel(), n_ssds=1)
        tracer = IOTracer()
        q = QueryEngine(built.index, nthreads=nthreads, tracer=tracer)
        find_spec = QuerySpec(
            S="SELECT spath(name, isroot), mode, uid, gid, size FROM summary",
            E="SELECT rpath(dname, d_isroot, name), mode, uid, gid, size, "
            "mtime FROM vrpentries",
        )
        tracer.reset()
        r1 = q.run(find_spec)
        t_find_model = modeled_gufi_time(tracer, nthreads, host)
        tracer.reset()
        r3 = q.run(Q3_DU_SUMMARIES)
        t_du_model = modeled_gufi_time(tracer, nthreads, host)
        table.add("gufi (modelled)", t_find_model, t_du_model)
        table.add("gufi (measured wall)", r1.elapsed, r3.elapsed)
        table.note(
            "remote file systems are per-op latency models; GUFI rows are "
            "the real index on local disk (wall) and the same I/O through "
            "the paper's SSD model (modelled)"
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return table


# ======================================================================
# Table I — scan and index-creation times for five file systems
# ======================================================================

def table1(
    scale: float = 2e-4, nthreads: int = DEFAULT_THREADS
) -> ResultTable:
    """Scan each Table I namespace with its scanner type; report the
    modelled scan time (scaled and extrapolated to the paper's entry
    counts) and the measured index-creation time."""
    table = ResultTable(
        title="Table I: file system scan and index creation",
        columns=[
            "filesystem", "scan type", "dirs", "files",
            "scan (model s)", "scan @paper scale", "index creation",
        ],
    )
    paper_scan_minutes = {
        "/users": 50, "/proj": 133, "/scratch1": 19,
        "/scratch2": 216, "/archive": 125,
    }
    for name in datasets.table1_names():
        ns = datasets.table1_namespace(name, scale=scale)
        kind = datasets.TABLE1_SCAN_TYPE[name]
        scanner = make_scanner(kind, ns.tree, nthreads=nthreads)
        result = scanner.scan("/")
        paper_dirs, paper_files = datasets.table1_paper_counts(name)
        # extrapolate with a deployment-width scan client (the paper's
        # site runs multi-threaded scans on dedicated nodes)
        deployment = result.modeled_time_at(8)
        per_entry = deployment / max(1, result.total_records)
        extrapolated = per_entry * (paper_dirs + paper_files)
        tmp = tempfile.mkdtemp(prefix="table1_idx_")
        try:
            if kind == "treewalk":
                # in-situ: scan and build overlap; report the build wall
                t0 = time.monotonic()
                build_from_stanzas(
                    result.stanzas, tmp, BuildOptions(nthreads=nthreads)
                )
                creation = f"in-situ ({time.monotonic() - t0:.1f}s)"
            else:
                t0 = time.monotonic()
                build_from_stanzas(
                    result.stanzas, tmp, BuildOptions(nthreads=nthreads)
                )
                creation = f"{time.monotonic() - t0:.1f}s post"
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        table.add(
            name,
            kind,
            ns.tree.num_dirs,
            ns.tree.num_files + ns.tree.num_symlinks,
            result.modeled_time,
            f"{extrapolated / 60:.0f} min (paper {paper_scan_minutes[name]}m)",
            creation,
        )
    table.note(
        "scan (model s) charges each source system's per-op costs; the "
        "extrapolation multiplies the per-entry cost by the paper's counts"
    )
    return table


# ======================================================================
# Figure 7 — SSD utilisation vs thread count
# ======================================================================

def fig7(
    scale: float = 0.004,
    thread_counts: tuple[int, ...] = (1, 2, 4, 7, 14, 28, 56, 112, 224, 448, 896),
    host_configs: tuple[int, ...] = (1, 2, 4),
) -> ResultTable:
    """Sweep the thread pool, record the read volume the query
    generates, and push it through SSD-host models with 1/2/4 devices.

    Offered queue depth equals the pool size (each worker keeps one
    read outstanding); achievable throughput and utilisation come from
    the device model, reproducing Fig 7's saturation/bottleneck shape
    without the hardware."""
    ns = datasets.dataset1(scale=scale)
    tmp = tempfile.mkdtemp(prefix="fig7_idx_")
    table = ResultTable(
        title=(
            f"Fig 7: disk utilisation vs threads "
            f"(dataset1-scaled: {ns.tree.num_dirs} dirs / "
            f"{ns.tree.num_files} files)"
        ),
        columns=["threads", "bytes read", "reads"]
        + [f"GB/s ({n} SSD)" for n in host_configs]
        + [f"util% ({n} SSD)" for n in host_configs],
    )
    try:
        built = dir2index(ns.tree, tmp, opts=BuildOptions(nthreads=DEFAULT_THREADS))
        hosts = {n: StorageHost(SSDModel(), n_ssds=n) for n in host_configs}
        # The read volume is thread-count independent (same query);
        # run the query once to trace it, then model each (threads,
        # host) point analytically — exactly what Fig 7 plots.
        tracer = IOTracer()
        q = QueryEngine(
            built.index, nthreads=DEFAULT_THREADS, tracer=tracer
        )
        q.run(QuerySpec(E="SELECT uid FROM entries"))
        nbytes, nreads = tracer.total_bytes, tracer.num_reads
        for t in thread_counts:
            row = [t, nbytes, nreads]
            for n in host_configs:
                bw = hosts[n].throughput(t)
                row.append(bw / 1e9)
            for n in host_configs:
                row.append(100.0 * hosts[n].utilization(t))
            table.add(*row)
        table.note(
            "paper: single SSD saturates near 112 threads; 2 SSDs reach "
            "5.26 GB/s (82%); 4 SSDs stay host-limited"
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return table


# ======================================================================
# Figure 8 — rollup limit tradeoffs
# ======================================================================

def fig8(
    scale: float = 0.0005,
    nthreads: int = DEFAULT_THREADS,
    n_shards: int = 64,
    limit_fractions: tuple[float | None, ...] = (0.0, 1 / 6470, 1 / 1294, 1 / 647, 1 / 258.8, None),
) -> tuple[ResultTable, ResultTable, dict[str, list[float]]]:
    """Rollup-limit sweep on the dataset-2-shaped namespace.

    ``limit_fractions`` are fractions of the namespace's entry count
    (the paper's 10K/50K/100K/250K limits over 64.7M files map to the
    same fractions of the scaled namespace). 0.0 means no rollup
    (NONE); None means unlimited (MAX). Returns (fig8a/8b table,
    brindexer comparison rows included; fig8c completion-time dict).
    """
    from repro.scan.scanners import TreeWalkScanner

    ns = datasets.dataset2(scale=scale)
    stanzas = TreeWalkScanner(ns.tree, nthreads=nthreads).scan("/").stanzas
    n_entries = sum(len(s.entries) for s in stanzas)
    simple_query = QuerySpec(
        S="SELECT uid FROM summary", E="SELECT uid FROM pentries"
    )

    table = ResultTable(
        title=(
            f"Fig 8a/8b: rollup tradeoffs (dataset2-scaled: "
            f"{len(stanzas)} dirs / {n_entries} entries)"
        ),
        columns=[
            "config", "rollup (s)", "query (s)", "visible DBs",
            "visible bytes", "bytes/entry",
        ],
    )
    completions: dict[str, list[float]] = {}
    keep = {0.0: "NONE", None: "MAX"}

    for frac in limit_fractions:
        tmp = tempfile.mkdtemp(prefix="fig8_idx_")
        try:
            built = build_from_stanzas(
                stanzas, tmp, BuildOptions(nthreads=nthreads)
            )
            if frac == 0.0:
                label, rollup_s = "NONE", 0.0
            else:
                limit = None if frac is None else max(4, int(n_entries * frac))
                label = "MAX" if frac is None else f"limit={limit}"
                st = rollup(built.index, limit=limit, nthreads=nthreads)
                rollup_s = st.elapsed
            q = QueryEngine(built.index, nthreads=nthreads)
            r = q.run(simple_query)
            nbytes = visible_db_bytes(built.index)
            table.add(
                label,
                rollup_s,
                r.elapsed,
                visible_db_count(built.index),
                nbytes,
                nbytes / max(1, n_entries),
            )
            tag = keep.get(frac)
            if tag is None and frac is not None and abs(frac - 1 / 258.8) < 1e-9:
                tag = "250K-equiv"
            if tag:
                # Fig 8c measures straggling across a wide pool: a
                # separate run with more workers exposes the one-big-
                # database tail the MAX config suffers.
                q8 = QueryEngine(built.index, nthreads=max(8, nthreads))
                r8 = q8.run(simple_query)
                if r8.walk_stats:
                    completions[tag] = r8.walk_stats.thread_completion_times
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    # Brindexer comparison (Fig 8b space + 8c concurrency).
    tmp = tempfile.mkdtemp(prefix="fig8_brin_")
    try:
        brin, _ = BrindexerIndex.build(stanzas, tmp, n_shards=n_shards)
        r = brin.query("SELECT uid FROM entries", nthreads=nthreads)
        nbytes = brin.total_bytes()
        table.add(
            f"brindexer-{n_shards}", None, r.elapsed, n_shards,
            nbytes, nbytes / max(1, n_entries),
        )
        r8 = brin.query("SELECT uid FROM entries", nthreads=max(8, nthreads))
        if r8.walk_stats:
            completions["brindexer"] = r8.walk_stats.thread_completion_times
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    table.note(
        "paper: moderate limits minimise both rollup and query time; "
        "bytes/entry falls as the limit rises (fixed per-database "
        "overhead amortises away). The paper's GUFI<Brindexer space "
        "crossover additionally needs production-depth parent paths "
        "(Brindexer stores the full path per row); at this synthetic "
        "scale rollup closes most, not all, of the gap."
    )

    fig8c = ResultTable(
        title="Fig 8c: per-thread completion times (effective concurrency)",
        columns=["config", "median completion (s)", "last completion (s)",
                 "effective concurrency"],
    )
    for label, times in completions.items():
        if not times:
            continue
        med = times[len(times) // 2]
        last = times[-1]
        eff = sum(times) / (len(times) * last) if last > 0 else 0.0
        fig8c.add(label, med, last, eff)
    return table, fig8c, completions


# ======================================================================
# Figure 9 — extended attribute query performance
# ======================================================================

def fig9(
    scale: float = 0.0005,
    coverages: tuple[float, ...] = (0.25, 0.5, 1.0),
    nthreads: int = DEFAULT_THREADS,
) -> ResultTable:
    """Sentinel (scan) and unique-needle (stab) xattr searches: GUFI's
    xattr views vs find+getfattr and getfattr-with-file-list on a
    local-XFS cost model."""
    table = ResultTable(
        title="Fig 9: xattr query performance",
        columns=[
            "tree", "files", "xattr files",
            "xfs find+getfattr (s)", "xfs getfattr list (s)",
            "gufi scan (s)", "gufi scan modelled (s)",
            "gufi stab (s)", "gufi stab modelled (s)",
            "modelled speedup vs xfs", "modelled scan/stab",
        ],
    )
    host = StorageHost(SSDModel(), n_ssds=1)
    for i, cov in enumerate(coverages, start=1):
        ns = datasets.dataset2(scale=scale, seed=22)
        tagged, needle_path = apply_xattrs(ns, cov)
        tmp = tempfile.mkdtemp(prefix="fig9_idx_")
        try:
            built = dir2index(ns.tree, tmp, opts=BuildOptions(nthreads=nthreads))
            mount = MountedFS(ns.tree, XFS_LOCAL)
            xfs_walk = find_getfattr(
                mount, "/", "user.ext", xargs_parallel=224
            )
            file_list = list(ns.files)
            xfs_list = find_getfattr(
                mount, "/", "user.ext", file_list=file_list, xargs_parallel=224
            )
            tracer = IOTracer()
            q = QueryEngine(built.index, nthreads=nthreads, tracer=tracer)
            scan_spec = QuerySpec(
                E="SELECT rpath(dname, d_isroot, name), exattrs FROM xpentries "
                "WHERE exattrs LIKE '%user.ext%'",
                xattrs=True,
            )
            r_scan = q.run(scan_spec)
            scan_modelled = modeled_gufi_time(
                tracer, 224, host, nrows=len(r_scan.rows)
            )
            tracer.reset()
            stab_spec = QuerySpec(
                E="SELECT rpath(dname, d_isroot, name), exattrs FROM xpentries "
                "WHERE exattrs LIKE '%needle%'",
                xattrs=True,
            )
            r_stab = q.run(stab_spec)
            stab_modelled = modeled_gufi_time(
                tracer, 224, host, nrows=len(r_stab.rows)
            )
            assert any(needle_path == row[0] for row in r_stab.rows), (
                "stab query must find the needle file"
            )
            table.add(
                f"Tree-{i} ({int(cov * 100)}%)",
                len(ns.files),
                len(tagged),
                xfs_walk.modeled_time,
                xfs_list.modeled_time,
                r_scan.elapsed,
                scan_modelled,
                r_stab.elapsed,
                stab_modelled,
                xfs_walk.modeled_time / scan_modelled,
                scan_modelled / stab_modelled if stab_modelled > 0 else None,
            )
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    table.note(
        "paper: XFS cost tracks total files (no POSIX xattr filter); GUFI "
        "cost tracks xattr'd files, so its speedup SHRINKS as coverage "
        "grows (paper 33x/22x/12x); stab gains 2-5x over scan. Both "
        "shapes appear in the modelled columns; wall columns carry the "
        "sandbox's per-database constant."
    )
    return table


# ======================================================================
# Figure 10 — GUFI vs Brindexer, admin and per-user queries
# ======================================================================

def fig10(
    scale: float = 0.0005,
    nthreads: int = DEFAULT_THREADS,
    n_shards: int = 64,
    n_users: int = 10,
    rollup_fraction: float = 1 / 258.8,
) -> tuple[ResultTable, ResultTable]:
    """The four macro queries as root (Fig 10a) and as a sample of
    unprivileged users (Fig 10b), GUFI (rolled-up, tsummary built)
    versus Brindexer."""
    from repro.scan.scanners import TreeWalkScanner

    ns = datasets.dataset2(scale=scale)
    stanzas = TreeWalkScanner(ns.tree, nthreads=nthreads).scan("/").stanzas
    n_entries = sum(len(s.entries) for s in stanzas)

    gufi_tmp = tempfile.mkdtemp(prefix="fig10_gufi_")
    brin_tmp = tempfile.mkdtemp(prefix="fig10_brin_")
    try:
        built = build_from_stanzas(stanzas, gufi_tmp, BuildOptions(nthreads=nthreads))
        limit = max(4, int(n_entries * rollup_fraction))
        rollup(built.index, limit=limit, nthreads=nthreads)
        ts = build_tsummary(built.index, "/")
        brin, _ = BrindexerIndex.build(stanzas, brin_tmp, n_shards=n_shards)

        q4_root = QuerySpec(T="SELECT totsize FROM tsummary WHERE rectype = 0")

        # Modelled times put both systems on the paper's hardware: the
        # traced read volume through the SSD model at the paper's
        # thread counts (GUFI 224, Brindexer thread-per-db), plus the
        # per-database fixed cost a C implementation pays. This is
        # where the paper's who-wins shape lives — the wall columns
        # carry this sandbox's ~30x per-database Python/syscall
        # handicap (see EXPERIMENTS.md).
        host = StorageHost(SSDModel(), n_ssds=2)
        brin_bytes = brin.total_bytes()

        def brin_modelled(nrows: int = 0) -> float:
            io = host.query_time(brin_bytes, n_shards, min(256, n_shards))
            return (
                io
                + n_shards * PER_DB_OVERHEAD / min(256, n_shards)
                + nrows * PER_ROW_OVERHEAD
            )

        def gufi_queries(creds: Credentials | None):
            tracer = IOTracer()
            q = QueryEngine(
                built.index,
                creds=creds if creds is not None else Credentials(uid=0, gid=0),
                nthreads=nthreads,
                tracer=tracer,
            )
            wall, modelled = [], []
            if creds is None:
                specs = [Q1_LIST_NAMES, Q2_DIR_SIZES, Q3_DU_SUMMARIES, q4_root]
            else:
                q4_user = QuerySpec(
                    T="SELECT totsize FROM tsummary "
                    f"WHERE rectype = 1 AND uid = {creds.uid}"
                )
                specs = [Q1_LIST_NAMES, Q2_DIR_SIZES, Q3_DU_SUMMARIES, q4_user]
            for spec in specs:
                tracer.reset()
                result = q.run(spec)
                wall.append(result.elapsed)
                modelled.append(
                    modeled_gufi_time(tracer, 224, host, nrows=len(result.rows))
                )
            return wall, modelled

        def brin_queries(uid: int | None):
            results = [
                brin.list_names(uid=uid, nthreads=nthreads),
                brin.dir_sizes(uid=uid, nthreads=nthreads),
                brin.du(uid=uid, nthreads=nthreads),
                brin.du(uid=uid, nthreads=nthreads),  # no tsummary
            ]
            wall = [r.elapsed for r in results]
            # every Brindexer query is a full scan of every shard;
            # emitted row volume differs per query
            modelled = [brin_modelled(nrows=len(r.rows)) for r in results]
            return wall, modelled

        table_a = ResultTable(
            title=(
                f"Fig 10a: admin (root) queries — GUFI (rollup limit "
                f"{limit}, tsummary {ts.seconds:.2f}s) vs "
                f"Brindexer-{n_shards} ({len(stanzas)} dirs / "
                f"{n_entries} entries)"
            ),
            columns=[
                "query", "gufi wall (s)", "brindexer wall (s)",
                "gufi modelled (s)", "brindexer modelled (s)",
                "modelled speedup",
            ],
        )
        g_wall, g_model = gufi_queries(None)
        b_wall, b_model = brin_queries(None)
        names = [
            "1: list all names", "2: dir sizes",
            "3: du via summaries", "4: du via tsummary",
        ]
        for name, gw, bw, gm, bm in zip(names, g_wall, b_wall, g_model, b_model):
            table_a.add(name, gw, bw, gm, bm, bm / gm if gm > 0 else None)
        table_a.note(
            "paper speedups: 1.5x, 8.2x, 6.3x, 230x. Modelled columns put "
            "both systems on the paper's hardware (traced read volume "
            "through the 2-SSD model at the paper's thread counts); wall "
            "columns carry this sandbox's per-database Python handicap."
        )

        table_b = ResultTable(
            title=f"Fig 10b: unprivileged user queries (n={n_users} users)",
            columns=[
                "query", "gufi wall mean (s)", "gufi modelled mean (s)",
                "brindexer modelled (s)", "modelled speedup",
            ],
        )
        uids = list(ns.spec.population.uids)[:n_users]
        g_walls = [[] for _ in range(4)]
        g_models = [[] for _ in range(4)]
        b_models = [[] for _ in range(4)]
        for uid in uids:
            creds = Credentials(uid=uid, gid=uid)
            uw, um = gufi_queries(creds)
            _, ubm = brin_queries(uid)
            for i in range(4):
                g_walls[i].append(uw[i])
                g_models[i].append(um[i])
                b_models[i].append(ubm[i])
        for i, name in enumerate(names):
            gw = sum(g_walls[i]) / len(g_walls[i])
            gm = sum(g_models[i]) / len(g_models[i])
            bm = sum(b_models[i]) / len(b_models[i])
            table_b.add(name, gw, gm, bm, bm / gm if gm > 0 else None)
        table_b.note(
            "paper: Brindexer user times equal its admin times (always a "
            "full scan); GUFI user times shrink with accessible data"
        )
        return table_a, table_b
    finally:
        shutil.rmtree(gufi_tmp, ignore_errors=True)
        shutil.rmtree(brin_tmp, ignore_errors=True)


# ======================================================================
# Query-planning ablation — summary-statistics pruning (§III-A2)
# ======================================================================

def planning_ablation(
    groups: int = 20,
    dirs_per_group: int = 15,
    match_every: int = 20,
    nthreads: int = DEFAULT_THREADS,
) -> ResultTable:
    """Selective-query ablation for the summary-statistics planner.

    A ``size>>1g newer:7d`` search over a project namespace where only
    ~1/match_every of the directories hold a matching file, run three
    ways: planning off, planning on with a cold DirMeta cache (stats
    are read during the same attach that serves the permission check,
    so only the E stage is skipped), and planning on warm (the cached
    stats answer matchability up front and the attach is elided
    entirely — the headline configuration)."""
    from repro.core.search import parse
    from repro.fs.tree import VFSTree

    now = 1_700_000_000
    day = 86400
    tree = VFSTree()
    tree.mkdir("/proj", mode=0o755, uid=0, gid=0)
    n = 0
    for g in range(groups):
        gdir = f"/proj/g{g:02d}"
        tree.mkdir(gdir, mode=0o755, uid=0, gid=0)
        for d in range(dirs_per_group):
            leaf = f"{gdir}/d{d:03d}"
            tree.mkdir(leaf, mode=0o755, uid=1001, gid=1001)
            for f in range(4):
                tree.create_file(
                    f"{leaf}/small{f}.dat", size=4096 + n, mode=0o644,
                    uid=1001, gid=1001, mtime=now - 100 * day - n,
                )
            if n % match_every == 0:
                tree.create_file(
                    f"{leaf}/big.h5", size=2 * 2**30 + n, mode=0o644,
                    uid=1001, gid=1001, mtime=now - day - n,
                )
            n += 1

    parsed = parse("size>>1g newer:7d", now=now)
    spec, plan = parsed.to_spec(), parsed.to_plan()
    tmp = tempfile.mkdtemp(prefix="planabl_")
    table = ResultTable(
        title=(
            f"Query planning ablation: 'size>>1g newer:7d' over "
            f"{1 + groups * (1 + dirs_per_group)} dirs "
            f"(~{100 // match_every}% matching)"
        ),
        columns=[
            "config", "dbs opened", "pruned", "attaches elided",
            "rows", "elapsed (s)", "speedup",
        ],
    )
    try:
        built = dir2index(tree, tmp, opts=BuildOptions(nthreads=nthreads))
        q = QueryEngine(built.index, nthreads=nthreads)
        built.index.invalidate_cache()
        cold_on = q.run(spec, plan=plan)
        built.index.invalidate_cache()
        off = q.run(spec)  # leaves the cache warm for the warm row
        warm_off = q.run(spec)
        warm_on = q.run(spec, plan=plan)
        assert sorted(cold_on.rows) == sorted(off.rows) == sorted(
            warm_on.rows
        ), "planning changed results"
        base = warm_off.elapsed
        for label, r in (
            ("planning off (warm)", warm_off),
            ("planning on, cold cache", cold_on),
            ("planning on, warm cache", warm_on),
        ):
            table.add(
                label, r.dbs_opened, r.dirs_pruned_by_plan,
                r.attaches_elided, len(r.rows), r.elapsed,
                base / r.elapsed if r.elapsed > 0 else None,
            )
        table.note(
            "identical rows in all configs (the plan is conservative); "
            "warm planning answers matchability from the DirMeta cache "
            "and skips the SQLite attach for pruned directories"
        )
        return table
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


# ======================================================================
# §IV-B text — rollup database-count reduction across namespaces
# ======================================================================

def rollup_reduction(
    scale: float = 1e-4, nthreads: int = DEFAULT_THREADS
) -> ResultTable:
    """Unlimited rollup on each Table I namespace: databases before vs
    after (paper: average 386x, home 741x, project 77x)."""
    table = ResultTable(
        title="Rollup DB-count reduction across namespaces (§IV-B)",
        columns=[
            "filesystem", "dirs", "DBs before", "DBs after",
            "reduction", "structural max",
        ],
    )
    factors = []
    for name in datasets.table1_names():
        ns = datasets.table1_namespace(name, scale=scale)
        tmp = tempfile.mkdtemp(prefix="rollred_")
        try:
            built = dir2index(ns.tree, tmp, opts=BuildOptions(nthreads=nthreads))
            before = visible_db_count(built.index)
            rollup(built.index, limit=None, nthreads=nthreads)
            after = visible_db_count(built.index)
            factor = before / max(1, after)
            factors.append(factor)
            # Best case: every area collapses to one database; the
            # top-level containers and / can never merge (mixed owners).
            n_containers = len(
                {r.rsplit("/", 1)[0] for r in ns.area_roots}
            )
            floor = 1 + n_containers + len(ns.area_roots)
            table.add(
                name, ns.tree.num_dirs, before, after,
                f"{factor:.1f}x", f"{before / floor:.1f}x",
            )
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    table.note(
        f"mean reduction {sum(factors) / len(factors):.1f}x "
        "(paper: 386x mean, 741x max home, 77x min project). The "
        "achievable factor scales with directories per user/project "
        "area: the paper's namespaces hold thousands of directories "
        "per area, this scaled run only tens — compare 'reduction' "
        "against 'structural max', not against the paper's absolute."
    )
    return table


# ======================================================================
# §III-A4 text — ingest rates
# ======================================================================

def ingest_rate(
    n_dirs: int = 600, files_per_dir: int = 40, nthreads: int = DEFAULT_THREADS
) -> ResultTable:
    """Directory-creation and row-insert rates (paper: 1M dirs ≈ 18 s,
    100M rows < 120 s on their commodity server)."""
    from repro.scan.trace import DirStanza, TraceRecord

    stanzas = []
    ino = 1
    root_rec = TraceRecord(
        path="/", ftype="d", ino=ino, mode=0o755, nlink=2 + n_dirs, uid=0,
        gid=0, size=0, blksize=4096, blocks=0, atime=0, mtime=0, ctime=0,
    )
    stanzas.append(DirStanza(directory=root_rec))
    for i in range(n_dirs):
        ino += 1
        d = TraceRecord(
            path=f"/d{i:06d}", ftype="d", ino=ino, mode=0o755, nlink=2,
            uid=0, gid=0, size=0, blksize=4096, blocks=0, atime=0, mtime=0,
            ctime=0,
        )
        st = DirStanza(directory=d)
        for j in range(files_per_dir):
            ino += 1
            st.entries.append(
                TraceRecord(
                    path=f"/d{i:06d}/f{j:05d}", ftype="f", ino=ino,
                    mode=0o644, nlink=1, uid=0, gid=0, size=4096,
                    blksize=4096, blocks=8, atime=0, mtime=0, ctime=0,
                )
            )
        stanzas.append(st)
    tmp = tempfile.mkdtemp(prefix="ingest_")
    try:
        result = build_from_stanzas(stanzas, tmp, BuildOptions(nthreads=nthreads))
        table = ResultTable(
            title="Index ingest rates (§III-A4)",
            columns=[
                "dirs", "rows", "seconds", "dirs/s", "rows/s",
                "1M dirs would take", "100M rows would take",
            ],
        )
        table.add(
            result.dirs_created,
            result.dirs_created + result.entries_inserted,
            result.seconds,
            result.dirs_per_second,
            result.rows_per_second,
            f"{1_000_000 / max(1, result.dirs_per_second):.0f} s (paper ~18 s)",
            f"{100_000_000 / max(1, result.rows_per_second):.0f} s (paper <120 s)",
        )
        return table
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


# ======================================================================
# Build resilience — crash-safe, resumable index construction
# ======================================================================

def build_resilience(
    scale: float = 0.0003,
    nthreads: int = DEFAULT_THREADS,
    fractions: tuple[float, ...] = (0.25, 0.5, 0.75),
) -> ResultTable:
    """Kill an index build at several points, resume it, and verify
    the resumed index answers queries identically to an uninterrupted
    build (§III-A3's restartable-scan requirement, exercised through
    the deterministic fault-injection layer).

    For each kill fraction the driver: (1) builds with a
    :class:`~repro.scan.faults.FaultPlan` that crashes the process at
    the Nth directory, (2) reruns with ``resume=True``, (3) compares
    the full-tree path listing against the baseline, and (4) checks no
    ``.partial`` staging files survived.
    """
    import os

    from repro.core.build import PARTIAL_SUFFIX
    from repro.core.query import Q1_LIST_PATHS
    from repro.scan.faults import BuildCrash, FaultPlan

    ns = datasets.dataset2(scale=scale, seed=9)
    stanzas = make_scanner("treewalk", ns.tree, nthreads=nthreads).scan("/").stanzas
    base = tempfile.mkdtemp(prefix="resilience_")

    def query_rows(index) -> list:
        return sorted(QueryEngine(index, nthreads=nthreads).run(Q1_LIST_PATHS).rows)

    def partials_left(root: str) -> int:
        return sum(
            1
            for dirpath, _, files in os.walk(root)
            for f in files
            if f.endswith(PARTIAL_SUFFIX)
        )

    try:
        baseline = build_from_stanzas(
            stanzas, f"{base}/full", BuildOptions(nthreads=nthreads)
        )
        want = query_rows(baseline.index)
        table = ResultTable(
            title="Build resilience: crash + resume vs uninterrupted build",
            columns=[
                "killed at", "dirs entered", "resume skipped",
                "resume rebuilt", "identical", "partials left",
            ],
        )
        for frac in fractions:
            kill_at = max(1, int(len(stanzas) * frac))
            root = f"{base}/kill{int(frac * 100)}"
            plan = FaultPlan.crash_at("build_dir_db", kill_at)
            try:
                build_from_stanzas(
                    stanzas, root,
                    BuildOptions(nthreads=nthreads, faults=plan),
                )
                crashed = False
            except BuildCrash:
                crashed = True
            resumed = build_from_stanzas(
                stanzas, root,
                BuildOptions(nthreads=nthreads, resume=True),
            )
            rows = query_rows(resumed.index)
            table.add(
                f"{frac:.0%} ({kill_at}/{len(stanzas)} dirs)" if crashed
                else f"{frac:.0%} (no crash?)",
                kill_at,
                resumed.dirs_skipped,
                resumed.dirs_created,
                rows == want,
                partials_left(root),
            )
        table.note(
            "crash = injected BuildCrash at the Nth build_dir_db entry; "
            "identical compares sorted full-tree rpath listings"
        )
        return table
    finally:
        shutil.rmtree(base, ignore_errors=True)
