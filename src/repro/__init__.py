"""repro — a from-scratch Python reproduction of GUFI (SC 2022).

GUFI, the Grand Unified File Index, is a file-system metadata index
that both privileged and unprivileged users can query securely: the
index mirrors the source tree's directory structure, ownership, and
permission bits, so POSIX checks gate traversal; per-directory SQLite
databases give SQL expressiveness; permission-compatible sub-trees are
rolled up into fewer, larger databases for speed.

Subpackages
-----------
``repro.core``
    The index itself: schema, builders, rollup, tree summaries, the
    parallel query engine, and find/ls/du-style tools.
``repro.fs``
    A simulated multi-user POSIX file system (the source systems GUFI
    scans) with full permission/xattr semantics and snapshots.
``repro.scan``
    Parallel breadth-first walkers, trace files, and the scanner
    family (tree walk, Lester-style inode scan, SQL dump, snapshot).
``repro.gen``
    Synthetic namespace generators shaped like the paper's datasets.
``repro.sim``
    Device and remote-file-system cost models (virtual clock, SSD
    throughput, per-op metadata RPC latencies) for the experiments
    that need hardware this repo does not have.
``repro.baselines``
    Brindexer (hash-partitioned index) and classic POSIX tools.
``repro.harness``
    One driver per paper table/figure, returning printable tables.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
