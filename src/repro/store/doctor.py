"""Read-only index health report (``gufi index doctor``).

Walks the index and reports, without modifying anything:

* the schema-version histogram of the primary databases (spotting
  pre-versioning ``user_version=0`` indexes that want ``gufi index
  migrate``, and databases newer than this code supports);
* **missing shards**: xattr side databases named by a primary's
  ``xattrs_avail`` tracking table whose file is absent (the query path
  tolerates these by skipping them, but they signal an interrupted
  build that resume never finished);
* **stale staging files**: crash-leftover ``*.partial`` artifacts
  (``DirStore.open`` sweeps these before a rebuild; doctor only
  reports them — reporting must be runnable by anyone, including
  operators who do not want a tool that deletes).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from . import connect, schema
from .layout import DirStore


@dataclass
class DoctorReport:
    """Findings of one read-only index sweep."""

    dirs_seen: int = 0
    #: primary-database schema versions → directory count
    versions: dict[int, int] = field(default_factory=dict)
    #: directories whose primary database is older than
    #: :data:`~repro.store.schema.SCHEMA_VERSION`
    dirs_outdated: int = 0
    #: directories whose primary database is *newer* than this code
    #: supports (reading them risks misinterpretation)
    dirs_newer: int = 0
    side_dbs: int = 0
    sidecars: int = 0
    #: (source path, shard file name) tracked by ``xattrs_avail`` but
    #: absent on disk
    missing_shards: list[tuple[str, str]] = field(default_factory=list)
    #: (source path, file name) of leftover ``*.partial`` staging files
    stale_partials: list[tuple[str, str]] = field(default_factory=list)
    #: (source path, message) for unreadable/corrupt databases
    errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """No findings that need an operator: every database current,
        every tracked shard present, no staging residue, no errors."""
        return not (
            self.dirs_outdated
            or self.dirs_newer
            or self.missing_shards
            or self.stale_partials
            or self.errors
        )


def _check_dir(store: DirStore, source_path: str, report: DoctorReport) -> None:
    for name in store.list_partials():
        report.stale_partials.append((source_path, name))
    for _name, kind in store.artifacts():
        if kind == "primary":
            continue
        if kind.startswith("xattr_"):
            report.side_dbs += 1
        else:
            report.sidecars += 1
    try:
        conn = connect.open_ro(store.db_path)
    except sqlite3.Error as exc:
        report.errors.append((source_path, f"cannot open: {exc}"))
        return
    try:
        version = schema.db_schema_version(conn)
        report.versions[version] = report.versions.get(version, 0) + 1
        if version < schema.SCHEMA_VERSION:
            report.dirs_outdated += 1
        elif version > schema.SCHEMA_VERSION:
            report.dirs_newer += 1
        for (filename,) in conn.execute("SELECT filename FROM xattrs_avail"):
            if not store.artifact_path(filename).exists():
                report.missing_shards.append((source_path, filename))
    except sqlite3.Error as exc:
        report.errors.append((source_path, f"cannot inspect: {exc}"))
    finally:
        conn.close()


def doctor(index: Any) -> DoctorReport:
    """Sweep an index read-only and report its health. ``index`` is a
    ``GUFIIndex`` handle or an index-root path."""
    if not hasattr(index, "iter_index_dirs"):
        from repro.core.index import GUFIIndex

        index = GUFIIndex.open(Path(index))
    report = DoctorReport()
    for d in index.iter_index_dirs():
        report.dirs_seen += 1
        _check_dir(DirStore(d), index.source_path(d), report)
    return report
