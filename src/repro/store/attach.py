"""Attach lifecycle for one directory's artifact set (§III-B1).

The security theorem's load-bearing invariant — *only side databases
the querying credentials can read are ever attached* — lives here and
nowhere else. Everything that ATTACHes an index artifact to a query
connection goes through :class:`AttachSession` (per-directory query
lifecycle) or :func:`attached` (administrative merge scopes), so the
gate in :func:`accessible_side_dbs` cannot be bypassed by an engine
stage growing its own attach code.
"""

from __future__ import annotations

import sqlite3
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.fs.permissions import Credentials, can_read_entry

from . import connect
from .layout import DirStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.blktrace import IOTracer


def accessible_side_dbs(
    conn_main: sqlite3.Connection, creds: Credentials
) -> list[str]:
    """Side databases these credentials may attach: the engine-side
    equivalent of the kernel refusing ``open(2)`` on files the user
    cannot read. Owner-uid match on per-user databases is what lets
    users see their own currently-unreadable values."""
    out = []
    for filename, uid, gid, mode in conn_main.execute(
        "SELECT filename, uid, gid, mode FROM xattrs_avail"
    ):
        if creds.is_root or can_read_entry(mode, uid, gid, creds) or creds.uid == uid:
            out.append(filename)
    return out


class AttachSession:
    """Ordered attach/detach of one directory's artifacts on a query
    connection.

    Lifecycle: ``attach_main()`` (or ``adopt_main()`` when the caller
    already holds the main attach), optionally ``xattr_views(creds)``
    and ``attach_sidecar(...)``, then ``close()`` — which drops views
    and detaches in reverse attach order. The xattr side databases are
    filtered through :func:`accessible_side_dbs` *inside* this class;
    there is no way to attach a shard without passing the gate.

    Optional sidecars (e.g. the FTS5 name index) carry only metadata
    already protected by the directory's own permissions, so they are
    gated exactly like the primary database: attachable only once the
    main attach succeeded for these credentials.
    """

    __slots__ = ("conn", "store", "main_alias", "tracer", "_aliases", "_views", "_main")

    def __init__(
        self,
        conn: sqlite3.Connection,
        store: DirStore,
        main_alias: str = "gufi",
        tracer: "IOTracer | None" = None,
    ) -> None:
        self.conn = conn
        self.store = store
        self.main_alias = main_alias
        self.tracer = tracer
        self._aliases: list[str] = []
        self._views: list[str] = []
        self._main = False

    # -- main database -------------------------------------------------
    def attach_main(self) -> None:
        connect.attach_ro(self.conn, self.store.db_path, self.main_alias, self.tracer)
        self._main = True

    def adopt_main(self) -> None:
        """Record that the caller already attached the primary database
        under ``main_alias`` (the engine's stage runner attaches it at
        unit start, long before the xattr stages run). The session then
        manages views and side attaches but leaves the main attach to
        its owner."""
        self._main = False  # not ours to detach

    # -- xattr views (§III-B1) -----------------------------------------
    def xattr_views(self, creds: Credentials) -> list[str]:
        """Create the per-query temporary xattr views.

        Attaches every side database ``creds`` may read, then creates:

        * ``vxattrs(exinode, exattrs)`` — union of the directory's
          xattrs table with the accessible side databases;
        * ``xpentries`` — ``pentries`` joined with ``vxattrs`` (the
          paper's Fig 9 ``myxatv``-joined-with-pentries convenience).

        Views are TEMP: different users get different views, so none
        are persisted. Returns the attached aliases (informational;
        ``drop_xattr_views``/``close`` detach them)."""
        conn = self.conn
        names = accessible_side_dbs(conn, creds)
        selects = [f"SELECT exinode, exattrs FROM {self.main_alias}.xattrs"]
        for i, name in enumerate(names):
            path = self.store.artifact_path(name)
            if not path.exists():
                continue  # tracking row newer than an interrupted build
            alias = f"xa{i}"
            connect.attach_ro(conn, path, alias, self.tracer)
            self._aliases.append(alias)
            selects.append(f"SELECT exinode, exattrs FROM {alias}.xattrs")
        # UNION (not UNION ALL): an entry's values may legitimately live
        # in several accessible stores at once (its owner's per-user
        # database plus a per-group database); the paper builds "a view
        # of all *unique* accessible XAttrs".
        union = " UNION ".join(selects)
        conn.execute("DROP VIEW IF EXISTS temp.vxattrs")
        conn.execute(f"CREATE TEMP VIEW vxattrs AS {union}")
        conn.execute("DROP VIEW IF EXISTS temp.xpentries")
        conn.execute(
            "CREATE TEMP VIEW xpentries AS "
            f"SELECT p.*, x.exattrs FROM {self.main_alias}.vrpentries p "
            "INNER JOIN vxattrs x ON p.inode = x.exinode"
        )
        self._views = ["xpentries", "vxattrs"]
        return list(self._aliases)

    def drop_xattr_views(self) -> None:
        for view in self._views:
            self.conn.execute(f"DROP VIEW IF EXISTS temp.{view}")
        self._views = []
        for alias in reversed(self._aliases):
            connect.detach(self.conn, alias)
        self._aliases = []

    # -- optional sidecars ---------------------------------------------
    def attach_sidecar(
        self, kind_key: str, alias: str, ident: Optional[int] = None
    ) -> bool:
        """Attach an optional sidecar artifact read-only under
        ``alias``. Returns False (no attach) when the sidecar was never
        built for this directory. Permission gate: same as the primary
        database — the caller reached this directory through a readable
        path, and sidecars carry no data more private than the primary
        (that is a registration-time obligation on the kind)."""
        from .layout import artifact_kind

        name = artifact_kind(kind_key).name_for(ident)
        path = self.store.artifact_path(name)
        if not path.exists():
            return False
        connect.attach_ro(self.conn, path, alias, self.tracer)
        self._aliases.append(alias)
        return True

    # -- teardown ------------------------------------------------------
    def close(self) -> None:
        """Drop views and detach everything this session attached, in
        reverse attach order (views before their backing attaches)."""
        self.drop_xattr_views()
        if self._main:
            try:
                self.conn.commit()
            except sqlite3.Error:  # pragma: no cover - defensive
                pass
            connect.detach(self.conn, self.main_alias)
            self._main = False


@contextmanager
def attached(
    conn: sqlite3.Connection,
    path: Path | str,
    alias: str,
    ro: bool = True,
    tracer: "IOTracer | None" = None,
) -> Iterator[None]:
    """Administrative attach scope (rollup's child merges): ATTACH for
    the duration of the block, DETACH on the way out. ``ro=False`` is
    for administrator-only writers merging into an attached database —
    never reachable from query credentials."""
    if ro:
        connect.attach_ro(conn, path, alias, tracer)
    else:
        conn.execute(f"ATTACH DATABASE ? AS {alias}", (str(path),))
    try:
        yield
    finally:
        connect.detach(conn, alias)
