"""The per-directory store layer — the sole authority for how a GUFI
index directory is laid out on disk.

Everything that knows an artifact's *file name*, the ``.partial``
staging/commit protocol, the stat-derived validity stamps, or the
schema version lives under this package:

* :mod:`repro.store.layout` — artifact-kind registry, the
  :class:`~repro.store.layout.DirStore` handle (staging, publish,
  orphan-partial GC), and the stamp helpers every cache validates
  with;
* :mod:`repro.store.schema` — the DDL, the ``PRAGMA user_version``
  schema stamp, and the migration registry;
* :mod:`repro.store.connect` — SQLite connection policy (template
  databases, read-only opens, traced attaches, byte accounting);
* :mod:`repro.store.attach` — the :class:`~repro.store.attach.
  AttachSession` that owns ordered attach/detach of a directory's
  artifact set and the "only readable shards attach" invariant;
* :mod:`repro.store.fts` — the optional FTS5 ``names`` sidecar, the
  registry's proof-of-extension artifact kind;
* :mod:`repro.store.migrate` / :mod:`repro.store.doctor` — in-place
  schema upgrades (resumable) and the read-only health report.

``repro.core`` modules import their layout knowledge from here; the
encapsulation lint (``tests/test_store_layout.py``) fails the build if
a layout literal reappears outside this package.
"""

from .attach import AttachSession, accessible_side_dbs, attached
from .doctor import DoctorReport, doctor
from .fts import FTS_KIND, fts5_available
from .layout import (
    DB_NAME,
    PARTIAL_SUFFIX,
    ArtifactKind,
    DirStore,
    StampBracket,
    artifact_kind,
    artifact_kinds,
    classify_artifact,
    dir_stamp,
    file_stamp,
    is_side_artifact,
    register_artifact_kind,
    side_db_name,
    stamp_matches,
)
from .migrate import MigrateResult, migrate_db, migrate_index
from .schema import SCHEMA_VERSION, db_schema_version

__all__ = [
    "AttachSession",
    "ArtifactKind",
    "DB_NAME",
    "DirStore",
    "DoctorReport",
    "FTS_KIND",
    "MigrateResult",
    "PARTIAL_SUFFIX",
    "SCHEMA_VERSION",
    "StampBracket",
    "accessible_side_dbs",
    "artifact_kind",
    "artifact_kinds",
    "attached",
    "classify_artifact",
    "fts5_available",
    "db_schema_version",
    "dir_stamp",
    "doctor",
    "file_stamp",
    "is_side_artifact",
    "migrate_db",
    "migrate_index",
    "register_artifact_kind",
    "side_db_name",
    "stamp_matches",
]
