"""In-place, resumable schema migration (``gufi index migrate``).

Indexes written before the store layer existed carry ``PRAGMA
user_version = 0``. They stay *read-compatible* — every query path
works against them unchanged — but new schema objects (and the version
stamp itself) arrive only through migration. Migration is:

* **per-directory**: each primary database (and its xattr side
  databases) upgrades independently through
  :data:`repro.store.schema.MIGRATIONS`, committing after every step,
  so a crash can only lose the single in-flight directory;
* **resumable**: completed directories are journaled through the same
  :class:`~repro.core.checkpoint.BuildJournal` machinery the builders
  use, under ``gufi_migrate.journal``, and ``resume=True`` skips every
  directory whose journal stamp still matches the on-disk database;
* **idempotent**: a database already at
  :data:`~repro.store.schema.SCHEMA_VERSION` is a no-op, so rerunning
  a finished migration (or racing one) is harmless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from . import connect, schema
from .layout import DirStore, file_stamp

#: journal file for resumable migrations (lives in the index root,
#: next to — never colliding with — the build journal)
MIGRATE_JOURNAL = "gufi_migrate.journal"

#: fault-injection site fired once per directory before it migrates
#: (key = source path), for kill-and-resume tests
FAULT_SITE = "migrate_dir"

#: xattr side databases carry the schema stamp too; only these kinds
#: (plus the primary) hold schema-versioned relational tables
_VERSIONED_SIDE_KINDS = frozenset(
    {"xattr_user", "xattr_group_r", "xattr_group_nr"}
)


@dataclass
class MigrateResult:
    """Outcome of one :func:`migrate_index` sweep."""

    dirs_seen: int = 0
    #: directories where at least one migration step ran
    dirs_migrated: int = 0
    #: directories skipped — already at the current version, or proven
    #: done by the resume journal
    dirs_skipped: int = 0
    #: total migration steps applied across all databases
    steps_applied: int = 0
    side_dbs_migrated: int = 0
    #: directories that failed: (source path, exception). Non-empty
    #: means the journal was kept for a future ``resume=True`` run.
    errors: list[tuple[str, Exception]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def migrate_db(path: Path | str) -> int:
    """Upgrade one database file in place. Returns the number of
    migration steps applied (0: already current). Each step commits
    with its version stamp before the next begins, so a kill between
    steps resumes exactly where it stopped."""
    conn = connect.open_rw(path)
    try:
        return schema.migrate_conn(conn)
    finally:
        conn.close()


def _migrate_dir(store: DirStore) -> tuple[int, int]:
    """(steps applied, side databases touched) for one directory."""
    steps = migrate_db(store.db_path)
    side_touched = 0
    for name, kind in store.artifacts():
        if kind in _VERSIONED_SIDE_KINDS:
            if migrate_db(store.artifact_path(name)):
                side_touched += 1
    return steps, side_touched


def migrate_index(
    index: Any,
    resume: bool = False,
    faults: Optional[Any] = None,
) -> MigrateResult:
    """Migrate every directory of an index to the current schema
    version. ``index`` is a ``GUFIIndex`` handle or an index-root
    path. ``faults`` is an optional
    :class:`~repro.scan.faults.FaultPlan` (site :data:`FAULT_SITE`).

    Per-directory failures are recorded and the sweep continues; a
    simulated process death (``kind="crash"``) propagates after the
    journal is flushed, and ``resume=True`` picks up from the journal.
    """
    # Imported lazily: repro.core modules import their layout facts
    # from this package, so a module-level import here would cycle.
    from repro.core.checkpoint import BuildJournal
    from repro.scan.walker import FatalWalkError

    if not hasattr(index, "iter_index_dirs"):
        from repro.core.index import GUFIIndex

        index = GUFIIndex.open(Path(index))

    journal = BuildJournal.open(
        index.root, resume=resume, source="migrate", name=MIGRATE_JOURNAL
    )
    result = MigrateResult()
    try:
        for d in index.iter_index_dirs():
            source_path = index.source_path(d)
            result.dirs_seen += 1
            store = DirStore(d)
            if resume and journal.is_complete(source_path, store.db_path):
                result.dirs_skipped += 1
                continue
            if faults is not None:
                faults.fire(FAULT_SITE, source_path)
            try:
                steps, side_touched = _migrate_dir(store)
            except FatalWalkError:
                raise
            except Exception as exc:  # noqa: BLE001 - per-dir report
                result.errors.append((source_path, exc))
                continue
            result.steps_applied += steps
            result.side_dbs_migrated += side_touched
            if steps or side_touched:
                result.dirs_migrated += 1
                index.cache.invalidate(source_path)
            else:
                result.dirs_skipped += 1
            journal.record(
                source_path, file_stamp(store.db_path), steps, side_touched
            )
    except FatalWalkError:
        journal.close()
        raise
    if result.ok:
        journal.finalize()
    else:
        journal.close()
    return result
