"""Optional FTS5 name-search sidecar — the registry's proof of
extension.

The ROADMAP's open FTS5 item needs a per-directory full-text index
over entry names. This module registers it as an *optional artifact
kind* (:data:`FTS_KIND`): the sidecar's file name, schema, staging,
and attach gating all live here, and no other module — not the
builders, not the sweeper, not the doctor — learns its filename. The
build path stages it through the same ``.partial``-and-rename commit
protocol as every other artifact, behind
``BuildOptions.optional_artifacts=("names_fts",)``.

Security: the sidecar stores only entry *names*, which are metadata
protected by the directory's own permissions (exactly like the
``entries`` table in the primary database), so the attach gate is the
primary-database gate — a reader who may query ``db.db`` may query
``names.fts``; nobody else reaches either.
"""

from __future__ import annotations

import re
import sqlite3
from typing import TYPE_CHECKING, Any, Optional

from .layout import ArtifactKind, DirStore, register_artifact_kind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scan.trace import DirStanza

#: registry key for the sidecar (what goes in
#: ``BuildOptions.optional_artifacts``); the file name is private.
FTS_KIND = "names_fts"

_FTS_NAME = "names.fts"

#: fault-injection site fired once per staged sidecar (key = source
#: directory path), mirroring the ``"xattr_shards"`` site.
FAULT_SITE = "fts_sidecar"


def fts5_available() -> bool:
    """Is the SQLite build linked with the FTS5 extension?"""
    try:
        conn = sqlite3.connect(":memory:")
        try:
            conn.execute("CREATE VIRTUAL TABLE t USING fts5(x)")
        finally:
            conn.close()
        return True
    except sqlite3.Error:
        return False


def _build_names_fts(
    store: DirStore, stanza: "DirStanza", faults: Any = None
) -> list[str]:
    """Builder hook (see :class:`~repro.store.layout.ArtifactKind`):
    stage the sidecar at its ``.partial`` path and return the final
    name for the publish step to rename."""
    if faults is not None:
        faults.fire(FAULT_SITE, stanza.directory.path)
    path = store.partial_path(_FTS_NAME)
    conn = sqlite3.connect(str(path), isolation_level=None)
    try:
        conn.execute("PRAGMA journal_mode = MEMORY")
        conn.execute("PRAGMA synchronous = OFF")
        conn.execute(
            "CREATE VIRTUAL TABLE names USING fts5(name, inode UNINDEXED)"
        )
        conn.execute("BEGIN")
        conn.executemany(
            "INSERT INTO names (name, inode) VALUES (?, ?)",
            [(r.name, r.ino) for r in stanza.entries],
        )
        conn.execute("COMMIT")
    finally:
        conn.close()
    return [_FTS_NAME]


register_artifact_kind(
    ArtifactKind(
        key=FTS_KIND,
        match=re.compile(re.escape(_FTS_NAME)),
        name_for=lambda _ident: _FTS_NAME,
        optional=True,
        builder=_build_names_fts,
    )
)


def has_sidecar(store: DirStore) -> bool:
    """Was the sidecar built for this directory?"""
    return store.artifact_path(_FTS_NAME).exists()


def search_dir(
    store: DirStore, query: str, limit: Optional[int] = None
) -> list[tuple[str, int]]:
    """FTS5 MATCH over one directory's sidecar: (name, inode) hits.
    Empty when the sidecar was never built — absence means "not
    indexed", never an error, so the flag can be enabled per-build.

    The caller is responsible for the permission gate (same rule as
    opening the primary database); :func:`search_names` applies it
    tree-wide."""
    path = store.artifact_path(_FTS_NAME)
    if not path.exists():
        return []
    conn = sqlite3.connect(
        f"file:{path}?mode=ro&immutable=1", uri=True, isolation_level=None
    )
    try:
        sql = "SELECT name, inode FROM names WHERE names MATCH ? ORDER BY rank"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return [(str(n), int(i)) for n, i in conn.execute(sql, (query,))]
    finally:
        conn.close()


def search_names(index: Any, query: str, creds: Any) -> list[tuple[str, str]]:
    """Tree-wide name search: (source directory, matching name) pairs,
    permission-filtered with the engine's rules — descend only through
    searchable directories, read names only from readable ones.

    A deliberately minimal reader (the full faceted-search engine is
    the ROADMAP follow-up): it proves the sidecar round-trips through
    build → publish → permission-gated query without any module
    outside ``repro.store`` knowing the sidecar's file name.
    """
    from repro.fs.permissions import can_read_dir, can_search_dir

    out: list[tuple[str, str]] = []

    def visit(source_path: str) -> None:
        meta = index.cached_dir_meta(source_path)
        if meta is None:
            return  # missing db: denied-by-absence
        if can_read_dir(meta.mode, meta.uid, meta.gid, creds):
            store = DirStore(index.index_dir(source_path))
            for name, _ino in search_dir(store, query):
                out.append((source_path, name))
        if can_search_dir(meta.mode, meta.uid, meta.gid, creds):
            for child in index.subdir_names(source_path):
                visit(
                    source_path.rstrip("/") + "/" + child
                    if source_path != "/"
                    else "/" + child
                )

    visit("/")
    return out
