"""SQLite connection policy for index databases.

Centralises the paper's database-access rules:

* user-facing tools open databases **read-only** (§III-A5) via SQLite
  URI ``mode=ro`` — schema modification is an administrator privilege;
* every database open is reported to an optional
  :class:`~repro.sim.blktrace.IOTracer` with the bytes the query will
  pull from it (Fig 7's accounting);
* connections run with WAL off and synchronous=OFF during bulk builds
  (the index is rebuilt from scratch on corruption, like the paper's
  periodic re-pull, so durability is not bought with fsyncs);
* every database this layer creates is stamped with ``PRAGMA
  user_version = SCHEMA_VERSION`` (see :mod:`repro.store.schema`).
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
import threading
from pathlib import Path

from repro.sim.blktrace import IOTracer

from . import schema
from .layout import artifact_bytes

#: bytes of fixed overhead in an empty SQLite database file — the
#: paper's "even an empty SQLite database includes 12KB of data that
#: must be read" (three 4 KiB pages with our schema's page size).
EMPTY_DB_BYTES = 12 * 1024


# ----------------------------------------------------------------------
# Template databases. Creating a per-directory database by running the
# full DDL costs milliseconds per directory; GUFI's builders instead
# copy a pre-built template file into place (one file copy) and only
# then insert rows. We do the same, with one template for the primary
# schema and one for xattr side databases, built lazily per process.
# The version stamp rides in the template, so stamping costs nothing
# per directory.
# ----------------------------------------------------------------------

_template_lock = threading.Lock()
_templates: dict[str, bytes] = {}


def _template(kind: str) -> bytes:
    """The raw bytes of an empty schema-initialised, version-stamped
    database file, built once per process. Materialising a new
    directory database is then a single open+write+close."""
    with _template_lock:
        blob = _templates.get(kind)
        if blob is None:
            fd, path = tempfile.mkstemp(prefix=f"gufi_template_{kind}_", suffix=".db")
            os.close(fd)
            os.unlink(path)  # sqlite must create it fresh
            conn = sqlite3.connect(path, isolation_level=None)
            try:
                conn.execute("PRAGMA page_size = 1024")
                conn.execute("PRAGMA journal_mode = MEMORY")
                conn.execute("PRAGMA synchronous = OFF")
                if kind == "full":
                    conn.executescript("".join(schema.ALL_DDL))
                else:
                    conn.execute(schema.CREATE_XATTRS)
                schema.stamp_schema_version(conn)
            finally:
                conn.close()
            with open(path, "rb") as fh:
                blob = fh.read()
            os.unlink(path)
            _templates[kind] = blob
        return blob


def _connect_rw(path: str) -> sqlite3.Connection:
    conn = sqlite3.connect(path, isolation_level=None)
    conn.execute("PRAGMA journal_mode = MEMORY")
    conn.execute("PRAGMA synchronous = OFF")
    return conn


def create_db(path: Path | str, fresh: bool = False) -> sqlite3.Connection:
    """Create an index database (template copy) and open it.

    ``fresh=True`` skips the existence probe when the caller knows the
    file cannot exist yet (bulk builds), saving a stat per directory.

    Connections run in autocommit (``isolation_level=None``): callers
    wrap bulk work in explicit BEGIN/COMMIT, and ATTACH/DETACH (which
    SQLite forbids inside transactions) always work.
    """
    p = str(path)
    if fresh or not os.path.exists(p):
        with open(p, "wb") as fh:
            fh.write(_template("full"))
    return _connect_rw(p)


def create_side_db(path: Path | str, fresh: bool = False) -> sqlite3.Connection:
    """Create a per-user/per-group xattr side database (only the
    ``xattrs`` table lives in side databases).

    ``fresh=True`` overwrites whatever is at ``path`` — the staged
    writes of the crash-safe build path must not append to a leftover
    from an interrupted earlier attempt."""
    p = str(path)
    if fresh or not os.path.exists(p):
        with open(p, "wb") as fh:
            fh.write(_template("side"))
    return _connect_rw(p)


def open_ro(
    path: Path | str, tracer: IOTracer | None = None
) -> sqlite3.Connection:
    """Open an index database read-only (the only mode user query
    tools are allowed — §III-A5), recording the read volume."""
    p = str(path)
    if tracer is not None:
        tracer.record(p, artifact_bytes(p))
    uri = f"file:{p}?mode=ro&immutable=1"
    return sqlite3.connect(uri, uri=True, isolation_level=None)


def open_rw(path: Path | str) -> sqlite3.Connection:
    """Administrator open: schema changes and rollups allowed."""
    conn = sqlite3.connect(str(path), isolation_level=None)
    conn.execute("PRAGMA journal_mode = MEMORY")
    conn.execute("PRAGMA synchronous = OFF")
    return conn


def attach_ro(
    conn: sqlite3.Connection,
    path: Path | str,
    alias: str,
    tracer: IOTracer | None = None,
) -> None:
    """ATTACH another index database read-only under ``alias``."""
    p = str(path)
    if tracer is not None:
        tracer.record(p, artifact_bytes(p))
    conn.execute(f"ATTACH DATABASE ? AS {alias}", (f"file:{p}?mode=ro&immutable=1",))


def detach(conn: sqlite3.Connection, alias: str) -> None:
    conn.execute(f"DETACH DATABASE {alias}")


def _alias_path(conn: sqlite3.Connection, alias: str) -> str:
    for row in conn.execute("PRAGMA database_list"):
        if row[1] == alias:
            return str(row[2])
    return ""


def table_bytes(
    conn: sqlite3.Connection, alias: str, tables: set[str]
) -> int:
    """Bytes occupied by ``tables`` in the ``alias`` schema, via the
    DBSTAT virtual table — the pages a table-restricted query actually
    pulls (the paper: 'many queries do not need to access more than
    the pre-computed summary tables'). Falls back to the whole file
    when DBSTAT is unavailable.

    Missing-file handling matches :func:`~repro.store.layout.
    artifact_bytes`: if the alias's backing file is gone (or the alias
    is unknown) the accounting reports 0 instead of the fixed
    schema-page constant — an absent database pulls no pages."""
    backing = _alias_path(conn, alias)
    if not backing or artifact_bytes(backing) == 0:
        return 0
    try:
        placeholders = ",".join("?" * len(tables))
        (n,) = conn.execute(
            f"SELECT COALESCE(SUM(pgsize), 0) FROM {alias}.dbstat "
            f"WHERE name IN ({placeholders})",
            tuple(tables),
        ).fetchone()
        # one page of schema/metadata is always read
        return int(n) + 4096
    except sqlite3.Error:
        return artifact_bytes(backing)


def is_readonly_error(exc: sqlite3.Error) -> bool:
    """Did this operation fail because the connection is read-only?"""
    return "readonly" in str(exc).lower() or "attempt to write" in str(exc).lower()
