"""GUFI per-directory database schema (paper §III-B, Fig 5), plus the
schema-version stamp and migration registry.

Every directory in the index holds one SQLite database with three
record-holding tables plus views:

* ``entries`` — one row per non-directory entry (file/symlink) with
  the standard inode attributes; xattr *names* are packed into a
  column here (names are metadata-protected, values are not).
* ``summary`` — the directory's own attributes plus aggregates over
  its entries (min/max/total sizes, counts, time ranges). Can hold
  *overall* (rectype 0), *per-user* (rectype 1), and *per-group*
  (rectype 2) records. After a rollup, sub-directory summary rows are
  copied in with ``isroot=0`` and the relative path in ``name``.
* ``tsummary`` — whole-subtree aggregates, built on demand by the
  ``bfti`` tool (:mod:`repro.core.tsummary`); also rectype-typed.
* ``pentries`` — a view of ``entries`` augmented with the parent
  inode. Rollup materialises it into a real table so sub-directory
  rows can be merged in without touching ``entries``.
* ``xattrs`` — xattr values for entries whose protection matches the
  directory database itself; ``xattrs_avail`` tracks the per-user /
  per-group side databases holding the rest (§III-A2, §III-B1).

Versioning
----------

Every database written by the store layer carries ``PRAGMA
user_version = SCHEMA_VERSION`` (side databases included). Version 0
is the pre-store, unversioned layout; it is read-compatible with the
current readers (the DDL is unchanged — the stamp itself is what v1
adds), and :mod:`repro.store.migrate` upgrades it in place through the
:data:`MIGRATIONS` registry, one step per version, per directory, and
resumably. New steps append to the registry; a reader that encounters
a version *newer* than :data:`SCHEMA_VERSION` should refuse rather
than guess (``gufi index doctor`` reports such databases).
"""

from __future__ import annotations

import sqlite3
from collections.abc import Callable

#: the schema epoch stamped into ``PRAGMA user_version`` of every
#: database this layer writes; bump when a migration step is added
SCHEMA_VERSION = 1

ENTRIES_COLUMNS = (
    "name",
    "type",
    "inode",
    "mode",
    "nlink",
    "uid",
    "gid",
    "size",
    "blksize",
    "blocks",
    "atime",
    "mtime",
    "ctime",
    "linkname",
    "xattr_names",
)

CREATE_ENTRIES = """
CREATE TABLE IF NOT EXISTS entries (
    name        TEXT,
    type        TEXT,
    inode       INTEGER,
    mode        INTEGER,
    nlink       INTEGER,
    uid         INTEGER,
    gid         INTEGER,
    size        INTEGER,
    blksize     INTEGER,
    blocks      INTEGER,
    atime       INTEGER,
    mtime       INTEGER,
    ctime       INTEGER,
    linkname    TEXT,
    xattr_names TEXT
);
"""

SUMMARY_COLUMNS = (
    "name",
    "rectype",
    "isroot",
    "inode",
    "mode",
    "nlink",
    "uid",
    "gid",
    "size",
    "blksize",
    "blocks",
    "atime",
    "mtime",
    "ctime",
    "totfiles",
    "totlinks",
    "totsubdirs",
    "minuid",
    "maxuid",
    "mingid",
    "maxgid",
    "minsize",
    "maxsize",
    "totsize",
    "minmtime",
    "maxmtime",
    "minatime",
    "maxatime",
    "totxattr",
    "rolledup",
    "rollup_entries",
    "depth",
)

CREATE_SUMMARY = """
CREATE TABLE IF NOT EXISTS summary (
    name           TEXT,
    rectype        INTEGER,  -- 0 overall, 1 per-user, 2 per-group
    isroot         INTEGER,  -- 1 original record, 0 copied in by rollup
    inode          INTEGER,
    mode           INTEGER,
    nlink          INTEGER,
    uid            INTEGER,
    gid            INTEGER,
    size           INTEGER,
    blksize        INTEGER,
    blocks         INTEGER,
    atime          INTEGER,
    mtime          INTEGER,
    ctime          INTEGER,
    totfiles       INTEGER,
    totlinks       INTEGER,
    totsubdirs     INTEGER,
    minuid         INTEGER,
    maxuid         INTEGER,
    mingid         INTEGER,
    maxgid         INTEGER,
    minsize        INTEGER,
    maxsize        INTEGER,
    totsize        INTEGER,
    minmtime       INTEGER,
    maxmtime       INTEGER,
    minatime       INTEGER,
    maxatime       INTEGER,
    totxattr       INTEGER,
    rolledup       INTEGER DEFAULT 0,
    rollup_entries INTEGER DEFAULT 0,
    depth          INTEGER DEFAULT 0
);
"""

TSUMMARY_COLUMNS = (
    "rectype",
    "uid",
    "gid",
    "totfiles",
    "totlinks",
    "totsubdirs",
    "totsize",
    "minsize",
    "maxsize",
    "minmtime",
    "maxmtime",
    "maxdepth",
    "totxattr",
    "totusers",
    "totgroups",
)

CREATE_TSUMMARY = """
CREATE TABLE IF NOT EXISTS tsummary (
    rectype    INTEGER,  -- 0 overall, 1 per-user, 2 per-group
    uid        INTEGER,
    gid        INTEGER,
    totfiles   INTEGER,
    totlinks   INTEGER,
    totsubdirs INTEGER,
    totsize    INTEGER,
    minsize    INTEGER,
    maxsize    INTEGER,
    minmtime   INTEGER,
    maxmtime   INTEGER,
    maxdepth   INTEGER,
    totxattr   INTEGER,
    totusers   INTEGER,
    totgroups  INTEGER
);
"""

# The pentries view joins every entry with the (single) original
# overall summary record to expose the parent inode, exactly as the
# paper's Fig 5 describes. Rollup drops the view and materialises a
# table of the same shape.
CREATE_PENTRIES_VIEW = """
CREATE VIEW IF NOT EXISTS pentries AS
    SELECT entries.*, summary.inode AS pinode
    FROM entries, summary
    WHERE summary.isroot = 1 AND summary.rectype = 0;
"""

PENTRIES_COLUMNS = ENTRIES_COLUMNS + ("pinode",)

CREATE_PENTRIES_TABLE = """
CREATE TABLE IF NOT EXISTS pentries (
    name        TEXT,
    type        TEXT,
    inode       INTEGER,
    mode        INTEGER,
    nlink       INTEGER,
    uid         INTEGER,
    gid         INTEGER,
    size        INTEGER,
    blksize     INTEGER,
    blocks      INTEGER,
    atime       INTEGER,
    mtime       INTEGER,
    ctime       INTEGER,
    linkname    TEXT,
    xattr_names TEXT,
    pinode      INTEGER
);
"""

# Xattr value store (§III-B1): two payload columns — the entry's inode
# and a packed name=value list — plus the rollup-provenance marker.
# The same DDL is used in the main db and in every per-user/per-group
# side database.
CREATE_XATTRS = """
CREATE TABLE IF NOT EXISTS xattrs (
    exinode INTEGER,
    exattrs TEXT,
    isroot  INTEGER DEFAULT 1
);
"""

# Tracking table (§III-B1 'an additional table ... keeps track of the
# per-user and per-group XAttr database files that were generated'):
# avoids globbing the directory for side databases at query time.
CREATE_XATTRS_AVAIL = """
CREATE TABLE IF NOT EXISTS xattrs_avail (
    filename TEXT,    -- side database file name within this directory
    uid      INTEGER, -- owner uid of the side database file
    gid      INTEGER, -- owner gid
    mode     INTEGER, -- file mode bits gating who may read it
    isroot   INTEGER DEFAULT 1  -- 0 if the side db was created by rollup
);
"""

# vrpentries joins each (p)entries row with its parent directory's
# summary record so full paths survive rollup: ``dname`` is the parent
# directory's path relative to this database's directory (its plain
# basename for non-rolled rows, a multi-segment relative path for
# rolled-in rows) and ``d_isroot`` tells the rpath() SQL function
# whether a prefix is needed. This is the moral equivalent of GUFI's
# vrpentries/rpath machinery.
CREATE_VRPENTRIES_VIEW = """
CREATE VIEW IF NOT EXISTS vrpentries AS
    SELECT pentries.*, summary.name AS dname, summary.isroot AS d_isroot
    FROM pentries JOIN summary
    ON pentries.pinode = summary.inode AND summary.rectype = 0;
"""

ALL_DDL = (
    CREATE_ENTRIES,
    CREATE_SUMMARY,
    CREATE_TSUMMARY,
    CREATE_PENTRIES_VIEW,
    CREATE_VRPENTRIES_VIEW,
    CREATE_XATTRS,
    CREATE_XATTRS_AVAIL,
)

# rectype values, named for readability at call sites
RECTYPE_OVERALL = 0
RECTYPE_USER = 1
RECTYPE_GROUP = 2


def pack_xattrs(xattrs: dict[str, bytes]) -> str:
    """Pack name→value pairs into the single-column list format the
    paper's queries match with LIKE (e.g. ``exattrs LIKE '%needle%'``).
    Values that decode as UTF-8 are stored readably; binary values are
    hex-encoded."""
    parts = []
    for name in sorted(xattrs):
        value = xattrs[name]
        try:
            text = value.decode("utf-8")
            if "\x1f" in text or "=" in text:
                raise UnicodeDecodeError("utf-8", value, 0, 1, "reserved char")
        except UnicodeDecodeError:
            text = "0x" + value.hex()
        parts.append(f"{name}={text}")
    return "\x1f".join(parts)


def unpack_xattrs(packed: str) -> dict[str, str]:
    """Inverse of :func:`pack_xattrs` (values stay textual)."""
    out: dict[str, str] = {}
    if not packed:
        return out
    for pair in packed.split("\x1f"):
        name, _, value = pair.partition("=")
        out[name] = value
    return out


def pack_xattr_names(xattrs: dict[str, bytes]) -> str:
    """Xattr *names* column for ``entries`` (names are metadata)."""
    return "\x1f".join(sorted(xattrs))


# ----------------------------------------------------------------------
# Schema versioning / migrations
# ----------------------------------------------------------------------

def db_schema_version(conn: sqlite3.Connection) -> int:
    """The ``PRAGMA user_version`` stamp of an open database. 0 means
    a pre-store, unversioned index (or an empty scratch file)."""
    (v,) = conn.execute("PRAGMA user_version").fetchone()
    return int(v)


def stamp_schema_version(
    conn: sqlite3.Connection, version: int = SCHEMA_VERSION
) -> None:
    """Write the version stamp (template construction and the final
    step of each migration)."""
    conn.execute(f"PRAGMA user_version = {int(version)}")


def _upgrade_0_to_1(conn: sqlite3.Connection) -> None:
    """v0 → v1: the unversioned layout *is* the v1 layout — this step
    exists to stamp the epoch so later migrations have a floor. It
    also re-creates the ``vrpentries`` view for primary databases
    predating it (``IF NOT EXISTS``, so stamped-but-current databases
    pass through untouched). Side databases (only an ``xattrs`` table)
    take the stamp alone."""
    tables = {
        name
        for (name,) in conn.execute(
            "SELECT name FROM sqlite_master WHERE type IN ('table', 'view')"
        )
    }
    if "entries" in tables and "vrpentries" not in tables:
        conn.executescript(CREATE_VRPENTRIES_VIEW)


#: migration registry: ``MIGRATIONS[v]`` upgrades a database *from*
#: version ``v`` to ``v + 1``; :func:`migrate_conn` walks it and
#: stamps after each step, so a crash mid-walk resumes at the step it
#: died in
MIGRATIONS: dict[int, Callable[[sqlite3.Connection], None]] = {
    0: _upgrade_0_to_1,
}


class SchemaVersionError(Exception):
    """A database stamped newer than this code understands."""


def migrate_conn(conn: sqlite3.Connection) -> int:
    """Upgrade one open database to :data:`SCHEMA_VERSION` in place.
    Returns the number of steps applied (0: already current). Each
    step commits with its version stamp, so the walk is resumable at
    step granularity."""
    version = db_schema_version(conn)
    if version > SCHEMA_VERSION:
        raise SchemaVersionError(
            f"database is schema v{version}, newer than supported "
            f"v{SCHEMA_VERSION}"
        )
    applied = 0
    while version < SCHEMA_VERSION:
        step = MIGRATIONS[version]
        step(conn)
        version += 1
        stamp_schema_version(conn, version)
        conn.commit()
        applied += 1
    return applied
