"""Per-directory layout: artifact names, staging, stamps.

One directory of a GUFI index holds a small, closed set of *artifacts*
(paper §III-A1/§III-B): the primary database, the permission-sharded
xattr side databases, and any optional sidecars (e.g. the FTS5 name
index). Their file names, the ``.partial``-stage → rename-publish
commit protocol, and the stat-derived validity stamps are layout
facts, and this module is the only place in the tree that knows them.

Artifact kinds are registered in a process-wide registry so a new
per-directory artifact can be added (name, staging, sweep, doctor
reporting, removal) without any other module learning its filename —
:mod:`repro.store.fts` is the proof.
"""

from __future__ import annotations

import os
import re
import sqlite3
import threading
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.blktrace import IOTracer

#: the primary per-directory database — its existence is the commit
#: point the query engine keys on
DB_NAME = "db.db"

#: suffix for staged (not yet published) artifact files
PARTIAL_SUFFIX = ".partial"

#: common prefix of every xattr side database
_XATTR_PREFIX = "xattrs.db"


# ----------------------------------------------------------------------
# Artifact-kind registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ArtifactKind:
    """One kind of per-directory artifact.

    ``match`` is a compiled regex over file names; ``name_for``
    produces a concrete file name (``ident`` is the uid/gid for the
    sharded kinds, ignored otherwise). ``optional`` kinds are built
    only on request (``BuildOptions.optional_artifacts``) through
    ``builder(store, stanza, faults)``, which stages its files under
    :data:`PARTIAL_SUFFIX` and returns the *final* names so the
    publish step renames them alongside the xattr shards.
    """

    key: str
    match: re.Pattern[str]
    name_for: Callable[[Optional[int]], str]
    optional: bool = False
    builder: Optional[Callable[["DirStore", Any, Any], list[str]]] = None


_registry: dict[str, ArtifactKind] = {}
_registry_lock = threading.Lock()


def register_artifact_kind(kind: ArtifactKind) -> ArtifactKind:
    """Add (or idempotently re-add) an artifact kind."""
    with _registry_lock:
        existing = _registry.get(kind.key)
        if existing is not None:
            return existing
        _registry[kind.key] = kind
        return kind


def artifact_kind(key: str) -> ArtifactKind:
    try:
        return _registry[key]
    except KeyError:
        raise ValueError(f"unknown artifact kind {key!r}") from None


def artifact_kinds() -> tuple[ArtifactKind, ...]:
    return tuple(_registry.values())


def classify_artifact(filename: str) -> str | None:
    """The artifact kind a file name belongs to (None: not ours —
    e.g. ``gufi_index.json`` or a user's stray file)."""
    if filename.endswith(PARTIAL_SUFFIX):
        filename = filename[: -len(PARTIAL_SUFFIX)]
    for kind in _registry.values():
        if kind.match.fullmatch(filename):
            return kind.key
    return None


def is_side_artifact(filename: str) -> bool:
    """Every index artifact other than the primary database (xattr
    shards and optional sidecars)."""
    kind = classify_artifact(filename)
    return kind is not None and kind != "primary"


def side_db_name(kind: str, ident: int) -> str:
    """File name for an xattr side database within an index directory
    (``kind`` is the placement-rule bucket: user / group_r /
    group_nr)."""
    if kind == "user":
        return f"{_XATTR_PREFIX}.u{ident}"
    if kind == "group_r":
        return f"{_XATTR_PREFIX}.g{ident}.r"
    if kind == "group_nr":
        return f"{_XATTR_PREFIX}.g{ident}.nr"
    raise ValueError(f"unknown side db kind {kind!r}")


def _need_ident(_: Optional[int]) -> str:  # pragma: no cover - guard
    raise ValueError("sharded artifact kinds need an ident")


register_artifact_kind(
    ArtifactKind(
        key="primary",
        match=re.compile(re.escape(DB_NAME)),
        name_for=lambda _ident: DB_NAME,
    )
)
register_artifact_kind(
    ArtifactKind(
        key="xattr_user",
        match=re.compile(re.escape(_XATTR_PREFIX) + r"\.u\d+"),
        name_for=lambda ident: side_db_name("user", ident)
        if ident is not None
        else _need_ident(ident),
    )
)
register_artifact_kind(
    ArtifactKind(
        key="xattr_group_r",
        match=re.compile(re.escape(_XATTR_PREFIX) + r"\.g\d+\.r"),
        name_for=lambda ident: side_db_name("group_r", ident)
        if ident is not None
        else _need_ident(ident),
    )
)
register_artifact_kind(
    ArtifactKind(
        key="xattr_group_nr",
        match=re.compile(re.escape(_XATTR_PREFIX) + r"\.g\d+\.nr"),
        name_for=lambda ident: side_db_name("group_nr", ident)
        if ident is not None
        else _need_ident(ident),
    )
)


# ----------------------------------------------------------------------
# Validity stamps (the single implementation every cache shares)
# ----------------------------------------------------------------------

def file_stamp(path: Path | str) -> tuple[int, int, int] | None:
    """Cache-validation stamp for a database file: (inode, mtime_ns,
    size). The rebuild path unlinks and recreates the primary
    database, so the inode alone changes even on file systems with
    coarse timestamps; in-place writers (rollup, tsummary, migrate)
    bump mtime_ns. ``None`` when the file is missing — a missing stamp
    never validates a cache entry."""
    try:
        st = os.stat(path)
    except OSError:
        return None
    return (st.st_ino, st.st_mtime_ns, st.st_size)


def dir_stamp(path: Path | str) -> tuple[int, int] | None:
    """Cache-validation stamp for a directory's child listing:
    (inode, mtime_ns). Creating or removing a sub-directory updates
    the parent directory's mtime."""
    try:
        st = os.stat(path)
    except OSError:
        return None
    return (st.st_ino, st.st_mtime_ns)


def stamp_matches(path: Path | str, stamp: tuple | None) -> bool:
    """Is the file at ``path`` still exactly the one ``stamp`` was
    taken from? (False for a ``None`` stamp: an unknown provenance
    never validates anything.)"""
    return stamp is not None and file_stamp(path) == tuple(stamp)


class StampBracket:
    """Stat-twice-and-compare, in one place.

    Readers that want to cache what they read take a stamp *before*
    the read and publish only if a second stat *after* the read proves
    the file unchanged — a write racing the read must never pin its
    predecessor's data. This helper replaces the open-coded copies of
    that pattern in ``GUFIIndex.dir_meta``/``cached_dir_meta`` and the
    query engine's cold path."""

    __slots__ = ("path", "stamp")

    def __init__(self, path: Path | str) -> None:
        self.path = path
        self.stamp = file_stamp(path)

    @property
    def missing(self) -> bool:
        """True when the file did not exist at bracket-open time."""
        return self.stamp is None

    def unchanged(self) -> bool:
        """Re-stat: did the file provably not change across the read?"""
        return self.stamp is not None and file_stamp(self.path) == self.stamp


def artifact_bytes(path: Path | str) -> int:
    """Size of an artifact file on disk (what a full-scan query
    reads). Missing files count as zero so accounting never raises
    mid-query — the same convention :func:`repro.store.connect.
    table_bytes` follows for its missing-file fallback."""
    try:
        return os.stat(path).st_size
    except OSError:
        return 0


# ----------------------------------------------------------------------
# DirStore — one directory's artifact set
# ----------------------------------------------------------------------

class DirStore:
    """Handle to one index directory's artifact set.

    Owns the commit protocol (paper-faithful crash safety): every
    artifact is staged under :data:`PARTIAL_SUFFIX`, then published by
    rename — side databases and sidecars first, the primary database
    last. The primary's existence is the commit point, so a crash at
    any instant leaves either a fully published directory or an
    invisible one.
    """

    __slots__ = ("index_dir",)

    def __init__(self, index_dir: Path | str) -> None:
        self.index_dir = Path(index_dir)

    @classmethod
    def open(cls, index_dir: Path | str, sweep: bool = True) -> "DirStore":
        """Open a directory for (re)building. Sweeps crash-leftover
        ``*.partial`` staging files by default — the orphan GC that
        keeps a mid-build kill from littering the tree forever."""
        store = cls(index_dir)
        if sweep:
            store.sweep_partials()
        return store

    # -- paths ---------------------------------------------------------
    @property
    def db_path(self) -> Path:
        return self.index_dir / DB_NAME

    def artifact_path(self, name: str) -> Path:
        return self.index_dir / name

    def partial_path(self, name: str) -> Path:
        return self.index_dir / (name + PARTIAL_SUFFIX)

    # -- staging / commit protocol -------------------------------------
    def stage_primary(self) -> sqlite3.Connection:
        """Create the staged primary database (template copy at the
        ``.partial`` path) and return an open read-write connection."""
        from . import connect

        os.makedirs(self.index_dir, exist_ok=True)
        return connect.create_db(self.partial_path(DB_NAME), fresh=True)

    def build_optional_artifacts(
        self, kinds: Iterable[str], stanza: Any, faults: Any = None
    ) -> list[str]:
        """Stage every requested optional artifact kind via its
        registered builder. Returns the final names to publish; the
        caller never learns what files a kind produces."""
        staged: list[str] = []
        for key in kinds:
            kind = artifact_kind(key)
            if not kind.optional or kind.builder is None:
                raise ValueError(f"artifact kind {key!r} is not buildable")
            staged.extend(kind.builder(self, stanza, faults))
        return staged

    def publish(self, staged_names: Iterable[str]) -> None:
        """Atomically publish a staged directory: rename every staged
        secondary artifact into place first, the primary database last
        (the commit point), then sweep any stray staging files left by
        an earlier crashed attempt."""
        for name in staged_names:
            os.replace(self.partial_path(name), self.artifact_path(name))
        os.replace(self.partial_path(DB_NAME), self.db_path)
        self.sweep_partials()

    def list_partials(self) -> list[str]:
        """Staged/leftover ``*.partial`` file names in this directory."""
        try:
            with os.scandir(self.index_dir) as it:
                return sorted(
                    e.name for e in it if e.name.endswith(PARTIAL_SUFFIX)
                )
        except OSError:
            return []

    def sweep_partials(self) -> None:
        """Remove leftover staging files — residue of a crashed
        earlier attempt whose artifact set may differ from the one
        being (re)published."""
        for name in self.list_partials():
            try:
                os.unlink(self.index_dir / name)
            except OSError:
                pass

    # -- enumeration / removal -----------------------------------------
    def artifacts(self) -> list[tuple[str, str]]:
        """(file name, artifact kind) for every published artifact in
        this directory, sorted by name."""
        out: list[tuple[str, str]] = []
        try:
            with os.scandir(self.index_dir) as it:
                names = [e.name for e in it if not e.is_dir(follow_symlinks=False)]
        except OSError:
            return out
        for name in sorted(names):
            if name.endswith(PARTIAL_SUFFIX):
                continue
            kind = classify_artifact(name)
            if kind is not None:
                out.append((name, kind))
        return out

    def side_artifacts(self) -> list[str]:
        """Published artifacts other than the primary database."""
        return [n for n, k in self.artifacts() if k != "primary"]

    def remove_artifacts(self) -> None:
        """Unlink every artifact this layer owns (primary, shards,
        sidecars, staging leftovers) so a rebuild starts clean — stale
        side databases would leak old xattr values."""
        try:
            names = os.listdir(self.index_dir)
        except OSError:
            return
        for name in names:
            if name.endswith(PARTIAL_SUFFIX) or classify_artifact(name):
                try:
                    os.unlink(self.index_dir / name)
                except OSError:
                    pass

    # -- stamps / sizes ------------------------------------------------
    def stamp(self) -> tuple[int, int, int] | None:
        """The primary database's validity stamp."""
        return file_stamp(self.db_path)

    def listing_stamp(self) -> tuple[int, int] | None:
        """The directory's child-listing validity stamp."""
        return dir_stamp(self.index_dir)

    def db_bytes(self) -> int:
        return artifact_bytes(self.db_path)

    # -- connections ---------------------------------------------------
    def open_ro(self, tracer: "IOTracer | None" = None) -> sqlite3.Connection:
        from . import connect

        return connect.open_ro(self.db_path, tracer)

    def open_rw(self) -> sqlite3.Connection:
        from . import connect

        return connect.open_rw(self.db_path)

    def create_primary(self, fresh: bool = False) -> sqlite3.Connection:
        """Create (template copy) and open the primary database *in
        place* — administrative callers like ``ensure_dir_db`` that
        need no staging."""
        from . import connect

        os.makedirs(self.index_dir, exist_ok=True)
        return connect.create_db(self.db_path, fresh=fresh)
