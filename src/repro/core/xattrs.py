"""Secure extended-attribute indexing (paper §III-A2, §III-B1).

Xattr *names* are metadata (protected by ancestor search bits) and are
stored in the ``entries`` table. Xattr *values* are protected like
file data, so storing them all in the per-directory database would
leak: the database is protected like its directory, while the file a
value belongs to may be more private. GUFI's rules, reproduced here:

1. a directory's own xattr values go in its primary database;
2. a file whose ownership and (read) permissions match the parent
   directory stores its values in the primary database too —
   equivalent protection;
3. a file whose *ownership* differs gets a **per-user** side database
   (owned by that uid, group "none") holding all values its owner may
   see;
4. a file whose *group* differs gets **two per-group** side databases:
   one (group-readable) for values on group-readable files, one
   (group-unreadable) for the rest.

A tracking table (``xattrs_avail``) lists the side databases so query
time needs no directory glob. At query time the engine attaches only
the side databases the querying credentials can read and builds a
temporary union view — so different users see different xattr sets,
which is why these views are never persisted.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from pathlib import Path

from repro.fs.permissions import Credentials
from repro.scan.trace import TraceRecord
from repro.sim.blktrace import IOTracer

from repro.store.attach import AttachSession, accessible_side_dbs
from repro.store.layout import DirStore, side_db_name

from . import db as dbmod
from .schema import pack_xattrs

__all__ = [
    "GID_NONE",
    "MAIN",
    "UID_NONE",
    "XattrShards",
    "accessible_side_dbs",
    "build_xattr_views",
    "drop_xattr_views",
    "shard_xattrs",
    "side_db_name",
    "side_db_protection",
    "write_xattr_shards",
]

#: the "none" uid/gid the paper assigns to side databases so that only
#: the intended principal (plus root) can open them.
UID_NONE = 65534
GID_NONE = 65534

MAIN = "main"


def side_db_protection(kind: str, ident: int) -> tuple[int, int, int]:
    """(uid, gid, mode) applied to a side database file — what gates
    who may attach it at query time."""
    if kind == "user":
        return ident, GID_NONE, 0o600
    if kind == "group_r":
        return UID_NONE, ident, 0o040
    if kind == "group_nr":
        return UID_NONE, ident, 0o000
    raise ValueError(f"unknown side db kind {kind!r}")


@dataclass
class XattrShards:
    """Destination buckets for one directory's xattr values."""

    main_rows: list[tuple[int, str]] = field(default_factory=list)
    per_user: dict[int, list[tuple[int, str]]] = field(default_factory=dict)
    per_group_r: dict[int, list[tuple[int, str]]] = field(default_factory=dict)
    per_group_nr: dict[int, list[tuple[int, str]]] = field(default_factory=dict)

    @property
    def num_side_dbs(self) -> int:
        return len(self.per_user) + len(self.per_group_r) + len(self.per_group_nr)


def _matches_parent(dir_rec: TraceRecord, entry: TraceRecord) -> bool:
    """Rule 2: equivalent protection — same owner, same group, same
    read exposure (we compare the read bits; write/execute bits do not
    change who can *see* a value)."""
    return (
        entry.uid == dir_rec.uid
        and entry.gid == dir_rec.gid
        and (entry.mode & 0o444) == (dir_rec.mode & 0o444)
    )


def shard_xattrs(dir_rec: TraceRecord, entries: list[TraceRecord]) -> XattrShards:
    """Apply the §III-A2 placement rules to one directory's entries."""
    shards = XattrShards()
    if dir_rec.xattrs:
        shards.main_rows.append((dir_rec.ino, pack_xattrs(dir_rec.xattrs)))
    for e in entries:
        if not e.xattrs:
            continue
        packed = pack_xattrs(e.xattrs)
        if _matches_parent(dir_rec, e):
            shards.main_rows.append((e.ino, packed))
            continue
        # Rule 3: owner always gets a per-user copy of their values —
        # including values on files they have currently chmod'ed
        # unreadable (the owner could trivially flip the bits back, so
        # hiding them buys no real security, §III-A2).
        shards.per_user.setdefault(e.uid, []).append((e.ino, packed))
        # Rule 4: group copies only when the group differs from the
        # parent directory's.
        if e.gid != dir_rec.gid:
            if e.mode & 0o040:  # group-readable file
                shards.per_group_r.setdefault(e.gid, []).append((e.ino, packed))
            else:
                shards.per_group_nr.setdefault(e.gid, []).append((e.ino, packed))
    return shards


def write_xattr_shards(
    index_dir: Path,
    conn_main: sqlite3.Connection,
    shards: XattrShards,
    suffix: str = "",
    faults=None,
) -> list[str]:
    """Write shard buckets: main rows into the open primary database,
    side buckets into newly created side database files, and the
    tracking rows into ``xattrs_avail``. Returns the side database
    *final* names created.

    ``suffix`` stages each side database at ``name + suffix`` while
    the tracking rows record the final ``name`` — the crash-safe build
    path writes every artifact under a temp suffix and renames only
    once the whole directory succeeded, so a failure mid-shard can
    never leave a published primary database whose tracking table
    names shards that were not written. ``faults`` is an optional
    :class:`~repro.scan.faults.FaultPlan` fired per bucket (site
    ``"xattr_shards"``, key = final name) so tests can fail the write
    mid-way deterministically.
    """
    if shards.main_rows:
        conn_main.executemany(
            "INSERT INTO xattrs (exinode, exattrs) VALUES (?, ?)",
            shards.main_rows,
        )
    created: list[str] = []
    buckets: list[tuple[str, int, list[tuple[int, str]]]] = []
    for uid, rows in shards.per_user.items():
        buckets.append(("user", uid, rows))
    for gid, rows in shards.per_group_r.items():
        buckets.append(("group_r", gid, rows))
    for gid, rows in shards.per_group_nr.items():
        buckets.append(("group_nr", gid, rows))
    for kind, ident, rows in buckets:
        name = side_db_name(kind, ident)
        if faults is not None:
            faults.fire("xattr_shards", name)
        side = dbmod.create_side_db(index_dir / (name + suffix), fresh=bool(suffix))
        try:
            side.execute("BEGIN")
            side.executemany(
                "INSERT INTO xattrs (exinode, exattrs) VALUES (?, ?)", rows
            )
            side.execute("COMMIT")
        finally:
            side.close()
        uid, gid, mode = side_db_protection(kind, ident)
        conn_main.execute(
            "INSERT INTO xattrs_avail (filename, uid, gid, mode, isroot) "
            "VALUES (?,?,?,?,1)",
            (name, uid, gid, mode),
        )
        created.append(name)
    return created


def build_xattr_views(
    conn: sqlite3.Connection,
    index_dir: Path,
    creds: Credentials,
    main_alias: str = "gufi",
    tracer: IOTracer | None = None,
) -> list[str]:
    """Create the per-query temporary xattr views (§III-B1) through an
    :class:`~repro.store.attach.AttachSession` — the single place the
    "only readable shards attach" invariant is enforced. Compatibility
    wrapper for callers that manage the main attach themselves;
    returns the attached aliases for :func:`drop_xattr_views`."""
    session = AttachSession(conn, DirStore(index_dir), main_alias, tracer)
    session.adopt_main()
    return session.xattr_views(creds)


def drop_xattr_views(conn: sqlite3.Connection, aliases: list[str]) -> None:
    conn.execute("DROP VIEW IF EXISTS temp.xpentries")
    conn.execute("DROP VIEW IF EXISTS temp.vxattrs")
    for alias in aliases:
        dbmod.detach(conn, alias)
