"""Changefeed-driven incremental indexing.

The paper's production GUFI keeps indexes fresh by rebuilding them on
a pull interval (§III-A4: every 4 hours), so freshness costs O(tree)
per cycle no matter how little changed. Robinhood and Icicle instead
consume file-system changelogs and pay O(changes). This module is
that consumer: :func:`changefeed2index` drains a
:class:`~repro.fs.changelog.ChangeJournal` attached to the live
source tree and surgically updates an existing index —

1. **Reduce** the drained events to (a) an *ordered* list of
   structural index operations (a directory rename is one physical
   index-subtree move, an ``rmdir`` one subtree delete) and (b) a set
   of *dirty directories* in current-namespace coordinates (each event
   dirties the directory whose database describes it: the parent for
   file events, the directory itself for directory-metadata events).
   Later renames remap, and removals drop, dirty paths recorded by
   earlier events, so the set is always expressed where the data lives
   *now*.
2. **Unroll** any rollups on the root→target path of every touched
   directory (a rolled-up ancestor holds merged copies of the data
   being changed), reusing :func:`repro.core.update.unroll_path_to`.
3. **Apply structural ops in event order.** Each op is idempotent —
   a move is skipped when its source index directory is missing or
   its destination already exists, a delete of a missing directory is
   a no-op — so replaying a batch after a crash converges instead of
   corrupting. Cross-depth moves leave descendant ``summary.depth`` /
   ``tsummary.maxdepth`` columns stale (they are absolute); a
   self-healing pass recomputes each database's depth delta from its
   own path and shifts the columns, and because the delta is derived
   (not remembered) it is zero on replay.
4. **Rebuild dirty directories** by rescanning the *live* tree and
   republishing through :func:`repro.core.build.build_dir_db`'s
   atomic ``.partial``+rename path — one directory, not the subtree.
   Rescanning the live tree is what makes replay exactly-once in
   effect: a directory rebuilt twice converges to the same rows.
   Every touched directory's :class:`~repro.core.index.DirMetaCache`
   entry (and the plan stats riding on it) is invalidated per event,
   not per stamp.
5. **Refresh tsummary roots** whose subtrees changed (only where
   tsummary rows already exist — tsummary is admin-triggered). The
   roots are recorded in the checkpoint *before* the rebuild phase
   can destroy the rows used to detect them.
6. **Commit the cursor** through
   :class:`~repro.core.checkpoint.ChangefeedCheckpoint` (atomic
   rename, same discipline as the databases) and only then
   :meth:`~repro.fs.changelog.ChangeJournal.release` the events.
   A crash anywhere earlier re-drains the same batch from the last
   committed cursor: nothing is dropped, and idempotent application
   means nothing is double-applied.

When the journal evicted events the consumer has not seen,
:class:`~repro.fs.changelog.ChangelogOverflow` propagates;
``IndexRefresher.refresh(mode="incremental")`` catches it and falls
back to a full rebuild.
"""

from __future__ import annotations

import os
import shutil
import time
from dataclasses import dataclass, field

from repro import obs
from repro.fs.changelog import (
    METADATA_OPS,
    ChangeEvent,
    ChangeJournal,
    ChangelogOverflow,
)
from repro.fs.inode import FileType
from repro.fs.tree import VFSTree

from . import db as dbmod
from . import schema
from .build import BuildOptions, build_dir_db
from .checkpoint import ChangefeedCheckpoint
from .index import GUFIIndex
from .tsummary import build_tsummary
from .update import remove_dir_dbs, scan_single_dir, unroll_path_to


@dataclass
class ApplyResult:
    """Outcome of one :func:`changefeed2index` batch."""

    seconds: float
    cursor: int
    events_raw: int
    events_applied: int
    events_coalesced: int
    dirs_rebuilt: int
    dirs_moved: int
    dirs_removed: int
    entries_indexed: int
    tsummary_refreshed: int
    unrolled_dirs: list[str] = field(default_factory=list)


def _parent(path: str) -> str:
    return path.rsplit("/", 1)[0] or "/"


def _remap(path: str, src: str, dst: str) -> str:
    """Rewrite ``path`` for a directory rename ``src`` → ``dst``."""
    if path == src:
        return dst
    if path.startswith(src + "/"):
        return dst + path[len(src):]
    return path


def _ancestors(path: str) -> list[str]:
    """Root-to-``path`` inclusive, e.g. ``/a/b`` → /, /a, /a/b."""
    parts = [p for p in path.split("/") if p]
    return ["/"] + ["/" + "/".join(parts[: i + 1]) for i in range(len(parts))]


def reduce_events(
    events: tuple[ChangeEvent, ...] | list[ChangeEvent],
) -> tuple[list[tuple[str, str, str | None]], set[str]]:
    """Fold an ordered event batch into (structural ops, dirty dirs).

    Structural ops — ``("move", src, dst)`` / ``("remove", path,
    None)`` — keep event order and event-time coordinates: applying
    them in sequence walks the index through the same structural
    history the namespace took. Dirty directories are maintained in
    *current* coordinates (renames remap them, removals drop them), so
    after the fold each names a directory of the final namespace that
    must be rescanned.
    """
    structural: list[tuple[str, str, str | None]] = []
    dirty: set[str] = set()
    for e in events:
        if e.op == "create":
            dirty.add(_parent(e.path))
            if e.is_dir:
                dirty.add(e.path)
        elif e.op == "unlink":
            dirty.add(_parent(e.path))
        elif e.op == "rmdir":
            dirty = {
                d
                for d in dirty
                if d != e.path and not d.startswith(e.path + "/")
            }
            dirty.add(_parent(e.path))
            structural.append(("remove", e.path, None))
        elif e.op == "rename":
            assert e.dst_path is not None
            if e.is_dir:
                dirty = {_remap(d, e.path, e.dst_path) for d in dirty}
                structural.append(("move", e.path, e.dst_path))
                # the moved directory's own summary row carries its
                # (now changed) name and depth
                dirty.add(e.dst_path)
            dirty.add(_parent(e.path))
            dirty.add(_parent(e.dst_path))
        elif e.op in METADATA_OPS:
            dirty.add(e.path if e.is_dir else _parent(e.path))
        else:  # pragma: no cover - ChangeJournal.emit validates ops
            raise ValueError(f"unknown changelog op {e.op!r}")
    return structural, dirty


def _is_live_dir(tree: VFSTree, path: str) -> bool:
    try:
        return tree.get_inode(path).ftype is FileType.DIRECTORY
    except Exception:
        return False


def _has_tsummary(index: GUFIIndex, source_path: str) -> bool:
    db_path = index.db_path(source_path)
    if not db_path.exists():
        return False
    try:
        conn = dbmod.open_ro(db_path)
    except Exception:
        return False
    try:
        return conn.execute("SELECT 1 FROM tsummary LIMIT 1").fetchone() is not None
    except Exception:
        return False
    finally:
        conn.close()


def _fix_depths(index: GUFIIndex, source_path: str) -> None:
    """Normalise absolute-depth columns under a moved index subtree.

    ``summary.depth`` and ``tsummary.maxdepth`` store depths from the
    index root, so a cross-depth move leaves every descendant database
    (including rolled-up copies) off by the same delta. The delta is
    *derived* — the directory's own ``isroot=1`` row versus its
    path-computed depth — and every row in the database shifted by it,
    so the pass is idempotent: replaying it after a crash finds delta
    zero and does nothing.
    """
    for idx_dir in index.iter_index_dirs(source_path):
        sp = index.source_path(idx_dir)
        expected = 0 if sp == "/" else sp.count("/")
        try:
            conn = index.store(sp).open_rw()
        except Exception:
            continue
        try:
            row = conn.execute(
                "SELECT depth FROM summary WHERE isroot = 1 AND rectype = ? "
                "LIMIT 1",
                (schema.RECTYPE_OVERALL,),
            ).fetchone()
            if row is None or row[0] is None:
                continue
            delta = expected - int(row[0])
            if delta:
                conn.execute(
                    "UPDATE summary SET depth = depth + ?", (delta,)
                )
                conn.execute(
                    "UPDATE tsummary SET maxdepth = maxdepth + ?", (delta,)
                )
                conn.commit()
                index.invalidate_cache(sp)
        finally:
            conn.close()


def changefeed2index(
    index: GUFIIndex,
    tree: VFSTree,
    journal: ChangeJournal,
    opts: BuildOptions | None = None,
    faults=None,
    limit: int | None = None,
    tsummary_per_user_group: bool = True,
) -> ApplyResult:
    """Drain the journal and apply the delta to an existing index.

    ``faults`` is threaded into :func:`build_dir_db` (sites
    ``"build_dir_db"`` / ``"build_dir_db.commit"``) so crash tests can
    kill the apply mid-rebuild; ``limit`` bounds how many raw events
    one batch drains. Raises :class:`ChangelogOverflow` when the
    consumer's cursor predates the journal's retained window — the
    caller must fall back to a full rebuild.
    """
    opts = opts or BuildOptions()
    t0 = time.monotonic()
    metrics = obs.metrics()
    ckpt = ChangefeedCheckpoint(index.root)
    cursor, pending_ts = ckpt.load_state()
    try:
        batch = journal.drain(cursor, limit=limit)
    except ChangelogOverflow:
        metrics.counter("gufi_changefeed_overflows_total")
        raise
    metrics.counter("gufi_changefeed_events_total", batch.raw_count)
    metrics.counter("gufi_changefeed_coalesced_total", batch.coalesced)

    if not batch.events and not pending_ts:
        return ApplyResult(
            seconds=time.monotonic() - t0,
            cursor=cursor,
            events_raw=0,
            events_applied=0,
            events_coalesced=0,
            dirs_rebuilt=0,
            dirs_moved=0,
            dirs_removed=0,
            entries_indexed=0,
            tsummary_refreshed=0,
        )

    structural, dirty = reduce_events(batch.events)

    # Every path an event touches, in both event-time and final
    # coordinates, contributes its ancestor chain to the tsummary
    # candidate set (a tsummary row summarises a whole subtree, so any
    # change below its root stales it).
    touched: set[str] = set(dirty)
    for _kind, path, dst in structural:
        touched.add(path)
        if dst is not None:
            touched.add(dst)
    candidates: set[str] = set()
    for p in touched:
        candidates.update(_ancestors(p))

    unrolled: list[str] = []
    dirs_moved = dirs_removed = 0

    # -- structural phase (event order, idempotent per op) -------------
    for kind, path, dst in structural:
        if kind == "remove":
            unrolled += unroll_path_to(index, _parent(path))
            idx_dir = index.index_dir(path)
            if idx_dir.exists():
                shutil.rmtree(idx_dir, ignore_errors=True)
                dirs_removed += 1
            index.cache.invalidate_subtree(path)
        else:
            assert dst is not None
            unrolled += unroll_path_to(index, _parent(path))
            unrolled += unroll_path_to(index, _parent(dst))
            src_dir = index.index_dir(path)
            dst_dir = index.index_dir(dst)
            if src_dir.exists() and not dst_dir.exists():
                dst_dir.parent.mkdir(parents=True, exist_ok=True)
                os.replace(src_dir, dst_dir)
                dirs_moved += 1
            index.cache.invalidate_subtree(path)
            index.cache.invalidate_subtree(dst)
            _fix_depths(index, dst)

    # -- record tsummary roots before rebuilds can destroy the rows
    #    that identify them (a rebuilt db.db starts with an empty
    #    tsummary table), so a crashed apply still owes the refresh
    ts_roots = set(pending_ts)
    ts_roots.update(c for c in candidates if _has_tsummary(index, c))
    if ts_roots:
        ckpt.commit(cursor, pending_tsummary=sorted(ts_roots))

    # -- dirty-directory rebuild phase (rescan the live tree) ----------
    dirs_rebuilt = entries_indexed = 0
    for d in sorted(dirty):
        if _is_live_dir(tree, d):
            unrolled += unroll_path_to(index, d)
            stanza = scan_single_dir(tree, d)
            remove_dir_dbs(index, d)
            n, _ = build_dir_db(index, stanza, opts, faults=faults)
            dirs_rebuilt += 1
            entries_indexed += n
            index.invalidate_cache(d)
        else:
            # the directory vanished between event and apply (or was
            # created and removed within the batch)
            idx_dir = index.index_dir(d)
            if idx_dir.exists():
                shutil.rmtree(idx_dir, ignore_errors=True)
                dirs_removed += 1
            index.cache.invalidate_subtree(d)

    # -- tsummary refresh (roots whose databases still exist) ----------
    tsummary_refreshed = 0
    for root in sorted(ts_roots):
        if index.db_path(root).exists():
            build_tsummary(
                index, root, per_user_group=tsummary_per_user_group
            )
            tsummary_refreshed += 1
            index.invalidate_cache(root)

    # -- commit point: cursor durable first, then journal trimmed ------
    new_cursor = batch.cursor
    ckpt.commit(new_cursor)
    journal.release(new_cursor)

    elapsed = time.monotonic() - t0
    metrics.counter("gufi_changefeed_applied_total", len(batch.events))
    if metrics.enabled:
        metrics.observe("gufi_changefeed_apply_seconds", elapsed)
    return ApplyResult(
        seconds=elapsed,
        cursor=new_cursor,
        events_raw=batch.raw_count,
        events_applied=len(batch.events),
        events_coalesced=batch.coalesced,
        dirs_rebuilt=dirs_rebuilt,
        dirs_moved=dirs_moved,
        dirs_removed=dirs_removed,
        entries_indexed=entries_indexed,
        tsummary_refreshed=tsummary_refreshed,
        unrolled_dirs=sorted(set(unrolled)),
    )
