"""The parallel index query interface (paper §III-C2, ``gufi_query``).

A query descends the index breadth-first with a thread pool — each
directory's database processed by one thread — executing user SQL at
up to four points, mirroring ``gufi_query``'s flags:

* ``I`` — run once per worker thread against its private result
  database (create scratch tables);
* ``T`` — run against a directory's ``tsummary`` table; when tsummary
  rows exist the whole subtree is already summarised, so descent is
  pruned (this is Fig 10's 230× query 4);
* ``S`` — run against the directory's ``summary`` table;
* ``E`` — run against ``entries``/``pentries`` (and the xattr views
  when enabled);
* ``J`` — run once per thread database to merge its results into the
  shared aggregate database;
* ``G`` — run once against the aggregate database to produce the
  final rows.

Security (§III-A5): databases are opened read-only; traversal enforces
POSIX permissions against each directory's preserved mode/uid/gid —
search (``x``) to pass through, read (``r``) to list/process — so an
unprivileged query touches only data its credentials could reach on
the source file system, and its cost is proportional to what it can
see, not to index size.

Sessions: a ``GUFIQuery`` is a *persistent* handle. Its worker-thread
connections, registered SQL functions, and scratch directory live in a
:class:`~repro.core.session.ThreadStatePool` that survives across
``run()`` calls, and permission metadata comes from the index's
mtime-validated :class:`~repro.core.index.DirMetaCache` — so repeated
queries on a warm index skip per-query setup and per-directory summary
reads. Per-directory accounting (counters, result rows) is kept in the
per-thread state and merged once after the walk; the hot path takes no
locks.

Planning: ``run(spec, start, plan=...)`` accepts a
:class:`~repro.core.plan.QueryPlan`. Directories the plan proves
unmatchable skip the ``E`` stage (counted in
``dirs_pruned_by_plan``); when nothing else needs the database and the
permission record is already cached, the SQLite attach is skipped
entirely (``attaches_elided``) and descent continues off the cached
child listing. The plan's depth window (``-y``/``-z``) bounds which
levels are processed and how deep the walk descends. Pruning is
conservative by construction — see :mod:`repro.core.plan`.

Layering: execution lives in :mod:`repro.core.engine`, split into
traversal (permissions, plan gating, descent), stages (SQL execution,
merge), and pluggable result sinks. ``GUFIQuery`` is the stable,
behavior-identical facade over :class:`~repro.core.engine.QueryEngine`
— same constructor, same ``run``/``run_single`` signatures, same rows
and counters. Use the engine directly when you need sink control
(bounded/paginated server responses, results databases) or layer
access; everything here re-exports from there.
"""

from __future__ import annotations

from repro.fs.permissions import ROOT, Credentials
from repro.sim.blktrace import IOTracer

from .engine import (
    QueryEngine,
    QueryPermissionError,
    QueryResult,
    QuerySpec,
    ResultCache,
    ResultSink,
    spec_label,
)
from .index import GUFIIndex
from .plan import QueryPlan

__all__ = [
    "GUFIQuery",
    "QueryPermissionError",
    "QueryResult",
    "QuerySpec",
    "spec_label",
    "Q1_LIST_NAMES",
    "Q1_LIST_PATHS",
    "Q2_DIR_SIZES",
    "Q3_DU_SUMMARIES",
    "Q4_DU_TSUMMARY",
]


class GUFIQuery:
    """Query executor bound to an index, credentials, and a pool size.

    The handle is a *session*: scratch connections and output files
    persist across :meth:`run` calls (see :mod:`repro.core.session`).
    Call :meth:`close` (or use the handle as a context manager) for
    deterministic cleanup; otherwise a GC finalizer reclaims the
    scratch directory.

    This is a thin facade over :class:`repro.core.engine.QueryEngine`;
    the engine's attributes (``index``, ``creds``, ``users``,
    ``groups``, ``pool``) are exposed as the same objects, so existing
    callers that reach into them keep working.
    """

    def __init__(
        self,
        index: GUFIIndex,
        creds: Credentials = ROOT,
        nthreads: int = 8,
        tracer: IOTracer | None = None,
        users: dict[int, str] | None = None,
        groups: dict[int, str] | None = None,
        processes: int = 1,
        result_cache: ResultCache | None = None,
    ) -> None:
        self.engine = QueryEngine(
            index,
            creds=creds,
            nthreads=nthreads,
            tracer=tracer,
            users=users,
            groups=groups,
            processes=processes,
            result_cache=result_cache,
        )
        # Alias the engine's objects (not copies): callers mutate
        # q.users in place and expect live sessions to see it.
        self.index = self.engine.index
        self.creds = self.engine.creds
        self.nthreads = self.engine.nthreads
        self.processes = self.engine.processes
        self.tracer = self.engine.tracer
        self.users = self.engine.users
        self.groups = self.engine.groups
        self.pool = self.engine.pool

    def close(self) -> None:
        """Release the session's pooled connections and scratch files."""
        self.engine.close()

    def __enter__(self) -> "GUFIQuery":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def run(
        self,
        spec: QuerySpec,
        start: str = "/",
        plan: QueryPlan | None = None,
        sink: ResultSink | None = None,
    ) -> QueryResult:
        """Parallel permission-gated descent from ``start``."""
        return self.engine.run(spec, start, plan=plan, sink=sink)

    def run_single(
        self,
        spec: QuerySpec,
        path: str = "/",
        plan: QueryPlan | None = None,
        sink: ResultSink | None = None,
    ) -> QueryResult:
        """Process exactly one directory's database (no descent)."""
        return self.engine.run_single(spec, path, plan=plan, sink=sink)


# ----------------------------------------------------------------------
# The paper's four macro-benchmark queries (§IV-D / appendix), as specs.
# ----------------------------------------------------------------------

#: Query 1: list all file names accessible by the user (the paper's
#: exact SQL; names only).
Q1_LIST_NAMES = QuerySpec(E="SELECT name FROM pentries")

#: Query 1 variant returning full paths, rollup-invariant thanks to
#: the vrpentries summary join (GUFI's rpath machinery).
Q1_LIST_PATHS = QuerySpec(E="SELECT rpath(dname, d_isroot, name) FROM vrpentries")

#: Query 2: print size and name of every accessible directory.
#: spath() reconstructs each directory's path whether the row is the
#: database's own record or one rolled in from a sub-directory.
Q2_DIR_SIZES = QuerySpec(S="SELECT spath(name, isroot), size FROM summary")

#: Query 3: space used, computed by aggregating per-directory
#: summaries and entries across the traversal (the multi-database way).
Q3_DU_SUMMARIES = QuerySpec(
    I="CREATE TABLE sizes (total_size INTEGER)",
    S="INSERT INTO sizes SELECT TOTAL(size) FROM summary",
    E="INSERT INTO sizes SELECT TOTAL(size) FROM pentries",
    J="INSERT INTO aggregate.sizes SELECT TOTAL(total_size) FROM sizes",
    G="SELECT TOTAL(total_size) FROM sizes",
)

#: Query 4: space used, answered from the tree-summary table — a
#: single row read when a tsummary exists at the query root.
Q4_DU_TSUMMARY = QuerySpec(T="SELECT totsize FROM tsummary WHERE rectype = 0")
