"""The parallel index query engine (paper §III-C2, ``gufi_query``).

A query descends the index breadth-first with a thread pool — each
directory's database processed by one thread — executing user SQL at
up to four points, mirroring ``gufi_query``'s flags:

* ``I`` — run once per worker thread against its private result
  database (create scratch tables);
* ``T`` — run against a directory's ``tsummary`` table; when tsummary
  rows exist the whole subtree is already summarised, so descent is
  pruned (this is Fig 10's 230× query 4);
* ``S`` — run against the directory's ``summary`` table;
* ``E`` — run against ``entries``/``pentries`` (and the xattr views
  when enabled);
* ``J`` — run once per thread database to merge its results into the
  shared aggregate database;
* ``G`` — run once against the aggregate database to produce the
  final rows.

Security (§III-A5): databases are opened read-only; traversal enforces
POSIX permissions against each directory's preserved mode/uid/gid —
search (``x``) to pass through, read (``r``) to list/process — so an
unprivileged query touches only data its credentials could reach on
the source file system, and its cost is proportional to what it can
see, not to index size.

Sessions: a ``GUFIQuery`` is a *persistent* handle. Its worker-thread
connections, registered SQL functions, and scratch directory live in a
:class:`~repro.core.session.ThreadStatePool` that survives across
``run()`` calls, and permission metadata comes from the index's
mtime-validated :class:`~repro.core.index.DirMetaCache` — so repeated
queries on a warm index skip per-query setup and per-directory summary
reads. Per-directory accounting (counters, result rows) is kept in the
per-thread state and merged once after the walk; the hot path takes no
locks.

Planning: ``run(spec, start, plan=...)`` accepts a
:class:`~repro.core.plan.QueryPlan`. Directories the plan proves
unmatchable skip the ``E`` stage (counted in
``dirs_pruned_by_plan``); when nothing else needs the database and the
permission record is already cached, the SQLite attach is skipped
entirely (``attaches_elided``) and descent continues off the cached
child listing. The plan's depth window (``-y``/``-z``) bounds which
levels are processed and how deep the walk descends. Pruning is
conservative by construction — see :mod:`repro.core.plan`.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from dataclasses import dataclass

from repro import obs
from repro.fs.permissions import (
    ROOT,
    Credentials,
    can_read_dir,
    can_search_dir,
)
from repro.scan.walker import ParallelTreeWalker, WalkStats
from repro.sim.blktrace import IOTracer

from . import db as dbmod
from . import schema
from .index import DirMeta, GUFIIndex
from .plan import QueryPlan
from .session import ThreadStatePool, _ThreadState
from .sqlfuncs import QueryContext, register
from .xattrs import build_xattr_views, drop_xattr_views


class QueryPermissionError(PermissionError):
    """The query root (or an ancestor of it) is not searchable."""


@dataclass
class QuerySpec:
    """One query, in ``gufi_query`` flag terms."""

    I: str | None = None  # noqa: E741 - matches the tool's flag name
    T: str | None = None
    S: str | None = None
    E: str | None = None
    J: str | None = None
    G: str | None = None
    #: build the per-user temporary xattr views for E queries
    xattrs: bool = False
    #: stop T-pruning (process tsummary but keep descending)
    t_no_prune: bool = False
    #: stream SELECT rows to per-thread files ``<prefix>.<n>`` instead
    #: of accumulating them in memory (the real tool's ``-o`` flag,
    #: for result sets too large to hold). Tab-separated, one row per
    #: line; QueryResult.rows stays empty for streamed stages.
    output_prefix: str | None = None


@dataclass
class QueryResult:
    rows: list[tuple]
    elapsed: float
    dirs_visited: int
    dirs_denied: int
    dbs_opened: int
    #: directories skipped because their database was corrupt/unreadable
    dirs_errored: int = 0
    #: directories whose stage execution the query plan skipped
    #: (stats gate proved no row can match, or depth window excluded
    #: the level)
    dirs_pruned_by_plan: int = 0
    #: plan-pruned directories that never attached their database at
    #: all (warm cache answered permission + matchability)
    attaches_elided: int = 0
    #: per-thread output files when QuerySpec.output_prefix was used
    output_files: list[str] | None = None
    walk_stats: WalkStats | None = None
    #: wall-clock seconds spent per SQL stage (T/S/E summed across
    #: worker threads, J/G once), populated only when the process
    #: metrics recorder is enabled (see :mod:`repro.obs`)
    stage_seconds: dict[str, float] | None = None

    def scalar(self):
        """Convenience for single-value results."""
        if not self.rows or not self.rows[0]:
            return None
        return self.rows[0][0]


def spec_label(spec: QuerySpec) -> str:
    """Compact one-line description of a spec, for the slow-query log
    and trace attributes (SQL whitespace-collapsed and truncated)."""
    parts = []
    for flag in ("I", "T", "S", "E", "J", "G"):
        sql = getattr(spec, flag)
        if sql:
            sql = " ".join(sql.split())
            parts.append(f"{flag}={sql[:60]}")
    return "; ".join(parts) or "<empty spec>"


class GUFIQuery:
    """Query executor bound to an index, credentials, and a pool size.

    The handle is a *session*: scratch connections and output files
    persist across :meth:`run` calls (see :mod:`repro.core.session`).
    Call :meth:`close` (or use the handle as a context manager) for
    deterministic cleanup; otherwise a GC finalizer reclaims the
    scratch directory.
    """

    def __init__(
        self,
        index: GUFIIndex,
        creds: Credentials = ROOT,
        nthreads: int = 8,
        tracer: IOTracer | None = None,
        users: dict[int, str] | None = None,
        groups: dict[int, str] | None = None,
    ):
        self.index = index
        self.creds = creds
        self.nthreads = nthreads
        self.tracer = tracer
        # keep these exact dict objects: the pool's QueryContexts alias
        # them, so in-place updates propagate to live sessions
        self.users = users if users is not None else {}
        self.groups = groups if groups is not None else {}
        self.pool = ThreadStatePool(users=self.users, groups=self.groups)

    def close(self) -> None:
        """Release the session's pooled connections and scratch files."""
        self.pool.close()

    def __enter__(self) -> "GUFIQuery":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Permission helpers
    # ------------------------------------------------------------------
    def _read_meta(self, source_path: str) -> DirMeta | None:
        """The descent-time 'stat' of an index directory: its summary
        record, via the index's validated cache (untraced — the
        paper's blktrace accounting also excludes dirent/inode
        reads)."""
        return self.index.cached_dir_meta(source_path)

    def _check_root_reachable(self, start: str) -> None:
        """Every ancestor of the query root must grant search (x) —
        the kernel's path-walk rule, reproduced for the index. With a
        warm cache this is one dictionary lookup (plus a validating
        stat) per ancestor, not one database open per ancestor."""
        parts = [p for p in start.split("/") if p]
        cur = ""
        for part in parts[:-1] if parts else []:
            cur = f"{cur}/{part}"
            meta = self._read_meta(cur)
            if meta is None:
                raise FileNotFoundError(f"no index directory for {cur!r}")
            if not can_search_dir(meta.mode, meta.uid, meta.gid, self.creds):
                raise QueryPermissionError(
                    f"permission denied traversing {cur!r}"
                )

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(
        self,
        spec: QuerySpec,
        start: str = "/",
        plan: QueryPlan | None = None,
    ) -> QueryResult:
        return self._observed(
            "query.run", spec, start, lambda otr: self._run_impl(spec, start, plan, otr)
        )

    def run_single(
        self,
        spec: QuerySpec,
        path: str = "/",
        plan: QueryPlan | None = None,
    ) -> QueryResult:
        return self._observed(
            "query.run_single",
            spec,
            path,
            lambda otr: self._run_single_impl(spec, path, plan),
        )

    def _observed(self, kind: str, spec: QuerySpec, start: str, impl) -> QueryResult:
        """Run ``impl`` under the process observability layer: a span
        covering the whole call, counters folded once from the
        result's (already lock-free) tallies, per-stage timings, cache
        hit/miss deltas, and a slow-query log check. With everything
        disabled this is two attribute checks and a straight call."""
        rec = obs.metrics()
        otr = obs.tracer()
        slow = obs.slow_log()
        if not (rec.enabled or otr.enabled or slow.enabled):
            return impl(otr)
        t0 = time.monotonic()
        cache_before = self.index.cache.stats() if rec.enabled else None
        span = otr.start(kind, start=start) if otr.enabled else None
        result: QueryResult | None = None
        error: BaseException | None = None
        try:
            result = impl(otr)
            return result
        except BaseException as exc:
            error = exc
            raise
        finally:
            elapsed = time.monotonic() - t0
            if span is not None:
                otr.end(
                    span,
                    rows=len(result.rows) if result is not None else 0,
                    error=type(error).__name__ if error is not None else None,
                )
            if rec.enabled:
                self._fold_metrics(rec, kind, result, error, elapsed, cache_before)
            if slow.enabled:
                slow.record(
                    elapsed, kind=kind, detail=spec_label(spec), start=start
                )

    def _fold_metrics(
        self,
        rec,
        kind: str,
        result: QueryResult | None,
        error: BaseException | None,
        elapsed: float,
        cache_before: dict[str, int],
    ) -> None:
        rec.counter("gufi_query_runs_total", kind=kind)
        rec.observe("gufi_query_seconds", elapsed, kind=kind)
        if error is not None:
            rec.counter("gufi_query_failures_total", error=type(error).__name__)
        if result is not None:
            rec.counter("gufi_query_rows_total", len(result.rows))
            rec.counter("gufi_query_dirs_visited_total", result.dirs_visited)
            rec.counter("gufi_query_dirs_denied_total", result.dirs_denied)
            rec.counter("gufi_query_dbs_opened_total", result.dbs_opened)
            rec.counter("gufi_query_dirs_errored_total", result.dirs_errored)
            rec.counter(
                "gufi_query_dirs_pruned_total", result.dirs_pruned_by_plan
            )
            rec.counter(
                "gufi_query_attaches_elided_total", result.attaches_elided
            )
            stage_seconds = result.stage_seconds or {}
            for stage in ("T", "S", "E", "J", "G"):
                rec.counter(
                    "gufi_query_stage_seconds_total",
                    stage_seconds.get(stage, 0.0),
                    stage=stage,
                )
        cache_after = self.index.cache.stats()
        for which in ("meta", "subdir"):
            rec.counter(
                "gufi_session_cache_hits_total",
                cache_after[f"{which}_hits"] - cache_before[f"{which}_hits"],
                kind=which,
            )
            rec.counter(
                "gufi_session_cache_misses_total",
                cache_after[f"{which}_misses"] - cache_before[f"{which}_misses"],
                kind=which,
            )

    def _run_single_impl(
        self,
        spec: QuerySpec,
        path: str = "/",
        plan: QueryPlan | None = None,
    ) -> QueryResult:
        """Process exactly one directory's database (no descent) —
        what ``gufi_ls`` of a single directory needs. The same
        permission rules apply: ancestors must be searchable, the
        directory itself readable.

        Semantics match one directory of :meth:`run`: a missing index
        directory raises FileNotFoundError; a present-but-corrupt
        database is *counted* (``dirs_errored``) rather than raised;
        ``T`` only executes when ``tsummary`` has rows (and then
        prunes ``S``/``E`` unless ``t_no_prune``); and a plan can skip
        the ``E`` stage — or the attach — exactly as in the walk."""
        t0 = time.monotonic()
        path = "/" + "/".join(p for p in path.split("/") if p)
        self._check_root_reachable(path)
        db_path = self.index.db_path(path)
        if not db_path.exists():
            raise FileNotFoundError(f"no index directory for {path!r}")

        def errored() -> QueryResult:
            return QueryResult(
                rows=[],
                elapsed=time.monotonic() - t0,
                dirs_visited=0,
                dirs_denied=0,
                dbs_opened=0,
                dirs_errored=1,
            )

        meta = self._read_meta(path)
        if meta is None:
            # db.db exists but cannot be read/parsed: count it, like
            # the walk path does, instead of raising.
            return errored()
        if not can_search_dir(meta.mode, meta.uid, meta.gid, self.creds):
            raise QueryPermissionError(f"permission denied: {path!r}")
        if not can_read_dir(meta.mode, meta.uid, meta.gid, self.creds):
            raise QueryPermissionError(f"permission denied (unreadable): {path!r}")

        run_e = bool(spec.E)
        plan_pruned = False
        if plan is not None and (spec.T or spec.S or spec.E):
            # The single directory sits at level 0 of its own query.
            process = plan.wants_level(0)
            run_e = run_e and process and plan.dir_can_match(meta)
            plan_pruned = (bool(spec.E) and not run_e) or not process
            if not process or (not run_e and not (spec.T or spec.S)):
                # No stage needs the database at all.
                return QueryResult(
                    rows=[],
                    elapsed=time.monotonic() - t0,
                    dirs_visited=1,
                    dirs_denied=0,
                    dbs_opened=0,
                    dirs_pruned_by_plan=1,
                    attaches_elided=1,
                )

        index_dir = self.index.index_dir(path)
        st = self.pool.acquire(spec.I, None)
        try:
            st.ctx.current_path = path
            st.ctx.current_depth = 0 if path == "/" else path.count("/")
            try:
                dbmod.attach_ro(
                    st.conn, index_dir / schema.DB_NAME, "gufi", self.tracer
                )
            except sqlite3.DatabaseError:
                return errored()
            rows: list[tuple] = []
            aliases: list[str] = []
            try:
                t_pruned = False
                if spec.T:
                    (n_ts,) = st.conn.execute(
                        "SELECT COUNT(*) FROM gufi.tsummary"
                    ).fetchone()
                    if n_ts:
                        cur = st.conn.execute(spec.T)
                        if cur.description is not None:
                            rows.extend(cur.fetchall())
                        if not spec.t_no_prune:
                            t_pruned = True
                if not t_pruned:
                    if spec.xattrs:
                        aliases = build_xattr_views(
                            st.conn, index_dir, self.creds, "gufi", self.tracer
                        )
                    try:
                        if spec.S:
                            cur = st.conn.execute(spec.S)
                            if cur.description is not None:
                                rows.extend(cur.fetchall())
                        if spec.E and run_e:
                            cur = st.conn.execute(spec.E)
                            if cur.description is not None:
                                rows.extend(cur.fetchall())
                    finally:
                        if spec.xattrs:
                            drop_xattr_views(st.conn, aliases)
            finally:
                st.conn.commit()
                dbmod.detach(st.conn, "gufi")
        finally:
            self.pool.release([st])
        return QueryResult(
            rows=rows,
            elapsed=time.monotonic() - t0,
            dirs_visited=1,
            dirs_denied=0,
            dbs_opened=1,
            dirs_pruned_by_plan=1 if plan_pruned else 0,
        )

    def _run_impl(
        self,
        spec: QuerySpec,
        start: str,
        plan: QueryPlan | None,
        otr,
    ) -> QueryResult:
        t0 = time.monotonic()
        start = "/" + "/".join(p for p in start.split("/") if p)
        self._check_root_reachable(start)
        if not self.index.db_path(start).exists():
            raise FileNotFoundError(f"no index directory for {start!r}")

        pool = self.pool
        index = self.index
        creds = self.creds
        # Stage timings feed QueryResult.stage_seconds; both flags are
        # read once so the per-directory path tests plain locals.
        timing = obs.metrics().enabled
        tracing = otr.enabled
        start_depth = 0 if start == "/" else start.count("/")
        # A plan only matters when there are per-directory stages to
        # skip; with none, the normal path is already minimal.
        if plan is not None and not (spec.T or spec.S or spec.E):
            plan = None
        # Thread-ident -> checked-out state, for *this* run only (the
        # walker creates fresh threads per walk). The lock is taken
        # once per thread per run — at checkout — never per directory.
        run_states: dict[int, _ThreadState] = {}
        checkout_lock = threading.Lock()

        def thread_state() -> _ThreadState:
            tid = threading.get_ident()
            st = run_states.get(tid)
            if st is None:
                with checkout_lock:
                    ordinal = len(run_states)
                    out_path = (
                        f"{spec.output_prefix}.{ordinal}"
                        if spec.output_prefix is not None
                        else None
                    )
                    st = pool.acquire(spec.I, out_path)
                    run_states[tid] = st
            return st

        def run_sql(st: _ThreadState, sql: str) -> list[tuple]:
            cur = st.conn.execute(sql)
            if cur.description is not None:
                return cur.fetchall()
            return []

        def attach_gufi(st: _ThreadState, db_path) -> None:
            if tracing:
                with otr.span("query.attach", path=str(db_path)):
                    dbmod.attach_ro(st.conn, db_path, "gufi", tracer=None)
            else:
                dbmod.attach_ro(st.conn, db_path, "gufi", tracer=None)

        def children_of(
            source_path: str, meta: DirMeta, rel_depth: int
        ) -> list[str]:
            """The directory's plan-gated child work-items. Descent
            stops below ``max_level``, and a subtree whose tsummary
            ``maxdepth`` proves it cannot reach ``min_level`` is cut
            whole."""
            if plan is not None:
                sub_max = None
                stats = meta.stats
                if stats is not None and stats.maxdepth is not None:
                    sub_max = stats.maxdepth - start_depth
                if not plan.descend_allowed(rel_depth, sub_max):
                    return []
            prefix = "" if source_path == "/" else source_path
            return [
                f"{prefix}/{name}"
                for name in index.cached_subdir_names(source_path)
            ]

        def process_dir(source_path: str) -> list[str]:
            st = thread_state()
            st.ctx.current_path = source_path
            depth = 0 if source_path == "/" else source_path.count("/")
            st.ctx.current_depth = depth
            rel_depth = depth - start_depth
            index_dir = index.index_dir(source_path)
            db_path = index_dir / schema.DB_NAME
            # Descent-time 'stat': the validated cache answers warm
            # queries with a dictionary lookup; denied directories are
            # then skipped without ever attaching their database.
            meta = index.cache.get_meta(source_path, db_path)
            attached = False
            if meta is not None:
                if not can_search_dir(
                    meta.mode, meta.uid, meta.gid, creds
                ) or not can_read_dir(meta.mode, meta.uid, meta.gid, creds):
                    st.denied += 1
                    return []
            # Plan gates. process_level is the -y/-z window (outside
            # it *no* stage runs); run_e additionally folds in the
            # stats gate once metadata is at hand.
            process_level = plan.wants_level(rel_depth) if plan else True
            if plan is not None and meta is not None:
                # Warm fast path: the cached stats decide matchability
                # before any SQLite work. When no surviving stage needs
                # the database, the attach is elided outright and the
                # walk continues off the cached child listing.
                run_e = (
                    bool(spec.E)
                    and process_level
                    and plan.dir_can_match(meta)
                )
                if not process_level or (
                    bool(spec.E) and not run_e
                ):
                    if not (process_level and (spec.T or spec.S)):
                        st.visited += 1
                        st.pruned += 1
                        st.elided += 1
                        if meta.rolledup:
                            return []
                        return children_of(source_path, meta, rel_depth)
            pruned = False
            local_rows: list[tuple] = []
            try:
                if meta is None:
                    # Cold path: one attach serves both the permission
                    # check (reading the summary record) and, if
                    # allowed, the per-directory queries — then the
                    # record is published to the cache. The stamp is
                    # taken before the read so a racing writer
                    # invalidates conservatively.
                    stamp = dbmod.file_stamp(db_path)
                    if stamp is None:
                        return []
                    try:
                        attach_gufi(st, db_path)
                    except sqlite3.DatabaseError:
                        st.errored += 1
                        return []
                    attached = True
                    try:
                        meta = index.read_dir_meta(st.conn, "gufi")
                    except sqlite3.DatabaseError:
                        # A corrupt or truncated shard must not kill
                        # the whole query: count it and move on (the
                        # paper's answer to shard damage is the
                        # periodic rebuild).
                        st.errored += 1
                        return []
                    except Exception:
                        return []
                    index.cache.put_meta(source_path, stamp, meta)
                    # x on the directory: required to pass through;
                    # r: to enumerate its contents.
                    if not can_search_dir(
                        meta.mode, meta.uid, meta.gid, creds
                    ) or not can_read_dir(meta.mode, meta.uid, meta.gid, creds):
                        st.denied += 1
                        return []
                if not attached:
                    # Warm, permitted path: attach only now that the
                    # cached record granted access. A denied user's
                    # query never pulls the database's pages in the
                    # paper's accounting either, because the kernel
                    # refuses the open.
                    try:
                        attach_gufi(st, db_path)
                    except sqlite3.DatabaseError:
                        st.errored += 1
                        return []
                    attached = True
                if self.tracer is not None:
                    # Entry-level queries read the whole database;
                    # summary/tsummary-only queries read just those
                    # tables' pages (the schema's headline win).
                    if spec.E or not (spec.S or spec.T):
                        nbytes = dbmod.db_file_bytes(db_path)
                    else:
                        tables = set()
                        if spec.S:
                            tables.add("summary")
                        if spec.T:
                            tables.add("tsummary")
                        nbytes = dbmod.table_bytes(st.conn, "gufi", tables)
                    self.tracer.record(str(db_path), nbytes)
                st.visited += 1
                st.opened += 1
                # Effective stages for this directory. Outside the
                # depth window nothing runs; the stats gate (sound
                # only for entries-shaped E) can further drop E.
                run_t = bool(spec.T) and process_level
                run_s = bool(spec.S) and process_level
                run_e = bool(spec.E) and process_level
                if plan is not None:
                    if run_e and not plan.dir_can_match(meta):
                        run_e = False
                    if (
                        (bool(spec.T) and not run_t)
                        or (bool(spec.S) and not run_s)
                        or (bool(spec.E) and not run_e)
                    ):
                        st.pruned += 1
                if run_t:
                    tb = time.perf_counter() if timing else 0.0
                    sp = otr.start("query.sql", stage="T") if tracing else None
                    try:
                        (n_ts,) = st.conn.execute(
                            "SELECT COUNT(*) FROM gufi.tsummary"
                        ).fetchone()
                        if n_ts:
                            local_rows.extend(run_sql(st, spec.T))
                            if not spec.t_no_prune:
                                pruned = True
                    finally:
                        if sp is not None:
                            otr.end(sp)
                        if timing:
                            st.t_time += time.perf_counter() - tb
                if not pruned and (run_s or run_e):
                    aliases: list[str] = []
                    if spec.xattrs and run_e:
                        aliases = build_xattr_views(
                            st.conn, index_dir, creds, "gufi", self.tracer
                        )
                    try:
                        if run_s:
                            tb = time.perf_counter() if timing else 0.0
                            sp = (
                                otr.start("query.sql", stage="S")
                                if tracing
                                else None
                            )
                            try:
                                local_rows.extend(run_sql(st, spec.S))
                            finally:
                                if sp is not None:
                                    otr.end(sp)
                                if timing:
                                    st.s_time += time.perf_counter() - tb
                        if run_e:
                            tb = time.perf_counter() if timing else 0.0
                            sp = (
                                otr.start("query.sql", stage="E")
                                if tracing
                                else None
                            )
                            try:
                                local_rows.extend(run_sql(st, spec.E))
                            finally:
                                if sp is not None:
                                    otr.end(sp)
                                if timing:
                                    st.e_time += time.perf_counter() - tb
                    finally:
                        if aliases:
                            drop_xattr_views(st.conn, aliases)
            finally:
                if attached:
                    st.conn.commit()
                    dbmod.detach(st.conn, "gufi")
            if local_rows:
                if st.out is not None:
                    for row in local_rows:
                        st.out.write(
                            "\t".join(
                                "" if v is None else str(v) for v in row
                            )
                            + "\n"
                        )
                else:
                    st.rows.extend(local_rows)
            # Rolled-up databases already contain their whole subtree:
            # descending would double-count (§III-C3).
            if pruned or meta.rolledup:
                return []
            return children_of(source_path, meta, rel_depth)

        if tracing:

            def expand(source_path: str) -> list[str]:
                sp = otr.start("query.dir", path=source_path)
                try:
                    return process_dir(source_path)
                finally:
                    otr.end(sp)

        else:
            expand = process_dir

        walker = ParallelTreeWalker(self.nthreads)
        stats = walker.walk([start], expand)

        states = list(run_states.values())
        rows: list[tuple] = []
        for st in states:
            rows.extend(st.rows)
        visited = sum(st.visited for st in states)
        denied = sum(st.denied for st in states)
        opened = sum(st.opened for st in states)
        errored = sum(st.errored for st in states)
        plan_pruned = sum(st.pruned for st in states)
        elided = sum(st.elided for st in states)
        t_time = sum(st.t_time for st in states)
        s_time = sum(st.s_time for st in states)
        e_time = sum(st.e_time for st in states)
        j_time = g_time = 0.0

        # ------------------------------------------------------------------
        # Merge phase: J per thread database, then G on the aggregate.
        # ------------------------------------------------------------------
        final_rows = rows
        agg_path: str | None = None
        try:
            if spec.J or spec.G:
                agg_path = pool.aggregate_path()
                agg = sqlite3.connect(agg_path)
                try:
                    if spec.I:
                        agg.executescript(spec.I)
                    agg.commit()
                finally:
                    agg.close()
                if spec.J:
                    jb = time.perf_counter() if timing else 0.0
                    sp = otr.start("query.sql", stage="J") if tracing else None
                    try:
                        for st in states:
                            st.conn.execute(
                                "ATTACH DATABASE ? AS aggregate", (agg_path,)
                            )
                            try:
                                st.conn.executescript(spec.J)
                                st.conn.commit()
                            finally:
                                st.conn.execute("DETACH DATABASE aggregate")
                    finally:
                        if sp is not None:
                            otr.end(sp)
                        if timing:
                            j_time = time.perf_counter() - jb
                if spec.G:
                    gb = time.perf_counter() if timing else 0.0
                    sp = otr.start("query.sql", stage="G") if tracing else None
                    try:
                        agg = sqlite3.connect(agg_path)
                        try:
                            register(
                                agg,
                                QueryContext(users=self.users, groups=self.groups),
                            )
                            cur = agg.execute(spec.G)
                            if cur.description is not None:
                                final_rows = rows + cur.fetchall()
                        finally:
                            agg.close()
                    finally:
                        if sp is not None:
                            otr.end(sp)
                        if timing:
                            g_time = time.perf_counter() - gb
        finally:
            # Output files flush (and record) even when J/G raised;
            # states go back to the pool either way.
            output_files = []
            for st in states:
                out_path = st.finish_output()
                if out_path is not None:
                    output_files.append(out_path)
            pool.release(states)
            if agg_path is not None:
                try:
                    os.unlink(agg_path)
                except OSError:
                    pass

        if stats.errors:
            item, exc = stats.errors[0]
            raise RuntimeError(f"query failed at {item!r}: {exc}") from exc

        return QueryResult(
            rows=final_rows,
            elapsed=time.monotonic() - t0,
            dirs_visited=visited,
            dirs_denied=denied,
            dbs_opened=opened,
            dirs_errored=errored,
            dirs_pruned_by_plan=plan_pruned,
            attaches_elided=elided,
            output_files=sorted(output_files) if output_files else None,
            walk_stats=stats,
            stage_seconds=(
                {"T": t_time, "S": s_time, "E": e_time, "J": j_time, "G": g_time}
                if timing
                else None
            ),
        )


# ----------------------------------------------------------------------
# The paper's four macro-benchmark queries (§IV-D / appendix), as specs.
# ----------------------------------------------------------------------

#: Query 1: list all file names accessible by the user (the paper's
#: exact SQL; names only).
Q1_LIST_NAMES = QuerySpec(E="SELECT name FROM pentries")

#: Query 1 variant returning full paths, rollup-invariant thanks to
#: the vrpentries summary join (GUFI's rpath machinery).
Q1_LIST_PATHS = QuerySpec(E="SELECT rpath(dname, d_isroot, name) FROM vrpentries")

#: Query 2: print size and name of every accessible directory.
#: spath() reconstructs each directory's path whether the row is the
#: database's own record or one rolled in from a sub-directory.
Q2_DIR_SIZES = QuerySpec(S="SELECT spath(name, isroot), size FROM summary")

#: Query 3: space used, computed by aggregating per-directory
#: summaries and entries across the traversal (the multi-database way).
Q3_DU_SUMMARIES = QuerySpec(
    I="CREATE TABLE sizes (total_size INTEGER)",
    S="INSERT INTO sizes SELECT TOTAL(size) FROM summary",
    E="INSERT INTO sizes SELECT TOTAL(size) FROM pentries",
    J="INSERT INTO aggregate.sizes SELECT TOTAL(total_size) FROM sizes",
    G="SELECT TOTAL(total_size) FROM sizes",
)

#: Query 4: space used, answered from the tree-summary table — a
#: single row read when a tsummary exists at the query root.
Q4_DU_TSUMMARY = QuerySpec(T="SELECT totsize FROM tsummary WHERE rectype = 0")
