"""On-disk GUFI index layout.

A GUFI index is *just files and directories* (paper §III-A1): the
source tree's directory structure is recreated under an index root,
and each directory holds one ``db.db`` plus any per-user/per-group
xattr side databases. That property — the index is manageable with
ordinary file tools, snapshotable, rsyncable, composable — is load-
bearing, so this module puts real directories and real SQLite files on
the local file system rather than abstracting them away.

Directory ownership and permission bits from the source tree are
preserved in each directory's ``summary`` record (rectype 0,
``isroot=1``). In the paper the bits are also applied to the physical
index directories so the kernel enforces them; we apply ``chmod``
best-effort for fidelity, but enforcement is performed by the query
engine against the summary record (see DESIGN.md substitutions — a
single-uid container cannot rely on kernel checks for other uids).
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path

from . import db as dbmod
from . import schema

META_FILE = "gufi_index.json"


@dataclass(frozen=True)
class DirMeta:
    """The traversal-relevant metadata of one index directory, read
    from its summary record — the moral equivalent of ``stat`` on the
    directory during descent."""

    inode: int
    mode: int
    uid: int
    gid: int
    rolledup: bool
    rollup_entries: int


class IndexError_(Exception):
    """Raised for structurally invalid indexes."""


class GUFIIndex:
    """Handle to an index rooted at a real directory.

    The index mirrors source paths: source ``/home/u1/x`` lives at
    ``<root>/home/u1/x/db.db``. ``root`` itself mirrors the source
    ``/``.
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Creation / opening
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, root: Path | str, source_name: str = "") -> "GUFIIndex":
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        idx = cls(root)
        idx._write_meta(
            {
                "format": "gufi-repro-1",
                "source": source_name,
                "created_at": time.time(),
            }
        )
        return idx

    @classmethod
    def open(cls, root: Path | str) -> "GUFIIndex":
        root = Path(root)
        if not (root / META_FILE).exists():
            raise IndexError_(f"{root} is not a GUFI index (missing {META_FILE})")
        return cls(root)

    def _write_meta(self, meta: dict) -> None:
        (self.root / META_FILE).write_text(json.dumps(meta, indent=2))

    @property
    def meta(self) -> dict:
        return json.loads((self.root / META_FILE).read_text())

    # ------------------------------------------------------------------
    # Path mapping
    # ------------------------------------------------------------------
    def index_dir(self, source_path: str) -> Path:
        """Index directory for a source path (``/`` maps to the root)."""
        rel = source_path.lstrip("/")
        return self.root / rel if rel else self.root

    def source_path(self, index_dir: Path) -> str:
        """Inverse of :meth:`index_dir`."""
        rel = index_dir.relative_to(self.root)
        return "/" + str(rel) if str(rel) != "." else "/"

    def db_path(self, source_path: str) -> Path:
        return self.index_dir(source_path) / schema.DB_NAME

    # ------------------------------------------------------------------
    # Enumeration / statistics
    # ------------------------------------------------------------------
    def iter_index_dirs(self, start: str = "/") -> Iterator[Path]:
        """All index directories (depth-first) containing a ``db.db``."""
        base = self.index_dir(start)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            if schema.DB_NAME in filenames:
                yield Path(dirpath)

    def count_dbs(self, start: str = "/") -> int:
        return sum(1 for _ in self.iter_index_dirs(start))

    def total_db_bytes(self, start: str = "/", include_side_dbs: bool = True) -> int:
        """Total on-disk size of all database files — Fig 8b's
        numerator."""
        total = 0
        base = self.index_dir(start)
        for dirpath, _, filenames in os.walk(base):
            for fn in filenames:
                if fn == schema.DB_NAME or (
                    include_side_dbs and fn.startswith("xattrs.db")
                ):
                    total += dbmod.db_file_bytes(os.path.join(dirpath, fn))
        return total

    def total_entries(self, start: str = "/") -> int:
        """Sum of original entries rows across the index (excludes
        rolled-up duplicates in pentries)."""
        total = 0
        for d in self.iter_index_dirs(start):
            conn = dbmod.open_ro(d / schema.DB_NAME)
            try:
                (n,) = conn.execute("SELECT COUNT(*) FROM entries").fetchone()
                total += n
            finally:
                conn.close()
        return total

    # ------------------------------------------------------------------
    # Per-directory metadata
    # ------------------------------------------------------------------
    @staticmethod
    def read_dir_meta(conn: sqlite3.Connection, alias: str = "main") -> DirMeta:
        """Read the directory's own summary record from an open
        connection (the descent-time 'stat'). ``alias`` qualifies the
        schema when the database is ATTACHed rather than main."""
        row = conn.execute(
            f"SELECT inode, mode, uid, gid, rolledup, rollup_entries "
            f"FROM {alias}.summary WHERE isroot = 1 AND rectype = ? LIMIT 1",
            (schema.RECTYPE_OVERALL,),
        ).fetchone()
        if row is None:
            raise IndexError_("index database has no directory summary record")
        return DirMeta(
            inode=row[0],
            mode=row[1],
            uid=row[2],
            gid=row[3],
            rolledup=bool(row[4]),
            rollup_entries=row[5],
        )

    def dir_meta(self, source_path: str) -> DirMeta:
        conn = dbmod.open_ro(self.db_path(source_path))
        try:
            return self.read_dir_meta(conn)
        finally:
            conn.close()

    def subdir_names(self, source_path: str) -> list[str]:
        """Names of index sub-directories (the physical readdir the
        query engine performs during descent)."""
        base = self.index_dir(source_path)
        out = []
        try:
            with os.scandir(base) as it:
                for de in it:
                    if de.is_dir(follow_symlinks=False):
                        out.append(de.name)
        except FileNotFoundError:
            raise IndexError_(f"no index directory for {source_path!r}") from None
        return sorted(out)

    def apply_physical_mode(self, source_path: str, mode: int) -> None:
        """Best-effort chmod of the physical index directory, for
        fidelity with the paper's kernel-enforced layout."""
        try:
            os.chmod(self.index_dir(source_path), mode & 0o777 | 0o700)
        except OSError:
            pass  # enforcement is engine-side; physical bits are cosmetic
