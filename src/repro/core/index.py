"""On-disk GUFI index layout.

A GUFI index is *just files and directories* (paper §III-A1): the
source tree's directory structure is recreated under an index root,
and each directory holds one ``db.db`` plus any per-user/per-group
xattr side databases. That property — the index is manageable with
ordinary file tools, snapshotable, rsyncable, composable — is load-
bearing, so this module puts real directories and real SQLite files on
the local file system rather than abstracting them away.

Directory ownership and permission bits from the source tree are
preserved in each directory's ``summary`` record (rectype 0,
``isroot=1``). In the paper the bits are also applied to the physical
index directories so the kernel enforces them; we apply ``chmod``
best-effort for fidelity, but enforcement is performed by the query
engine against the summary record (see DESIGN.md substitutions — a
single-uid container cannot rely on kernel checks for other uids).
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.store.layout import DirStore, StampBracket, is_side_artifact

from . import db as dbmod
from . import schema

META_FILE = "gufi_index.json"


@dataclass(frozen=True)
class DirStats:
    """Aggregate bounds over every entries row a directory's database
    can return, read from its ``summary`` record(s) — the planner's
    input (paper §III-A2: summary rows exist so queries can be *gated*
    by aggregates instead of scanning entries).

    For a rolled-up database the bounds are aggregated across **all**
    rectype-0 summary rows (the directory's own ``isroot=1`` record
    plus every rolled-in ``isroot=0`` copy), so they cover the merged
    ``pentries`` rows too. ``minsize``/``maxsize`` bound regular files
    only — symlink rows are outside them, which the planner must (and
    does) account for via ``totlinks``. Any field may be ``None``
    (no such rows, or a NULL in the backing columns); ``None`` always
    means "no bound" — the conservative-on-NULL rule.
    """

    totfiles: int | None
    totlinks: int | None
    minsize: int | None
    maxsize: int | None
    minmtime: int | None
    maxmtime: int | None
    minuid: int | None
    maxuid: int | None
    mingid: int | None
    maxgid: int | None
    #: deepest *absolute* directory depth in the subtree, from a
    #: tsummary row when one exists (None otherwise)
    maxdepth: int | None


@dataclass(frozen=True)
class DirMeta:
    """The traversal-relevant metadata of one index directory, read
    from its summary record — the moral equivalent of ``stat`` on the
    directory during descent. ``stats`` carries the summary aggregates
    the query planner gates on; a warm :class:`DirMetaCache` therefore
    holds enough to decide matchability without touching SQLite."""

    inode: int
    mode: int
    uid: int
    gid: int
    rolledup: bool
    rollup_entries: int
    stats: DirStats | None = None


class IndexError_(Exception):
    """Raised for structurally invalid indexes."""


class DirMetaCache:
    """In-memory cache of per-directory :class:`DirMeta` and of child
    directory listings, shared by every query on one index handle.

    Entries are validated on every lookup against a stat-derived stamp
    of the backing file ((inode, mtime_ns, size) for ``db.db``,
    (inode, mtime_ns) for the directory), so out-of-band rewrites are
    caught by construction: the update path unlinks and recreates the
    database, changing the inode regardless of timestamp granularity.
    Writers inside this codebase (update, refresh, rollup/unrollup)
    additionally call the explicit ``invalidate*`` hooks — the
    authoritative mechanism, since DirMeta carries the §III-A security
    metadata (mode/uid/gid/rolledup) and a stale entry would mean a
    stale permission decision.

    Plain dict operations are atomic under the GIL, so concurrent
    worker threads need no lock; the hit/miss counters are advisory.
    """

    def __init__(self) -> None:
        self._meta: dict[str, tuple[tuple, DirMeta]] = {}
        self._subdirs: dict[str, tuple[tuple, list[str]]] = {}
        self.meta_hits = 0
        self.meta_misses = 0
        self.subdir_hits = 0
        self.subdir_misses = 0
        self.invalidations = 0
        #: invalidation listeners: ``cb(path | None, subtree: bool)``,
        #: called after entries are dropped. The result cache hangs off
        #: this so every writer that announces itself here invalidates
        #: materialized results too (see engine/resultcache.py).
        self._listeners: list = []

    def add_listener(self, cb) -> None:
        """Subscribe to the ``invalidate*`` hooks. ``cb(path, subtree)``
        fires after each explicit invalidation: ``(path, False)`` for
        one directory, ``(path, True)`` for a subtree, ``(None, True)``
        for a full clear."""
        self._listeners.append(cb)

    def remove_listener(self, cb) -> None:
        """Unsubscribe a listener registered with :meth:`add_listener`.
        Unknown callbacks are ignored (unbind is idempotent)."""
        try:
            self._listeners.remove(cb)
        except ValueError:
            pass

    def _notify(self, path: str | None, subtree: bool) -> None:
        for cb in list(self._listeners):
            cb(path, subtree)

    # -- stamp peeks (no validation, no stat) -------------------------
    def peek_stamp(self, source_path: str) -> tuple | None:
        """The db.db stamp a cached DirMeta was validated against, or
        None when nothing is cached. Lets the result cache cross-check
        its store-time stamps against what the walk actually read."""
        entry = self._meta.get(source_path)
        return entry[0] if entry is not None else None

    def peek_subdir_stamp(self, source_path: str) -> tuple | None:
        """The directory stamp a cached child listing was validated
        against, or None when nothing is cached."""
        entry = self._subdirs.get(source_path)
        return entry[0] if entry is not None else None

    # -- DirMeta -------------------------------------------------------
    def get_meta(self, source_path: str, db_path: Path | str) -> DirMeta | None:
        entry = self._meta.get(source_path)
        if entry is not None:
            stamp = dbmod.file_stamp(db_path)
            if stamp is not None and stamp == entry[0]:
                self.meta_hits += 1
                return entry[1]
            self._meta.pop(source_path, None)
        self.meta_misses += 1
        return None

    def put_meta(self, source_path: str, stamp: tuple, meta: DirMeta) -> None:
        self._meta[source_path] = (stamp, meta)

    # -- subdir listings ----------------------------------------------
    def get_subdirs(self, source_path: str, dir_path: Path | str) -> list[str] | None:
        entry = self._subdirs.get(source_path)
        if entry is not None:
            stamp = dbmod.dir_stamp(dir_path)
            if stamp is not None and stamp == entry[0]:
                self.subdir_hits += 1
                return entry[1]
            self._subdirs.pop(source_path, None)
        self.subdir_misses += 1
        return None

    def put_subdirs(self, source_path: str, stamp: tuple, names: list[str]) -> None:
        self._subdirs[source_path] = (stamp, names)

    # -- invalidation hooks -------------------------------------------
    def invalidate(self, source_path: str) -> None:
        """Drop one directory's cached metadata and child listing."""
        self._meta.pop(source_path, None)
        self._subdirs.pop(source_path, None)
        self.invalidations += 1
        self._notify(source_path, False)

    def invalidate_subtree(self, source_path: str) -> None:
        """Drop everything at or below ``source_path`` (plus the
        parent's child listing, which may now name different dirs)."""
        if source_path == "/":
            self.clear()
            return
        prefix = source_path + "/"
        for table in (self._meta, self._subdirs):
            for key in [
                k for k in list(table) if k == source_path or k.startswith(prefix)
            ]:
                table.pop(key, None)
        parent = source_path.rsplit("/", 1)[0] or "/"
        self._subdirs.pop(parent, None)
        self.invalidations += 1
        self._notify(source_path, True)

    def clear(self) -> None:
        self._meta.clear()
        self._subdirs.clear()
        self.invalidations += 1
        self._notify(None, True)

    def stats(self) -> dict[str, int]:
        return {
            "meta_hits": self.meta_hits,
            "meta_misses": self.meta_misses,
            "subdir_hits": self.subdir_hits,
            "subdir_misses": self.subdir_misses,
            "invalidations": self.invalidations,
            "meta_entries": len(self._meta),
            "subdir_entries": len(self._subdirs),
        }


class GUFIIndex:
    """Handle to an index rooted at a real directory.

    The index mirrors source paths: source ``/home/u1/x`` lives at
    ``<root>/home/u1/x/db.db``. ``root`` itself mirrors the source
    ``/``.
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)
        #: shared DirMeta/subdir-listing cache for every query session
        #: holding this handle (see :class:`DirMetaCache`)
        self.cache = DirMetaCache()

    # ------------------------------------------------------------------
    # Creation / opening
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, root: Path | str, source_name: str = "") -> "GUFIIndex":
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        idx = cls(root)
        idx._write_meta(
            {
                "format": "gufi-repro-1",
                "source": source_name,
                "created_at": time.time(),
            }
        )
        return idx

    @classmethod
    def open(cls, root: Path | str) -> "GUFIIndex":
        root = Path(root)
        if not (root / META_FILE).exists():
            raise IndexError_(f"{root} is not a GUFI index (missing {META_FILE})")
        return cls(root)

    def _write_meta(self, meta: dict) -> None:
        (self.root / META_FILE).write_text(json.dumps(meta, indent=2))

    @property
    def meta(self) -> dict:
        return json.loads((self.root / META_FILE).read_text())

    # ------------------------------------------------------------------
    # Path mapping
    # ------------------------------------------------------------------
    def index_dir(self, source_path: str) -> Path:
        """Index directory for a source path (``/`` maps to the root)."""
        rel = source_path.lstrip("/")
        return self.root / rel if rel else self.root

    def source_path(self, index_dir: Path) -> str:
        """Inverse of :meth:`index_dir`."""
        rel = index_dir.relative_to(self.root)
        return "/" + str(rel) if str(rel) != "." else "/"

    def db_path(self, source_path: str) -> Path:
        return self.store(source_path).db_path

    def store(self, source_path: str) -> DirStore:
        """The store-layer handle for one directory's artifact set."""
        return DirStore(self.index_dir(source_path))

    # ------------------------------------------------------------------
    # Enumeration / statistics
    # ------------------------------------------------------------------
    def iter_index_dirs(self, start: str = "/") -> Iterator[Path]:
        """All index directories (depth-first) containing a ``db.db``."""
        base = self.index_dir(start)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            if schema.DB_NAME in filenames:
                yield Path(dirpath)

    def count_dbs(self, start: str = "/") -> int:
        return sum(1 for _ in self.iter_index_dirs(start))

    def total_db_bytes(self, start: str = "/", include_side_dbs: bool = True) -> int:
        """Total on-disk size of all database files — Fig 8b's
        numerator."""
        total = 0
        base = self.index_dir(start)
        for dirpath, _, filenames in os.walk(base):
            for fn in filenames:
                if fn == schema.DB_NAME or (
                    include_side_dbs and is_side_artifact(fn)
                ):
                    total += dbmod.db_file_bytes(os.path.join(dirpath, fn))
        return total

    def total_entries(self, start: str = "/") -> int:
        """Sum of original entries rows across the index (excludes
        rolled-up duplicates in pentries)."""
        total = 0
        for d in self.iter_index_dirs(start):
            conn = dbmod.open_ro(d / schema.DB_NAME)
            try:
                (n,) = conn.execute("SELECT COUNT(*) FROM entries").fetchone()
                total += n
            finally:
                conn.close()
        return total

    # ------------------------------------------------------------------
    # Per-directory metadata
    # ------------------------------------------------------------------
    @staticmethod
    def read_dir_stats(
        conn: sqlite3.Connection, alias: str = "main"
    ) -> DirStats | None:
        """Aggregate the planner's bounds over every rectype-0 summary
        row (so rolled-up databases are bounded over their merged
        subtree too), plus the subtree ``maxdepth`` from tsummary when
        one exists.

        Conservative on NULL: if any row carries a NULL in a column the
        bounds depend on while claiming entries exist, the whole stats
        record is dropped (``None``) and the planner cannot gate this
        directory — a missing stat must widen, never narrow, the set of
        directories processed."""
        row = conn.execute(
            f"SELECT COUNT(*), TOTAL(totfiles), TOTAL(totlinks), "
            f"MIN(minsize), MAX(maxsize), MIN(minmtime), MAX(maxmtime), "
            f"MIN(minuid), MAX(maxuid), MIN(mingid), MAX(maxgid), "
            f"SUM(CASE WHEN totfiles IS NULL OR totlinks IS NULL "
            f"  OR (totfiles > 0 AND (minsize IS NULL OR maxsize IS NULL)) "
            f"  OR (totfiles + totlinks > 0 AND ("
            f"      minmtime IS NULL OR maxmtime IS NULL "
            f"      OR minuid IS NULL OR maxuid IS NULL "
            f"      OR mingid IS NULL OR maxgid IS NULL)) "
            f"THEN 1 ELSE 0 END) "
            f"FROM {alias}.summary WHERE rectype = ?",
            (schema.RECTYPE_OVERALL,),
        ).fetchone()
        if row is None or not row[0] or row[11]:
            return None
        maxdepth = None
        try:
            ts = conn.execute(
                f"SELECT MAX(maxdepth) FROM {alias}.tsummary "
                f"WHERE rectype = ?",
                (schema.RECTYPE_OVERALL,),
            ).fetchone()
            if ts is not None and ts[0] is not None:
                maxdepth = int(ts[0])
        except sqlite3.Error:
            maxdepth = None
        return DirStats(
            totfiles=int(row[1]),
            totlinks=int(row[2]),
            minsize=row[3],
            maxsize=row[4],
            minmtime=row[5],
            maxmtime=row[6],
            minuid=row[7],
            maxuid=row[8],
            mingid=row[9],
            maxgid=row[10],
            maxdepth=maxdepth,
        )

    @staticmethod
    def read_dir_meta(conn: sqlite3.Connection, alias: str = "main") -> DirMeta:
        """Read the directory's own summary record from an open
        connection (the descent-time 'stat'), plus the planner's
        aggregate bounds. ``alias`` qualifies the schema when the
        database is ATTACHed rather than main."""
        row = conn.execute(
            f"SELECT inode, mode, uid, gid, rolledup, rollup_entries "
            f"FROM {alias}.summary WHERE isroot = 1 AND rectype = ? LIMIT 1",
            (schema.RECTYPE_OVERALL,),
        ).fetchone()
        if row is None:
            raise IndexError_("index database has no directory summary record")
        return DirMeta(
            inode=row[0],
            mode=row[1],
            uid=row[2],
            gid=row[3],
            rolledup=bool(row[4]),
            rollup_entries=row[5],
            stats=GUFIIndex.read_dir_stats(conn, alias),
        )

    def dir_meta(self, source_path: str) -> DirMeta:
        db_path = self.db_path(source_path)
        meta = self.cache.get_meta(source_path, db_path)
        if meta is not None:
            return meta
        bracket = StampBracket(db_path)
        conn = dbmod.open_ro(db_path)
        try:
            meta = self.read_dir_meta(conn)
        finally:
            conn.close()
        # publish only when the file is unchanged across the read —
        # a racing rewrite must never pin its predecessor's DirMeta
        if bracket.unchanged():
            self.cache.put_meta(source_path, bracket.stamp, meta)
        return meta

    def cached_dir_meta(self, source_path: str) -> DirMeta | None:
        """Cache-first DirMeta read with the query engine's lenient
        semantics: ``None`` for a missing or unreadable database
        instead of an exception (a denied-by-absence answer). The
        stamp is taken before the read and re-checked after it: an
        entry is published only when the file provably did not change
        across the read, so a write racing the read can never pin a
        stale DirMeta."""
        db_path = self.db_path(source_path)
        meta = self.cache.get_meta(source_path, db_path)
        if meta is not None:
            return meta
        bracket = StampBracket(db_path)
        if bracket.missing:
            return None
        try:
            conn = dbmod.open_ro(db_path)
        except Exception:
            return None
        try:
            meta = self.read_dir_meta(conn)
        except Exception:
            return None
        finally:
            conn.close()
        if bracket.unchanged():
            self.cache.put_meta(source_path, bracket.stamp, meta)
        return meta

    def invalidate_cache(self, source_path: str | None = None) -> None:
        """Explicit invalidation hook for writers: one directory, or
        everything when ``source_path`` is None."""
        if source_path is None:
            self.cache.clear()
        else:
            self.cache.invalidate(source_path)

    def cached_subdir_names(self, source_path: str) -> list[str]:
        """:meth:`subdir_names` through the mtime-validated cache."""
        base = self.index_dir(source_path)
        names = self.cache.get_subdirs(source_path, base)
        if names is not None:
            return names
        stamp = dbmod.dir_stamp(base)
        names = self.subdir_names(source_path)
        if stamp is not None:
            self.cache.put_subdirs(source_path, stamp, names)
        return names

    def subdir_names(self, source_path: str) -> list[str]:
        """Names of index sub-directories (the physical readdir the
        query engine performs during descent)."""
        base = self.index_dir(source_path)
        out = []
        try:
            with os.scandir(base) as it:
                for de in it:
                    if de.is_dir(follow_symlinks=False):
                        out.append(de.name)
        except FileNotFoundError:
            raise IndexError_(f"no index directory for {source_path!r}") from None
        return sorted(out)

    def apply_physical_mode(self, source_path: str, mode: int) -> None:
        """Best-effort chmod of the physical index directory, for
        fidelity with the paper's kernel-enforced layout."""
        try:
            os.chmod(self.index_dir(source_path), mode & 0o777 | 0o700)
        except OSError:
            pass  # enforcement is engine-side; physical bits are cosmetic
