"""The web portal's search-bar query language (paper §III-A5, Fig 4).

The deployed system's web interface offers "a search prompt": users
type compact queries instead of SQL. This module defines that small
language and compiles it to the engine's :class:`FindFilters` /
:class:`QuerySpec`, so the portal, the CLI, and scripts share one
parser.

Grammar (whitespace-separated terms, all AND-ed)::

    name:<glob>          entry name matches the glob (* and ? wildcards)
    type:f | type:l      regular files / symlinks only
    size><N[k|m|g|t]     size greater than N (binary units)
    size<<N[k|m|g|t]     size less than N
    user:<uid>           owned by uid
    group:<gid>          group gid
    older:<N>d           mtime older than N days (relative to `now`)
    newer:<N>d           mtime within the last N days
    xattr:<name>         carries an xattr with this name
    tag:<substring>      an accessible xattr value contains substring
    minlevel:<N>         only directories >= N levels below the start
    maxlevel:<N>         only directories <= N levels below the start
                         (the depth window, gufi_query's -y/-z; also
                         stops descent below N)
    <bare word>          shorthand for name:*word*

Examples::

    "*.h5 size>>100m older:90d"       stale large HDF5 files
    "type:f user:1001 tag:exp-001"    my files labelled exp-001
    "size>>1g maxlevel:2"             big files near the project roots

A parsed query also compiles (``to_plan``) to a
:class:`~repro.core.plan.QueryPlan`: size/mtime/uid/gid/type terms are
pushed down as summary-statistics gates and the level terms as the
depth window, so the engine can skip directories that provably cannot
match. name/xattr/tag terms contribute no gate (conservative).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .plan import QueryPlan, plan_for
from .query import QuerySpec
from .sqltext import quote_literal
from .tools import FindFilters


class SearchSyntaxError(ValueError):
    """The search string does not parse."""


_UNITS = {"": 1, "k": 2**10, "m": 2**20, "g": 2**30, "t": 2**40}

_TERM = re.compile(
    r"^(?:(?P<key>[a-z]+)(?P<op>:|>>|<<)(?P<value>.+)|(?P<bare>[^:<>]+))$"
)


def _glob_to_like(glob: str) -> str:
    """Translate * / ? globs to SQL LIKE patterns, escaping % and _."""
    out = []
    for ch in glob:
        if ch == "*":
            out.append("%")
        elif ch == "?":
            out.append("_")
        elif ch in ("%", "_"):
            out.append("\\" + ch)
        else:
            out.append(ch)
    return "".join(out)


def _parse_size(text: str) -> int:
    m = re.fullmatch(r"(\d+(?:\.\d+)?)([kmgt]?)", text.lower())
    if not m:
        raise SearchSyntaxError(f"bad size {text!r}")
    return int(float(m.group(1)) * _UNITS[m.group(2)])


def _parse_days(text: str) -> int:
    m = re.fullmatch(r"(\d+)d?", text.lower())
    if not m:
        raise SearchSyntaxError(f"bad age {text!r} (use e.g. 90d)")
    return int(m.group(1)) * 86400


@dataclass
class SearchQuery:
    """A parsed search-bar query."""

    filters: FindFilters
    #: substring to match against accessible xattr values (tag:)
    tag_substring: str | None = None
    #: LIKE-escaped name pattern carried for display
    text: str = ""

    @property
    def needs_xattr_values(self) -> bool:
        return self.tag_substring is not None

    def to_spec(self) -> QuerySpec:
        """Compile to the engine's per-directory SQL."""
        where = self.filters.where_clause()
        if self.tag_substring is not None:
            tag = quote_literal(f"%{self.tag_substring}%")
            cond = f"exattrs LIKE {tag}"
            where = (
                f"{where} AND {cond}" if where else f" WHERE {cond}"
            )
            return QuerySpec(
                E="SELECT rpath(dname, d_isroot, name), type, size, mtime "
                f"FROM xpentries{where}",
                xattrs=True,
            )
        return QuerySpec(
            E="SELECT rpath(dname, d_isroot, name), type, size, mtime "
            f"FROM vrpentries{where}"
        )

    def to_plan(self) -> QueryPlan:
        """Compile the prunable terms to a :class:`QueryPlan`.

        The tag: E query reads ``xpentries`` — still entries-shaped
        (one row per entries row), so the stats gates remain sound."""
        return plan_for(self.filters)


def parse(query: str, now: int | None = None) -> SearchQuery:
    """Parse a search-bar string. ``now`` anchors older:/newer: terms
    (required if either is used)."""
    filters = FindFilters()
    tag: str | None = None
    if not query.strip():
        raise SearchSyntaxError("empty query")
    for raw in query.split():
        m = _TERM.match(raw)
        if not m:
            raise SearchSyntaxError(f"cannot parse term {raw!r}")
        if m.group("bare") is not None:
            pat = _glob_to_like(m.group("bare"))
            if "%" not in pat and "_" not in pat:
                pat = f"%{pat}%"
            filters.name_like = pat
            continue
        key, op, value = m.group("key"), m.group("op"), m.group("value")
        if key == "name" and op == ":":
            filters.name_like = _glob_to_like(value)
        elif key == "type" and op == ":":
            if value not in ("f", "l"):
                raise SearchSyntaxError(f"type must be f or l, not {value!r}")
            filters.ftype = value
        elif key == "size" and op == ">>":
            filters.min_size = _parse_size(value)
        elif key == "size" and op == "<<":
            filters.max_size = _parse_size(value)
        elif key == "user" and op == ":":
            filters.uid = int(value)
        elif key == "group" and op == ":":
            filters.gid = int(value)
        elif key == "older" and op == ":":
            if now is None:
                raise SearchSyntaxError("older: requires a reference time")
            filters.mtime_before = now - _parse_days(value)
        elif key == "newer" and op == ":":
            if now is None:
                raise SearchSyntaxError("newer: requires a reference time")
            filters.mtime_after = now - _parse_days(value)
        elif key == "xattr" and op == ":":
            filters.xattr_name_like = f"%{value}%"
        elif key == "tag" and op == ":":
            tag = value
        elif key == "minlevel" and op == ":":
            if not value.isdigit():
                raise SearchSyntaxError(f"minlevel wants an integer, not {value!r}")
            filters.min_level = int(value)
        elif key == "maxlevel" and op == ":":
            if not value.isdigit():
                raise SearchSyntaxError(f"maxlevel wants an integer, not {value!r}")
            filters.max_level = int(value)
        else:
            raise SearchSyntaxError(f"unknown term {raw!r}")
    return SearchQuery(filters=filters, tag_substring=tag, text=query)
