"""Incremental index updates (paper §III-A3/§III-A4).

The index is rebuilt wholesale on a schedule (the paper's site uses a
4-hour pull interval), but two situations need immediate, surgical
updates:

* a file-transfer tool just rewrote one directory and wants the index
  to reflect it now;
* a user realises they exposed sensitive names/metadata and needs a
  visibility change honoured *immediately* (the security use the
  paper highlights).

:func:`update_directory` re-scans a single source directory and
replaces that directory's index database (entries, summary, xattr
shards, preserved permissions). If the directory's data was rolled up
into an ancestor, the rollups on the root-to-target path are undone
first — each directory's rollup is independently reversible, so only
the path is touched, not the whole subtree (§III-C3).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.fs.inode import FileType
from repro.fs.tree import VFSTree
from repro.scan.scanners import record_from_inode
from repro.scan.trace import DirStanza

from . import schema
from .build import BuildOptions, build_dir_db
from .index import GUFIIndex
from .rollup import unrollup_dir


@dataclass
class UpdateResult:
    seconds: float
    unrolled_dirs: list[str]
    entries_indexed: int


def unroll_path_to(index: GUFIIndex, target: str) -> list[str]:
    """Undo rollups on every directory from the root down to (and
    including) ``target`` so the target's database is authoritative
    again. Off-path siblings keep their rollups."""
    parts = [p for p in target.split("/") if p]
    unrolled = []
    paths = ["/"] + [
        "/" + "/".join(parts[: i + 1]) for i in range(len(parts))
    ]
    for sp in paths:
        db_path = index.db_path(sp)
        if not db_path.exists():
            continue
        meta = index.dir_meta(sp)
        if meta.rolledup:
            unrollup_dir(index, sp)
            unrolled.append(sp)
    return unrolled


def update_directory(
    index: GUFIIndex,
    tree: VFSTree,
    source_path: str,
    opts: BuildOptions | None = None,
    recursive: bool = False,
) -> UpdateResult:
    """Re-scan ``source_path`` on the live source tree and replace its
    index database(s).

    Non-recursive (default, matching the paper's tool): only the named
    directory's own entries, permissions, and xattr shards are
    refreshed; existing sub-directory databases are left alone.
    ``recursive=True`` additionally rebuilds the whole subtree
    (removing index directories whose source directories vanished).
    """
    opts = opts or BuildOptions()
    t0 = time.monotonic()
    source_path = "/" + "/".join(p for p in source_path.split("/") if p)
    unrolled = unroll_path_to(index, source_path)

    targets = [source_path]
    if recursive:
        targets = []
        queue = [source_path]
        while queue:
            d = queue.pop()
            targets.append(d)
            prefix = "" if d == "/" else d
            for e in tree.readdir(d):
                if e.ftype is FileType.DIRECTORY:
                    queue.append(f"{prefix}/{e.name}")
        _prune_stale_index_dirs(index, tree, source_path)

    total_entries = 0
    for d in targets:
        stanza = scan_single_dir(tree, d)
        remove_dir_dbs(index, d)
        n, _ = build_dir_db(index, stanza, opts)
        total_entries += n
        # Invalidate before returning so no warm query session can
        # observe the pre-update mode/uid/gid — the security use case
        # (user exposed something, chmod'd, asked for an update) must
        # be honoured by the very next query.
        index.invalidate_cache(d)
    if recursive:
        index.cache.invalidate_subtree(source_path)
    return UpdateResult(
        seconds=time.monotonic() - t0,
        unrolled_dirs=unrolled,
        entries_indexed=total_entries,
    )


def scan_single_dir(tree: VFSTree, source_path: str) -> DirStanza:
    import posixpath

    dir_inode = tree.get_inode(source_path)
    stanza = DirStanza(directory=record_from_inode(source_path, dir_inode))
    for e in tree.readdir(source_path):
        if e.ftype is FileType.DIRECTORY:
            continue
        child = posixpath.join(source_path, e.name)
        stanza.entries.append(record_from_inode(child, tree.get_inode(child)))
    return stanza


def remove_dir_dbs(index: GUFIIndex, source_path: str) -> None:
    """Remove the directory's primary and side databases so the
    rebuild starts clean (stale side databases would leak old xattr
    values — exactly what the security use case must prevent)."""
    index_dir = index.index_dir(source_path)
    if not index_dir.exists():
        return
    index.store(source_path).remove_artifacts()


def _prune_stale_index_dirs(
    index: GUFIIndex, tree: VFSTree, source_path: str
) -> list[str]:
    """Delete index directories whose source directories no longer
    exist (recursive updates only)."""
    import shutil
    from pathlib import Path

    removed = []
    base = index.index_dir(source_path)
    for dirpath, dirnames, _ in os.walk(base, topdown=True):
        keep = []
        for name in sorted(dirnames):
            idx_dir = os.path.join(dirpath, name)
            sp = index.source_path(Path(idx_dir))
            if tree.exists(sp):
                keep.append(name)
            else:
                shutil.rmtree(idx_dir, ignore_errors=True)
                removed.append(sp)
        dirnames[:] = keep
    return removed
