"""Compatibility shim: SQLite connection policy moved to
:mod:`repro.store.connect` and the stamp/size helpers to
:mod:`repro.store.layout` when the store layer was extracted. Import
from ``repro.store`` in new code; this module keeps the historic
``repro.core.db`` surface working.

``db_file_bytes`` is the old name of
:func:`repro.store.layout.artifact_bytes` — missing files have always
counted as zero here, and :func:`repro.store.connect.table_bytes` now
follows the same convention."""

from __future__ import annotations

from repro.store.connect import (
    EMPTY_DB_BYTES,
    _template,
    attach_ro,
    create_db,
    create_side_db,
    detach,
    is_readonly_error,
    open_ro,
    open_rw,
    table_bytes,
)
from repro.store.layout import (
    StampBracket,
    artifact_bytes,
    dir_stamp,
    file_stamp,
    stamp_matches,
)

#: historic name for :func:`repro.store.layout.artifact_bytes`
db_file_bytes = artifact_bytes

__all__ = [
    "EMPTY_DB_BYTES",
    "StampBracket",
    "_template",
    "artifact_bytes",
    "attach_ro",
    "create_db",
    "create_side_db",
    "db_file_bytes",
    "detach",
    "dir_stamp",
    "file_stamp",
    "is_readonly_error",
    "open_ro",
    "open_rw",
    "stamp_matches",
    "table_bytes",
]
