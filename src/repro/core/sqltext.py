"""SQL text composition helpers shared by every SQL-building module.

The query tools (:mod:`repro.core.tools`), the search-bar compiler
(:mod:`repro.core.search`), and anything else that assembles
``gufi_query`` SQL from user input must escape string values the same
way. Historically :mod:`repro.core.search` reached into
:mod:`repro.core.tools` for its private ``_quote``; this module is the
shared, public home for that logic.

Only *literals* are composed here. Structural SQL (identifiers, table
names) is never built from user input anywhere in the tree — the
engine's per-directory schema is fixed — so a quoting helper for
string literals is the entire surface.
"""

from __future__ import annotations


def quote_literal(text: str) -> str:
    """Escape ``text`` as a single-quoted SQL string literal.

    Follows SQLite's quoting rule: the only character that needs
    escaping inside a ``'…'`` literal is the single quote itself,
    doubled. ``%`` and ``_`` are *not* special in a literal (they only
    matter to ``LIKE`` matching, where the caller decides whether they
    are wildcards or need an ``ESCAPE`` clause), and backslashes pass
    through untouched.

    NUL bytes are rejected: ``sqlite3`` refuses statements containing
    embedded NULs, and silently truncating at the NUL (what C callers
    historically did) would let ``"secret\\x00' OR 1=1"`` smuggle
    structure past the escaping. Raising keeps the failure at the
    composition site, with a clear message.
    """
    if "\x00" in text:
        raise ValueError("SQL string literal cannot contain NUL bytes")
    return "'" + text.replace("'", "''") + "'"


def like_pattern(substring: str) -> str:
    """Escape ``substring`` for use *inside* a ``LIKE`` pattern whose
    wildcards the caller adds, using ``\\`` as the escape character
    (pair with ``ESCAPE '\\'``). ``%``/``_`` in the input match
    literally instead of acting as wildcards."""
    out = []
    for ch in substring:
        if ch in ("%", "_", "\\"):
            out.append("\\" + ch)
        else:
            out.append(ch)
    return "".join(out)
