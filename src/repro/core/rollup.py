"""Permissions-based index rollup (paper §III-C3).

A database per directory makes permission enforcement trivial but
yields millions of tiny databases — each open costs time and even an
empty SQLite file is ~12 KB of reads. Rollup merges a sub-tree's data
upward into its top directory's database *when and only when doing so
cannot widen visibility*: every target/sub-directory pair must satisfy
one of four permission-compatibility conditions, and every
sub-directory below the target must itself already be rolled up
(leaves are rolled up by definition).

Mechanics per rolled directory (paper's exact sequence):

1. drop the ``pentries`` view and materialise a ``pentries`` *table*
   seeded from the directory's own ``entries`` rows;
2. copy each child's ``pentries`` rows in (children were rolled first,
   so this captures their whole sub-trees) — ``entries`` is never
   touched, preserving the original data;
3. copy each child's ``summary`` rows in, path-prefixed and marked
   ``isroot=0``;
4. merge xattr stores the same way (main-db rows and per-user /
   per-group side databases, all marked ``isroot=0``);
5. flag the directory ``rolledup`` with its merged entry count.

Rolled-up children stay on disk, so queries may start anywhere and
rollups can be undone per-directory (:func:`unrollup_dir`) without
touching any other directory — the property the incremental update
tool relies on.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.scan.walker import ParallelTreeWalker
from repro.store.attach import attached
from repro.store.layout import DirStore, is_side_artifact

from . import db as dbmod
from . import schema
from .index import GUFIIndex
from .xattrs import side_db_name  # noqa: F401  (re-exported for tools)


# ----------------------------------------------------------------------
# Permission-compatibility conditions (§III-C3, verbatim)
# ----------------------------------------------------------------------

def _reader_set_included(
    p_mode: int, p_uid: int, p_gid: int, c_mode: int, c_uid: int, c_gid: int
) -> bool:
    """Exact safety predicate: every credential that may read+search
    the parent may also read+search the child, for *all* possible
    credentials. Access depends only on the predicates ``uid == x``
    and ``gid ∈ groups``, so enumerating representative credentials —
    each relevant uid plus a fresh one, against every subset of the
    relevant gids — is exhaustive."""
    from repro.fs.permissions import Credentials, can_read_dir, can_search_dir

    fresh_uid = max(p_uid, c_uid) + 1
    fresh_gid = max(p_gid, c_gid) + 1
    gid_pool = {p_gid, c_gid}
    subsets = [set(), {p_gid}, {c_gid}, set(gid_pool)]
    for uid in (p_uid, c_uid, fresh_uid):
        if uid == 0:
            continue  # root reads everything everywhere
        for groups in subsets:
            creds = Credentials(
                uid=uid, gid=next(iter(groups), fresh_gid),
                groups=frozenset(groups),
            )
            parent_ok = can_read_dir(
                p_mode, p_uid, p_gid, creds
            ) and can_search_dir(p_mode, p_uid, p_gid, creds)
            child_ok = can_read_dir(
                c_mode, c_uid, c_gid, creds
            ) and can_search_dir(c_mode, c_uid, c_gid, creds)
            if parent_ok and not child_ok:
                return False
    return True


def rollup_compatible(
    p_mode: int, p_uid: int, p_gid: int, c_mode: int, c_uid: int, c_gid: int
) -> bool:
    """May a child with (c_mode, c_uid, c_gid) be merged into a parent
    with (p_mode, p_uid, p_gid)?

    The paper's four conditions are the fast path. They are however
    stated in terms of *granted* bits, while POSIX permission classes
    do not fall through: a directory like ``0o705`` denies its group
    what it grants the world, so condition 1 (both ``o+rx``) alone
    would let group members gain access through a merge. The exact
    reader-set-inclusion guard closes that corner; for conventional
    modes it never fires.
    """
    # 1) World readable and executable (o+rx) on both.
    if (p_mode & 0o005) == 0o005 and (c_mode & 0o005) == 0o005:
        return _reader_set_included(p_mode, p_uid, p_gid, c_mode, c_uid, c_gid)
    # 2) Matching permissions (ugo), same user and group.
    if p_mode == c_mode and p_uid == c_uid and p_gid == c_gid:
        return True
    # 3) Matching user+group permissions, ug+rx, same user and group,
    #    and o-rx.
    if (
        (p_mode & 0o770) == (c_mode & 0o770)
        and p_uid == c_uid
        and p_gid == c_gid
        and (p_mode & 0o550) == 0o550
        and (c_mode & 0o550) == 0o550
        and (p_mode & 0o005) == 0
        and (c_mode & 0o005) == 0
    ):
        return True
    # 4) Matching user permissions, u+rx, same user, go-rx.
    if (
        (p_mode & 0o700) == (c_mode & 0o700)
        and p_uid == c_uid
        and (p_mode & 0o500) == 0o500
        and (c_mode & 0o500) == 0o500
        and (p_mode & 0o055) == 0
        and (c_mode & 0o055) == 0
    ):
        return True
    return False


@dataclass
class RollupStats:
    """Outcome of a rollup pass."""

    total_dirs: int = 0
    rolled: int = 0  # directories whose databases absorbed children
    blocked_perms: int = 0
    blocked_limit: int = 0
    blocked_child: int = 0  # an unrolled child blocked the parent
    elapsed: float = 0.0

    @property
    def not_rolled(self) -> int:
        return self.blocked_perms + self.blocked_limit + self.blocked_child


@dataclass
class _DirState:
    """Per-directory decision state threaded through the bottom-up pass."""

    rolled: bool  # usable by the parent (leaves: trivially True)
    entry_count: int  # pentries rows the parent would absorb
    mode: int = 0
    uid: int = 0
    gid: int = 0


_SUMMARY_COPY_COLS = ", ".join(schema.SUMMARY_COLUMNS)
# SELECT list matching SUMMARY_COLUMNS with the copied row's name
# path-prefixed and isroot forced to 0.
_SUMMARY_COPY_SELECT = ", ".join(
    "CASE WHEN isroot = 1 THEN ? ELSE ? || '/' || name END"
    if c == "name"
    else ("0" if c == "isroot" else c)
    for c in schema.SUMMARY_COLUMNS
)


def _merge_child(
    conn: sqlite3.Connection,
    parent_dir: Path,
    child_name: str,
) -> None:
    """Steps 2–4 for one child: pentries, summary, xattr stores."""
    child_db = DirStore(parent_dir / child_name).db_path
    with attached(conn, child_db, "child", ro=False):
        conn.execute("INSERT INTO pentries SELECT * FROM child.pentries")
        conn.execute(
            f"INSERT INTO summary ({_SUMMARY_COPY_COLS}) "
            f"SELECT {_SUMMARY_COPY_SELECT} FROM child.summary",
            (child_name, child_name),
        )
        conn.execute(
            "INSERT INTO xattrs (exinode, exattrs, isroot) "
            "SELECT exinode, exattrs, 0 FROM child.xattrs"
        )
        side_rows = conn.execute(
            "SELECT filename, uid, gid, mode FROM child.xattrs_avail"
        ).fetchall()
    # Per-user / per-group side databases merge into same-protection
    # side databases of the parent (created on demand, tracked with
    # isroot=0 so unrollup can remove them).
    for filename, uid, gid, mode in side_rows:
        src = parent_dir / child_name / filename
        dst = parent_dir / filename
        if not src.exists():
            continue
        existed = dst.exists()
        dst_conn = dbmod.create_side_db(dst)
        try:
            with attached(dst_conn, src, "src", ro=False):
                dst_conn.execute(
                    "INSERT INTO xattrs (exinode, exattrs, isroot) "
                    "SELECT exinode, exattrs, 0 FROM src.xattrs"
                )
                dst_conn.commit()
        finally:
            dst_conn.close()
        if not existed:
            conn.execute(
                "INSERT INTO xattrs_avail (filename, uid, gid, mode, isroot) "
                "VALUES (?,?,?,?,0)",
                (filename, uid, gid, mode),
            )


def rollup_dir(index: GUFIIndex, source_path: str, child_names: list[str]) -> int:
    """Perform the merge for one directory (conditions already
    verified by the caller). Returns the merged pentries row count."""
    parent_dir = index.index_dir(source_path)
    conn = index.store(source_path).open_rw()
    try:
        conn.execute("DROP VIEW IF EXISTS pentries")
        conn.execute(schema.CREATE_PENTRIES_TABLE)
        conn.execute(
            "INSERT INTO pentries SELECT entries.*, "
            "(SELECT inode FROM summary WHERE isroot=1 AND rectype=0) "
            "FROM entries"
        )
        for child in child_names:
            _merge_child(conn, parent_dir, child)
        (count,) = conn.execute("SELECT COUNT(*) FROM pentries").fetchone()
        conn.execute(
            "UPDATE summary SET rolledup = 1, rollup_entries = ? "
            "WHERE isroot = 1 AND rectype = 0",
            (count,),
        )
        conn.commit()
        # the rolledup flag steers query descent — warm sessions must
        # see it immediately, not on the next mtime revalidation
        index.invalidate_cache(source_path)
        return count
    finally:
        conn.close()


def unrollup_dir(index: GUFIIndex, source_path: str) -> None:
    """Undo one directory's rollup — independent of every other
    directory's rollup state (§III-C3's lightweight-undo property)."""
    parent_dir = index.index_dir(source_path)
    conn = index.store(source_path).open_rw()
    try:
        meta = index.read_dir_meta(conn)
        if not meta.rolledup:
            return  # nothing to undo
        conn.execute("DROP TABLE IF EXISTS pentries")
        conn.execute(schema.CREATE_PENTRIES_VIEW)
        conn.execute("DELETE FROM summary WHERE isroot = 0")
        conn.execute("DELETE FROM xattrs WHERE isroot = 0")
        created = conn.execute(
            "SELECT filename FROM xattrs_avail WHERE isroot = 0"
        ).fetchall()
        for (filename,) in created:
            try:
                os.unlink(parent_dir / filename)
            except OSError:
                pass
        conn.execute("DELETE FROM xattrs_avail WHERE isroot = 0")
        # Pre-existing side databases may still hold rolled-in rows.
        kept = conn.execute(
            "SELECT filename FROM xattrs_avail WHERE isroot = 1"
        ).fetchall()
        for (filename,) in kept:
            path = parent_dir / filename
            if not path.exists():
                continue
            side = dbmod.open_rw(path)
            try:
                side.execute("DELETE FROM xattrs WHERE isroot = 0")
                side.commit()
            finally:
                side.close()
        conn.execute(
            "UPDATE summary SET rolledup = 0, rollup_entries = 0 "
            "WHERE isroot = 1 AND rectype = 0"
        )
        conn.commit()
        index.invalidate_cache(source_path)
    finally:
        conn.close()


def rollup(
    index: GUFIIndex,
    limit: int | None = None,
    nthreads: int = 8,
    start: str = "/",
) -> RollupStats:
    """Roll up an index bottom-up, bounded by ``limit`` merged entries
    per database (``None`` = unlimited, the paper's MAX; the paper's
    sweet spot for dataset 2 was 250 K).

    Directories at the same depth are independent, so each depth level
    is processed by the thread pool; levels run deepest-first because
    a parent's decision needs its children's outcomes.
    """
    t0 = time.monotonic()
    stats = RollupStats()
    dirs_by_depth: dict[int, list[str]] = {}
    for d in index.iter_index_dirs(start):
        sp = index.source_path(d)
        depth = 0 if sp == "/" else sp.count("/")
        dirs_by_depth.setdefault(depth, []).append(sp)
    stats.total_dirs = sum(len(v) for v in dirs_by_depth.values())

    states: dict[str, _DirState] = {}
    lock = threading.Lock()

    def process(source_path: str) -> list:
        conn = dbmod.open_ro(index.db_path(source_path))
        try:
            meta = index.read_dir_meta(conn)
            (own_entries,) = conn.execute(
                "SELECT COUNT(*) FROM entries"
            ).fetchone()
        finally:
            conn.close()
        children = index.subdir_names(source_path)
        prefix = "" if source_path == "/" else source_path
        child_states = []
        ok = True
        reason = None
        total = own_entries
        for name in children:
            cs = states.get(f"{prefix}/{name}")
            if cs is None or not cs.rolled:
                ok, reason = False, "child"
                break
            if not rollup_compatible(
                meta.mode, meta.uid, meta.gid, cs.mode, cs.uid, cs.gid
            ):
                ok, reason = False, "perms"
                break
            child_states.append((name, cs))
            total += cs.entry_count
        if ok and limit is not None and total > limit:
            ok, reason = False, "limit"
        if ok and children:
            if meta.rolledup:
                # idempotent re-run: already rolled; trust stored count
                total = meta.rollup_entries
            else:
                total = rollup_dir(index, source_path, children)
            with lock:
                stats.rolled += 1
        elif not ok:
            with lock:
                if reason == "perms":
                    stats.blocked_perms += 1
                elif reason == "limit":
                    stats.blocked_limit += 1
                else:
                    stats.blocked_child += 1
        # Leaves (no children) are rolled up by definition: usable by
        # the parent without any database modification.
        with lock:
            states[source_path] = _DirState(
                rolled=ok,
                entry_count=total,
                mode=meta.mode,
                uid=meta.uid,
                gid=meta.gid,
            )
        return []

    walker = ParallelTreeWalker(nthreads)
    with obs.tracer().span("rollup.run", start=start):
        for depth in sorted(dirs_by_depth, reverse=True):
            result = walker.walk(dirs_by_depth[depth], process)
            if result.errors:
                item, exc = result.errors[0]
                raise RuntimeError(
                    f"rollup failed at {item!r}: {exc}"
                ) from exc
    stats.elapsed = time.monotonic() - t0
    rec = obs.metrics()
    if rec.enabled:
        rec.counter("gufi_rollup_runs_total")
        rec.counter("gufi_rollup_dirs_total", stats.total_dirs)
        rec.counter("gufi_rollup_rolled_total", stats.rolled)
        rec.counter("gufi_rollup_blocked_total", stats.blocked_perms, reason="perms")
        rec.counter("gufi_rollup_blocked_total", stats.blocked_limit, reason="limit")
        rec.counter("gufi_rollup_blocked_total", stats.blocked_child, reason="child")
        rec.observe("gufi_rollup_seconds", stats.elapsed)
    return stats


def visible_db_count(index: GUFIIndex, start: str = "/") -> int:
    """Databases a full traversal from ``start`` opens: descent prunes
    beneath rolled-up directories. This is the paper's '386× reduction
    in the number of databases' metric (Fig 8b's x-axis companion)."""
    count = 0
    stack = [start]
    while stack:
        sp = stack.pop()
        db_path = index.db_path(sp)
        if not db_path.exists():
            continue
        count += 1
        meta = index.dir_meta(sp)
        if meta.rolledup:
            continue
        prefix = "" if sp == "/" else sp
        stack.extend(f"{prefix}/{n}" for n in index.subdir_names(sp))
    return count


def visible_db_bytes(index: GUFIIndex, start: str = "/") -> int:
    """Bytes a full traversal reads: the database files of every
    visible directory (rolled-up children stay on disk but are never
    opened, so they do not count). This is Fig 8b's space metric —
    per-query read volume — which rollup shrinks by eliminating the
    ~12 KB fixed overhead of thousands of tiny databases."""
    total = 0
    stack = [start]
    while stack:
        sp = stack.pop()
        db_path = index.db_path(sp)
        if not db_path.exists():
            continue
        total += dbmod.db_file_bytes(db_path)
        idx_dir = index.index_dir(sp)
        try:
            for name in os.listdir(idx_dir):
                if is_side_artifact(name):
                    total += dbmod.db_file_bytes(idx_dir / name)
        except OSError:
            pass
        meta = index.dir_meta(sp)
        if meta.rolledup:
            continue
        prefix = "" if sp == "/" else sp
        stack.extend(f"{prefix}/{n}" for n in index.subdir_names(sp))
    return total


def largest_visible_db_bytes(index: GUFIIndex, start: str = "/") -> int:
    """Size of the largest database a traversal touches (Fig 8c's
    tail-latency driver)."""
    largest = 0
    stack = [start]
    while stack:
        sp = stack.pop()
        db_path = index.db_path(sp)
        if not db_path.exists():
            continue
        largest = max(largest, dbmod.db_file_bytes(db_path))
        meta = index.dir_meta(sp)
        if meta.rolledup:
            continue
        prefix = "" if sp == "/" else sp
        stack.extend(f"{prefix}/{n}" for n in index.subdir_names(sp))
    return largest
