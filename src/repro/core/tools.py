"""User-facing query tools built on the layered query engine.

These reproduce the paper's parallel reimplementations of the classic
utilities (``gufi_find``, ``gufi_ls``, ``gufi_du``, ``gufi_stats``):
thin layers that compose SQL for the engine and format results. All
of them open databases read-only and inherit the engine's permission
gating, so an unprivileged caller sees exactly what the source file
system would show them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.permissions import ROOT, Credentials, format_mode
from repro.sim.blktrace import IOTracer

from .engine import CancelToken, QueryEngine, ResultSink
from .index import GUFIIndex
from .plan import QueryPlan, plan_for
from .query import QueryResult, QuerySpec
from .sqltext import quote_literal


@dataclass
class FindFilters:
    """``find``-style predicates compiled into the entries query."""

    name_like: str | None = None  # SQL LIKE pattern on the entry name
    ftype: str | None = None  # 'f' | 'l'
    min_size: int | None = None
    max_size: int | None = None
    uid: int | None = None
    gid: int | None = None
    #: entries not modified since this timestamp (purge-policy scans)
    mtime_before: int | None = None
    mtime_after: int | None = None
    #: match against packed xattr name list in entries
    xattr_name_like: str | None = None
    #: depth window relative to the query start (gufi_query -y/-z):
    #: directories outside it are traversed but not processed; nothing
    #: below max_level is visited. Enforced by the planner, not SQL.
    min_level: int | None = None
    max_level: int | None = None

    def where_clause(self) -> str:
        conds = []
        if self.name_like is not None:
            # ESCAPE lets glob-translated patterns match literal %/_
            conds.append(f"name LIKE {quote_literal(self.name_like)} ESCAPE '\\'")
        if self.ftype is not None:
            conds.append(f"type = {quote_literal(self.ftype)}")
        if self.min_size is not None:
            conds.append(f"size >= {int(self.min_size)}")
        if self.max_size is not None:
            conds.append(f"size <= {int(self.max_size)}")
        if self.uid is not None:
            conds.append(f"uid = {int(self.uid)}")
        if self.gid is not None:
            conds.append(f"gid = {int(self.gid)}")
        if self.mtime_before is not None:
            conds.append(f"mtime < {int(self.mtime_before)}")
        if self.mtime_after is not None:
            conds.append(f"mtime > {int(self.mtime_after)}")
        if self.xattr_name_like is not None:
            conds.append(f"xattr_names LIKE {quote_literal(self.xattr_name_like)}")
        return (" WHERE " + " AND ".join(conds)) if conds else ""


class GUFITools:
    """One handle bundling the common tools for an (index, user).

    The handle is a warm *query session*: the underlying
    :class:`~repro.core.engine.QueryEngine` keeps its scratch
    connections and the index's DirMeta cache alive across calls, so
    repeated invocations (the portal's canned reports, polling
    dashboards) skip per-query setup. Call :meth:`close` — or use the
    handle as a context manager — for deterministic cleanup.
    """

    def __init__(
        self,
        index: GUFIIndex,
        creds: Credentials = ROOT,
        nthreads: int = 8,
        tracer: IOTracer | None = None,
        users: dict[int, str] | None = None,
        groups: dict[int, str] | None = None,
        processes: int = 1,
        result_cache=None,
    ) -> None:
        self.engine = QueryEngine(
            index, creds=creds, nthreads=nthreads, tracer=tracer,
            users=users, groups=groups, processes=processes,
            result_cache=result_cache,
        )
        # Historical attribute name; same object (the engine speaks
        # the full GUFIQuery surface plus sinks).
        self.query = self.engine

    def close(self) -> None:
        self.query.close()

    def __enter__(self) -> "GUFITools":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def find(
        self,
        start: str = "/",
        filters: FindFilters | None = None,
        planned: bool = True,
        sink: ResultSink | None = None,
        cancel: CancelToken | None = None,
    ) -> QueryResult:
        """``gufi_find``: paths of matching entries (and directories
        when no type filter excludes them).

        By default the filters are also compiled into a
        :class:`~repro.core.plan.QueryPlan` so directories whose
        summary statistics prove them unmatchable are skipped without
        attaching their database; ``planned=False`` disables that
        (results are identical either way — the plan is conservative)."""
        filters = filters or FindFilters()
        where = filters.where_clause()
        spec = QuerySpec(
            E="SELECT rpath(dname, d_isroot, name), type, size "
            f"FROM vrpentries{where}"
        )
        if planned:
            plan = plan_for(filters)
        elif filters.min_level is not None or filters.max_level is not None:
            # The depth window is *semantic* (it changes which levels
            # are processed), so it survives planned=False — only the
            # stats gates are switched off (entries_shaped=False).
            plan = QueryPlan(
                min_level=filters.min_level,
                max_level=filters.max_level,
                entries_shaped=False,
            )
        else:
            plan = None
        return self.query.run(spec, start, plan=plan, sink=sink,
                              cancel=cancel)

    def ls(self, path: str = "/", long_format: bool = False,
           cancel: CancelToken | None = None) -> list[str]:
        """``gufi_ls``: one directory's listing (non-recursive)."""
        spec = QuerySpec(
            E="SELECT name, type, mode, uid, gid, size, mtime FROM entries "
            "ORDER BY name"
        )
        # Only the named directory: run the engine with descent disabled
        # by querying entries (not pentries) and pruning via nthreads=1
        # + a subdir-free expansion. Simplest correct approach: run on
        # the single directory with a spec that the engine naturally
        # prunes — we reuse run() then filter to rows from this path.
        result = self.query.run_single(spec, path, cancel=cancel)
        out = []
        for name, ftype, mode, uid, gid, size, mtime in result.rows:
            if long_format:
                out.append(
                    f"{format_mode(ftype, mode)} {uid:>6} {gid:>6} "
                    f"{size:>12} {mtime:>10} {name}"
                )
            else:
                out.append(name)
        return out

    def stat(self, path: str) -> dict | None:
        """``gufi_stat``: one entry's indexed metadata by exact path.

        Resolves the parent directory in the index (ancestor search
        bits enforced) and looks the name up in its entries table.
        Returns a column dict, or None if the name is not indexed
        there. Directories are answered from their own summary record.
        """
        path = "/" + "/".join(p for p in path.split("/") if p)
        index = self.query.index
        if index.db_path(path).exists():
            spec = QuerySpec(
                S="SELECT name, mode, uid, gid, size, mtime, totfiles, "
                "totsubdirs FROM summary WHERE isroot = 1 AND rectype = 0"
            )
            rows = self.query.run_single(spec, path).rows
            if not rows:
                return None
            name, mode, uid, gid, size, mtime, totfiles, totsubdirs = rows[0]
            return {
                "name": name, "type": "d", "mode": mode, "uid": uid,
                "gid": gid, "size": size, "mtime": mtime,
                "totfiles": totfiles, "totsubdirs": totsubdirs,
            }
        parent, _, name = path.rpartition("/")
        spec = QuerySpec(
            E="SELECT name, type, mode, uid, gid, size, mtime, linkname "
            f"FROM entries WHERE name = {quote_literal(name)}"
        )
        rows = self.query.run_single(spec, parent or "/").rows
        if not rows:
            return None
        name, ftype, mode, uid, gid, size, mtime, linkname = rows[0]
        return {
            "name": name, "type": ftype, "mode": mode, "uid": uid,
            "gid": gid, "size": size, "mtime": mtime, "linkname": linkname,
        }

    def du(self, start: str = "/", use_tsummary: bool = False,
           cancel: CancelToken | None = None) -> int:
        """``gufi_du``: bytes under ``start`` (entries + directories).

        ``use_tsummary=True`` additionally consults tree-summary
        tables: subtrees with a tsummary are answered from one row and
        pruned (the paper's query 4); the rest are aggregated the
        summaries way. The two contributions sum."""
        spec = QuerySpec(
            I="CREATE TABLE sizes (total_size INTEGER)",
            T="SELECT totsize FROM tsummary WHERE rectype = 0"
            if use_tsummary
            else None,
            S="INSERT INTO sizes SELECT TOTAL(size) FROM summary",
            E="INSERT INTO sizes SELECT TOTAL(size) FROM pentries",
            J="INSERT INTO aggregate.sizes SELECT TOTAL(total_size) FROM sizes",
            G="SELECT TOTAL(total_size) FROM sizes",
        )
        result = self.query.run(spec, start, cancel=cancel)
        return sum(int(r[0] or 0) for r in result.rows)

    def dir_sizes(self, start: str = "/",
                  cancel: CancelToken | None = None) -> list[tuple[str, int]]:
        """Size+name of every accessible directory (paper query 2)."""
        spec = QuerySpec(S="SELECT spath(name, isroot), totsize FROM summary")
        result = self.query.run(spec, start, cancel=cancel)
        return [(r[0], r[1]) for r in result.rows]

    def largest_files(self, start: str = "/", limit: int = 10,
                      cancel: CancelToken | None = None) -> list[tuple]:
        """Top-N files by size — one of the paper's pre-generated web
        queries. Uses per-thread collection plus a final merge sort."""
        spec = QuerySpec(
            I="CREATE TABLE top (p TEXT, size INTEGER)",
            E=(
                "INSERT INTO top SELECT rpath(dname, d_isroot, name), size FROM vrpentries "
                f"WHERE type = 'f' ORDER BY size DESC LIMIT {int(limit)}"
            ),
            J=(
                "INSERT INTO aggregate.top SELECT p, size FROM top "
                f"ORDER BY size DESC LIMIT {int(limit)}"
            ),
            G=f"SELECT p, size FROM top ORDER BY size DESC LIMIT {int(limit)}",
        )
        return self.query.run(spec, start, cancel=cancel).rows

    def recently_modified(
        self, start: str = "/", since: int = 0, limit: int = 20,
        cancel: CancelToken | None = None,
    ) -> list[tuple]:
        """Most recently modified accessible files (web-portal query)."""
        spec = QuerySpec(
            I="CREATE TABLE recent (p TEXT, mtime INTEGER)",
            E=(
                "INSERT INTO recent SELECT rpath(dname, d_isroot, name), mtime FROM vrpentries "
                f"WHERE mtime >= {int(since)} "
                f"ORDER BY mtime DESC LIMIT {int(limit)}"
            ),
            J=(
                "INSERT INTO aggregate.recent SELECT p, mtime FROM recent "
                f"ORDER BY mtime DESC LIMIT {int(limit)}"
            ),
            G=f"SELECT p, mtime FROM recent ORDER BY mtime DESC LIMIT {int(limit)}",
        )
        return self.query.run(spec, start, cancel=cancel).rows

    def space_by_user(self, start: str = "/",
                      cancel: CancelToken | None = None) -> dict[int, int]:
        """Bytes per uid across the accessible tree (quota reporting)."""
        spec = QuerySpec(
            I="CREATE TABLE usage (uid INTEGER, bytes INTEGER)",
            E=(
                "INSERT INTO usage SELECT uid, TOTAL(size) FROM pentries "
                "GROUP BY uid"
            ),
            J=(
                "INSERT INTO aggregate.usage "
                "SELECT uid, TOTAL(bytes) FROM usage GROUP BY uid"
            ),
            G="SELECT uid, TOTAL(bytes) FROM usage GROUP BY uid",
        )
        rows = self.query.run(spec, start, cancel=cancel).rows
        return {int(u): int(b) for u, b in rows}

    def xattr_search(
        self, needle: str, start: str = "/", sink: ResultSink | None = None,
        cancel: CancelToken | None = None,
    ) -> QueryResult:
        """Find entries whose (accessible) xattr values match —
        Fig 9's scan/stab query shape."""
        spec = QuerySpec(
            E=(
                "SELECT rpath(dname, d_isroot, name), exattrs FROM xpentries "
                f"WHERE exattrs LIKE {quote_literal('%' + needle + '%')}"
            ),
            xattrs=True,
        )
        return self.query.run(spec, start, sink=sink, cancel=cancel)
