"""Tree-summary construction (paper §III-B, the ``bfti`` tool).

``tsummary`` tables are not created during index construction; an
administrator triggers them per subtree. The resulting rows summarise
*everything* beneath a directory — sizes, entry counts, user/group
counts, depth — so queries like "space used by this tree" become a
single-row read at the query root (Fig 10's 230× query 4). Overall,
per-user, and per-group records are written, making per-user summary
queries equally cheap.

The builder traverses the index the same way a query does — pruning
beneath rolled-up directories and reading their merged ``pentries`` /
``summary`` rows instead — which is why the paper measures tsummary
construction at 14.8 s on an un-rolled index but 0.368 s after a 250 K
rollup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from . import db as dbmod
from . import schema
from .index import GUFIIndex


@dataclass
class _Agg:
    """Accumulator for one (rectype, uid, gid) bucket."""

    totfiles: int = 0
    totlinks: int = 0
    totsubdirs: int = 0
    totsize: int = 0
    minsize: int | None = None
    maxsize: int | None = None
    minmtime: int | None = None
    maxmtime: int | None = None
    maxdepth: int = 0
    totxattr: int = 0
    uids: set[int] = field(default_factory=set)
    gids: set[int] = field(default_factory=set)

    def add_entry(
        self, ftype: str, size: int, mtime: int, uid: int, gid: int, has_xattr: bool
    ) -> None:
        if ftype == "f":
            self.totfiles += 1
            self.minsize = size if self.minsize is None else min(self.minsize, size)
            self.maxsize = size if self.maxsize is None else max(self.maxsize, size)
        elif ftype == "l":
            self.totlinks += 1
        self.totsize += size
        self.minmtime = mtime if self.minmtime is None else min(self.minmtime, mtime)
        self.maxmtime = mtime if self.maxmtime is None else max(self.maxmtime, mtime)
        if has_xattr:
            self.totxattr += 1
        self.uids.add(uid)
        self.gids.add(gid)

    def add_dir(
        self, size: int, depth: int, uid: int, gid: int, count_dir: bool = True
    ) -> None:
        """``count_dir=False`` for the start directory itself: its size
        belongs to the tree total but it is not its own sub-directory."""
        if count_dir:
            self.totsubdirs += 1
        self.totsize += size
        self.maxdepth = max(self.maxdepth, depth)
        self.uids.add(uid)
        self.gids.add(gid)

    def row(self, rectype: int, uid: int, gid: int) -> tuple:
        return (
            rectype,
            uid,
            gid,
            self.totfiles,
            self.totlinks,
            self.totsubdirs,
            self.totsize,
            self.minsize,
            self.maxsize,
            self.minmtime,
            self.maxmtime,
            self.maxdepth,
            self.totxattr,
            len(self.uids),
            len(self.gids),
        )


_TS_INSERT = (
    "INSERT INTO tsummary ("
    + ", ".join(schema.TSUMMARY_COLUMNS)
    + ") VALUES ("
    + ", ".join("?" * len(schema.TSUMMARY_COLUMNS))
    + ")"
)


@dataclass
class TSummaryResult:
    seconds: float
    dirs_scanned: int
    rows_written: int


def build_tsummary(
    index: GUFIIndex,
    start: str = "/",
    per_user_group: bool = True,
) -> TSummaryResult:
    """Build (replacing any previous) tsummary rows at ``start``.

    The subtree walk prunes beneath rolled-up directories: their
    ``summary`` tables already contain one row per merged directory
    and their ``pentries`` tables every merged entry, so one database
    read covers the whole rolled sub-tree.
    """
    t0 = time.monotonic()
    overall = _Agg()
    by_uid: dict[int, _Agg] = {}
    by_gid: dict[int, _Agg] = {}
    dirs_scanned = 0

    start = "/" + "/".join(p for p in start.split("/") if p)
    stack = [start]
    while stack:
        sp = stack.pop()
        db_path = index.db_path(sp)
        if not db_path.exists():
            continue
        dirs_scanned += 1
        conn = index.store(sp).open_ro()
        try:
            meta = index.read_dir_meta(conn)
            # Every summary row (original + rolled-in) is one directory;
            # the start directory's own row contributes size but is not
            # counted as a sub-directory of itself.
            for size, depth, uid, gid, inode in conn.execute(
                "SELECT size, depth, uid, gid, inode FROM summary "
                "WHERE rectype = 0"
            ):
                is_start = sp == start and inode == meta.inode
                overall.add_dir(size, depth, uid, gid, count_dir=not is_start)
                if per_user_group:
                    by_uid.setdefault(uid, _Agg()).add_dir(
                        size, depth, uid, gid, count_dir=not is_start
                    )
                    by_gid.setdefault(gid, _Agg()).add_dir(
                        size, depth, uid, gid, count_dir=not is_start
                    )
            # pentries covers the directory's own entries plus, when
            # rolled up, every merged sub-directory's entries.
            for ftype, size, mtime, uid, gid, xnames in conn.execute(
                "SELECT type, size, mtime, uid, gid, xattr_names FROM pentries"
            ):
                has_x = bool(xnames)
                overall.add_entry(ftype, size, mtime, uid, gid, has_x)
                if per_user_group:
                    by_uid.setdefault(uid, _Agg()).add_entry(
                        ftype, size, mtime, uid, gid, has_x
                    )
                    by_gid.setdefault(gid, _Agg()).add_entry(
                        ftype, size, mtime, uid, gid, has_x
                    )
        finally:
            conn.close()
        if meta.rolledup:
            continue
        prefix = "" if sp == "/" else sp
        stack.extend(f"{prefix}/{n}" for n in index.subdir_names(sp))

    rows = [overall.row(schema.RECTYPE_OVERALL, 0, 0)]
    if per_user_group:
        for uid in sorted(by_uid):
            rows.append(by_uid[uid].row(schema.RECTYPE_USER, uid, 0))
        for gid in sorted(by_gid):
            rows.append(by_gid[gid].row(schema.RECTYPE_GROUP, 0, gid))

    conn = index.store(start).open_rw()
    try:
        conn.execute("DELETE FROM tsummary")
        conn.executemany(_TS_INSERT, rows)
        conn.commit()
    finally:
        conn.close()
    return TSummaryResult(
        seconds=time.monotonic() - t0,
        dirs_scanned=dirs_scanned,
        rows_written=len(rows),
    )


def drop_tsummary(index: GUFIIndex, start: str = "/") -> None:
    """Remove the tsummary rows at ``start`` (admin operation)."""
    conn = index.store(start).open_rw()
    try:
        conn.execute("DELETE FROM tsummary")
        conn.commit()
    finally:
        conn.close()
