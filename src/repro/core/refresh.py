"""Periodic index refresh with atomic swap (paper §III-A4).

Production GUFI rebuilds each file system's index on a pull interval
(the paper's site: every 4 hours) and publishes the new build by
renaming a symbolic link: queries in flight keep reading the old
version, new queries see the new one, and for a while *two complete
namespace snapshots* coexist — which the paper notes "enables new
query types that can passively measure data movement within and
between file systems".

:class:`IndexRefresher` manages that lifecycle for one source tree:

* versioned build directories (``v0000``, ``v0001``, ...) under one
  publication root;
* a ``current`` symlink atomically repointed after each build;
* retention of the previous N versions for cross-version diffing;
* :meth:`diff_latest` — the passive data-movement query between the
  two most recent builds, computed from the indexes themselves.
"""

from __future__ import annotations

import os
import shutil
import time
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.fs.changelog import ChangeEvent, ChangeJournal, ChangelogOverflow
from repro.fs.tree import VFSTree
from repro.fs.snapshot import snapshot

from . import db as dbmod
from .build import BuildOptions, dir2index
from .changefeed import changefeed2index
from .checkpoint import ChangefeedCheckpoint
from .index import GUFIIndex

CURRENT_LINK = "current"


@dataclass
class RefreshRecord:
    """One completed refresh."""

    version: int
    path: Path
    built_at: float
    seconds: float
    dirs: int
    entries: int
    #: "full" (snapshot + rebuild + swap) or "incremental" (changefeed
    #: apply to the published version in place)
    mode: str = "full"
    #: journal cursor the published index is consistent with (None
    #: when no journal is attached)
    cursor: int | None = None
    #: events applied by an incremental refresh (0 for full)
    events_applied: int = 0


@dataclass
class IndexDiff:
    """Entry-level delta between two index versions (paths keyed by
    (parent inode is not stable across scans, so paths are used))."""

    created: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    resized: list[str] = field(default_factory=list)
    #: (old path, new path) pairs — renames recognised as one move
    #: each, not a create + a remove, when journal events are available
    moved: list[tuple[str, str]] = field(default_factory=list)
    bytes_delta: int = 0

    @property
    def total_mutations(self) -> int:
        return (
            len(self.created)
            + len(self.removed)
            + len(self.resized)
            + len(self.moved)
        )


class IndexRefresher:
    """Versioned publisher of a source tree's index."""

    def __init__(
        self,
        source: VFSTree,
        publish_root: Path | str,
        opts: BuildOptions | None = None,
        keep_versions: int = 2,
        journal: ChangeJournal | None = None,
    ):
        if keep_versions < 1:
            raise ValueError("keep_versions must be >= 1")
        self.source = source
        self.root = Path(publish_root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.opts = opts or BuildOptions()
        self.keep_versions = keep_versions
        #: attached change journal enables refresh(mode="incremental")
        #: and rename-aware diffing; attaching wires it into the source
        #: tree so every mutation from here on is captured
        self.journal = journal
        if journal is not None:
            source.set_changelog(journal)
        self.history: list[RefreshRecord] = []
        self._next_version = self._discover_next_version()
        # one shared handle per published version, so every query
        # session against the current index shares one DirMeta cache
        self._current_handle: GUFIIndex | None = None
        self._current_target: Path | None = None

    def _discover_next_version(self) -> int:
        versions = [
            int(p.name[1:])
            for p in self.root.iterdir()
            if p.is_dir() and p.name.startswith("v") and p.name[1:].isdigit()
        ]
        return max(versions, default=-1) + 1

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    @property
    def current_path(self) -> Path:
        return self.root / CURRENT_LINK

    def current(self) -> GUFIIndex:
        """The published index (what client /search mounts resolve to).

        Returns one shared handle per published version: every caller
        then shares the same DirMeta cache, and a refresh atomically
        retires the handle (new calls get the new version's handle
        while in-flight queries keep reading the old one)."""
        target = self.current_path
        if not target.exists():
            raise FileNotFoundError("no index published yet")
        resolved = target.resolve()
        if self._current_handle is None or self._current_target != resolved:
            self._current_handle = GUFIIndex.open(resolved)
            self._current_target = resolved
        return self._current_handle

    def versions(self) -> list[Path]:
        """On-disk versions, oldest first."""
        return sorted(
            (
                p
                for p in self.root.iterdir()
                if p.is_dir() and p.name.startswith("v")
            ),
            key=lambda p: int(p.name[1:]),
        )

    def refresh(self, mode: str = "full") -> RefreshRecord:
        """One refresh cycle.

        ``mode="full"`` (the paper's pull model): snapshot the source,
        build a new version, swap the ``current`` symlink atomically,
        retire old versions. The snapshot gives the scan a consistent
        image (the WAFL/ZFS path of §III-A3); the swap is a single
        ``rename``, so a reader resolving ``current`` sees either the
        old or the new index, never a half-built one.

        ``mode="incremental"``: drain the attached change journal and
        apply the delta to the *published* version in place via
        :func:`~repro.core.changefeed.changefeed2index` — O(changes),
        not O(tree). Falls back to a full rebuild when no version has
        been published yet or the journal overflowed its bound (the
        delta is unrecoverable).
        """
        if mode == "incremental":
            return self._refresh_incremental()
        if mode != "full":
            raise ValueError(f"unknown refresh mode {mode!r}")
        version = self._next_version
        self._next_version += 1
        dest = self.root / f"v{version:04d}"
        t0 = time.monotonic()
        # Events emitted before this point are covered by the rebuild;
        # capture the head *before* snapshotting so anything racing in
        # after it stays in the journal for the next incremental pass.
        cursor = self.journal.head if self.journal is not None else None
        frozen = snapshot(self.source)
        result = dir2index(
            frozen, dest, opts=self.opts,
            source_name=f"refresh-v{version}",
        )
        if cursor is not None:
            ChangefeedCheckpoint(dest).commit(cursor)
        elapsed = time.monotonic() - t0
        # Atomic publish: build the new link under a temp name, then
        # rename over the old one (rename(2) replaces atomically).
        tmp_link = self.root / f".{CURRENT_LINK}.tmp"
        if tmp_link.is_symlink() or tmp_link.exists():
            tmp_link.unlink()
        os.symlink(dest.name, tmp_link)
        os.replace(tmp_link, self.current_path)
        # Invalidation hook: drop the retired handle (so the next
        # current() call opens the new version) and clear its cache —
        # a session still holding the old handle must revalidate
        # everything rather than serve pre-swap metadata.
        if self._current_handle is not None:
            self._current_handle.cache.clear()
        self._current_handle = None
        self._current_target = None
        record = RefreshRecord(
            version=version,
            path=dest,
            built_at=time.time(),
            seconds=elapsed,
            dirs=result.dirs_created,
            entries=result.entries_inserted,
            mode="full",
            cursor=cursor,
        )
        self.history.append(record)
        self._retire_old_versions()
        # Trim the journal only up to the *oldest* retained version's
        # cursor: events between retained versions must stay available
        # so diff_latest can recognise renames as moves.
        self._release_covered()
        return record

    def _refresh_incremental(self) -> RefreshRecord:
        if self.journal is None:
            raise ValueError(
                "incremental refresh requires a journal "
                "(IndexRefresher(..., journal=ChangeJournal()))"
            )
        try:
            index = self.current()
        except FileNotFoundError:
            return self.refresh(mode="full")
        try:
            result = changefeed2index(
                index, self.source, self.journal, opts=self.opts
            )
        except ChangelogOverflow:
            # the journal evicted events we never saw: the delta is
            # gone, only a full rescan restores consistency
            return self.refresh(mode="full")
        assert self._current_target is not None
        record = RefreshRecord(
            version=int(self._current_target.name[1:]),
            path=self._current_target,
            built_at=time.time(),
            seconds=result.seconds,
            dirs=result.dirs_rebuilt,
            entries=result.entries_indexed,
            mode="incremental",
            cursor=result.cursor,
            events_applied=result.events_applied,
        )
        self.history.append(record)
        return record

    def _release_covered(self) -> None:
        """Acknowledge journal events every retained version has
        already incorporated (versions predating the journal read as
        cursor 0, which keeps everything)."""
        if self.journal is None:
            return
        cursors = [
            ChangefeedCheckpoint(p).load() for p in self.versions()
        ]
        if cursors:
            self.journal.release(min(cursors))

    def _retire_old_versions(self) -> None:
        versions = self.versions()
        current_target = (
            self.current_path.resolve().name
            if self.current_path.exists()
            else None
        )
        excess = len(versions) - self.keep_versions
        for path in versions:
            if excess <= 0:
                break
            if path.name == current_target:
                continue  # never delete what 'current' points at
            shutil.rmtree(path)
            excess -= 1

    # ------------------------------------------------------------------
    # Cross-version analysis (§III-A4's passive data-movement query)
    # ------------------------------------------------------------------
    def diff_latest(self) -> IndexDiff:
        """Compare the two most recent versions entry-by-entry using
        only the indexes (no source access): which files appeared,
        vanished, or changed size between builds. When a journal is
        attached and still retains the events between the two builds'
        committed cursors, renames are recognised and reported as
        moves instead of create+remove pairs."""
        versions = self.versions()
        if len(versions) < 2:
            raise ValueError("need two versions to diff")
        old = GUFIIndex.open(versions[-2])
        new = GUFIIndex.open(versions[-1])
        events: list[ChangeEvent] | None = None
        if self.journal is not None:
            c_old = ChangefeedCheckpoint(versions[-2]).load()
            c_new = ChangefeedCheckpoint(versions[-1]).load()
            events = self.journal.events_between(c_old, c_new)
        return diff_indexes(old, new, events=events)


def _index_entries(index: GUFIIndex) -> dict[str, int]:
    """path → size for every entry, read straight from the databases
    (admin-side: no permission gating needed for the comparison)."""
    out: dict[str, int] = {}
    for d in index.iter_index_dirs():
        sp = index.source_path(d)
        prefix = "" if sp == "/" else sp
        conn = index.store(sp).open_ro()
        try:
            for name, size in conn.execute(
                "SELECT name, size FROM entries"
            ):
                out[f"{prefix}/{name}"] = size
        finally:
            conn.close()
    return out


def _forward_map(
    old_paths: Iterable[str], events: list[ChangeEvent]
) -> dict[str, str]:
    """old path → final path for entries renamed between two builds.

    Composes every rename event in sequence order: a file rename moves
    its own path, a directory rename moves everything beneath it, and
    chained renames (``/a → /b`` then ``/b/x → /c``) compose to the
    final location. Only paths that actually ended up elsewhere are
    mapped."""
    renames = [e for e in events if e.op == "rename" and e.dst_path]
    if not renames:
        return {}
    forward: dict[str, str] = {}
    for path in old_paths:
        p = path
        for e in renames:
            assert e.dst_path is not None
            if p == e.path:
                p = e.dst_path
            elif e.is_dir and p.startswith(e.path + "/"):
                p = e.dst_path + p[len(e.path):]
        if p != path:
            forward[path] = p
    return forward


def diff_indexes(
    old: GUFIIndex,
    new: GUFIIndex,
    events: list[ChangeEvent] | None = None,
) -> IndexDiff:
    """Entry-level delta between two indexes of the same namespace.

    Path-keyed diffing alone cannot tell a rename from an unrelated
    create+remove pair; when the journal ``events`` covering the
    interval are supplied, renamed entries are reported once in
    ``moved`` instead."""
    old_map = _index_entries(old)
    new_map = _index_entries(new)
    forward = _forward_map(old_map, events) if events else {}
    diff = IndexDiff()
    move_targets: set[str] = set()
    for path, size in old_map.items():
        target = forward.get(path)
        if (
            target is not None
            and target in new_map
            and path not in new_map
        ):
            diff.moved.append((path, target))
            move_targets.add(target)
            diff.bytes_delta += new_map[target] - size
    for path, size in new_map.items():
        if path in move_targets:
            continue
        prev = old_map.get(path)
        if prev is None:
            diff.created.append(path)
            diff.bytes_delta += size
        elif prev != size:
            diff.resized.append(path)
            diff.bytes_delta += size - prev
    moved_sources = {src for src, _ in diff.moved}
    for path, size in old_map.items():
        if path not in new_map and path not in moved_sources:
            diff.removed.append(path)
            diff.bytes_delta -= size
    diff.created.sort()
    diff.removed.sort()
    diff.resized.sort()
    diff.moved.sort()
    return diff
