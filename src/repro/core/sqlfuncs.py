"""SQL helper functions registered on query connections.

``gufi_query`` exposes helpers the paper's appendix queries use —
``path('')`` to print the directory a row came from, uid/gid name
translation, and level/depth helpers. Functions that depend on *which
directory the thread is currently processing* read a per-thread
holder the engine updates before each per-directory query.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field


@dataclass
class QueryContext:
    """Mutable per-connection state the SQL helpers read."""

    current_path: str = "/"
    current_depth: int = 0
    #: uid -> username / gid -> groupname maps for *touser functions
    users: dict[int, str] = field(default_factory=dict)
    groups: dict[int, str] = field(default_factory=dict)


def register(conn: sqlite3.Connection, ctx: QueryContext) -> None:
    """Attach the helper functions to ``conn``, bound to ``ctx``."""

    def path(*args: str) -> str:
        # path() / path('') -> current directory; path(suffix) joins.
        suffix = args[0] if args and args[0] else ""
        if not suffix:
            return ctx.current_path
        if ctx.current_path == "/":
            return "/" + suffix
        return f"{ctx.current_path}/{suffix}"

    def epath(name: str) -> str:
        """Full path of an entry row given its name column."""
        return path(name)

    def level() -> int:
        return ctx.current_depth

    def uidtouser(uid: int) -> str:
        return ctx.users.get(uid, str(uid))

    def gidtogroup(gid: int) -> str:
        return ctx.groups.get(gid, str(gid))

    def basename(p: str) -> str:
        return p.rstrip("/").rsplit("/", 1)[-1] or "/"

    def spath(sname: str, isroot: int) -> str:
        """Full path of a summary row's directory: the current
        directory for the original record, current/name for rows
        rolled in from sub-directories."""
        if isroot:
            return ctx.current_path
        if ctx.current_path == "/":
            return "/" + sname
        return f"{ctx.current_path}/{sname}"

    def rpath(dname: str, d_isroot: int, name: str) -> str:
        """Full path of a vrpentries row: its parent directory's path
        (rollup-aware, via the joined summary record) plus its name."""
        parent = spath(dname, d_isroot)
        if not name:
            return parent
        return ("" if parent == "/" else parent) + "/" + name

    conn.create_function("path", -1, path, deterministic=False)
    conn.create_function("epath", 1, epath, deterministic=False)
    conn.create_function("spath", 2, spath, deterministic=False)
    conn.create_function("rpath", 3, rpath, deterministic=False)
    conn.create_function("level", 0, level, deterministic=False)
    conn.create_function("uidtouser", 1, uidtouser, deterministic=False)
    conn.create_function("gidtogroup", 1, gidtogroup, deterministic=False)
    conn.create_function("basename", 1, basename, deterministic=True)
