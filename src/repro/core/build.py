"""Index construction tools (paper §III-A3, §III-C1).

Two paths mirror GUFI's tool pair:

* :func:`dir2index` — in-situ: the parallel breadth-first scan of the
  source tree creates each directory's database as the directory is
  encountered (``gufi_dir2index``);
* :func:`trace2index` — post-processing: a previously written trace
  file (possibly from a faster custom scanner on another machine) is
  ingested in parallel (``gufi_trace2index``).

Both funnel into :func:`build_dir_db`, which writes one directory's
``entries`` rows, ``summary`` record(s), and xattr shards.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.fs.tree import VFSTree
from repro.scan.scanners import record_from_inode
from repro.scan.trace import DirStanza, TraceRecord, read_trace
from repro.scan.walker import ParallelTreeWalker

from . import db as dbmod
from . import schema
from .index import GUFIIndex
from .xattrs import shard_xattrs, write_xattr_shards


@dataclass
class BuildOptions:
    """Knobs for index construction."""

    nthreads: int = 8
    #: index xattr values (with per-user/per-group sharding)
    with_xattrs: bool = True
    #: also write per-user and per-group summary records (rectype 1/2)
    per_user_group_summaries: bool = False


@dataclass
class BuildResult:
    index: GUFIIndex
    seconds: float
    dirs_created: int
    entries_inserted: int
    side_dbs_created: int

    @property
    def dirs_per_second(self) -> float:
        return self.dirs_created / self.seconds if self.seconds > 0 else 0.0

    @property
    def rows_per_second(self) -> float:
        total = self.dirs_created + self.entries_inserted
        return total / self.seconds if self.seconds > 0 else 0.0


def summary_rows(
    stanza: DirStanza, depth: int, per_user_group: bool
) -> list[tuple]:
    """Build the summary record(s) for one directory.

    The overall (rectype 0) record carries the directory's own inode
    attributes — the query engine's permission source — plus the
    aggregates §III-B lists. Optional rectype 1/2 records restrict the
    aggregates to one uid/gid, making per-user/per-group queries a
    single-row read.
    """
    d = stanza.directory

    def aggregate(rows: list[TraceRecord], rectype: int, uid: int, gid: int) -> tuple:
        files = [r for r in rows if r.ftype == "f"]
        links = [r for r in rows if r.ftype == "l"]
        sizes = [r.size for r in files]
        mtimes = [r.mtime for r in rows]
        atimes = [r.atime for r in rows]
        uids = [r.uid for r in rows]
        gids = [r.gid for r in rows]
        totxattr = sum(1 for r in rows if r.xattrs)
        return (
            d.name if rectype == schema.RECTYPE_OVERALL else d.name,
            rectype,
            1,  # isroot
            d.ino,
            d.mode,
            d.nlink,
            uid,
            gid,
            d.size,
            d.blksize,
            d.blocks,
            d.atime,
            d.mtime,
            d.ctime,
            len(files),
            len(links),
            max(0, d.nlink - 2),  # POSIX: nlink = 2 + subdir count
            min(uids) if uids else None,
            max(uids) if uids else None,
            min(gids) if gids else None,
            max(gids) if gids else None,
            min(sizes) if sizes else None,
            max(sizes) if sizes else None,
            sum(r.size for r in files) + sum(r.size for r in links),
            min(mtimes) if mtimes else None,
            max(mtimes) if mtimes else None,
            min(atimes) if atimes else None,
            max(atimes) if atimes else None,
            totxattr,
            0,  # rolledup
            0,  # rollup_entries
            depth,
        )

    rows = [aggregate(stanza.entries, schema.RECTYPE_OVERALL, d.uid, d.gid)]
    if per_user_group:
        by_uid: dict[int, list[TraceRecord]] = {}
        by_gid: dict[int, list[TraceRecord]] = {}
        for r in stanza.entries:
            by_uid.setdefault(r.uid, []).append(r)
            by_gid.setdefault(r.gid, []).append(r)
        for uid, rs in sorted(by_uid.items()):
            rows.append(aggregate(rs, schema.RECTYPE_USER, uid, d.gid))
        for gid, rs in sorted(by_gid.items()):
            rows.append(aggregate(rs, schema.RECTYPE_GROUP, d.uid, gid))
    return rows


_SUMMARY_INSERT = (
    "INSERT INTO summary ("
    + ", ".join(schema.SUMMARY_COLUMNS)
    + ") VALUES ("
    + ", ".join("?" * len(schema.SUMMARY_COLUMNS))
    + ")"
)

_ENTRIES_INSERT = (
    "INSERT INTO entries ("
    + ", ".join(schema.ENTRIES_COLUMNS)
    + ") VALUES ("
    + ", ".join("?" * len(schema.ENTRIES_COLUMNS))
    + ")"
)


def entry_row(rec: TraceRecord) -> tuple:
    return (
        rec.name,
        rec.ftype,
        rec.ino,
        rec.mode,
        rec.nlink,
        rec.uid,
        rec.gid,
        rec.size,
        rec.blksize,
        rec.blocks,
        rec.atime,
        rec.mtime,
        rec.ctime,
        rec.linkname,
        schema.pack_xattr_names(rec.xattrs),
    )


def build_dir_db(
    index: GUFIIndex, stanza: DirStanza, opts: BuildOptions
) -> tuple[int, int]:
    """Create one directory's index database. Returns
    (entries inserted, side databases created)."""
    src_path = stanza.directory.path
    index_dir = index.index_dir(src_path)
    os.makedirs(index_dir, exist_ok=True)
    depth = 0 if src_path == "/" else src_path.count("/")
    conn = dbmod.create_db(index_dir / schema.DB_NAME)
    side = 0
    try:
        conn.execute("BEGIN")
        conn.executemany(
            _ENTRIES_INSERT, [entry_row(r) for r in stanza.entries]
        )
        conn.executemany(
            _SUMMARY_INSERT,
            summary_rows(stanza, depth, opts.per_user_group_summaries),
        )
        conn.execute("COMMIT")
        if opts.with_xattrs:
            shards = shard_xattrs(stanza.directory, stanza.entries)
            side = write_xattr_shards(index_dir, conn, shards)
    finally:
        conn.close()
    index.apply_physical_mode(src_path, stanza.directory.mode)
    return len(stanza.entries), side


def trace2index(
    trace_path: Path | str,
    index_root: Path | str,
    opts: BuildOptions | None = None,
    source_name: str = "",
) -> BuildResult:
    """Ingest a trace file into a new index, in parallel.

    Stanzas are independent units of work (their directory paths are
    created with ``makedirs``), so the ingest fans every stanza out to
    the thread pool — the paper's parallel ingest tool.
    """
    opts = opts or BuildOptions()
    stanzas = list(read_trace(Path(trace_path)))
    return build_from_stanzas(stanzas, index_root, opts, source_name)


def build_from_stanzas(
    stanzas: list[DirStanza],
    index_root: Path | str,
    opts: BuildOptions | None = None,
    source_name: str = "",
) -> BuildResult:
    """Build an index from in-memory stanzas (the in-situ fast path)."""
    opts = opts or BuildOptions()
    index = GUFIIndex.create(index_root, source_name)
    counters = {"entries": 0, "side": 0}
    import threading

    lock = threading.Lock()

    def expand(stanza: DirStanza) -> list:
        n, s = build_dir_db(index, stanza, opts)
        with lock:
            counters["entries"] += n
            counters["side"] += s
        return []

    t0 = time.monotonic()
    walker = ParallelTreeWalker(opts.nthreads)
    stats = walker.walk(stanzas, expand)
    elapsed = time.monotonic() - t0
    if stats.errors:
        item, exc = stats.errors[0]
        raise RuntimeError(
            f"index build failed for {item.directory.path!r}: {exc}"
        ) from exc
    return BuildResult(
        index=index,
        seconds=elapsed,
        dirs_created=len(stanzas),
        entries_inserted=counters["entries"],
        side_dbs_created=counters["side"],
    )


def dir2index(
    tree: VFSTree,
    index_root: Path | str,
    top: str = "/",
    opts: BuildOptions | None = None,
    source_name: str = "",
) -> BuildResult:
    """Scan a source tree and build its index in one pass
    (``gufi_dir2index``): each directory's database is written by the
    same thread that scanned it, skipping the trace stage entirely."""
    opts = opts or BuildOptions()
    index = GUFIIndex.create(index_root, source_name)
    counters = {"dirs": 0, "entries": 0, "side": 0}
    import posixpath
    import threading

    lock = threading.Lock()

    def expand(dirpath: str) -> list[str]:
        dir_inode = tree.get_inode(dirpath)
        entries = tree.readdir(dirpath)
        stanza = DirStanza(directory=record_from_inode(dirpath, dir_inode))
        subdirs = []
        for e in entries:
            child = posixpath.join(dirpath, e.name)
            if e.ftype.value == "d":
                subdirs.append(child)
            else:
                stanza.entries.append(record_from_inode(child, tree.get_inode(child)))
        n, s = build_dir_db(index, stanza, opts)
        with lock:
            counters["dirs"] += 1
            counters["entries"] += n
            counters["side"] += s
        return subdirs

    t0 = time.monotonic()
    walker = ParallelTreeWalker(opts.nthreads)
    stats = walker.walk([posixpath.normpath(top)], expand)
    elapsed = time.monotonic() - t0
    if stats.errors:
        item, exc = stats.errors[0]
        raise RuntimeError(f"index build failed for {item!r}: {exc}") from exc
    return BuildResult(
        index=index,
        seconds=elapsed,
        dirs_created=counters["dirs"],
        entries_inserted=counters["entries"],
        side_dbs_created=counters["side"],
    )
