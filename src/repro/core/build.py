"""Index construction tools (paper §III-A3, §III-C1).

Two paths mirror GUFI's tool pair:

* :func:`dir2index` — in-situ: the parallel breadth-first scan of the
  source tree creates each directory's database as the directory is
  encountered (``gufi_dir2index``);
* :func:`trace2index` — post-processing: a previously written trace
  file (possibly from a faster custom scanner on another machine) is
  ingested in parallel (``gufi_trace2index``).

Both funnel into :func:`build_dir_db`, which writes one directory's
``entries`` rows, ``summary`` record(s), and xattr shards.

Crash safety and resumability
-----------------------------

Mid-scan failures are routine on file systems with billions of
entries, so the build path is structured to survive them:

* **Atomic publish** — :func:`build_dir_db` writes every artifact
  (``db.db`` and all xattr side databases) under a ``.partial``
  suffix, then renames side databases first and ``db.db`` last.
  ``db.db``'s existence is the commit point the query engine keys on,
  so a crash at any instant leaves either a fully published directory
  or an invisible one — never a half-indexed directory that queries
  can observe.
* **Journal** — each published directory is appended to a
  :class:`~repro.core.checkpoint.BuildJournal`
  (``gufi_build.journal`` in the index root). A rerun with
  ``BuildOptions(resume=True)`` skips every directory whose journal
  stamp still matches the on-disk database and rebuilds the rest; the
  journal is deleted when a build completes with zero errors.
* **Retry, then record** — transient per-directory errors are retried
  with bounded backoff (:class:`~repro.scan.walker.RetryPolicy`);
  exhausted items land in ``BuildResult.errors`` as a structured
  partial-progress report instead of aborting the whole build.
* **Fault injection** — ``BuildOptions(faults=FaultPlan(...))``
  threads a deterministic :class:`~repro.scan.faults.FaultPlan`
  through the walker, :func:`build_dir_db`, and the xattr shard
  writer, so tests can kill a build at exactly the Nth directory and
  prove resume correctness.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.fs.tree import VFSTree
from repro.scan.faults import FaultPlan
from repro.scan.scanners import record_from_inode
from repro.scan.trace import DirStanza, TraceRecord, read_trace
from repro.scan.walker import FatalWalkError, ParallelTreeWalker, RetryPolicy
from repro.store.layout import PARTIAL_SUFFIX, DirStore

from . import schema
from .checkpoint import BuildJournal
from .index import GUFIIndex
from .xattrs import shard_xattrs, write_xattr_shards


@dataclass
class BuildOptions:
    """Knobs for index construction."""

    nthreads: int = 8
    #: index xattr values (with per-user/per-group sharding)
    with_xattrs: bool = True
    #: also write per-user and per-group summary records (rectype 1/2)
    per_user_group_summaries: bool = False
    #: skip directories already journaled by an interrupted build
    resume: bool = False
    #: transient-error policy for per-directory work; None disables
    #: retries entirely
    retry: RetryPolicy | None = field(default_factory=RetryPolicy)
    #: deterministic fault injection (tests, resilience experiments)
    faults: FaultPlan | None = None
    #: optional per-directory artifact kinds to build alongside the
    #: primary database, by registry key (e.g. ``("names_fts",)`` for
    #: the FTS5 name sidecar) — see
    #: :func:`repro.store.layout.register_artifact_kind`
    optional_artifacts: tuple[str, ...] = ()


@dataclass
class BuildResult:
    index: GUFIIndex
    seconds: float
    dirs_created: int
    entries_inserted: int
    side_dbs_created: int
    #: directories skipped because the resume journal proved them done
    dirs_skipped: int = 0
    #: retry attempts spent on transient per-directory failures
    dirs_retried: int = 0
    #: directories that failed after retries: (source path, exception).
    #: A non-empty list means the index is partial and the build
    #: journal was kept for a future ``resume=True`` run.
    errors: list[tuple[str, Exception]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def dirs_per_second(self) -> float:
        return self.dirs_created / self.seconds if self.seconds > 0 else 0.0

    @property
    def rows_per_second(self) -> float:
        total = self.dirs_created + self.entries_inserted
        return total / self.seconds if self.seconds > 0 else 0.0


def summary_rows(
    stanza: DirStanza, depth: int, per_user_group: bool
) -> list[tuple]:
    """Build the summary record(s) for one directory.

    The overall (rectype 0) record carries the directory's own inode
    attributes — the query engine's permission source — plus the
    aggregates §III-B lists. Optional rectype 1/2 records restrict the
    aggregates to one uid/gid, making per-user/per-group queries a
    single-row read.

    ``name`` identifies what a record describes: the directory's own
    basename for the overall record (rollup and the rpath machinery
    key on it), and the principal slice — ``u<uid>`` / ``g<gid>`` —
    for per-user/per-group records, which describe a credential's view
    of the directory rather than the directory itself.
    """
    d = stanza.directory

    def aggregate(rows: list[TraceRecord], rectype: int, uid: int, gid: int) -> tuple:
        files = [r for r in rows if r.ftype == "f"]
        links = [r for r in rows if r.ftype == "l"]
        sizes = [r.size for r in files]
        mtimes = [r.mtime for r in rows]
        atimes = [r.atime for r in rows]
        uids = [r.uid for r in rows]
        gids = [r.gid for r in rows]
        totxattr = sum(1 for r in rows if r.xattrs)
        if rectype == schema.RECTYPE_USER:
            name = f"u{uid}"
        elif rectype == schema.RECTYPE_GROUP:
            name = f"g{gid}"
        else:
            name = d.name
        return (
            name,
            rectype,
            1,  # isroot
            d.ino,
            d.mode,
            d.nlink,
            uid,
            gid,
            d.size,
            d.blksize,
            d.blocks,
            d.atime,
            d.mtime,
            d.ctime,
            len(files),
            len(links),
            max(0, d.nlink - 2),  # POSIX: nlink = 2 + subdir count
            min(uids) if uids else None,
            max(uids) if uids else None,
            min(gids) if gids else None,
            max(gids) if gids else None,
            min(sizes) if sizes else None,
            max(sizes) if sizes else None,
            sum(r.size for r in files) + sum(r.size for r in links),
            min(mtimes) if mtimes else None,
            max(mtimes) if mtimes else None,
            min(atimes) if atimes else None,
            max(atimes) if atimes else None,
            totxattr,
            0,  # rolledup
            0,  # rollup_entries
            depth,
        )

    rows = [aggregate(stanza.entries, schema.RECTYPE_OVERALL, d.uid, d.gid)]
    if per_user_group:
        by_uid: dict[int, list[TraceRecord]] = {}
        by_gid: dict[int, list[TraceRecord]] = {}
        for r in stanza.entries:
            by_uid.setdefault(r.uid, []).append(r)
            by_gid.setdefault(r.gid, []).append(r)
        for uid, rs in sorted(by_uid.items()):
            rows.append(aggregate(rs, schema.RECTYPE_USER, uid, d.gid))
        for gid, rs in sorted(by_gid.items()):
            rows.append(aggregate(rs, schema.RECTYPE_GROUP, d.uid, gid))
    return rows


_SUMMARY_INSERT = (
    "INSERT INTO summary ("
    + ", ".join(schema.SUMMARY_COLUMNS)
    + ") VALUES ("
    + ", ".join("?" * len(schema.SUMMARY_COLUMNS))
    + ")"
)

_ENTRIES_INSERT = (
    "INSERT INTO entries ("
    + ", ".join(schema.ENTRIES_COLUMNS)
    + ") VALUES ("
    + ", ".join("?" * len(schema.ENTRIES_COLUMNS))
    + ")"
)


def entry_row(rec: TraceRecord) -> tuple:
    return (
        rec.name,
        rec.ftype,
        rec.ino,
        rec.mode,
        rec.nlink,
        rec.uid,
        rec.gid,
        rec.size,
        rec.blksize,
        rec.blocks,
        rec.atime,
        rec.mtime,
        rec.ctime,
        rec.linkname,
        schema.pack_xattr_names(rec.xattrs),
    )


def _sweep_partials(index_dir: Path) -> None:
    """Remove leftover ``.partial`` staging files in one index
    directory — residue of a crashed earlier attempt whose shard set
    may differ from the one just published."""
    DirStore(index_dir).sweep_partials()


def build_dir_db(
    index: GUFIIndex,
    stanza: DirStanza,
    opts: BuildOptions,
    faults: FaultPlan | None = None,
    journal: BuildJournal | None = None,
) -> tuple[int, int]:
    """Create one directory's index database. Returns
    (entries inserted, side databases created).

    All writes are staged under :data:`PARTIAL_SUFFIX` and published
    by rename — side databases first, ``db.db`` last — so a crash at
    any point leaves either a complete directory or no visible
    database at all (queries treat a missing ``db.db`` as
    denied-by-absence, never as partial data)."""
    otr = obs.tracer()
    if otr.enabled:
        with otr.span("build.dir", path=stanza.directory.path):
            return _build_dir_db(index, stanza, opts, faults, journal)
    return _build_dir_db(index, stanza, opts, faults, journal)


def _build_dir_db(
    index: GUFIIndex,
    stanza: DirStanza,
    opts: BuildOptions,
    faults: FaultPlan | None,
    journal: BuildJournal | None,
) -> tuple[int, int]:
    faults = faults if faults is not None else opts.faults
    src_path = stanza.directory.path
    if faults is not None:
        faults.fire("build_dir_db", src_path)
    # DirStore.open sweeps crash-leftover staging files before this
    # attempt stages its own.
    store = DirStore.open(index.index_dir(src_path))
    depth = 0 if src_path == "/" else src_path.count("/")
    conn = store.stage_primary()
    side_names: list[str] = []
    try:
        conn.execute("BEGIN")
        conn.executemany(
            _ENTRIES_INSERT, [entry_row(r) for r in stanza.entries]
        )
        conn.executemany(
            _SUMMARY_INSERT,
            summary_rows(stanza, depth, opts.per_user_group_summaries),
        )
        conn.execute("COMMIT")
        if opts.with_xattrs:
            shards = shard_xattrs(stanza.directory, stanza.entries)
            side_names = write_xattr_shards(
                store.index_dir, conn, shards, suffix=PARTIAL_SUFFIX, faults=faults
            )
    finally:
        conn.close()
    staged = side_names + store.build_optional_artifacts(
        opts.optional_artifacts, stanza, faults
    )
    if faults is not None:
        faults.fire("build_dir_db.commit", src_path)
    # Publish: secondary artifacts before db.db, which is the commit
    # point (see DirStore.publish).
    store.publish(staged)
    index.apply_physical_mode(src_path, stanza.directory.mode)
    if journal is not None:
        journal.record(
            src_path,
            store.stamp(),
            len(stanza.entries),
            len(side_names),
        )
    return len(stanza.entries), len(side_names)


def trace2index(
    trace_path: Path | str,
    index_root: Path | str,
    opts: BuildOptions | None = None,
    source_name: str = "",
) -> BuildResult:
    """Ingest a trace file into a new index, in parallel.

    Stanzas are independent units of work (their directory paths are
    created with ``makedirs``), so the ingest fans every stanza out to
    the thread pool — the paper's parallel ingest tool.
    """
    opts = opts or BuildOptions()
    stanzas = list(read_trace(Path(trace_path)))
    return build_from_stanzas(stanzas, index_root, opts, source_name)


class _BuildState:
    """Shared mutable counters + journal for one build run."""

    def __init__(self, index: GUFIIndex, opts: BuildOptions, source_name: str):
        self.index = index
        self.opts = opts
        self.journal = BuildJournal.open(
            index.root, resume=opts.resume, source=source_name
        )
        self.lock = threading.Lock()
        self.dirs = 0
        self.entries = 0
        self.side = 0
        self.skipped = 0

    def should_skip(self, source_path: str) -> bool:
        if not self.opts.resume:
            return False
        if not self.journal.is_complete(
            source_path, self.index.db_path(source_path)
        ):
            return False
        with self.lock:
            self.skipped += 1
        return True

    def build(self, stanza: DirStanza) -> None:
        n, s = build_dir_db(
            self.index, stanza, self.opts,
            faults=self.opts.faults, journal=self.journal,
        )
        with self.lock:
            self.dirs += 1
            self.entries += n
            self.side += s

    def finish(
        self, stats, elapsed: float, errors: list[tuple[str, Exception]]
    ) -> BuildResult:
        # A clean, complete build needs no resume marker; anything
        # partial keeps the journal for the next resume=True run.
        if errors:
            self.journal.close()
        else:
            self.journal.finalize()
        rec = obs.metrics()
        if rec.enabled:
            rec.counter("gufi_build_runs_total")
            rec.counter("gufi_build_dirs_total", self.dirs)
            rec.counter("gufi_build_entries_total", self.entries)
            rec.counter("gufi_build_side_dbs_total", self.side)
            rec.counter("gufi_build_dirs_skipped_total", self.skipped)
            rec.counter("gufi_build_retries_total", stats.items_retried)
            rec.counter("gufi_build_errors_total", len(errors))
            rec.observe("gufi_build_seconds", elapsed)
        return BuildResult(
            index=self.index,
            seconds=elapsed,
            dirs_created=self.dirs,
            entries_inserted=self.entries,
            side_dbs_created=self.side,
            dirs_skipped=self.skipped,
            dirs_retried=stats.items_retried,
            errors=errors,
        )


def build_from_stanzas(
    stanzas: list[DirStanza],
    index_root: Path | str,
    opts: BuildOptions | None = None,
    source_name: str = "",
) -> BuildResult:
    """Build an index from in-memory stanzas (the in-situ fast path).

    Per-directory failures are retried under ``opts.retry`` and then
    reported in ``BuildResult.errors`` — partial progress survives and
    the journal stays on disk so ``resume=True`` can finish the job.
    A :class:`~repro.scan.faults.BuildCrash` (simulated process death)
    propagates after the journal is flushed and closed."""
    opts = opts or BuildOptions()
    index = GUFIIndex.create(index_root, source_name)
    state = _BuildState(index, opts, source_name)

    def expand(stanza: DirStanza) -> list:
        if not state.should_skip(stanza.directory.path):
            state.build(stanza)
        return []

    t0 = time.monotonic()
    walker = ParallelTreeWalker(opts.nthreads)
    with obs.tracer().span(
        "build.run", mode="stanzas", dirs=len(stanzas)
    ):
        try:
            stats = walker.walk(
                stanzas, expand, retry=opts.retry, faults=opts.faults
            )
        except FatalWalkError:
            state.journal.close()
            raise
    elapsed = time.monotonic() - t0
    errors = [(item.directory.path, exc) for item, exc in stats.errors]
    return state.finish(stats, elapsed, errors)


def dir2index(
    tree: VFSTree,
    index_root: Path | str,
    top: str = "/",
    opts: BuildOptions | None = None,
    source_name: str = "",
) -> BuildResult:
    """Scan a source tree and build its index in one pass
    (``gufi_dir2index``): each directory's database is written by the
    same thread that scanned it, skipping the trace stage entirely.

    With ``opts.resume`` the scan still descends every directory (the
    children of a finished directory may not be finished) but skips
    rebuilding databases the journal proves complete."""
    opts = opts or BuildOptions()
    index = GUFIIndex.create(index_root, source_name)
    state = _BuildState(index, opts, source_name)
    import posixpath

    def expand(dirpath: str) -> list[str]:
        dir_inode = tree.get_inode(dirpath)
        entries = tree.readdir(dirpath)
        subdirs = [
            posixpath.join(dirpath, e.name)
            for e in entries
            if e.ftype.value == "d"
        ]
        if state.should_skip(dirpath):
            return subdirs
        stanza = DirStanza(directory=record_from_inode(dirpath, dir_inode))
        for e in entries:
            if e.ftype.value != "d":
                child = posixpath.join(dirpath, e.name)
                stanza.entries.append(
                    record_from_inode(child, tree.get_inode(child))
                )
        state.build(stanza)
        return subdirs

    t0 = time.monotonic()
    walker = ParallelTreeWalker(opts.nthreads)
    with obs.tracer().span("build.run", mode="dir2index", top=top):
        try:
            stats = walker.walk(
                [posixpath.normpath(top)], expand,
                retry=opts.retry, faults=opts.faults,
            )
        except FatalWalkError:
            state.journal.close()
            raise
    elapsed = time.monotonic() - t0
    errors = [(str(item), exc) for item, exc in stats.errors]
    return state.finish(stats, elapsed, errors)
