"""The deployment access layer (paper §III-A5, Fig 4).

In production, users never log into the GUFI server: client-side tools
(or the web portal) send remote invocations through a **restricted
shell** that (a) authenticates the caller against the site identity
service (LDAP) on *every* query, so permission changes take effect
immediately, (b) allows only the GUFI tools to run, and (c) hands the
query engine the caller's uid/gid/groups so index traversal is
permission-gated.

This module reproduces that layer: an :class:`IdentityProvider` is the
LDAP stand-in, :class:`GUFIServer` the restricted entry point, and
:class:`QueryPortal` the web portal's pre-generated query set ("the
user's largest files and their most recently accessed files").
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro import obs
from repro.fs.permissions import Credentials

from .engine import CancelToken, PaginatedSink, ResultCache, ResultSink
from .index import GUFIIndex
from .query import QueryResult, QuerySpec
from .tools import FindFilters, GUFITools


class AuthenticationError(PermissionError):
    """Unknown or disabled principal."""


class ToolNotAllowed(PermissionError):
    """The restricted shell rejects anything but the GUFI tools."""


@dataclass
class IdentityProvider:
    """LDAP-like directory: username → (uid, gid, groups, enabled).

    Queries resolve the caller *at call time* (no session caching), so
    revoking a user or changing their groups is effective on their
    next query — the property §III-A5 calls out.
    """

    _users: dict[str, dict] = field(default_factory=dict)

    def add_user(
        self,
        username: str,
        uid: int,
        gid: int,
        groups: frozenset[int] = frozenset(),
        enabled: bool = True,
    ) -> None:
        self._users[username] = {
            "uid": uid, "gid": gid, "groups": frozenset(groups),
            "enabled": enabled,
        }

    def disable(self, username: str) -> None:
        try:
            self._users[username]["enabled"] = False
        except KeyError:
            raise AuthenticationError(f"unknown user {username!r}") from None

    def enable(self, username: str) -> None:
        try:
            self._users[username]["enabled"] = True
        except KeyError:
            raise AuthenticationError(f"unknown user {username!r}") from None

    def set_groups(self, username: str, groups: frozenset[int]) -> None:
        try:
            self._users[username]["groups"] = frozenset(groups)
        except KeyError:
            raise AuthenticationError(f"unknown user {username!r}") from None

    def authenticate(self, username: str) -> Credentials:
        rec = self._users.get(username)
        if rec is None or not rec["enabled"]:
            raise AuthenticationError(f"authentication failed for {username!r}")
        return Credentials(uid=rec["uid"], gid=rec["gid"], groups=rec["groups"])

    @classmethod
    def from_passwd(
        cls, passwd_text: str, group_text: str = ""
    ) -> "IdentityProvider":
        """Load users from ``/etc/passwd``-format text and (optionally)
        supplementary memberships from ``/etc/group``-format text —
        how a site bootstraps the directory from its existing NSS data.

        passwd: ``name:x:uid:gid:gecos:home:shell`` (first 4 fields used)
        group:  ``name:x:gid:member1,member2``
        """
        idp = cls()
        memberships: dict[str, set[int]] = {}
        for line in group_text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(":")
            if len(parts) < 4:
                continue
            try:
                gid = int(parts[2])
            except ValueError:
                continue
            for member in parts[3].split(","):
                member = member.strip()
                if member:
                    memberships.setdefault(member, set()).add(gid)
        for line in passwd_text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(":")
            if len(parts) < 4:
                continue
            name = parts[0]
            try:
                uid, gid = int(parts[2]), int(parts[3])
            except ValueError:
                continue
            idp.add_user(
                name, uid=uid, gid=gid,
                groups=frozenset(memberships.get(name, set())),
            )
        return idp

    def uid_map(self) -> dict[int, str]:
        """uid → username, for uidtouser() in query output."""
        return {rec["uid"]: name for name, rec in self._users.items()}


#: tools a remote invocation may name — the restricted shell's whitelist
ALLOWED_TOOLS = frozenset({"query", "find", "ls", "du", "dir_sizes",
                           "largest_files", "recently_modified",
                           "space_by_user", "xattr_search"})


@dataclass
class InvocationLog:
    """One audited remote invocation."""

    username: str
    tool: str
    start: str
    at: float
    ok: bool
    #: wall-clock seconds the invocation took (including failures)
    elapsed: float = 0.0
    #: ``"ExcType: message"`` when the invocation raised, else None
    error: str | None = None
    #: True when the response row cap dropped rows (see
    #: ``GUFIServer.max_rows``)
    truncated: bool = False


class GUFIServer:
    """The index host's restricted entry point.

    Every invocation re-authenticates, is checked against the tool
    whitelist, runs with the caller's credentials, and is audited.
    All database opens happen read-only (enforced downstream).

    Query *sessions* are reused: the server keeps a small LRU of warm
    :class:`GUFITools` handles keyed by the caller's **resolved
    credentials** — not the username — so repeated portal queries skip
    per-query setup (scratch connections, SQL function registration,
    DirMeta reads) while preserving §III-A5's immediacy guarantees:
    authentication still happens on every invocation, and a group or
    uid change yields a different key, hence a fresh session with the
    new credentials. All sessions share the index handle's
    mtime-validated DirMeta cache.
    """

    #: warm sessions kept per server (one per distinct credential set)
    SESSION_CACHE_SIZE = 32
    #: default bound on the in-memory audit log; oldest entries are
    #: dropped (and counted in ``audit_dropped``) past it
    AUDIT_LOG_CAP = 10_000
    #: default response row cap: a remote invocation never materialises
    #: more rows than this (the surplus is counted, the response is
    #: marked truncated). Pass ``max_rows`` to change it; ``<= 0``
    #: disables the cap.
    DEFAULT_MAX_ROWS = 100_000
    #: page size of the response sink (the portal serves result pages)
    RESPONSE_PAGE_SIZE = 1_000

    def __init__(
        self,
        index: GUFIIndex,
        identity: IdentityProvider,
        nthreads: int = 8,
        audit_cap: int | None = None,
        max_rows: int | None = None,
        processes: int = 1,
        result_cache_mb: float | None = None,
    ) -> None:
        self.index = index
        self.identity = identity
        self.nthreads = nthreads
        #: worker processes per query session (scatter-gather when > 1)
        self.processes = max(1, int(processes))
        #: one materialized-result cache shared by every warm session.
        #: Entries are keyed by resolved credentials (the same key as
        #: the session LRU), so tenants can never see each other's
        #: rows; the per-scope budget (a quarter of the total) keeps
        #: one tenant's hot queries from evicting everyone else's.
        self.result_cache: ResultCache | None = None
        if result_cache_mb is not None and result_cache_mb > 0:
            total = int(result_cache_mb * 1024 * 1024)
            self.result_cache = ResultCache(
                max_bytes=total,
                max_scope_bytes=max(1, total // 4),
            )
        if max_rows is None:
            max_rows = self.DEFAULT_MAX_ROWS
        #: effective response row cap (None when disabled)
        self.max_rows: int | None = max_rows if max_rows > 0 else None
        cap = audit_cap if audit_cap is not None else self.AUDIT_LOG_CAP
        # Bounded and lock-guarded: concurrent invoke() calls append
        # from many threads, and an unbounded list would grow without
        # limit on a long-lived server.
        self.audit_log: deque[InvocationLog] = deque(maxlen=cap)
        #: entries evicted from the (full) audit log
        self.audit_dropped = 0
        self._audit_lock = threading.Lock()
        self._sessions: OrderedDict[tuple, GUFITools] = OrderedDict()
        self._sessions_lock = threading.Lock()

    def _tools_for(self, username: str) -> GUFITools:
        creds = self.identity.authenticate(username)
        key = (creds.uid, creds.gid, creds.groups)
        with self._sessions_lock:
            tools = self._sessions.get(key)
            if tools is not None:
                self._sessions.move_to_end(key)
                # keep name translation current without discarding the
                # warm session (the pooled QueryContexts alias this
                # exact dict, so an in-place update reaches them)
                tools.query.users.clear()
                tools.query.users.update(self.identity.uid_map())
                return tools
            tools = GUFITools(
                self.index, creds=creds, nthreads=self.nthreads,
                users=self.identity.uid_map(), processes=self.processes,
                result_cache=self.result_cache,
            )
            self._sessions[key] = tools
            while len(self._sessions) > self.SESSION_CACHE_SIZE:
                _, evicted = self._sessions.popitem(last=False)
                evicted.close()
            return tools

    def close(self) -> None:
        """Dispose every warm session (scratch dirs, connections) and
        detach the shared result cache from the index's invalidation
        hooks — without the detach, a closed server would leave live
        listener callbacks bound to the :class:`DirMetaCache`, firing
        into (and pinning) a cache nobody serves from anymore."""
        with self._sessions_lock:
            for tools in self._sessions.values():
                tools.close()
            self._sessions.clear()
        if self.result_cache is not None:
            self.result_cache.close()

    def __enter__(self) -> "GUFIServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def invoke(
        self,
        username: str,
        tool: str,
        start: str = "/",
        **kwargs,
    ):
        """A remote invocation: ``ssh gufi-server <tool> <args>``.

        Raises :class:`ToolNotAllowed` for anything off the whitelist
        and :class:`AuthenticationError` for unknown/disabled users —
        *before* touching the index either way.
        """
        t0 = time.perf_counter()
        error: str | None = None
        truncated = False
        try:
            with obs.tracer().span("server.invoke", user=username, tool=tool):
                result = self._dispatch(username, tool, start, kwargs)
                if isinstance(result, QueryResult):
                    truncated = result.truncated
                return result
        except BaseException as exc:
            error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            self._audit(
                username, tool, start, time.perf_counter() - t0, error,
                truncated,
            )

    def _dispatch(self, username: str, tool: str, start: str, kwargs: dict) -> object:
        if tool not in ALLOWED_TOOLS:
            raise ToolNotAllowed(
                f"{tool!r} is not available through the restricted shell"
            )
        tools = self._tools_for(username)
        if tool == "query":
            spec = kwargs.pop("spec")
            if not isinstance(spec, QuerySpec):
                raise TypeError("query requires a QuerySpec")
            plan = kwargs.pop("plan", None)
            result: QueryResult = tools.query.run(
                spec, start, plan=plan,
                sink=kwargs.pop("sink", None) or self._response_sink(),
                cancel=kwargs.pop("cancel", None),
            )
            return result
        method = getattr(tools, tool)
        if tool == "find":
            return method(
                start,
                kwargs.pop("filters", None),
                planned=kwargs.pop("planned", True),
                sink=kwargs.pop("sink", None) or self._response_sink(),
                cancel=kwargs.pop("cancel", None),
            )
        if tool == "xattr_search":
            kwargs.setdefault("sink", self._response_sink())
            needle = kwargs.pop("needle", None)
            if needle is not None:
                # keyword form: ``start`` is the real query root
                return method(needle, start=start, **kwargs)
            # historical calling convention: the positional ``start``
            # slot carries the needle (real start comes via kwargs) —
            # kept working, but deprecated in favour of ``needle=``
            warnings.warn(
                "xattr_search via the positional start slot is "
                "deprecated; pass needle=<value> (the positional slot "
                "is then the query root)",
                DeprecationWarning,
                stacklevel=4,
            )
        return method(start, **kwargs)

    def _response_sink(self) -> ResultSink | None:
        """A fresh paginated, row-capped sink for one invocation (None
        when the cap is disabled — the engine then defaults to plain
        in-memory collection)."""
        if self.max_rows is None:
            return None
        return PaginatedSink(
            min(self.RESPONSE_PAGE_SIZE, self.max_rows),
            max_rows=self.max_rows,
        )

    def _audit(
        self,
        username: str,
        tool: str,
        start: str,
        elapsed: float,
        error: str | None,
        truncated: bool = False,
    ) -> None:
        entry = InvocationLog(
            username=username, tool=tool, start=start,
            at=time.time(), ok=error is None,
            elapsed=elapsed, error=error, truncated=truncated,
        )
        with self._audit_lock:
            dropped = (
                self.audit_log.maxlen is not None
                and len(self.audit_log) == self.audit_log.maxlen
            )
            if dropped:
                self.audit_dropped += 1
            self.audit_log.append(entry)
        rec = obs.metrics()
        if rec.enabled:
            rec.counter("gufi_server_invocations_total", tool=tool)
            if error is not None:
                rec.counter("gufi_server_invoke_failures_total", tool=tool)
            if dropped:
                rec.counter("gufi_server_audit_dropped_total")
            if truncated:
                rec.counter("gufi_server_rows_truncated_total", tool=tool)
            rec.observe("gufi_server_invoke_seconds", elapsed, user=username)
        slow = obs.slow_log()
        if slow.enabled:
            slow.record(
                elapsed,
                kind="server.invoke",
                detail=tool,
                start=start,
                user=username,
            )


class QueryPortal:
    """The web portal's pre-generated query set (§III-A5): canned,
    parameter-free reports a browser button triggers. Each call
    re-authenticates through the server."""

    def __init__(self, server: GUFIServer) -> None:
        self.server = server

    def my_largest_files(self, username: str, limit: int = 10) -> list[tuple]:
        return self.server.invoke(
            username, "largest_files", "/", limit=limit
        )

    def my_recent_files(self, username: str, limit: int = 20) -> list[tuple]:
        return self.server.invoke(
            username, "recently_modified", "/", limit=limit
        )

    def my_space_usage(self, username: str) -> int:
        creds = self.server.identity.authenticate(username)
        usage = self.server.invoke(username, "space_by_user", "/")
        return usage.get(creds.uid, 0)

    def my_stale_data(
        self, username: str, older_than: int, min_size: int = 0
    ) -> QueryResult:
        creds = self.server.identity.authenticate(username)
        return self.server.invoke(
            username, "find", "/",
            filters=FindFilters(
                uid=creds.uid, mtime_before=older_than, min_size=min_size,
                ftype="f",
            ),
        )

    def search(self, username: str, query: str, start: str = "/",
               now: int | None = None, planned: bool = True) -> QueryResult:
        """The search bar: parse the portal query language and run it
        with the caller's credentials (see :mod:`repro.core.search`).
        The parsed terms also compile to a summary-statistics query
        plan, so selective searches skip most directories' databases;
        ``planned=False`` runs unplanned (identical results)."""
        from .search import parse

        parsed = parse(query, now=now)
        if planned:
            plan = parsed.to_plan()
        else:
            f = parsed.filters
            plan = None
            if f.min_level is not None or f.max_level is not None:
                # the depth window is semantic — it survives planned=False
                from .plan import QueryPlan

                plan = QueryPlan(
                    min_level=f.min_level,
                    max_level=f.max_level,
                    entries_shaped=False,
                )
        return self.server.invoke(
            username, "query", start, spec=parsed.to_spec(), plan=plan
        )
