"""Index statistics (the ``gufi_stats`` tool family).

Administrators live off whole-index characterisations: how deep is the
namespace, how are entries spread over directories, which users own
what, how much was written when. Each report here is computed with
one permission-gated parallel query over the index — the same engine
user queries run through, so an unprivileged caller gets statistics
over exactly their visible world.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fs.permissions import ROOT, Credentials
from repro.sim.blktrace import IOTracer

from .engine import QueryEngine
from .index import GUFIIndex
from .query import QuerySpec


@dataclass
class IndexStats:
    """A whole-index (or subtree) characterisation."""

    total_dirs: int = 0
    total_files: int = 0
    total_links: int = 0
    total_bytes: int = 0
    max_depth: int = 0
    #: directory count per depth level
    dirs_per_level: dict[int, int] = field(default_factory=dict)
    #: entry count per depth level (at the owning directory's depth)
    entries_per_level: dict[int, int] = field(default_factory=dict)
    #: files-per-directory histogram, power-of-two buckets (0, 1-2,
    #: 3-4, 5-8, ...) keyed by bucket upper bound
    fanout_histogram: dict[int, int] = field(default_factory=dict)
    #: bytes per uid
    bytes_by_uid: dict[int, int] = field(default_factory=dict)
    #: entry count per uid
    entries_by_uid: dict[int, int] = field(default_factory=dict)
    #: bytes per gid
    bytes_by_gid: dict[int, int] = field(default_factory=dict)
    #: file-size histogram, power-of-two buckets keyed by upper bound
    size_histogram: dict[int, int] = field(default_factory=dict)
    #: count of directories with zero entries and zero subdirectories
    empty_dirs: int = 0

    @property
    def total_entries(self) -> int:
        return self.total_files + self.total_links

    @property
    def mean_entries_per_dir(self) -> float:
        return self.total_entries / self.total_dirs if self.total_dirs else 0.0

    def top_users(self, n: int = 10) -> list[tuple[int, int]]:
        """(uid, bytes) for the n biggest space consumers."""
        return sorted(self.bytes_by_uid.items(), key=lambda kv: -kv[1])[:n]


def _bucket(n: int) -> int:
    """Power-of-two histogram bucket upper bound for ``n``."""
    if n <= 0:
        return 0
    b = 1
    while b < n:
        b <<= 1
    return b


def collect_stats(
    index: GUFIIndex,
    start: str = "/",
    creds: Credentials = ROOT,
    nthreads: int = 8,
    tracer: IOTracer | None = None,
) -> IndexStats:
    """Compute :class:`IndexStats` with two aggregated queries: one
    over ``summary`` rows (directory structure) and one over
    ``pentries`` (entries). Rollup-transparent — rolled-in rows carry
    their original depth."""
    # One engine session for all three passes: the second and third
    # queries reuse warm thread connections and the DirMeta cache.
    q = QueryEngine(index, creds=creds, nthreads=nthreads, tracer=tracer)
    try:
        stats = IndexStats()

        dir_spec = QuerySpec(
            I="CREATE TABLE d (depth INTEGER, totfiles INTEGER, "
            "totlinks INTEGER, totsubdirs INTEGER)",
            S="INSERT INTO d SELECT depth, totfiles, totlinks, totsubdirs "
            "FROM summary WHERE rectype = 0",
            J="INSERT INTO aggregate.d SELECT * FROM d",
            G="SELECT depth, totfiles, totlinks, totsubdirs FROM d",
        )
        for depth, totfiles, totlinks, totsubdirs in q.run(dir_spec, start).rows:
            stats.total_dirs += 1
            stats.max_depth = max(stats.max_depth, depth)
            stats.dirs_per_level[depth] = stats.dirs_per_level.get(depth, 0) + 1
            n_entries = totfiles + totlinks
            stats.entries_per_level[depth] = (
                stats.entries_per_level.get(depth, 0) + n_entries
            )
            b = _bucket(n_entries)
            stats.fanout_histogram[b] = stats.fanout_histogram.get(b, 0) + 1
            if n_entries == 0 and totsubdirs == 0:
                stats.empty_dirs += 1

        entry_spec = QuerySpec(
            I="CREATE TABLE e (type TEXT, uid INTEGER, gid INTEGER, "
            "size INTEGER, n INTEGER)",
            E="INSERT INTO e SELECT type, uid, gid, TOTAL(size), COUNT(*) "
            "FROM pentries GROUP BY type, uid, gid",
            J="INSERT INTO aggregate.e SELECT * FROM e",
            G="SELECT type, uid, gid, TOTAL(size), SUM(n) FROM e "
            "GROUP BY type, uid, gid",
        )
        for ftype, uid, gid, nbytes, count in q.run(entry_spec, start).rows:
            nbytes = int(nbytes or 0)
            count = int(count or 0)
            if ftype == "f":
                stats.total_files += count
            else:
                stats.total_links += count
            stats.total_bytes += nbytes
            stats.bytes_by_uid[uid] = stats.bytes_by_uid.get(uid, 0) + nbytes
            stats.entries_by_uid[uid] = stats.entries_by_uid.get(uid, 0) + count
            stats.bytes_by_gid[gid] = stats.bytes_by_gid.get(gid, 0) + nbytes

        size_spec = QuerySpec(
            I="CREATE TABLE s (bucket INTEGER, n INTEGER)",
            E=(
                "INSERT INTO s SELECT "
                "CASE WHEN size <= 0 THEN 0 ELSE "
                "CAST(POWER(2, CAST(CEIL(LOG(2, size)) AS INTEGER)) AS INTEGER) "
                "END, COUNT(*) FROM pentries WHERE type = 'f' GROUP BY 1"
            ),
            J="INSERT INTO aggregate.s SELECT * FROM s",
            G="SELECT bucket, SUM(n) FROM s GROUP BY bucket",
        )
        try:
            rows = q.run(size_spec, start).rows
        except RuntimeError:
            # SQLite math functions (LOG/POWER/CEIL) are a compile-time
            # option; fall back to Python-side bucketing.
            rows = []
            fallback = QuerySpec(
                I="CREATE TABLE s (size INTEGER, n INTEGER)",
                E="INSERT INTO s SELECT size, COUNT(*) FROM pentries "
                "WHERE type = 'f' GROUP BY size",
                J="INSERT INTO aggregate.s SELECT * FROM s",
                G="SELECT size, SUM(n) FROM s GROUP BY size",
            )
            sizes: dict[int, int] = {}
            for size, n in q.run(fallback, start).rows:
                b = _bucket(int(size))
                sizes[b] = sizes.get(b, 0) + int(n)
            rows = list(sizes.items())
        for bucket, n in rows:
            b = int(bucket)
            stats.size_histogram[b] = stats.size_histogram.get(b, 0) + int(n)
        return stats
    finally:
        q.close()


def render_stats(stats: IndexStats, users: dict[int, str] | None = None) -> str:
    """Human-readable report (the CLI's ``stats --full`` output)."""
    users = users or {}
    lines = [
        "index statistics",
        f"  directories : {stats.total_dirs:,} "
        f"({stats.empty_dirs:,} empty, max depth {stats.max_depth})",
        f"  files       : {stats.total_files:,}",
        f"  symlinks    : {stats.total_links:,}",
        f"  bytes       : {stats.total_bytes:,}",
        f"  entries/dir : {stats.mean_entries_per_dir:.1f} mean",
        "  dirs per level:",
    ]
    for depth in sorted(stats.dirs_per_level):
        lines.append(
            f"    {depth:>3}: {stats.dirs_per_level[depth]:,}"
        )
    lines.append("  top users by bytes:")
    for uid, nbytes in stats.top_users(5):
        name = users.get(uid, f"u{uid}")
        lines.append(f"    {name:<12} {nbytes:>16,}")
    lines.append("  file sizes (power-of-two buckets):")
    for bucket in sorted(stats.size_histogram):
        lines.append(f"    <= {bucket:>14,}: {stats.size_histogram[bucket]:,}")
    return "\n".join(lines)
