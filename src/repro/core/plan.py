"""Summary-statistics query planning (paper §III-A2, Figs 7-8).

Per-directory ``summary`` rows exist precisely so queries can be
answered from — or *gated by* — aggregate statistics instead of
scanning ``entries``. The real ``gufi_query`` exploits this with
summary-gated entries queries and ``-y``/``-z`` level pruning; this
module is that planner for the reproduction's engine.

A :class:`QueryPlan` is compiled from :class:`~repro.core.tools
.FindFilters` (the ``find``/search-bar predicate set). Two independent
prunes fall out of it:

* **stats gates** — size / mtime-window / uid / gid / type predicates
  evaluated against each directory's cached
  :class:`~repro.core.index.DirStats` bounds. When a directory
  *provably* cannot contain a matching row, the engine skips the ``E``
  stage for it; on a warm cache it skips the SQLite attach entirely
  and descends off the cached child listing. Name globs and xattr
  predicates are conservatively non-prunable (summary rows carry no
  name or xattr-name bounds) — they simply contribute no gate, while
  the other AND-ed terms still do.
* **depth window** — ``min_level``/``max_level`` mirror
  ``gufi_query -y/-z``: directories outside the window (levels
  relative to the query start) are traversed but not processed, and
  nothing below ``max_level`` is visited at all. When a directory
  carries a tsummary, its subtree ``maxdepth`` additionally cuts whole
  subtrees that provably cannot reach ``min_level``.

Correctness discipline (the rollup security theorem's, applied to
planning): gates only ever *widen* the processed set on uncertainty.
A ``None`` bound (NULL summary column, corrupted record, no
:class:`DirStats` at all) disables that gate rather than guessing, so
a planned run returns byte-identical rows to an unplanned run for
every credential — root and unprivileged alike. The depth window is
the one *semantic* knob: it changes which directories are processed by
definition, exactly as ``-y``/``-z`` do.

Bound fine print, encoded in :meth:`QueryPlan.dir_can_match`:

* ``minsize``/``maxsize`` bound **regular files only**. A size gate is
  therefore only sound when symlink rows are out of the picture —
  either the query's type filter is ``f`` or the directory holds no
  links (``totlinks == 0``); a ``type:l`` query never size-gates.
* ``minmtime``/``maxmtime`` and the uid/gid bounds cover *all* entries
  rows (files and links), so they gate unconditionally.
* count gates: a type filter with a zero matching count, or an empty
  directory under an entries-shaped query, cannot match.
"""

from __future__ import annotations

from dataclasses import dataclass

from .index import DirMeta


@dataclass(frozen=True)
class QueryPlan:
    """Compiled prunability facts for one query. Immutable and
    engine-agnostic: evaluation takes a :class:`DirMeta` (and relative
    depths) and answers "can this directory possibly matter?"."""

    #: predicates with summary-derived bounds (all optional)
    min_size: int | None = None
    max_size: int | None = None
    mtime_before: int | None = None
    mtime_after: int | None = None
    uid: int | None = None
    gid: int | None = None
    ftype: str | None = None
    #: depth window relative to the query start (gufi_query -y/-z)
    min_level: int | None = None
    max_level: int | None = None
    #: the ``E`` stage reads only entries-derived rows
    #: (pentries/vrpentries/xpentries), so the stats gates — including
    #: the empty-directory gate — are sound. False for depth-only plans
    #: wrapped around raw user SQL, whose ``E`` may read anything.
    entries_shaped: bool = True

    # ------------------------------------------------------------------
    # Stats gate
    # ------------------------------------------------------------------
    def dir_can_match(self, meta: DirMeta) -> bool:
        """Could the directory's database contain an entries row
        matching every predicate? ``True`` unless provably not —
        missing stats or any ``None`` bound pass conservatively."""
        if not self.entries_shaped:
            return True
        stats = meta.stats
        if stats is None:
            return True
        # count gates: no candidate rows at all
        if stats.totfiles is not None and stats.totlinks is not None:
            if self.ftype == "f" and stats.totfiles == 0:
                return False
            if self.ftype == "l" and stats.totlinks == 0:
                return False
            if stats.totfiles + stats.totlinks == 0:
                return False
        # size bounds cover files only: sound iff links are excluded by
        # the type filter or absent from the directory
        size_gate_ok = self.ftype == "f" or (
            self.ftype != "l" and stats.totlinks == 0
        )
        if size_gate_ok:
            if (
                self.min_size is not None
                and stats.maxsize is not None
                and stats.maxsize < self.min_size
            ):
                return False
            if (
                self.max_size is not None
                and stats.minsize is not None
                and stats.minsize > self.max_size
            ):
                return False
        # mtime window covers every entries row
        if (
            self.mtime_before is not None
            and stats.minmtime is not None
            and stats.minmtime >= self.mtime_before
        ):
            return False
        if (
            self.mtime_after is not None
            and stats.maxmtime is not None
            and stats.maxmtime <= self.mtime_after
        ):
            return False
        # ownership bounds cover every entries row
        if (
            self.uid is not None
            and stats.minuid is not None
            and stats.maxuid is not None
            and not (stats.minuid <= self.uid <= stats.maxuid)
        ):
            return False
        if (
            self.gid is not None
            and stats.mingid is not None
            and stats.maxgid is not None
            and not (stats.mingid <= self.gid <= stats.maxgid)
        ):
            return False
        return True

    # ------------------------------------------------------------------
    # Depth window
    # ------------------------------------------------------------------
    def wants_level(self, rel_depth: int) -> bool:
        """Should a directory at this level (relative to the query
        start) be *processed* (T/S/E run against it)?"""
        if self.min_level is not None and rel_depth < self.min_level:
            return False
        if self.max_level is not None and rel_depth > self.max_level:
            return False
        return True

    def descend_allowed(
        self, rel_depth: int, subtree_rel_maxdepth: int | None = None
    ) -> bool:
        """Should the walk continue *below* a directory at this level?

        ``subtree_rel_maxdepth`` is the deepest level the subtree
        reaches (relative to the query start, from a tsummary
        ``maxdepth`` when one exists): when even the deepest descendant
        sits above ``min_level``, the whole subtree is cut."""
        if self.max_level is not None and rel_depth >= self.max_level:
            return False
        if (
            self.min_level is not None
            and subtree_rel_maxdepth is not None
            and subtree_rel_maxdepth < self.min_level
        ):
            return False
        return True


def plan_for(filters) -> QueryPlan:
    """Compile a :class:`QueryPlan` from ``find``-style filters (a
    :class:`~repro.core.tools.FindFilters`). Name and xattr predicates
    contribute no gate (non-prunable); everything else maps 1:1."""
    return QueryPlan(
        min_size=filters.min_size,
        max_size=filters.max_size,
        mtime_before=filters.mtime_before,
        mtime_after=filters.mtime_after,
        uid=filters.uid,
        gid=filters.gid,
        ftype=filters.ftype,
        min_level=filters.min_level,
        max_level=filters.max_level,
    )
