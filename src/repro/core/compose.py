"""Index composition (paper §I, contribution list).

"A GUFI index is both composable and decomposable such that any
directory or sub-tree of directories within the index can be trivially
added, updated, or removed as desired by administrators." Because the
index is *just files and directories*, these operations are plain tree
surgery plus a little rollup hygiene:

* :func:`graft` — splice another index's tree (or one of its subtrees)
  into this index at a path (e.g. mount a newly indexed file system
  under the data-center-wide /Search root);
* :func:`prune` — remove a subtree from the index (a decommissioned
  file system or project);
* :func:`validate` — structural health check: every directory carries
  a database with a summary record, rollup flags are consistent with
  pentries materialisation, tracked xattr side databases exist.

Grafting/pruning under a rolled-up ancestor first undoes the rollups
on the affected path (each directory's rollup is independently
reversible, §III-C3) so merged data never goes stale.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field

from . import db as dbmod
from . import schema
from .index import GUFIIndex
from .rollup import unrollup_dir


class CompositionError(Exception):
    """Invalid graft/prune request."""


def _unroll_ancestors(index: GUFIIndex, path: str) -> list[str]:
    """Undo rollups on every existing directory from the root down to
    (and including) ``path``'s parent, so none of them claims to
    summarise the about-to-change subtree."""
    parts = [p for p in path.split("/") if p]
    unrolled = []
    chain = ["/"] + ["/" + "/".join(parts[: i + 1]) for i in range(len(parts) - 1)]
    for sp in chain:
        if not index.db_path(sp).exists():
            continue
        if index.dir_meta(sp).rolledup:
            unrollup_dir(index, sp)
            unrolled.append(sp)
    return unrolled


def graft(
    dst: GUFIIndex,
    src: GUFIIndex,
    src_subtree: str = "/",
    at: str | None = None,
    overwrite: bool = False,
) -> list[str]:
    """Copy ``src``'s subtree into ``dst`` at path ``at``.

    ``at`` defaults to the source subtree's own path. Returns the list
    of destination directories whose rollups were undone. The copied
    databases arrive exactly as they are in ``src`` — including any
    rollups *within* the grafted subtree, which stay valid because
    rollup state never depends on anything above the rolled directory.
    """
    at = at or src_subtree
    at = "/" + "/".join(p for p in at.split("/") if p)
    src_dir = src.index_dir(src_subtree)
    if not src.store(src_subtree).db_path.exists():
        raise CompositionError(f"source has no index at {src_subtree!r}")
    dst_dir = dst.index_dir(at)
    if dst_dir.exists() and any(dst_dir.iterdir()):
        if not overwrite:
            raise CompositionError(
                f"destination {at!r} already indexed (pass overwrite=True)"
            )
        shutil.rmtree(dst_dir)
    unrolled = _unroll_ancestors(dst, at)
    dst_dir.parent.mkdir(parents=True, exist_ok=True)
    shutil.copytree(src_dir, dst_dir)
    # the grafted root must not be skipped by gufi_index.json checks
    meta_file = dst_dir / "gufi_index.json"
    if meta_file.exists():
        meta_file.unlink()
    # Intermediate directories introduced by the graft (e.g. the
    # /fs-kernel in /fs-kernel/linux) need databases of their own or
    # descent would dead-end before reaching the graft.
    parts = [p for p in at.split("/") if p]
    for i in range(len(parts)):
        sp = "/" + "/".join(parts[: i + 1])
        ensure_dir_db(dst, sp)
    return unrolled


def ensure_dir_db(index: GUFIIndex, source_path: str) -> None:
    """Create a minimal, root-owned, world-searchable database for a
    structural directory that exists on disk without one."""
    import zlib

    store = index.store(source_path)
    if store.db_path.exists():
        return
    conn = store.create_primary()
    try:
        name = source_path.rsplit("/", 1)[-1] or "/"
        depth = 0 if source_path == "/" else source_path.count("/")
        # synthetic inode: high bit set so it cannot collide with
        # scanner-allocated inode numbers
        ino = (1 << 62) | zlib.crc32(source_path.encode())
        conn.execute(
            "INSERT INTO summary (name, rectype, isroot, inode, mode, "
            "nlink, uid, gid, size, blksize, blocks, atime, mtime, ctime, "
            "totfiles, totlinks, totsubdirs, totsize, totxattr, rolledup, "
            "rollup_entries, depth) "
            "VALUES (?, 0, 1, ?, 493, 2, 0, 0, 0, 4096, 0, 0, 0, 0, "
            "0, 0, 0, 0, 0, 0, 0, ?)",  # 493 == 0o755
            (name, ino, depth),
        )
    finally:
        conn.close()


def prune(dst: GUFIIndex, path: str) -> list[str]:
    """Remove the indexed subtree at ``path`` (the source file system
    was decommissioned, or a project was archived off)."""
    path = "/" + "/".join(p for p in path.split("/") if p)
    if path == "/":
        raise CompositionError("refusing to prune the index root")
    target = dst.index_dir(path)
    if not target.exists():
        raise CompositionError(f"nothing indexed at {path!r}")
    unrolled = _unroll_ancestors(dst, path)
    shutil.rmtree(target)
    return unrolled


@dataclass
class ValidationReport:
    """Outcome of :func:`validate`."""

    dirs_checked: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def validate(index: GUFIIndex, start: str = "/") -> ValidationReport:
    """Structural health check over the on-disk index."""
    report = ValidationReport()
    base = index.index_dir(start)
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames.sort()
        rel = os.path.relpath(dirpath, index.root)
        sp = "/" if rel == "." else "/" + rel.replace(os.sep, "/")
        if schema.DB_NAME not in filenames:
            report.problems.append(f"{sp}: missing {schema.DB_NAME}")
            continue
        report.dirs_checked += 1
        conn = dbmod.open_ro(os.path.join(dirpath, schema.DB_NAME))
        try:
            try:
                meta = index.read_dir_meta(conn)
            except Exception as exc:  # noqa: BLE001 - report, don't die
                report.problems.append(f"{sp}: unreadable summary ({exc})")
                continue
            (kind,) = conn.execute(
                "SELECT type FROM sqlite_master WHERE name = 'pentries'"
            ).fetchone()
            if meta.rolledup and kind != "table":
                report.problems.append(
                    f"{sp}: rolledup flag set but pentries is a {kind}"
                )
            if not meta.rolledup and kind != "view":
                report.problems.append(
                    f"{sp}: not rolled up but pentries is a {kind}"
                )
            for (filename,) in conn.execute(
                "SELECT filename FROM xattrs_avail"
            ):
                if not os.path.exists(os.path.join(dirpath, filename)):
                    report.problems.append(
                        f"{sp}: tracked xattr side db {filename} missing"
                    )
        finally:
            conn.close()
    return report
