"""GUFI per-directory database schema (paper §III-B, Fig 5).

Every directory in the index holds one SQLite database (``db.db``)
with three record-holding tables plus views:

* ``entries`` — one row per non-directory entry (file/symlink) with
  the standard inode attributes; xattr *names* are packed into a
  column here (names are metadata-protected, values are not).
* ``summary`` — the directory's own attributes plus aggregates over
  its entries (min/max/total sizes, counts, time ranges). Can hold
  *overall* (rectype 0), *per-user* (rectype 1), and *per-group*
  (rectype 2) records. After a rollup, sub-directory summary rows are
  copied in with ``isroot=0`` and the relative path in ``name``.
* ``tsummary`` — whole-subtree aggregates, built on demand by the
  ``bfti`` tool (:mod:`repro.core.tsummary`); also rectype-typed.
* ``pentries`` — a view of ``entries`` augmented with the parent
  inode. Rollup materialises it into a real table so sub-directory
  rows can be merged in without touching ``entries``.
* ``xattrs`` — xattr values for entries whose protection matches the
  directory database itself; ``xattrs_avail`` tracks the per-user /
  per-group side databases holding the rest (§III-A2, §III-B1).
"""

from __future__ import annotations

DB_NAME = "db.db"

ENTRIES_COLUMNS = (
    "name",
    "type",
    "inode",
    "mode",
    "nlink",
    "uid",
    "gid",
    "size",
    "blksize",
    "blocks",
    "atime",
    "mtime",
    "ctime",
    "linkname",
    "xattr_names",
)

CREATE_ENTRIES = """
CREATE TABLE IF NOT EXISTS entries (
    name        TEXT,
    type        TEXT,
    inode       INTEGER,
    mode        INTEGER,
    nlink       INTEGER,
    uid         INTEGER,
    gid         INTEGER,
    size        INTEGER,
    blksize     INTEGER,
    blocks      INTEGER,
    atime       INTEGER,
    mtime       INTEGER,
    ctime       INTEGER,
    linkname    TEXT,
    xattr_names TEXT
);
"""

SUMMARY_COLUMNS = (
    "name",
    "rectype",
    "isroot",
    "inode",
    "mode",
    "nlink",
    "uid",
    "gid",
    "size",
    "blksize",
    "blocks",
    "atime",
    "mtime",
    "ctime",
    "totfiles",
    "totlinks",
    "totsubdirs",
    "minuid",
    "maxuid",
    "mingid",
    "maxgid",
    "minsize",
    "maxsize",
    "totsize",
    "minmtime",
    "maxmtime",
    "minatime",
    "maxatime",
    "totxattr",
    "rolledup",
    "rollup_entries",
    "depth",
)

CREATE_SUMMARY = """
CREATE TABLE IF NOT EXISTS summary (
    name           TEXT,
    rectype        INTEGER,  -- 0 overall, 1 per-user, 2 per-group
    isroot         INTEGER,  -- 1 original record, 0 copied in by rollup
    inode          INTEGER,
    mode           INTEGER,
    nlink          INTEGER,
    uid            INTEGER,
    gid            INTEGER,
    size           INTEGER,
    blksize        INTEGER,
    blocks         INTEGER,
    atime          INTEGER,
    mtime          INTEGER,
    ctime          INTEGER,
    totfiles       INTEGER,
    totlinks       INTEGER,
    totsubdirs     INTEGER,
    minuid         INTEGER,
    maxuid         INTEGER,
    mingid         INTEGER,
    maxgid         INTEGER,
    minsize        INTEGER,
    maxsize        INTEGER,
    totsize        INTEGER,
    minmtime       INTEGER,
    maxmtime       INTEGER,
    minatime       INTEGER,
    maxatime       INTEGER,
    totxattr       INTEGER,
    rolledup       INTEGER DEFAULT 0,
    rollup_entries INTEGER DEFAULT 0,
    depth          INTEGER DEFAULT 0
);
"""

TSUMMARY_COLUMNS = (
    "rectype",
    "uid",
    "gid",
    "totfiles",
    "totlinks",
    "totsubdirs",
    "totsize",
    "minsize",
    "maxsize",
    "minmtime",
    "maxmtime",
    "maxdepth",
    "totxattr",
    "totusers",
    "totgroups",
)

CREATE_TSUMMARY = """
CREATE TABLE IF NOT EXISTS tsummary (
    rectype    INTEGER,  -- 0 overall, 1 per-user, 2 per-group
    uid        INTEGER,
    gid        INTEGER,
    totfiles   INTEGER,
    totlinks   INTEGER,
    totsubdirs INTEGER,
    totsize    INTEGER,
    minsize    INTEGER,
    maxsize    INTEGER,
    minmtime   INTEGER,
    maxmtime   INTEGER,
    maxdepth   INTEGER,
    totxattr   INTEGER,
    totusers   INTEGER,
    totgroups  INTEGER
);
"""

# The pentries view joins every entry with the (single) original
# overall summary record to expose the parent inode, exactly as the
# paper's Fig 5 describes. Rollup drops the view and materialises a
# table of the same shape.
CREATE_PENTRIES_VIEW = """
CREATE VIEW IF NOT EXISTS pentries AS
    SELECT entries.*, summary.inode AS pinode
    FROM entries, summary
    WHERE summary.isroot = 1 AND summary.rectype = 0;
"""

PENTRIES_COLUMNS = ENTRIES_COLUMNS + ("pinode",)

CREATE_PENTRIES_TABLE = """
CREATE TABLE IF NOT EXISTS pentries (
    name        TEXT,
    type        TEXT,
    inode       INTEGER,
    mode        INTEGER,
    nlink       INTEGER,
    uid         INTEGER,
    gid         INTEGER,
    size        INTEGER,
    blksize     INTEGER,
    blocks      INTEGER,
    atime       INTEGER,
    mtime       INTEGER,
    ctime       INTEGER,
    linkname    TEXT,
    xattr_names TEXT,
    pinode      INTEGER
);
"""

# Xattr value store (§III-B1): two payload columns — the entry's inode
# and a packed name=value list — plus the rollup-provenance marker.
# The same DDL is used in the main db and in every per-user/per-group
# side database.
CREATE_XATTRS = """
CREATE TABLE IF NOT EXISTS xattrs (
    exinode INTEGER,
    exattrs TEXT,
    isroot  INTEGER DEFAULT 1
);
"""

# Tracking table (§III-B1 'an additional table ... keeps track of the
# per-user and per-group XAttr database files that were generated'):
# avoids globbing the directory for side databases at query time.
CREATE_XATTRS_AVAIL = """
CREATE TABLE IF NOT EXISTS xattrs_avail (
    filename TEXT,    -- side database file name within this directory
    uid      INTEGER, -- owner uid of the side database file
    gid      INTEGER, -- owner gid
    mode     INTEGER, -- file mode bits gating who may read it
    isroot   INTEGER DEFAULT 1  -- 0 if the side db was created by rollup
);
"""

# vrpentries joins each (p)entries row with its parent directory's
# summary record so full paths survive rollup: ``dname`` is the parent
# directory's path relative to this database's directory (its plain
# basename for non-rolled rows, a multi-segment relative path for
# rolled-in rows) and ``d_isroot`` tells the rpath() SQL function
# whether a prefix is needed. This is the moral equivalent of GUFI's
# vrpentries/rpath machinery.
CREATE_VRPENTRIES_VIEW = """
CREATE VIEW IF NOT EXISTS vrpentries AS
    SELECT pentries.*, summary.name AS dname, summary.isroot AS d_isroot
    FROM pentries JOIN summary
    ON pentries.pinode = summary.inode AND summary.rectype = 0;
"""

ALL_DDL = (
    CREATE_ENTRIES,
    CREATE_SUMMARY,
    CREATE_TSUMMARY,
    CREATE_PENTRIES_VIEW,
    CREATE_VRPENTRIES_VIEW,
    CREATE_XATTRS,
    CREATE_XATTRS_AVAIL,
)

# rectype values, named for readability at call sites
RECTYPE_OVERALL = 0
RECTYPE_USER = 1
RECTYPE_GROUP = 2


def pack_xattrs(xattrs: dict[str, bytes]) -> str:
    """Pack name→value pairs into the single-column list format the
    paper's queries match with LIKE (e.g. ``exattrs LIKE '%needle%'``).
    Values that decode as UTF-8 are stored readably; binary values are
    hex-encoded."""
    parts = []
    for name in sorted(xattrs):
        value = xattrs[name]
        try:
            text = value.decode("utf-8")
            if "\x1f" in text or "=" in text:
                raise UnicodeDecodeError("utf-8", value, 0, 1, "reserved char")
        except UnicodeDecodeError:
            text = "0x" + value.hex()
        parts.append(f"{name}={text}")
    return "\x1f".join(parts)


def unpack_xattrs(packed: str) -> dict[str, str]:
    """Inverse of :func:`pack_xattrs` (values stay textual)."""
    out: dict[str, str] = {}
    if not packed:
        return out
    for pair in packed.split("\x1f"):
        name, _, value = pair.partition("=")
        out[name] = value
    return out


def pack_xattr_names(xattrs: dict[str, bytes]) -> str:
    """Xattr *names* column for ``entries`` (names are metadata)."""
    return "\x1f".join(sorted(xattrs))
