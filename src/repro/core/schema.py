"""Compatibility shim: the per-directory schema moved to
:mod:`repro.store.schema` (and the layout constants to
:mod:`repro.store.layout`) when the store layer was extracted. Import
from ``repro.store`` in new code; this module keeps the historic
``repro.core.schema`` surface working."""

from __future__ import annotations

from repro.store.layout import DB_NAME
from repro.store.schema import (
    ALL_DDL,
    CREATE_ENTRIES,
    CREATE_PENTRIES_TABLE,
    CREATE_PENTRIES_VIEW,
    CREATE_SUMMARY,
    CREATE_TSUMMARY,
    CREATE_VRPENTRIES_VIEW,
    CREATE_XATTRS,
    CREATE_XATTRS_AVAIL,
    ENTRIES_COLUMNS,
    MIGRATIONS,
    PENTRIES_COLUMNS,
    RECTYPE_GROUP,
    RECTYPE_OVERALL,
    RECTYPE_USER,
    SCHEMA_VERSION,
    SUMMARY_COLUMNS,
    TSUMMARY_COLUMNS,
    SchemaVersionError,
    db_schema_version,
    migrate_conn,
    pack_xattr_names,
    pack_xattrs,
    stamp_schema_version,
    unpack_xattrs,
)

__all__ = [
    "ALL_DDL",
    "CREATE_ENTRIES",
    "CREATE_PENTRIES_TABLE",
    "CREATE_PENTRIES_VIEW",
    "CREATE_SUMMARY",
    "CREATE_TSUMMARY",
    "CREATE_VRPENTRIES_VIEW",
    "CREATE_XATTRS",
    "CREATE_XATTRS_AVAIL",
    "DB_NAME",
    "ENTRIES_COLUMNS",
    "MIGRATIONS",
    "PENTRIES_COLUMNS",
    "RECTYPE_GROUP",
    "RECTYPE_OVERALL",
    "RECTYPE_USER",
    "SCHEMA_VERSION",
    "SUMMARY_COLUMNS",
    "SchemaVersionError",
    "TSUMMARY_COLUMNS",
    "db_schema_version",
    "migrate_conn",
    "pack_xattr_names",
    "pack_xattrs",
    "stamp_schema_version",
    "unpack_xattrs",
]
