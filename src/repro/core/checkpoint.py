"""Build journal: crash-safe checkpointing for index construction.

A full index build walks billions of entries (§III-A3, §III-C1) and
can die mid-scan — node failure, timeout, disk full. Losing hours of
per-directory database writes to one failure is unacceptable at that
scale, so the builders journal their progress: every directory whose
database has been *published* (atomically renamed into place, see
:func:`repro.core.build.build_dir_db`) gets one appended, flushed
record. A rerun with ``BuildOptions(resume=True)`` loads the journal
and skips every directory whose record still matches the on-disk
database, rebuilding only what is missing, partial, or stale.

Journal format (``gufi_build.journal`` in the index root): one JSON
object per line. The first line is a header::

    {"format": "gufi-journal-1", "source": "..."}

followed by completion records::

    {"path": "/a/b", "stamp": [inode, mtime_ns, size],
     "entries": 12, "side_dbs": 2}

``stamp`` is the published ``db.db``'s (inode, mtime_ns, size) — the
same validation triple the :class:`~repro.core.index.DirMetaCache`
uses — taken *after* the rename, so a record can only exist for a
fully published database. On load, records are re-validated against a
fresh stat: if the database was deleted or rewritten out-of-band the
stamp mismatches and the directory is rebuilt. Truncated trailing
lines (the crash landed mid-append) are skipped, not fatal.

The journal is removed when a build finishes with zero errors — a
journal file's presence is itself the signal that the index may be
incomplete.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from . import db as dbmod

JOURNAL_NAME = "gufi_build.journal"
JOURNAL_FORMAT = "gufi-journal-1"
CURSOR_NAME = "gufi_changefeed.cursor"
CURSOR_FORMAT = "gufi-changefeed-cursor-1"


@dataclass(frozen=True)
class JournalEntry:
    """One completed directory: published database + its stamp."""

    path: str
    stamp: tuple[int, int, int]
    entries: int
    side_dbs: int


class BuildJournal:
    """Append-only completion log for one index build.

    Thread-safe: builder workers record completions concurrently; each
    record is one ``write`` + ``flush`` under a lock, so a crash
    between directories never interleaves or loses whole records
    (at worst the final line is truncated, which the loader skips).
    """

    def __init__(self, index_root: Path | str, name: str = JOURNAL_NAME):
        self.root = Path(index_root)
        self.name = name
        self.completed: dict[str, JournalEntry] = {}
        self._fh = None
        self._lock = threading.Lock()

    @property
    def journal_path(self) -> Path:
        return self.root / self.name

    # ------------------------------------------------------------------
    # Open / load
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        index_root: Path | str,
        resume: bool = False,
        source: str = "",
        name: str = JOURNAL_NAME,
    ) -> "BuildJournal":
        """Open the journal for a build.

        ``resume=True`` loads prior completion records and appends to
        the existing file; otherwise any stale journal is truncated
        (a fresh build owes nothing to a previous attempt).

        ``name`` selects the journal file — other resumable
        per-directory sweeps (``gufi index migrate``) reuse this
        machinery under their own file so a migration checkpoint never
        collides with a build checkpoint."""
        j = cls(index_root, name=name)
        if resume:
            j.completed = cls.load(index_root, name=name)
        mode = "a" if resume and j.journal_path.exists() else "w"
        j._fh = open(j.journal_path, mode, encoding="utf-8")
        if mode == "w":
            j._fh.write(
                json.dumps({"format": JOURNAL_FORMAT, "source": source}) + "\n"
            )
            j._fh.flush()
        return j

    @staticmethod
    def load(
        index_root: Path | str, name: str = JOURNAL_NAME
    ) -> dict[str, JournalEntry]:
        """Parse completion records from an existing journal (empty
        dict when absent). Later records for the same path win;
        malformed lines — e.g. truncated by the crash being resumed
        from — are skipped."""
        path = Path(index_root) / name
        completed: dict[str, JournalEntry] = {}
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return completed
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue  # truncated mid-append by the crash
            if not isinstance(obj, dict) or "path" not in obj:
                continue  # header or foreign line
            try:
                entry = JournalEntry(
                    path=obj["path"],
                    stamp=tuple(obj["stamp"]),
                    entries=int(obj["entries"]),
                    side_dbs=int(obj["side_dbs"]),
                )
            except (KeyError, TypeError, ValueError):
                continue
            completed[entry.path] = entry
        return completed

    # ------------------------------------------------------------------
    # Recording / checking
    # ------------------------------------------------------------------
    def record(
        self,
        source_path: str,
        stamp: tuple[int, int, int] | None,
        entries: int,
        side_dbs: int,
    ) -> None:
        """Journal one published directory database. Callers pass the
        stamp taken *after* the rename; a ``None`` stamp (the database
        vanished between rename and stat) is not journaled — the
        directory will simply be rebuilt on resume."""
        if stamp is None or self._fh is None:
            return
        entry = JournalEntry(source_path, tuple(stamp), entries, side_dbs)
        line = json.dumps(
            {
                "path": entry.path,
                "stamp": list(entry.stamp),
                "entries": entry.entries,
                "side_dbs": entry.side_dbs,
            }
        )
        with self._lock:
            self.completed[source_path] = entry
            self._fh.write(line + "\n")
            self._fh.flush()

    def is_complete(self, source_path: str, db_path: Path | str) -> bool:
        """Was this directory published by a previous attempt and is
        its database still exactly the one we published?"""
        entry = self.completed.get(source_path)
        if entry is None:
            return False
        return dbmod.stamp_matches(db_path, entry.stamp)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and close, *keeping* the journal file (the build did
        not finish cleanly; a future resume needs the records)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def finalize(self) -> None:
        """Close and remove the journal: the build completed with no
        errors, so the index is whole and needs no resume marker."""
        self.close()
        try:
            self.journal_path.unlink()
        except OSError:
            pass


class ChangefeedCheckpoint:
    """Durable cursor for the incremental-indexing consumer.

    The changefeed consumer (:func:`repro.core.changefeed.
    changefeed2index`) applies a drained event batch to the index and
    then — only then — commits the batch's final sequence number here.
    A consumer killed mid-apply restarts from the last committed
    cursor and re-drains the same events; because every per-directory
    apply rescans the live source and republishes through the atomic
    ``.partial``+rename path, replaying is idempotent, so commit-after-
    apply gives exactly-once *effects* without two-phase machinery.

    The cursor file (``gufi_changefeed.cursor`` in the index root) is
    a single JSON object rewritten atomically (tmp + ``os.replace``),
    the same publish discipline the directory databases use — a crash
    during commit leaves the previous cursor intact, never a torn one.
    """

    def __init__(self, index_root: Path | str):
        self.root = Path(index_root)

    @property
    def cursor_path(self) -> Path:
        return self.root / CURSOR_NAME

    def load(self) -> int:
        """Last committed cursor; 0 when no checkpoint exists yet (a
        consumer starting from scratch has applied nothing). Corrupt
        files read as 0 — the journal overflow check then decides
        whether replay-from-0 is possible or a rebuild is needed."""
        return self.load_state()[0]

    def load_state(self) -> tuple[int, list[str]]:
        """(cursor, pending tsummary roots). The pending list names
        tsummary roots whose rows a crashed apply may have destroyed
        (a per-directory rebuild empties the fresh database's tsummary
        table); the resumed apply must re-derive them, because the
        destroyed rows are no longer there to detect."""
        try:
            obj = json.loads(self.cursor_path.read_text(encoding="utf-8"))
            cursor = int(obj["cursor"])
            pending = [str(p) for p in obj.get("pending_tsummary", [])]
            return cursor, pending
        except (OSError, ValueError, KeyError, TypeError):
            return 0, []

    def commit(
        self, cursor: int, pending_tsummary: list[str] | tuple[str, ...] = ()
    ) -> None:
        """Atomically persist ``cursor`` (and any tsummary roots still
        owed a refresh) via tmp + ``os.replace``."""
        payload = json.dumps(
            {
                "format": CURSOR_FORMAT,
                "cursor": int(cursor),
                "pending_tsummary": sorted(pending_tsummary),
            }
        )
        tmp = self.cursor_path.with_suffix(".cursor.tmp")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, self.cursor_path)

    def clear(self) -> None:
        """Remove the checkpoint (e.g. after a full rebuild resets the
        incremental state)."""
        try:
            self.cursor_path.unlink()
        except OSError:
            pass
