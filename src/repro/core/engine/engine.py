"""The layered parallel query engine (paper §III-C2, ``gufi_query``).

:class:`QueryEngine` wires the three layers together around the shared
breadth-first walker:

* :mod:`~repro.core.engine.traversal` decides who may go where —
  permission enforcement, plan gating (including attach elision off
  the warm DirMeta cache), and descent control;
* :mod:`~repro.core.engine.stages` executes SQL — attach/detach,
  cold-path metadata reads, T/S/E with xattr views and per-stage
  timings, and the J/G merge with its aggregate-database lifecycle;
* :mod:`~repro.core.engine.sinks` absorb rows — in memory, to
  per-thread files, bounded/paginated for servers, or into a results
  database.

Sessions: an engine is a *persistent* handle. Its worker-thread
connections, registered SQL functions, and scratch directory live in a
:class:`~repro.core.session.ThreadStatePool` that survives across
``run()`` calls, and permission metadata comes from the index's
mtime-validated :class:`~repro.core.index.DirMetaCache` — so repeated
queries on a warm index skip per-query setup and per-directory summary
reads. Per-directory accounting (counters, row buffers) is kept in the
per-thread state and merged once after the walk; the hot path takes no
locks.

:class:`~repro.core.query.GUFIQuery` remains the stable library facade
over this engine; consumers that need sink control or layer access use
the engine directly.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from typing import Any, Callable

from repro import obs
from repro.fs.permissions import (
    ROOT,
    Credentials,
    can_read_dir,
    can_search_dir,
)
from repro.scan.walker import FatalWalkError, ParallelTreeWalker
from repro.sim.blktrace import IOTracer

from repro.store.attach import AttachSession
from repro.store.layout import StampBracket

from ..index import GUFIIndex
from ..plan import QueryPlan
from ..session import ThreadStatePool, _ThreadState
from .resultcache import CacheEntry, CaptureSink, ResultCache, make_key
from .sinks import MemorySink, ResultSink, ThreadFileSink
from .stages import MergeRunner, StageRunner, run_sql
from .traversal import (
    CancelToken,
    QueryCancelled,
    Traversal,
    normalize_path,
    path_depth,
)
from .types import (
    QueryPermissionError,
    QueryResult,
    QuerySpec,
    spec_label,
)


class QueryEngine:
    """Query executor bound to an index, credentials, and a pool size.

    The handle is a *session*: scratch connections and output files
    persist across :meth:`run` calls (see :mod:`repro.core.session`).
    Call :meth:`close` (or use the handle as a context manager) for
    deterministic cleanup; otherwise a GC finalizer reclaims the
    scratch directory.
    """

    def __init__(
        self,
        index: GUFIIndex,
        creds: Credentials = ROOT,
        nthreads: int = 8,
        tracer: IOTracer | None = None,
        users: dict[int, str] | None = None,
        groups: dict[int, str] | None = None,
        processes: int = 1,
        mp_start_method: str | None = None,
        result_cache: ResultCache | None = None,
    ) -> None:
        self.index = index
        self.creds = creds
        self.nthreads = nthreads
        self.tracer = tracer
        # keep these exact dict objects: the pool's QueryContexts alias
        # them, so in-place updates propagate to live sessions
        self.users = users if users is not None else {}
        self.groups = groups if groups is not None else {}
        self.pool = ThreadStatePool(users=self.users, groups=self.groups)
        #: worker processes for run(); 1 = single-process (historical)
        self.processes = max(1, int(processes))
        #: multiprocessing start method for scatter-gather workers
        #: (None = the platform default, fork on Linux)
        self.mp_start_method = mp_start_method
        self._scatter_engine: Any = None
        #: optional materialized-result cache (engine/resultcache.py).
        #: Sharing one instance across engines/sessions is the point —
        #: entries are credential-scoped by key, so a shared cache is
        #: safe across principals.
        self.result_cache = result_cache
        if result_cache is not None:
            result_cache.bind_index(index)
        #: collect per-run visited paths (the cache's validity token).
        #: Scatter workers have no cache of their own but set this on
        #: the parent's behalf so the gathered result can be stored.
        self.collect_visited = result_cache is not None

    def close(self) -> None:
        """Release the session's pooled connections and scratch files."""
        self.pool.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(
        self,
        spec: QuerySpec,
        start: str = "/",
        plan: QueryPlan | None = None,
        sink: ResultSink | None = None,
        cancel: CancelToken | None = None,
    ) -> QueryResult:
        """Parallel permission-gated descent from ``start``.

        ``sink`` chooses the result path; the default is in-memory
        rows (or per-thread files when ``spec.output_prefix`` is set,
        preserving the ``-o`` shorthand).

        ``cancel`` is a cooperative :class:`CancelToken` (deadline
        and/or caller-side kill): the traversal layer observes it once
        per directory and aborts the walk with :class:`QueryCancelled`
        — the serving layer's deadline enforcement. Cancellation is
        cooperative *within this process*: a ``processes > 1`` run
        checks the token at dispatch but the worker processes do not
        observe it mid-shard.

        With ``processes > 1`` the run is executed scatter-gather: the
        index is partitioned into subtree shards, each processed by a
        worker *process* running its own engine, and the results are
        merged back through ``sink`` (see
        :mod:`repro.core.engine.scatter`). ``processes=1`` is exactly
        the historical single-process path.

        With a :class:`ResultCache` attached, the run is served from a
        revalidated materialized entry when one exists (rows replayed
        through ``sink``), and otherwise captured through a tee for
        the next caller — see :mod:`repro.core.engine.resultcache`."""
        if cancel is not None and cancel.cancelled:
            raise QueryCancelled("query cancelled before dispatch")
        if self.result_cache is not None:
            return self._run_cached(spec, start, plan, sink, cancel)
        return self._run_dispatch(spec, start, plan, sink, cancel)

    def _run_dispatch(
        self,
        spec: QuerySpec,
        start: str,
        plan: QueryPlan | None,
        sink: ResultSink | None,
        cancel: CancelToken | None = None,
    ) -> QueryResult:
        """Route one uncached run: scatter-gather or single-process."""
        if self.processes > 1:
            return self._scatter().run(spec, start, plan=plan, sink=sink)
        return self._run_local(spec, start, plan, sink, cancel)

    def _run_cached(
        self,
        spec: QuerySpec,
        start: str,
        plan: QueryPlan | None,
        sink: ResultSink | None,
        cancel: CancelToken | None = None,
    ) -> QueryResult:
        """The result-cache front end of :meth:`run`: replay a valid
        entry, or run for real through a capturing tee and store.

        Replay ignores ``cancel`` past the entry check in :meth:`run`:
        serving a validated materialized entry is O(rows), already far
        cheaper than any deadline worth enforcing."""
        cache = self.result_cache
        assert cache is not None
        key = make_key(self.creds, spec, plan, normalize_path(start))
        entry = cache.lookup(key, self.index)
        if entry is not None:
            return self._observed(
                "query.run",
                spec,
                start,
                lambda otr: self._replay(spec, entry, sink),
            )
        # Snapshot the invalidation sequence *before* the run: a write
        # landing mid-run bumps it and the store aborts (the rows may
        # predate the write its stamps postdate).
        inv_seq = cache.invalidation_seq
        capture = CaptureSink(
            self._default_sink(spec) if sink is None else sink,
            cache.max_entry_bytes,
        )
        result = self._run_dispatch(spec, start, plan, capture, cancel)
        cache.store(key, capture, result, self.index, inv_seq)
        return result

    def _replay(
        self,
        spec: QuerySpec,
        entry: CacheEntry,
        sink: ResultSink | None,
    ) -> QueryResult:
        """Serve one materialized entry through the caller's sink —
        the sink sees the same emit/emit_final/finish sequence a real
        run produces, so caps, paging, files, and aggregate databases
        all behave identically."""
        t0 = time.monotonic()
        sink = self._default_sink(spec) if sink is None else sink
        sink._claim()
        st = self.pool.acquire(spec.I, sink.thread_output_path(0))
        output_files: list[str] = []
        try:
            if entry.rows:
                sink.emit(st, entry.rows)
            if entry.final_rows:
                sink.emit_final(entry.final_rows)
            summary = sink.finish([st])
        finally:
            out_path = st.finish_output()
            if out_path is not None:
                output_files.append(out_path)
            self.pool.release([st])
        c = entry.counters
        return QueryResult(
            rows=summary.rows,
            elapsed=time.monotonic() - t0,
            dirs_visited=c["dirs_visited"],
            dirs_denied=c["dirs_denied"],
            dbs_opened=c["dbs_opened"],
            dirs_errored=c["dirs_errored"],
            dirs_pruned_by_plan=c["dirs_pruned_by_plan"],
            attaches_elided=c["attaches_elided"],
            output_files=sorted(output_files) if output_files else None,
            truncated=summary.truncated,
            cached=True,
        )

    def _run_local(
        self,
        spec: QuerySpec,
        start: str,
        plan: QueryPlan | None,
        sink: ResultSink | None,
        cancel: CancelToken | None = None,
    ) -> QueryResult:
        """The single-process run path (also the scatter fallback)."""
        sink = self._default_sink(spec) if sink is None else sink
        sink._claim()
        return self._observed(
            "query.run",
            spec,
            start,
            lambda otr: self._run_impl(spec, start, plan, sink, otr, cancel),
        )

    def run_shard(
        self,
        spec: QuerySpec,
        units: list[tuple[str, bool]],
        start_depth: int,
        plan: QueryPlan | None = None,
        sink: ResultSink | None = None,
        agg_path: str | None = None,
    ) -> QueryResult:
        """Process a list of shard work units ``(path, may_descend)``.

        This is the worker-side entry point of scatter-gather
        execution: the shard planner has already enforced root
        reachability and made the descent decisions *above* these
        units, so each unit is processed with full per-directory
        semantics (permissions, plan gates, counters) but units with
        ``may_descend=False`` never expand children. ``start_depth``
        is the absolute depth of the *original* query start, so plan
        depth windows stay relative to it.

        ``agg_path`` names the run's aggregate database file and keeps
        it on disk after the run so the gather phase can fold the
        per-worker ``J`` results and run ``G`` once globally. No
        whole-query observability is recorded here — the parent owns
        the query-level span/counters; workers contribute their
        walker/session metrics through snapshot merging."""
        sink = self._default_sink(spec) if sink is None else sink
        sink._claim()
        norm = [(normalize_path(p), bool(rec)) for p, rec in units]
        trav = Traversal(self.index, self.creds, spec, plan, start_depth)
        return self._walk_units(
            spec, norm, start_depth, trav, sink, obs.tracer(),
            agg_path=agg_path,
        )

    def _scatter(self) -> Any:
        """The engine's lazily-built scatter-gather front end."""
        if self._scatter_engine is None:
            from .scatter import ScatterGatherEngine

            self._scatter_engine = ScatterGatherEngine(
                self,
                processes=self.processes,
                mp_start_method=self.mp_start_method,
            )
        return self._scatter_engine

    def run_single(
        self,
        spec: QuerySpec,
        path: str = "/",
        plan: QueryPlan | None = None,
        sink: ResultSink | None = None,
        cancel: CancelToken | None = None,
    ) -> QueryResult:
        """Process exactly one directory's database (no descent).

        A single directory is the cancellation granularity, so
        ``cancel`` is only checked on entry here."""
        if cancel is not None and cancel.cancelled:
            raise QueryCancelled("query cancelled before dispatch")
        if sink is None:
            sink = MemorySink()
        sink._claim()
        return self._observed(
            "query.run_single",
            spec,
            path,
            lambda otr: self._run_single_impl(spec, path, plan, sink),
        )

    @staticmethod
    def _default_sink(spec: QuerySpec) -> ResultSink:
        if spec.output_prefix is not None:
            return ThreadFileSink(spec.output_prefix)
        return MemorySink()

    # ------------------------------------------------------------------
    # Observability wrapper
    # ------------------------------------------------------------------
    def _observed(
        self,
        kind: str,
        spec: QuerySpec,
        start: str,
        impl: Callable[[Any], QueryResult],
    ) -> QueryResult:
        """Run ``impl`` under the process observability layer: a span
        covering the whole call, counters folded once from the
        result's (already lock-free) tallies, per-stage timings, cache
        hit/miss deltas, and a slow-query log check. With everything
        disabled this is two attribute checks and a straight call."""
        rec = obs.metrics()
        otr = obs.tracer()
        slow = obs.slow_log()
        if not (rec.enabled or otr.enabled or slow.enabled):
            return impl(otr)
        t0 = time.monotonic()
        cache_before = self.index.cache.stats() if rec.enabled else None
        span = otr.start(kind, start=start) if otr.enabled else None
        result: QueryResult | None = None
        error: BaseException | None = None
        try:
            result = impl(otr)
            return result
        except BaseException as exc:
            error = exc
            raise
        finally:
            elapsed = time.monotonic() - t0
            if span is not None:
                otr.end(
                    span,
                    rows=len(result.rows) if result is not None else 0,
                    error=type(error).__name__ if error is not None else None,
                )
            if rec.enabled:
                assert cache_before is not None
                self._fold_metrics(
                    rec, kind, result, error, elapsed, cache_before
                )
            if slow.enabled:
                slow.record(
                    elapsed, kind=kind, detail=spec_label(spec), start=start
                )

    def _fold_metrics(
        self,
        rec: Any,
        kind: str,
        result: QueryResult | None,
        error: BaseException | None,
        elapsed: float,
        cache_before: dict[str, int],
    ) -> None:
        rec.counter("gufi_query_runs_total", kind=kind)
        rec.observe("gufi_query_seconds", elapsed, kind=kind)
        if error is not None:
            rec.counter("gufi_query_failures_total", error=type(error).__name__)
        if result is not None:
            rec.counter("gufi_query_rows_total", len(result.rows))
            rec.counter("gufi_query_dirs_visited_total", result.dirs_visited)
            rec.counter("gufi_query_dirs_denied_total", result.dirs_denied)
            rec.counter("gufi_query_dbs_opened_total", result.dbs_opened)
            rec.counter("gufi_query_dirs_errored_total", result.dirs_errored)
            rec.counter(
                "gufi_query_dirs_pruned_total", result.dirs_pruned_by_plan
            )
            rec.counter(
                "gufi_query_attaches_elided_total", result.attaches_elided
            )
            stage_seconds = result.stage_seconds or {}
            for stage in ("T", "S", "E", "J", "G"):
                rec.counter(
                    "gufi_query_stage_seconds_total",
                    stage_seconds.get(stage, 0.0),
                    stage=stage,
                )
        cache_after = self.index.cache.stats()
        for which in ("meta", "subdir"):
            rec.counter(
                "gufi_session_cache_hits_total",
                cache_after[f"{which}_hits"] - cache_before[f"{which}_hits"],
                kind=which,
            )
            rec.counter(
                "gufi_session_cache_misses_total",
                cache_after[f"{which}_misses"]
                - cache_before[f"{which}_misses"],
                kind=which,
            )

    # ------------------------------------------------------------------
    # Single-directory execution
    # ------------------------------------------------------------------
    def _run_single_impl(
        self,
        spec: QuerySpec,
        path: str,
        plan: QueryPlan | None,
        sink: ResultSink,
    ) -> QueryResult:
        """One directory's database, no descent — what ``gufi_ls`` of
        a single directory needs. The same permission rules apply:
        ancestors must be searchable, the directory itself readable.

        Semantics match one directory of :meth:`run`: a missing index
        directory raises FileNotFoundError; a present-but-corrupt
        database is *counted* (``dirs_errored``) rather than raised;
        ``T`` only executes when ``tsummary`` has rows (and then
        prunes ``S``/``E`` unless ``t_no_prune``); and a plan can skip
        the ``E`` stage — or the attach — exactly as in the walk."""
        t0 = time.monotonic()
        path = normalize_path(path)
        trav = Traversal(self.index, self.creds, spec, plan, path_depth(path))
        trav.check_root_reachable(path)
        db_path = self.index.db_path(path)
        if not db_path.exists():
            raise FileNotFoundError(f"no index directory for {path!r}")

        def errored() -> QueryResult:
            return QueryResult(
                rows=[],
                elapsed=time.monotonic() - t0,
                dirs_visited=0,
                dirs_denied=0,
                dbs_opened=0,
                dirs_errored=1,
            )

        meta = self.index.cached_dir_meta(path)
        if meta is None:
            # db.db exists but cannot be read/parsed: count it, like
            # the walk path does, instead of raising.
            return errored()
        if not can_search_dir(meta.mode, meta.uid, meta.gid, self.creds):
            raise QueryPermissionError(f"permission denied: {path!r}")
        if not can_read_dir(meta.mode, meta.uid, meta.gid, self.creds):
            raise QueryPermissionError(
                f"permission denied (unreadable): {path!r}"
            )

        run_e = bool(spec.E)
        plan_pruned = False
        if trav.plan is not None:
            # The single directory sits at level 0 of its own query.
            process = trav.plan.wants_level(0)
            run_e = run_e and process and trav.plan.dir_can_match(meta)
            plan_pruned = (bool(spec.E) and not run_e) or not process
            if not process or (not run_e and not (spec.T or spec.S)):
                # No stage needs the database at all.
                return QueryResult(
                    rows=[],
                    elapsed=time.monotonic() - t0,
                    dirs_visited=1,
                    dirs_denied=0,
                    dbs_opened=0,
                    dirs_pruned_by_plan=1,
                    attaches_elided=1,
                )

        store = self.index.store(path)
        st = self.pool.acquire(spec.I, sink.thread_output_path(0))
        output_files: list[str] = []
        try:
            st.ctx.current_path = path
            st.ctx.current_depth = path_depth(path)
            session = AttachSession(st.conn, store, "gufi", self.tracer)
            try:
                session.attach_main()
            except sqlite3.DatabaseError:
                return errored()
            rows: list[tuple] = []
            try:
                t_pruned = False
                if spec.T:
                    (n_ts,) = st.conn.execute(
                        "SELECT COUNT(*) FROM gufi.tsummary"
                    ).fetchone()
                    if n_ts:
                        rows.extend(run_sql(st, spec.T))
                        if not spec.t_no_prune:
                            t_pruned = True
                if not t_pruned:
                    if spec.xattrs:
                        session.xattr_views(self.creds)
                    try:
                        if spec.S:
                            rows.extend(run_sql(st, spec.S))
                        if spec.E and run_e:
                            rows.extend(run_sql(st, spec.E))
                    finally:
                        session.drop_xattr_views()
            finally:
                session.close()
            if rows:
                sink.emit(st, rows)
            summary = sink.finish([st])
        finally:
            out_path = st.finish_output()
            if out_path is not None:
                output_files.append(out_path)
            self.pool.release([st])
        return QueryResult(
            rows=summary.rows,
            elapsed=time.monotonic() - t0,
            dirs_visited=1,
            dirs_denied=0,
            dbs_opened=1,
            dirs_pruned_by_plan=1 if plan_pruned else 0,
            output_files=output_files or None,
            truncated=summary.truncated,
        )

    # ------------------------------------------------------------------
    # Parallel walk execution
    # ------------------------------------------------------------------
    def _run_impl(
        self,
        spec: QuerySpec,
        start: str,
        plan: QueryPlan | None,
        sink: ResultSink,
        otr: Any,
        cancel: CancelToken | None = None,
    ) -> QueryResult:
        start = normalize_path(start)
        start_depth = path_depth(start)
        trav = Traversal(
            self.index, self.creds, spec, plan, start_depth, cancel=cancel
        )
        trav.check_root_reachable(start)
        if not self.index.db_path(start).exists():
            raise FileNotFoundError(f"no index directory for {start!r}")
        return self._walk_units(
            spec, [(start, True)], start_depth, trav, sink, otr
        )

    def _walk_units(
        self,
        spec: QuerySpec,
        units: list[tuple[str, bool]],
        start_depth: int,
        trav: Traversal,
        sink: ResultSink,
        otr: Any,
        agg_path: str | None = None,
    ) -> QueryResult:
        """The shared walk body: process every ``(path, may_descend)``
        unit (descending where allowed), then run the J/G merge.
        ``run()`` passes a single recursive unit at the query start;
        ``run_shard()`` passes a shard's worth of units."""
        t0 = time.monotonic()
        pool = self.pool
        index = self.index
        creds = self.creds
        # Stage timings feed QueryResult.stage_seconds; both flags are
        # read once so the per-directory path tests plain locals.
        timing = obs.metrics().enabled
        tracing = otr.enabled
        collect = self.collect_visited
        stage = StageRunner(index, spec, self.tracer, otr, timing, tracing)
        # Thread-ident -> checked-out state, for *this* run only (the
        # walker creates fresh threads per walk). The lock is taken
        # once per thread per run — at checkout — never per directory.
        run_states: dict[int, _ThreadState] = {}
        checkout_lock = threading.Lock()

        def thread_state() -> _ThreadState:
            tid = threading.get_ident()
            st = run_states.get(tid)
            if st is None:
                with checkout_lock:
                    ordinal = len(run_states)
                    st = pool.acquire(
                        spec.I, sink.thread_output_path(ordinal)
                    )
                    run_states[tid] = st
            return st

        def process_dir(unit: tuple[str, bool]) -> list[tuple[str, bool]]:
            source_path, may_descend = unit
            # Cancellation checkpoint: observed before any work for
            # this directory. QueryCancelled is a FatalWalkError, so
            # the walker aborts the whole pool promptly.
            trav.checkpoint()

            def children(paths: list[str]) -> list[tuple[str, bool]]:
                if not may_descend:
                    return []
                return [(child, True) for child in paths]

            st = thread_state()
            if collect:
                # Every touched directory — visited, denied, pruned,
                # elided, errored, or absent — is part of the result's
                # validity token: a change to any of them could change
                # the answer.
                st.touched.append(source_path)
            st.ctx.current_path = source_path
            depth = path_depth(source_path)
            st.ctx.current_depth = depth
            rel_depth = depth - start_depth
            index_dir = index.index_dir(source_path)
            db_path = index.store(source_path).db_path
            # Descent-time 'stat': the validated cache answers warm
            # queries with a dictionary lookup; denied directories are
            # then skipped without ever attaching their database.
            meta = index.cache.get_meta(source_path, db_path)
            attached = False
            if meta is not None:
                if not trav.permitted(meta):
                    st.denied += 1
                    return []
                if trav.elide_warm(meta, rel_depth):
                    # Warm fast path: the cached stats decide
                    # matchability before any SQLite work. No surviving
                    # stage needs the database, so the attach is elided
                    # outright and the walk continues off the cached
                    # child listing.
                    st.visited += 1
                    st.pruned += 1
                    st.elided += 1
                    return children(trav.descend(source_path, meta, rel_depth))
            t_pruned = False
            local_rows: list[tuple] = []
            try:
                if meta is None:
                    # Cold path: one attach serves both the permission
                    # check (reading the summary record) and, if
                    # allowed, the per-directory queries — then the
                    # record is published to the cache, stamp-checked
                    # on both sides of the read.
                    bracket = StampBracket(db_path)
                    if bracket.missing:
                        return []
                    try:
                        stage.attach(st, db_path)
                    except sqlite3.DatabaseError:
                        st.errored += 1
                        return []
                    attached = True
                    try:
                        meta = stage.read_meta(st)
                    except sqlite3.DatabaseError:
                        # A corrupt or truncated shard must not kill
                        # the whole query: count it and move on (the
                        # paper's answer to shard damage is the
                        # periodic rebuild).
                        st.errored += 1
                        return []
                    except Exception:
                        return []
                    if bracket.unchanged():
                        # Publish only when the file is unchanged
                        # across the read — a racing rewrite must
                        # never pin its predecessor's DirMeta.
                        index.cache.put_meta(
                            source_path, bracket.stamp, meta
                        )
                    if not trav.permitted(meta):
                        st.denied += 1
                        return []
                if not attached:
                    # Warm, permitted path: attach only now that the
                    # cached record granted access. A denied user's
                    # query never pulls the database's pages in the
                    # paper's accounting either, because the kernel
                    # refuses the open.
                    try:
                        stage.attach(st, db_path)
                    except sqlite3.DatabaseError:
                        st.errored += 1
                        return []
                    attached = True
                stage.account_io(st, db_path)
                st.visited += 1
                st.opened += 1
                gates = trav.stage_gates(meta, rel_depth)
                if gates.plan_pruned:
                    st.pruned += 1
                if gates.run_t:
                    t_pruned = stage.t_stage(st, local_rows)
                if not t_pruned and (gates.run_s or gates.run_e):
                    stage.s_e_stages(
                        st,
                        index_dir,
                        creds,
                        gates.run_s,
                        gates.run_e,
                        local_rows,
                    )
            finally:
                if attached:
                    StageRunner.detach(st)
            if local_rows:
                sink.emit(st, local_rows)
            return children(
                trav.descend(source_path, meta, rel_depth, t_pruned=t_pruned)
            )

        expand: Callable[[tuple[str, bool]], list[tuple[str, bool]]]
        if tracing:

            def expand(unit: tuple[str, bool]) -> list[tuple[str, bool]]:
                sp = otr.start("query.dir", path=unit[0])
                try:
                    return process_dir(unit)
                finally:
                    otr.end(sp)

        else:
            expand = process_dir

        walker = ParallelTreeWalker(self.nthreads)
        try:
            stats = walker.walk(units, expand)
        except FatalWalkError:
            # Cancellation (and simulated-crash faults) abort the walk
            # after every worker thread has joined, so the checked-out
            # states are idle: flush their outputs and return them to
            # the pool instead of orphaning them — a long-lived server
            # times queries out routinely and must not leak a pool's
            # worth of connections each time.
            aborted = list(run_states.values())
            for st in aborted:
                st.finish_output()
            pool.release(aborted)
            raise

        states = list(run_states.values())
        visited = sum(st.visited for st in states)
        denied = sum(st.denied for st in states)
        opened = sum(st.opened for st in states)
        errored = sum(st.errored for st in states)
        plan_pruned = sum(st.pruned for st in states)
        elided = sum(st.elided for st in states)
        t_time = sum(st.t_time for st in states)
        s_time = sum(st.s_time for st in states)
        e_time = sum(st.e_time for st in states)
        visited_paths: list[str] | None = None
        if collect:
            touched: list[str] = []
            for st in states:
                touched.extend(st.touched)
            visited_paths = touched

        # --------------------------------------------------------------
        # Merge phase: J per thread database, then G on the aggregate.
        # --------------------------------------------------------------
        merge = MergeRunner(
            spec,
            pool,
            self.users,
            self.groups,
            otr,
            timing,
            tracing,
            agg_path=agg_path,
            keep_aggregate=agg_path is not None,
        )
        try:
            g_rows = merge.run(states)
            if g_rows:
                sink.emit_final(g_rows)
            summary = sink.finish(states)
        finally:
            # Output files flush (and record) even when J/G raised;
            # states go back to the pool either way.
            output_files = []
            for st in states:
                out_path = st.finish_output()
                if out_path is not None:
                    output_files.append(out_path)
            pool.release(states)
            merge.cleanup()

        if stats.errors:
            item, exc = stats.errors[0]
            raise RuntimeError(
                f"query failed at {item[0]!r}: {exc}"
            ) from exc

        return QueryResult(
            rows=summary.rows,
            elapsed=time.monotonic() - t0,
            dirs_visited=visited,
            dirs_denied=denied,
            dbs_opened=opened,
            dirs_errored=errored,
            dirs_pruned_by_plan=plan_pruned,
            attaches_elided=elided,
            output_files=sorted(output_files) if output_files else None,
            truncated=summary.truncated,
            walk_stats=stats,
            visited_paths=visited_paths,
            stage_seconds=(
                {
                    "T": t_time,
                    "S": s_time,
                    "E": e_time,
                    "J": merge.j_time,
                    "G": merge.g_time,
                }
                if timing
                else None
            ),
        )
