"""The layered query engine: traversal / stages / sinks.

Public surface of :mod:`repro.core.engine`:

* :class:`QueryEngine` — the executor; ``run()`` / ``run_single()``
  accept an optional :class:`ResultSink`;
* the sink implementations (:class:`MemorySink`,
  :class:`ThreadFileSink`, :class:`BoundedSink`,
  :class:`PaginatedSink`, :class:`AggregateDBSink`);
* the shared datatypes (:class:`QuerySpec`, :class:`QueryResult`,
  :class:`QueryPermissionError`, :func:`spec_label`);
* the layer classes themselves (:class:`Traversal`,
  :class:`StageRunner`, :class:`MergeRunner`) for extension;
* :class:`ScatterGatherEngine` / :func:`plan_shards` — the
  multi-process scatter-gather front end behind ``processes > 1``;
* :class:`ResultCache` / :class:`CaptureSink` — the materialized
  query-result cache behind ``result_cache=`` (changefeed-driven
  invalidation; see :mod:`repro.core.engine.resultcache`).

:class:`repro.core.query.GUFIQuery` remains the stable facade over
this engine; import from here when you need sink control or direct
layer access.
"""

from .engine import QueryEngine
from .resultcache import CacheEntry, CaptureSink, ResultCache
from .scatter import ScatterGatherEngine, ShardPlan, plan_shards
from .sinks import (
    AggregateDBSink,
    BoundedSink,
    MemorySink,
    PaginatedSink,
    ResultSink,
    Row,
    SinkSummary,
    ThreadFileSink,
)
from .stages import MergeRunner, StageRunner
from .traversal import (
    CancelToken,
    QueryCancelled,
    StageGates,
    Traversal,
    normalize_path,
    path_depth,
)
from .types import (
    QueryPermissionError,
    QueryResult,
    QuerySpec,
    spec_label,
)

__all__ = [
    "AggregateDBSink",
    "BoundedSink",
    "CacheEntry",
    "CancelToken",
    "CaptureSink",
    "MemorySink",
    "MergeRunner",
    "PaginatedSink",
    "QueryCancelled",
    "QueryEngine",
    "QueryPermissionError",
    "QueryResult",
    "QuerySpec",
    "ResultCache",
    "ResultSink",
    "Row",
    "ScatterGatherEngine",
    "ShardPlan",
    "SinkSummary",
    "StageGates",
    "StageRunner",
    "ThreadFileSink",
    "Traversal",
    "normalize_path",
    "path_depth",
    "plan_shards",
    "spec_label",
]
