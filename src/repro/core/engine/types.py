"""Shared engine datatypes: the query spec and result contracts.

These are the vocabulary every layer speaks — traversal produces work
the stage layer executes, sinks absorb rows, and the engine folds
everything into a :class:`QueryResult`. They live in their own module
so no layer has to import another just for a type.

:class:`QuerySpec` keeps ``gufi_query``'s flag names verbatim (paper
§III-C2): the mapping from tool flags to pipeline stages *is* the
public interface this reproduction preserves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scan.walker import WalkStats


class QueryPermissionError(PermissionError):
    """The query root (or an ancestor of it) is not searchable."""


@dataclass
class QuerySpec:
    """One query, in ``gufi_query`` flag terms."""

    I: str | None = None  # noqa: E741 - matches the tool's flag name
    T: str | None = None
    S: str | None = None
    E: str | None = None
    J: str | None = None
    G: str | None = None
    #: build the per-user temporary xattr views for E queries
    xattrs: bool = False
    #: stop T-pruning (process tsummary but keep descending)
    t_no_prune: bool = False
    #: stream SELECT rows to per-thread files ``<prefix>.<n>`` instead
    #: of accumulating them in memory (the real tool's ``-o`` flag,
    #: for result sets too large to hold). Tab-separated, one row per
    #: line; QueryResult.rows stays empty for streamed stages.
    #: Shorthand for passing a
    #: :class:`~repro.core.engine.sinks.ThreadFileSink` explicitly.
    output_prefix: str | None = None

    def per_dir_stages(self) -> bool:
        """Whether any per-directory stage (T/S/E) is present."""
        return bool(self.T or self.S or self.E)


@dataclass
class QueryResult:
    rows: list[tuple]
    elapsed: float
    dirs_visited: int
    dirs_denied: int
    dbs_opened: int
    #: directories skipped because their database was corrupt/unreadable
    dirs_errored: int = 0
    #: directories whose stage execution the query plan skipped
    #: (stats gate proved no row can match, or depth window excluded
    #: the level)
    dirs_pruned_by_plan: int = 0
    #: plan-pruned directories that never attached their database at
    #: all (warm cache answered permission + matchability)
    attaches_elided: int = 0
    #: per-thread output files when a file sink / output_prefix was used
    output_files: list[str] | None = None
    #: True when the result sink hit its row cap and dropped rows
    #: (bounded/paginated sinks; see :mod:`repro.core.engine.sinks`)
    truncated: bool = False
    walk_stats: WalkStats | None = None
    #: wall-clock seconds spent per SQL stage (T/S/E summed across
    #: worker threads, J/G once), populated only when the process
    #: metrics recorder is enabled (see :mod:`repro.obs`)
    stage_seconds: dict[str, float] | None = None
    #: every source path the walk touched (visited, denied, pruned,
    #: elided, errored), collected only when a result cache needs a
    #: validity token for this run (see engine/resultcache.py); None
    #: when collection was off or the set is unreliable (worker crash)
    visited_paths: list[str] | None = None
    #: path -> (db.db stamp, listing stamp) the walk's DirMeta cache
    #: validated its reads against, shipped back from scatter-gather
    #: workers so the parent's result-cache store can cross-check its
    #: store-time stamps against the actual reads (single-process runs
    #: leave this None — the stamps are in the engine's own cache)
    visited_stamps: dict[str, tuple] | None = None
    #: True when this result was replayed from the materialized result
    #: cache instead of a traversal
    cached: bool = False

    def scalar(self) -> object:
        """Convenience for single-value results."""
        if not self.rows or not self.rows[0]:
            return None
        return self.rows[0][0]


def spec_label(spec: QuerySpec) -> str:
    """Compact one-line description of a spec, for the slow-query log
    and trace attributes (SQL whitespace-collapsed and truncated)."""
    parts = []
    for flag in ("I", "T", "S", "E", "J", "G"):
        sql = getattr(spec, flag)
        if sql:
            sql = " ".join(sql.split())
            parts.append(f"{flag}={sql[:60]}")
    return "; ".join(parts) or "<empty spec>"
