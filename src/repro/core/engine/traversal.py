"""Layer 1 — traversal: who may go where, and what descends.

This layer owns every decision that happens *before* SQL runs in a
directory (and the one after — descent):

* **permission enforcement** (paper §III-A5): every ancestor of the
  query root must grant search (``x``); each visited directory must
  grant search *and* read to the caller's credentials, judged against
  the preserved mode/uid/gid in its summary record;
* **plan gating** (:mod:`repro.core.plan`): the depth window and the
  summary-statistics matchability gates, including the decision to
  *elide* a directory's SQLite attach entirely when the warm
  :class:`~repro.core.index.DirMetaCache` already answers permission
  and matchability;
* **descent control**: tsummary pruning and rollup cuts stop the walk
  (a rolled-up database already contains its subtree, §III-C3), the
  plan's ``max_level`` / subtree-``maxdepth`` bounds cut whole
  subtrees, and child work units come from the index's cached
  subdirectory listings;
* **cooperative cancellation**: a :class:`CancelToken` (a deadline, a
  caller-side kill, or both) is observed once per directory, *before*
  any work for that directory happens, so a query past its deadline
  stops traversing instead of finishing the tree and reporting late —
  the enforcement half of the slow-query machinery the serving layer
  needs (:mod:`repro.serve`).

The layer never touches a SQLite connection: it reads only the
(mtime+inode-validated) metadata cache. Everything that needs the
database lives in :mod:`repro.core.engine.stages`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.fs.permissions import (
    Credentials,
    can_read_dir,
    can_search_dir,
)
from repro.scan.walker import FatalWalkError

from ..index import DirMeta, GUFIIndex
from ..plan import QueryPlan
from .types import QueryPermissionError, QuerySpec


class QueryCancelled(FatalWalkError):
    """The run's :class:`CancelToken` fired mid-walk.

    Subclassing :class:`~repro.scan.walker.FatalWalkError` is what
    makes cancellation *prompt*: the walker's abort path drains the
    remaining work queue without processing it, so every worker thread
    stops within one directory of the flag being raised, and the
    exception propagates out of :meth:`QueryEngine.run`.
    """


class CancelToken:
    """Cooperative cancel flag, optionally with a monotonic deadline.

    Worker threads poll it (one attribute read plus, when a deadline is
    set, one clock read) once per directory; nothing sleeps on it. The
    flag is a plain bool written once — atomic under the GIL — so the
    token is safely shared between an asyncio serving thread and the
    engine's walker threads without locking.
    """

    __slots__ = ("_cancelled", "deadline")

    def __init__(self, deadline: float | None = None) -> None:
        #: absolute ``time.monotonic()`` deadline (None: manual only)
        self.deadline = deadline
        self._cancelled = False

    @classmethod
    def after(cls, seconds: float) -> "CancelToken":
        """A token that trips ``seconds`` from now."""
        return cls(deadline=time.monotonic() + seconds)

    def cancel(self) -> None:
        """Trip the flag (idempotent; callable from any thread)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled or (
            self.deadline is not None and time.monotonic() >= self.deadline
        )

    def remaining(self) -> float | None:
        """Seconds until the deadline (None when deadline-less)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()


def normalize_path(path: str) -> str:
    """Collapse a user path to the canonical ``/a/b`` form."""
    return "/" + "/".join(p for p in path.split("/") if p)


def path_depth(path: str) -> int:
    """Absolute depth of a canonical path (``/`` is 0)."""
    return 0 if path == "/" else path.count("/")


@dataclass
class StageGates:
    """Which per-directory stages survive gating for one directory."""

    run_t: bool
    run_s: bool
    run_e: bool
    #: True when the plan dropped at least one requested stage here
    plan_pruned: bool


class Traversal:
    """One run's traversal policy: credentials + plan + spec flags.

    Construction is cheap; the engine builds one per ``run()`` /
    ``run_single()`` call. A plan that cannot matter (no per-directory
    stage to skip) is normalised away up front so the per-directory
    path tests a plain ``None``.
    """

    def __init__(
        self,
        index: GUFIIndex,
        creds: Credentials,
        spec: QuerySpec,
        plan: QueryPlan | None,
        start_depth: int = 0,
        cancel: CancelToken | None = None,
    ) -> None:
        self.index = index
        self.creds = creds
        self.spec = spec
        self.plan = plan if spec.per_dir_stages() else None
        self.start_depth = start_depth
        self.cancel = cancel

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Raise :class:`QueryCancelled` if the run's token fired.

        Called once per directory before any per-directory work, so
        the cancellation granularity — and therefore how far past its
        deadline a query can run — is bounded by the cost of a single
        directory, not of the whole tree."""
        token = self.cancel
        if token is not None and token.cancelled:
            raise QueryCancelled(
                "query cancelled"
                + (
                    " (deadline exceeded)"
                    if token.deadline is not None
                    and time.monotonic() >= token.deadline
                    else ""
                )
            )

    # ------------------------------------------------------------------
    # Permission enforcement
    # ------------------------------------------------------------------
    def check_root_reachable(self, start: str) -> None:
        """Every ancestor of the query root must grant search (x) —
        the kernel's path-walk rule, reproduced for the index. With a
        warm cache this is one dictionary lookup (plus a validating
        stat) per ancestor, not one database open per ancestor."""
        parts = [p for p in start.split("/") if p]
        cur = ""
        for part in parts[:-1] if parts else []:
            cur = f"{cur}/{part}"
            meta = self.index.cached_dir_meta(cur)
            if meta is None:
                raise FileNotFoundError(f"no index directory for {cur!r}")
            if not can_search_dir(meta.mode, meta.uid, meta.gid, self.creds):
                raise QueryPermissionError(
                    f"permission denied traversing {cur!r}"
                )

    def permitted(self, meta: DirMeta) -> bool:
        """x on the directory (to pass through) and r (to enumerate):
        the two bits one visited directory must grant."""
        return can_search_dir(
            meta.mode, meta.uid, meta.gid, self.creds
        ) and can_read_dir(meta.mode, meta.uid, meta.gid, self.creds)

    # ------------------------------------------------------------------
    # Plan gating
    # ------------------------------------------------------------------
    def wants_level(self, rel_depth: int) -> bool:
        return self.plan.wants_level(rel_depth) if self.plan else True

    def elide_warm(self, meta: DirMeta, rel_depth: int) -> bool:
        """Warm fast path: with cached metadata at hand, decide whether
        *no* surviving stage needs this directory's database — in which
        case the attach is elided outright and the walk continues off
        the cached child listing."""
        plan = self.plan
        if plan is None:
            return False
        spec = self.spec
        process_level = plan.wants_level(rel_depth)
        run_e = bool(spec.E) and process_level and plan.dir_can_match(meta)
        if not process_level or (bool(spec.E) and not run_e):
            if not (process_level and (spec.T or spec.S)):
                return True
        return False

    def stage_gates(self, meta: DirMeta, rel_depth: int) -> StageGates:
        """Effective stages for a directory that *will* be attached.
        Outside the depth window nothing runs; the stats gate (sound
        only for entries-shaped E) can further drop E."""
        spec = self.spec
        process_level = self.wants_level(rel_depth)
        run_t = bool(spec.T) and process_level
        run_s = bool(spec.S) and process_level
        run_e = bool(spec.E) and process_level
        plan_pruned = False
        if self.plan is not None:
            if run_e and not self.plan.dir_can_match(meta):
                run_e = False
            if (
                (bool(spec.T) and not run_t)
                or (bool(spec.S) and not run_s)
                or (bool(spec.E) and not run_e)
            ):
                plan_pruned = True
        return StageGates(
            run_t=run_t, run_s=run_s, run_e=run_e, plan_pruned=plan_pruned
        )

    # ------------------------------------------------------------------
    # Descent control
    # ------------------------------------------------------------------
    def descend(
        self,
        source_path: str,
        meta: DirMeta,
        rel_depth: int,
        t_pruned: bool = False,
    ) -> list[str]:
        """The directory's child work units, or nothing when descent
        stops here: a tsummary answered the subtree (``t_pruned``), a
        rolled-up database already contains it, the plan's depth
        window is exhausted, or the cached subtree ``maxdepth`` proves
        ``min_level`` is unreachable."""
        if t_pruned or meta.rolledup:
            return []
        if self.plan is not None:
            sub_max = None
            stats = meta.stats
            if stats is not None and stats.maxdepth is not None:
                sub_max = stats.maxdepth - self.start_depth
            if not self.plan.descend_allowed(rel_depth, sub_max):
                return []
        prefix = "" if source_path == "/" else source_path
        return [
            f"{prefix}/{name}"
            for name in self.index.cached_subdir_names(source_path)
        ]
