"""Layer 3 — result sinks: where a query's rows go.

The engine never decides what to do with rows; it hands them to a
:class:`ResultSink`. Worker threads emit per-directory row batches
(``emit``), the merge phase emits the final ``G``-stage rows once
(``emit_final``), and the engine collects the sink's summary at the
end (``finish``). This is the seam that lets one query path serve a
library caller (in-memory rows), a bulk export (per-thread files, the
real tool's ``-o``), a follow-up SQL consumer (an aggregate results
database), and a web server that must cap and page its responses —
without forking the engine per consumer.

Concurrency contract: ``emit`` is called by walker threads, at most
once per directory *that produced rows* (plan-pruned and denied
directories never reach the sink), always with the emitting thread's
own checked-out :class:`~repro.core.session._ThreadState`. Sinks that
keep per-thread data on the state (memory, files) need no locks; sinks
with shared state (bounded, paginated, database) take a lock per
*batch*, not per row, so the lock-free per-directory hot path is
preserved for the common case of directories that emit nothing.

A sink instance serves **one** run. Reusing one across runs is not
supported (the engine raises); create a fresh sink per call.
"""

from __future__ import annotations

import sqlite3
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.session import _ThreadState

#: a row as the engine produces it
Row = tuple


@dataclass
class SinkSummary:
    """What a sink hands back to the engine at the end of a run."""

    #: rows to expose on ``QueryResult.rows`` (may be empty for
    #: streaming sinks whose rows went elsewhere)
    rows: list[Row]
    #: True when the sink dropped rows to honour a cap
    truncated: bool = False


class ResultSink:
    """Protocol/base class for result sinks.

    Subclasses override the methods they care about; the defaults
    describe a sink that ignores everything (useful for counting-only
    queries). ``thread_output_path`` is consulted once per worker
    thread at checkout so file-backed sinks can reuse the session
    pool's persistent output handles.
    """

    _consumed: bool = False

    def _claim(self) -> None:
        """Engine-internal: mark this sink as used by a run."""
        if self._consumed:
            raise RuntimeError(
                "a ResultSink instance serves exactly one run; "
                "create a fresh sink per query"
            )
        self._consumed = True

    def thread_output_path(self, ordinal: int) -> str | None:
        """Path for worker ``ordinal``'s streamed output file, or None
        when this sink does not stream to per-thread files."""
        return None

    def emit(self, st: "_ThreadState", rows: list[Row]) -> None:
        """Absorb one directory's SELECT rows (worker thread)."""

    def emit_final(self, rows: list[Row]) -> None:
        """Absorb the ``G``-stage rows (engine thread, once)."""

    def finish(self, states: list["_ThreadState"]) -> SinkSummary:
        """Summarise the run. Called once, after the walk and merge,
        while the run's thread states are still checked out."""
        return SinkSummary(rows=[])


class MemorySink(ResultSink):
    """The default: rows accumulate in memory, per thread, lock-free.

    Per-directory rows land on the emitting thread's own state buffer
    and are concatenated once at the end (state-checkout order, then
    ``G`` rows) — byte-identical to the historical monolith."""

    def __init__(self) -> None:
        self._final: list[Row] = []

    def emit(self, st: "_ThreadState", rows: list[Row]) -> None:
        st.rows.extend(rows)

    def emit_final(self, rows: list[Row]) -> None:
        self._final.extend(rows)

    def finish(self, states: list["_ThreadState"]) -> SinkSummary:
        out: list[Row] = []
        for st in states:
            out.extend(st.rows)
        out.extend(self._final)
        return SinkSummary(rows=out)


class ThreadFileSink(ResultSink):
    """Stream rows to per-thread files ``<prefix>.<ordinal>`` — the
    real ``gufi_query -o``, for result sets too large to hold.

    Rows are written tab-separated, one per line, to the session
    pool's persistent output handles (reused across runs with the same
    prefix). ``G``-stage rows still come back in memory, matching the
    monolith: the merge phase is a reduction, so its output is small
    by construction."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self._final: list[Row] = []

    def thread_output_path(self, ordinal: int) -> str | None:
        return f"{self.prefix}.{ordinal}"

    def emit(self, st: "_ThreadState", rows: list[Row]) -> None:
        out = st.out
        if out is None:  # pragma: no cover - pool always opened it
            st.rows.extend(rows)
            return
        for row in rows:
            out.write(
                "\t".join("" if v is None else str(v) for v in row) + "\n"
            )

    def emit_final(self, rows: list[Row]) -> None:
        self._final.extend(rows)

    def finish(self, states: list["_ThreadState"]) -> SinkSummary:
        return SinkSummary(rows=list(self._final))


class BoundedSink(ResultSink):
    """Cap the result at ``max_rows``; surplus rows are counted, not
    kept. The server threads its response cap through this sink so a
    runaway query cannot materialise an unbounded row list.

    Row order is arrival order (not state-checkout order): bounding is
    inherently a shared decision, so rows interleave as threads finish
    directories. The lock is taken once per emitted batch."""

    def __init__(self, max_rows: int) -> None:
        if max_rows < 0:
            raise ValueError("max_rows must be >= 0")
        self.max_rows = max_rows
        self.dropped = 0
        self._rows: list[Row] = []
        self._lock = threading.Lock()

    def _absorb(self, rows: list[Row]) -> None:
        with self._lock:
            room = self.max_rows - len(self._rows)
            if room >= len(rows):
                self._rows.extend(rows)
            else:
                if room > 0:
                    self._rows.extend(rows[:room])
                self.dropped += len(rows) - max(room, 0)

    def emit(self, st: "_ThreadState", rows: list[Row]) -> None:
        self._absorb(rows)

    def emit_final(self, rows: list[Row]) -> None:
        self._absorb(rows)

    @property
    def truncated(self) -> bool:
        return self.dropped > 0

    def finish(self, states: list["_ThreadState"]) -> SinkSummary:
        return SinkSummary(rows=self._rows, truncated=self.truncated)


class PaginatedSink(BoundedSink):
    """A bounded sink whose kept rows are served in fixed-size pages —
    the server's streamable response shape: collect at most
    ``page_size * max_pages`` rows, then hand out one page at a time.

    ``finish`` exposes every kept row (so ``QueryResult.rows`` still
    works for library callers); ``page(n)``/``num_pages`` are for the
    serving layer. The cap is ``page_size * max_pages`` unless an
    exact ``max_rows`` is given (for caps that are not a whole number
    of pages — the last page is then short)."""

    def __init__(
        self,
        page_size: int,
        max_pages: int | None = None,
        max_rows: int | None = None,
    ) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be > 0")
        if max_rows is not None:
            cap = max_rows
        elif max_pages is not None:
            cap = page_size * max_pages
        else:
            cap = 2**63 - 1
        super().__init__(cap)
        self.page_size = page_size

    @property
    def num_pages(self) -> int:
        with self._lock:
            n = len(self._rows)
        return (n + self.page_size - 1) // self.page_size

    def page(self, number: int) -> list[Row]:
        """Rows of zero-based page ``number`` (empty past the end)."""
        if number < 0:
            raise ValueError("page number must be >= 0")
        lo = number * self.page_size
        with self._lock:
            return list(self._rows[lo : lo + self.page_size])


class AggregateDBSink(ResultSink):
    """Write every emitted row into a table of a results database.

    For result sets that feed further SQL (reports joining query
    output against other data) or exceed memory but still need random
    access. The table is created on the first batch with columns
    ``c0..cN`` sized to the row arity; reads go through
    :meth:`connect` after the run."""

    def __init__(self, path: str, table: str = "results") -> None:
        if not table.replace("_", "").isalnum():
            raise ValueError(f"invalid table name {table!r}")
        self.path = path
        self.table = table
        self.row_count = 0
        self._lock = threading.Lock()
        self._conn: sqlite3.Connection | None = None
        self._insert: str | None = None

    def _absorb(self, rows: list[Row]) -> None:
        if not rows:
            return
        with self._lock:
            if self._conn is None:
                self._conn = sqlite3.connect(
                    self.path, check_same_thread=False
                )
                cols = ", ".join(f"c{i}" for i in range(len(rows[0])))
                self._conn.execute(
                    f"CREATE TABLE IF NOT EXISTS {self.table} ({cols})"
                )
                marks = ", ".join("?" for _ in range(len(rows[0])))
                self._insert = (
                    f"INSERT INTO {self.table} VALUES ({marks})"
                )
            assert self._insert is not None
            self._conn.executemany(self._insert, rows)
            self.row_count += len(rows)

    def emit(self, st: "_ThreadState", rows: list[Row]) -> None:
        self._absorb(rows)

    def emit_final(self, rows: list[Row]) -> None:
        self._absorb(rows)

    def finish(self, states: list["_ThreadState"]) -> SinkSummary:
        with self._lock:
            if self._conn is not None:
                self._conn.commit()
                self._conn.close()
                self._conn = None
        return SinkSummary(rows=[])

    def connect(self) -> sqlite3.Connection:
        """Open the results database for reading (after the run)."""
        return sqlite3.connect(self.path)
