"""Materialized query results with changefeed-driven invalidation.

The tsummary/rollup optimizations cut work *per query*; nothing in the
paper's design memoizes *across* queries, so a dashboard re-running
the same selective query pays the full permission-gated traversal
every time even when the index has not changed. This module adds that
missing layer: a bounded, credential-scoped :class:`ResultCache` that
materializes complete result row sets (walk-stage rows plus the J/G
aggregate output) keyed by ``(resolved credentials, normalized query
spec, plan window, start path)``.

Correctness model — an entry may be served only when it is *provably*
equal to what a cold run would return right now:

* **Validity token.** At capture time each entry records (a) the
  stamp of every directory the walk visited — the ``db.db``
  :func:`~repro.core.db.file_stamp` (inode, mtime_ns, size) plus the
  physical directory's :func:`~repro.core.db.dir_stamp` for listing
  changes — including the start path's ancestors (whose permission
  bits gate reachability), and (b) the index's applied changefeed
  cursor (:class:`~repro.core.checkpoint.ChangefeedCheckpoint`).
  Revalidation is O(visited dirs) stats — not O(traversal), which
  would open every database and re-run SQL — or O(journal drain)
  when the changefeed fast path applies (below).

* **Push invalidation.** Every writer in this codebase (update,
  refresh, rollup/unrollup, changefeed apply) already announces
  itself through :class:`~repro.core.index.DirMetaCache`'s
  ``invalidate*`` hooks; the result cache subscribes to them and
  drops exactly the entries whose visited set intersects the
  invalidated path (or subtree). An entry for ``/home/alice`` is
  untouched by churn under ``/proj``.

* **Changefeed fast path.** When a :class:`~repro.fs.changelog
  .ChangeJournal` is attached, a lookup first consults the applied
  cursor: if no invalidation reached this cache since capture and
  the events in ``(entry cursor, applied cursor]`` are retained and
  touch none of the entry's visited directories, the entry is valid
  without a single stat. An evicted window (overflow) falls back to
  the stamp pass — never to trust. The journal only sees writers
  that *announce* themselves (in-process hooks, changefeed applies),
  so the stat-free path is bounded: unless the cache is constructed
  with ``journal_exclusive=True`` (the changefeed is provably the
  sole writer), every entry re-runs the stamp pass at least once per
  ``stamp_ttl`` seconds, so an out-of-band rewrite from another
  process is detected within the TTL instead of never.

* **Capture races.** Rows are captured through a tee
  (:class:`CaptureSink`) while stamps are taken *after* the run; a
  write racing the run could therefore stamp fresh over stale rows.
  Three guards close this: any invalidation observed between run
  start and store aborts the capture; each visited directory's
  store-time stamp is cross-checked against the stamp the walk's
  DirMeta cache validated (a mismatch means an out-of-band rewrite
  landed mid-run — capture aborted); and the DirMeta cache itself
  only publishes entries whose stamp is unchanged across the read
  (see :meth:`GUFIIndex.cached_dir_meta`). For scatter-gather runs
  the walk's DirMeta entries live in the *worker* processes, so each
  worker ships the per-path stamps its walk validated alongside its
  visited set (``QueryResult.visited_stamps``) and the parent
  cross-checks those — the guard holds across process boundaries.

* **Credential scoping.** The key includes the resolved
  ``(uid, gid, groups)`` — the same key the server's warm-session
  LRU uses — so entries can never be replayed across principals,
  and an optional per-scope byte budget keeps one tenant's hot
  queries from evicting everyone else's.

The cache assumes deterministic SQL (no ``random()``/``now``-style
terms), the same assumption the scatter-gather merge contract already
makes for ``gufi_query``-shaped specs.
"""

from __future__ import annotations

import dataclasses
import re
import threading
import time
import weakref
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Iterable

from repro import obs

from .. import db as dbmod
from ..checkpoint import ChangefeedCheckpoint
from .sinks import ResultSink, Row, SinkSummary
from .types import QueryResult, QuerySpec

if TYPE_CHECKING:
    from repro.fs.changelog import ChangeEvent, ChangeJournal
    from repro.fs.permissions import Credentials

    from ..index import GUFIIndex
    from ..plan import QueryPlan
    from ..session import _ThreadState

#: (uid, gid, supplementary groups) — the server's session-LRU key
CredKey = tuple[int, int, frozenset[int]]
#: full cache key: (credentials, normalized spec, plan window, start)
CacheKey = tuple[CredKey, tuple, tuple | None, str]
#: db.db file stamp (None: no database at capture time)
DbStamp = tuple[int, int, int] | None
#: physical index-directory stamp (None: listing not load-bearing)
DirStamp = tuple[int, int] | None

#: QueryResult counters replayed verbatim from the captured run
_COUNTER_FIELDS = (
    "dirs_visited",
    "dirs_denied",
    "dbs_opened",
    "dirs_errored",
    "dirs_pruned_by_plan",
    "attaches_elided",
)


#: quoted SQL regions — string literals and quoted identifiers —
#: matched whole so their interior never takes part in whitespace
#: collapsing (''/""/`` doubling stays inside its region)
_QUOTED_RE = re.compile(
    r"'(?:[^']|'')*'"
    r'|"(?:[^"]|"")*"'
    r"|`(?:[^`]|``)*`"
    r"|\[[^\]]*\]"
)
_WS_RE = re.compile(r"\s+")


def _norm_sql(sql: str | None) -> str | None:
    """Whitespace-collapsed SQL, so formatting differences share an
    entry — collapsed only *outside* quoted regions. Whitespace inside
    a string literal (or quoted identifier) is part of the query's
    meaning: ``name = 'a  b'`` and ``name = 'a b'`` are different
    queries and must never share a cache key. Unquoted runs collapse
    to a single space, never to nothing — ``'a' 'b'`` (a literal with
    an alias) must not become the escaped literal ``'a''b'``."""
    if not sql:
        return None
    out: list[str] = []
    pos = 0
    for m in _QUOTED_RE.finditer(sql):
        out.append(_WS_RE.sub(" ", sql[pos : m.start()]))
        out.append(m.group(0))
        pos = m.end()
    out.append(_WS_RE.sub(" ", sql[pos:]))
    return "".join(out).strip()


def spec_key(spec: QuerySpec) -> tuple:
    """Normalized row-determining fields of a spec.

    ``output_prefix`` is deliberately excluded: it only chooses the
    default *sink* shape, never the rows, and replay goes through the
    caller's sink anyway."""
    return (
        _norm_sql(spec.I),
        _norm_sql(spec.T),
        _norm_sql(spec.S),
        _norm_sql(spec.E),
        _norm_sql(spec.J),
        _norm_sql(spec.G),
        bool(spec.xattrs),
        bool(spec.t_no_prune),
    )


def plan_key(plan: "QueryPlan | None") -> tuple | None:
    """The plan window as a value key (QueryPlan is a frozen dataclass
    of primitives)."""
    if plan is None:
        return None
    return dataclasses.astuple(plan)


def cred_key(creds: "Credentials") -> CredKey:
    return (creds.uid, creds.gid, frozenset(creds.groups))


def make_key(
    creds: "Credentials",
    spec: QuerySpec,
    plan: "QueryPlan | None",
    start: str,
) -> CacheKey:
    return (cred_key(creds), spec_key(spec), plan_key(plan), start)


def _ancestors(path: str) -> list[str]:
    """Every strict ancestor of ``path`` (normalized), root included:
    their search bits gate reachability, so their stamps are part of
    the validity token."""
    if path == "/":
        return []
    parts = [p for p in path.split("/") if p]
    out = ["/"]
    cur = ""
    for part in parts[:-1]:
        cur = f"{cur}/{part}"
        out.append(cur)
    return out


def _rows_nbytes(rows: Iterable[Row]) -> int:
    """Cheap size estimate of a row batch for the byte budget."""
    n = 0
    for row in rows:
        n += 64
        for v in row:
            if isinstance(v, (str, bytes)):
                n += len(v)
            else:
                n += 16
    return n


class CaptureSink(ResultSink):
    """Tee wrapper: forwards every callback to the caller's sink while
    recording the full pre-cap row stream for the cache.

    Recording happens *before* the inner sink absorbs the batch, so a
    bounded/paginated caller sink's row cap never truncates the cached
    entry — replay re-applies whatever cap the future caller brings.
    A capture that outgrows ``max_bytes`` poisons itself (recording
    stops, rows are freed, forwarding continues untouched).
    """

    def __init__(self, inner: ResultSink, max_bytes: int) -> None:
        self.inner = inner
        self.max_bytes = max_bytes
        self.rows: list[Row] = []
        self.final_rows: list[Row] = []
        self.nbytes = 0
        self.overflowed = False
        self._lock = threading.Lock()

    def _claim(self) -> None:
        super()._claim()
        self.inner._claim()

    def thread_output_path(self, ordinal: int) -> str | None:
        return self.inner.thread_output_path(ordinal)

    def _record(self, bucket: list[Row], rows: list[Row]) -> None:
        if self.overflowed:
            return
        with self._lock:
            if self.overflowed:
                return
            self.nbytes += _rows_nbytes(rows)
            if self.nbytes > self.max_bytes:
                self.overflowed = True
                self.rows = []
                self.final_rows = []
                return
            bucket.extend(rows)

    def emit(self, st: "_ThreadState", rows: list[Row]) -> None:
        self._record(self.rows, rows)
        self.inner.emit(st, rows)

    def emit_final(self, rows: list[Row]) -> None:
        self._record(self.final_rows, rows)
        self.inner.emit_final(rows)

    def finish(self, states: list["_ThreadState"]) -> SinkSummary:
        return self.inner.finish(states)


@dataclasses.dataclass
class CacheEntry:
    """One materialized result plus its validity token."""

    key: CacheKey
    #: walk-stage rows (per-directory batches, capture order)
    rows: list[Row]
    #: G-stage rows (emitted once via ``emit_final`` on replay)
    final_rows: list[Row]
    #: QueryResult counters replayed verbatim
    counters: dict[str, int]
    #: visited path -> (db.db stamp, physical-dir stamp)
    stamps: dict[str, tuple[DbStamp, DirStamp]]
    #: applied changefeed cursor at capture time
    cursor: int
    #: the cache's invalidation sequence at capture/last validation
    inv_seq: int
    nbytes: int
    #: ``time.monotonic()`` of the last stamp pass (store counts as
    #: one) — bounds how long the stat-free changefeed fast path may
    #: serve this entry without re-statting (see ``stamp_ttl``)
    stamped_at: float = 0.0
    hits: int = 0


class ResultCache:
    """Bounded credential-scoped cache of materialized query results.

    Thread-safe: the server shares one instance across every warm
    session. ``max_scope_bytes`` bounds how much of the budget a
    single credential key may hold (the per-tenant budget); the global
    bound evicts LRU-first across scopes.
    """

    def __init__(
        self,
        max_bytes: int = 64 * 1024 * 1024,
        max_entries: int = 256,
        max_entry_bytes: int | None = None,
        max_scope_bytes: int | None = None,
        journal: "ChangeJournal | None" = None,
        journal_exclusive: bool = False,
        stamp_ttl: float = 2.0,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be > 0")
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.max_entry_bytes = (
            max_entry_bytes if max_entry_bytes is not None else max_bytes // 4
        )
        self.max_scope_bytes = max_scope_bytes
        self.journal = journal
        #: the changefeed is provably the only writer of this index —
        #: only then may the stat-free fast path serve an entry
        #: indefinitely. Writers in *other processes* never fire this
        #: cache's hooks nor journal their writes, so the default is
        #: False and the fast path is bounded by ``stamp_ttl``.
        self.journal_exclusive = journal_exclusive
        #: max seconds the fast path may skip the stamp pass when the
        #: journal is not exclusive (out-of-band writes are detected
        #: within this bound instead of never)
        self.stamp_ttl = stamp_ttl
        self._entries: OrderedDict[CacheKey, CacheEntry] = OrderedDict()
        self._lock = threading.RLock()
        self.total_bytes = 0
        self._scope_bytes: dict[CredKey, int] = {}
        #: bumped by every DirMetaCache invalidation on a bound index;
        #: captures observe it to detect writes racing a run
        self.invalidation_seq = 0
        #: bound DirMeta caches as (weakref, listener) pairs — weak so
        #: a long-lived shared cache never pins short-lived per-index
        #: caches (or their listener cycles) in memory
        self._bound: list[tuple[weakref.ref, Any]] = []
        # advisory counters (mirrored into obs metrics when enabled)
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.capture_aborts = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind_index(self, index: "GUFIIndex") -> None:
        """Subscribe to the index's DirMeta-cache invalidation hooks —
        the push half of invalidation. Idempotent per index handle.

        The subscription is weak on both sides: the listener holds no
        strong reference to this cache, and ``_bound`` holds none to
        the index's DirMeta cache — binding many short-lived indexes
        to one long-lived shared cache leaks nothing."""
        cache = index.cache
        with self._lock:
            live = [(ref, hook) for ref, hook in self._bound
                    if ref() is not None]
            if any(ref() is cache for ref, _ in live):
                self._bound = live
                return
            self_ref = weakref.ref(self)
            cache_ref = weakref.ref(cache)

            def hook(path: str | None, subtree: bool) -> None:
                rc = self_ref()
                if rc is None:
                    c = cache_ref()
                    if c is not None:
                        c.remove_listener(hook)
                    return
                rc._on_invalidate(path, subtree)

            live.append((cache_ref, hook))
            self._bound = live
            cache.add_listener(hook)

    def close(self) -> None:
        """Detach from every bound index's invalidation hooks. Safe to
        call repeatedly; the cache remains usable (lookups just lose
        push invalidation until indexes are bound again)."""
        with self._lock:
            bound, self._bound = self._bound, []
        for cache_ref, hook in bound:
            cache = cache_ref()
            if cache is not None:
                cache.remove_listener(hook)

    def attach_journal(
        self, journal: "ChangeJournal", exclusive: bool = False
    ) -> None:
        """Enable the changefeed fast path: lookups may validate from
        the journal window instead of per-directory stats. Pass
        ``exclusive=True`` only when the changefeed is the sole writer
        of the index — it lifts the ``stamp_ttl`` bound on stat-free
        validation."""
        self.journal = journal
        self.journal_exclusive = exclusive

    # ------------------------------------------------------------------
    # Push invalidation (DirMetaCache listener)
    # ------------------------------------------------------------------
    def _on_invalidate(self, path: str | None, subtree: bool) -> None:
        rec = obs.metrics()
        with self._lock:
            self.invalidation_seq += 1
            if not self._entries:
                return
            if path is None:
                dropped = len(self._entries)
                self._entries.clear()
                self.total_bytes = 0
                self._scope_bytes.clear()
            else:
                parent = path.rsplit("/", 1)[0] or "/"
                prefix = path.rstrip("/") + "/"
                doomed = [
                    key
                    for key, entry in self._entries.items()
                    if self._touches(entry, path, parent, prefix, subtree)
                ]
                for key in doomed:
                    self._drop_locked(key)
                dropped = len(doomed)
            if dropped:
                self.invalidations += dropped
                if rec.enabled:
                    rec.counter(
                        "gufi_result_cache_invalidations_total", dropped
                    )

    @staticmethod
    def _touches(
        entry: CacheEntry, path: str, parent: str, prefix: str, subtree: bool
    ) -> bool:
        stamps = entry.stamps
        if path in stamps or parent in stamps:
            return True
        if subtree:
            return any(p.startswith(prefix) for p in stamps)
        return False

    def _drop_locked(self, key: CacheKey) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        self.total_bytes -= entry.nbytes
        scope = key[0]
        left = self._scope_bytes.get(scope, 0) - entry.nbytes
        if left > 0:
            self._scope_bytes[scope] = left
        else:
            self._scope_bytes.pop(scope, None)

    # ------------------------------------------------------------------
    # Lookup / validation
    # ------------------------------------------------------------------
    def lookup(self, key: CacheKey, index: "GUFIIndex") -> CacheEntry | None:
        """The entry for ``key``, revalidated — or None (miss)."""
        rec = obs.metrics()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
        if entry is None:
            if rec.enabled:
                rec.counter("gufi_result_cache_misses_total")
            return None
        t0 = time.perf_counter()
        mono0 = time.monotonic()
        valid, applied, stamped = self._validate(entry, index)
        if rec.enabled:
            rec.observe(
                "gufi_result_cache_validate_seconds",
                time.perf_counter() - t0,
            )
        with self._lock:
            # the push hooks may have dropped or replaced it meanwhile
            current = self._entries.get(key)
            if current is not entry:
                valid = False
            if not valid:
                if current is entry:
                    self._drop_locked(key)
                    self.invalidations += 1
                    if rec.enabled:
                        rec.counter("gufi_result_cache_invalidations_total")
                self.misses += 1
                if rec.enabled:
                    rec.counter("gufi_result_cache_misses_total")
                return None
            # Entry mutations happen only here, under the lock and
            # after the identity re-check, so concurrent validations
            # of the same entry cannot race each other. ``inv_seq``
            # may legitimately advance past the validated value: any
            # invalidation that *touched* this entry dropped it (the
            # identity check above fails), so a surviving entry was
            # untouched by whatever bumped the sequence.
            entry.cursor = max(entry.cursor, applied)
            entry.inv_seq = self.invalidation_seq
            if stamped:
                entry.stamped_at = max(entry.stamped_at, mono0)
            self._entries.move_to_end(key)
            entry.hits += 1
            self.hits += 1
        if rec.enabled:
            rec.counter("gufi_result_cache_hits_total")
        return entry

    def _validate(
        self, entry: CacheEntry, index: "GUFIIndex"
    ) -> tuple[bool, int, bool]:
        """Revalidate one entry without mutating it (the caller folds
        the outcome in under the lock). Returns ``(valid, applied
        cursor, stamp pass ran)``."""
        applied = ChangefeedCheckpoint(index.root).load()
        journal = self.journal
        if journal is not None:
            # Changefeed fast path: provably untouched without a stat.
            # Requires that no invalidation reached this cache since
            # the entry was (re)validated — the push hooks are how
            # non-changefeed writers (rollup, update, refresh)
            # announce themselves. Writers in *other* processes
            # announce nothing, so unless the journal is exclusive the
            # stat-free answer is only trusted within ``stamp_ttl`` of
            # the entry's last stamp pass.
            fresh = self.journal_exclusive or (
                time.monotonic() - entry.stamped_at < self.stamp_ttl
            )
            if fresh and entry.inv_seq == self.invalidation_seq:
                events = journal.events_between(entry.cursor, applied)
                if events is not None and not any(
                    self._event_touches(e, entry.stamps) for e in events
                ):
                    return True, applied, False
            # Precise event-driven invalidation: a retained window
            # that touches a visited directory kills the entry without
            # the stamp pass; an evicted window (overflow) falls
            # through to stamps — never to trust.
            if applied > entry.cursor:
                events = journal.events_between(entry.cursor, applied)
                if events is not None and any(
                    self._event_touches(e, entry.stamps) for e in events
                ):
                    return False, applied, False
        # Stamp pass: O(visited dirs) stats against the recorded token.
        for path, (db_stamp, dir_stamp) in entry.stamps.items():
            if dbmod.file_stamp(index.db_path(path)) != db_stamp:
                return False, applied, True
            if dir_stamp is not None:
                if dbmod.dir_stamp(index.index_dir(path)) != dir_stamp:
                    return False, applied, True
        return True, applied, True

    @staticmethod
    def _event_touches(
        event: "ChangeEvent", stamps: dict[str, tuple[DbStamp, DirStamp]]
    ) -> bool:
        """Conservative: does this journal event affect any visited
        directory? File events touch their parent's database; directory
        events touch the directory and its parent; structural directory
        ops (rename/rmdir) touch the whole subtree."""
        paths = [event.path]
        if event.dst_path is not None:
            paths.append(event.dst_path)
        for p in paths:
            if p in stamps:
                return True
            parent = p.rsplit("/", 1)[0] or "/"
            if parent in stamps:
                return True
        if event.is_dir and event.op in ("rename", "rmdir"):
            for p in paths:
                prefix = p.rstrip("/") + "/"
                if any(s.startswith(prefix) for s in stamps):
                    return True
        return False

    # ------------------------------------------------------------------
    # Store
    # ------------------------------------------------------------------
    def store(
        self,
        key: CacheKey,
        capture: CaptureSink,
        result: QueryResult,
        index: "GUFIIndex",
        inv_seq_at_start: int,
    ) -> bool:
        """Materialize one finished run. Returns False (and caches
        nothing) when the capture cannot be proven race-free or is
        over budget."""
        if capture.overflowed or result.visited_paths is None:
            self._abort_capture()
            return False
        if self.invalidation_seq != inv_seq_at_start:
            # a writer invalidated something while the run was in
            # flight: the rows may predate the write its stamps
            # postdate — abort, the next run re-captures
            self._abort_capture()
            return False
        cache = index.cache
        # The stamps the walk actually validated its reads against.
        # Single-process runs leave them in this engine's DirMeta
        # cache; scatter-gather workers ship theirs back explicitly
        # (the parent's cache never saw the reads, so peeking it alone
        # would make this cross-check vacuous for every path).
        shipped = result.visited_stamps or {}
        stamped_at = time.monotonic()
        stamps: dict[str, tuple[DbStamp, DirStamp]] = {}
        for path in set(result.visited_paths):
            walk_db, walk_dir = shipped.get(path, (None, None))
            if walk_db is None:
                walk_db = cache.peek_stamp(path)
            if walk_dir is None:
                walk_dir = cache.peek_subdir_stamp(path)
            db_stamp = dbmod.file_stamp(index.db_path(path))
            if walk_db is not None and db_stamp != tuple(walk_db):
                self._abort_capture()
                return False
            dir_stamp = dbmod.dir_stamp(index.index_dir(path))
            if walk_dir is not None and dir_stamp != tuple(walk_dir):
                self._abort_capture()
                return False
            stamps[path] = (db_stamp, dir_stamp)
        start = key[3]
        for anc in _ancestors(start):
            stamps.setdefault(
                anc, (dbmod.file_stamp(index.db_path(anc)), None)
            )
        cursor = ChangefeedCheckpoint(index.root).load()
        nbytes = capture.nbytes + 128 * len(stamps)
        if nbytes > self.max_entry_bytes:
            self._abort_capture()
            return False
        entry = CacheEntry(
            key=key,
            rows=capture.rows,
            final_rows=capture.final_rows,
            counters={f: getattr(result, f) for f in _COUNTER_FIELDS},
            stamps=stamps,
            cursor=cursor,
            inv_seq=inv_seq_at_start,
            nbytes=nbytes,
            stamped_at=stamped_at,
        )
        rec = obs.metrics()
        with self._lock:
            if self.invalidation_seq != inv_seq_at_start:
                self.capture_aborts += 1
                return False
            if key in self._entries:
                self._drop_locked(key)
            self._entries[key] = entry
            self.total_bytes += nbytes
            scope = key[0]
            self._scope_bytes[scope] = (
                self._scope_bytes.get(scope, 0) + nbytes
            )
            evicted = self._evict_locked(scope)
            if evicted and rec.enabled:
                rec.counter("gufi_result_cache_evictions_total", evicted)
        return True

    def _abort_capture(self) -> None:
        with self._lock:
            self.capture_aborts += 1

    def _evict_locked(self, scope: CredKey) -> int:
        """LRU eviction: first bring the storing scope under its
        per-tenant budget, then the cache under its global bounds."""
        evicted = 0
        if self.max_scope_bytes is not None:
            while self._scope_bytes.get(scope, 0) > self.max_scope_bytes:
                victim = next(
                    (k for k in self._entries if k[0] == scope), None
                )
                if victim is None:
                    break
                self._drop_locked(victim)
                evicted += 1
        while self._entries and (
            self.total_bytes > self.max_bytes
            or len(self._entries) > self.max_entries
        ):
            self._drop_locked(next(iter(self._entries)))
            evicted += 1
        self.evictions += evicted
        return evicted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.total_bytes = 0
            self._scope_bytes.clear()
            self.invalidation_seq += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.total_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "capture_aborts": self.capture_aborts,
            }
