"""Layer 2 — stages: SQL execution against directory databases.

Everything that needs a SQLite connection lives here: attaching a
directory's ``db.db`` read-only, reading its summary record on the
cold path, the per-directory ``T``/``S``/``E`` stages (with the
per-user xattr views and per-stage wall-clock timings), traced-I/O
accounting, and the ``J``/``G`` merge phase that owns the run's
aggregate database lifecycle.

The stage layer is policy-free: it never decides *whether* a stage
runs (that is :mod:`repro.core.engine.traversal`'s job, expressed as a
:class:`~repro.core.engine.traversal.StageGates`) nor where rows go
(:mod:`repro.core.engine.sinks`). It just executes.
"""

from __future__ import annotations

import os
import sqlite3
import time
from pathlib import Path
from typing import Any

from repro.sim.blktrace import IOTracer
from repro.store.attach import AttachSession
from repro.store.layout import DirStore

from .. import db as dbmod
from ..index import DirMeta, GUFIIndex
from ..session import ThreadStatePool, _ThreadState
from ..sqlfuncs import QueryContext, register
from .types import QuerySpec


def run_sql(st: _ThreadState, sql: str) -> list[tuple]:
    """Execute one stage statement; SELECT rows come back, DML does
    its work against the thread's scratch database."""
    cur = st.conn.execute(sql)
    if cur.description is not None:
        return cur.fetchall()
    return []


class StageRunner:
    """One run's per-directory stage executor.

    ``timing`` and ``tracing`` are resolved once per run (both flags
    are attribute checks on the process observability singletons) so
    the per-directory path tests plain booleans.
    """

    def __init__(
        self,
        index: GUFIIndex,
        spec: QuerySpec,
        tracer: IOTracer | None,
        otr: Any,
        timing: bool,
        tracing: bool,
    ) -> None:
        self.index = index
        self.spec = spec
        self.tracer = tracer
        self.otr = otr
        self.timing = timing
        self.tracing = tracing

    # ------------------------------------------------------------------
    # Attach / metadata
    # ------------------------------------------------------------------
    def attach(self, st: _ThreadState, db_path: Path) -> None:
        """Attach a directory database read-only as ``gufi``. Raises
        ``sqlite3.DatabaseError`` for corrupt/unreadable files."""
        if self.tracing:
            with self.otr.span("query.attach", path=str(db_path)):
                dbmod.attach_ro(st.conn, db_path, "gufi", tracer=None)
        else:
            dbmod.attach_ro(st.conn, db_path, "gufi", tracer=None)

    @staticmethod
    def detach(st: _ThreadState) -> None:
        st.conn.commit()
        dbmod.detach(st.conn, "gufi")

    @staticmethod
    def read_meta(st: _ThreadState) -> DirMeta:
        """The directory's summary record, via the already-attached
        database (the cold path's combined permission read)."""
        return GUFIIndex.read_dir_meta(st.conn, "gufi")

    def account_io(self, st: _ThreadState, db_path: Path) -> None:
        """Charge the traced-I/O model: entry-level queries read the
        whole database; summary/tsummary-only queries read just those
        tables' pages (the schema's headline win)."""
        if self.tracer is None:
            return
        spec = self.spec
        if spec.E or not (spec.S or spec.T):
            nbytes = dbmod.db_file_bytes(db_path)
        else:
            tables = set()
            if spec.S:
                tables.add("summary")
            if spec.T:
                tables.add("tsummary")
            nbytes = dbmod.table_bytes(st.conn, "gufi", tables)
        self.tracer.record(str(db_path), nbytes)

    # ------------------------------------------------------------------
    # Per-directory stages
    # ------------------------------------------------------------------
    def t_stage(self, st: _ThreadState, rows: list[tuple]) -> bool:
        """Run ``T`` when the attached directory has tsummary rows.
        Returns True when the subtree is answered here and descent
        should prune (Fig 10's 230× query 4)."""
        spec = self.spec
        pruned = False
        tb = time.perf_counter() if self.timing else 0.0
        sp = self.otr.start("query.sql", stage="T") if self.tracing else None
        try:
            (n_ts,) = st.conn.execute(
                "SELECT COUNT(*) FROM gufi.tsummary"
            ).fetchone()
            if n_ts:
                assert spec.T is not None
                rows.extend(run_sql(st, spec.T))
                if not spec.t_no_prune:
                    pruned = True
        finally:
            if sp is not None:
                self.otr.end(sp)
            if self.timing:
                st.t_time += time.perf_counter() - tb
        return pruned

    def s_e_stages(
        self,
        st: _ThreadState,
        index_dir: Path,
        creds: Any,
        run_s: bool,
        run_e: bool,
        rows: list[tuple],
    ) -> None:
        """Run ``S`` and/or ``E`` (with the per-user xattr views built
        around ``E`` when the spec asks for them). The views go through
        an :class:`~repro.store.attach.AttachSession` in adopt mode —
        the main attach belongs to the walk unit — so the "only
        readable shards attach" gate is the store layer's, not ours."""
        spec = self.spec
        session: AttachSession | None = None
        if spec.xattrs and run_e:
            session = AttachSession(
                st.conn, DirStore(index_dir), "gufi", self.tracer
            )
            session.adopt_main()
            session.xattr_views(creds)
        try:
            if run_s:
                assert spec.S is not None
                self._timed_stage(st, "S", spec.S, rows)
            if run_e:
                assert spec.E is not None
                self._timed_stage(st, "E", spec.E, rows)
        finally:
            if session is not None:
                session.drop_xattr_views()

    def _timed_stage(
        self, st: _ThreadState, stage: str, sql: str, rows: list[tuple]
    ) -> None:
        tb = time.perf_counter() if self.timing else 0.0
        sp = (
            self.otr.start("query.sql", stage=stage) if self.tracing else None
        )
        try:
            rows.extend(run_sql(st, sql))
        finally:
            if sp is not None:
                self.otr.end(sp)
            if self.timing:
                if stage == "S":
                    st.s_time += time.perf_counter() - tb
                else:
                    st.e_time += time.perf_counter() - tb


class MergeRunner:
    """The run's merge phase: ``J`` once per thread database into a
    shared aggregate database, then ``G`` once against the aggregate.

    Owns the aggregate database's lifecycle: created from the ``I``
    script, attached per thread for ``J``, queried for ``G`` with the
    SQL helper functions registered, and unlinked in :meth:`cleanup`
    (which the engine calls from its ``finally`` so the scratch file
    never outlives the run, even when a stage raises)."""

    def __init__(
        self,
        spec: QuerySpec,
        pool: ThreadStatePool,
        users: dict[int, str],
        groups: dict[int, str],
        otr: Any,
        timing: bool,
        tracing: bool,
        agg_path: str | None = None,
        keep_aggregate: bool = False,
    ) -> None:
        self.spec = spec
        self.pool = pool
        self.users = users
        self.groups = groups
        self.otr = otr
        self.timing = timing
        self.tracing = tracing
        self.j_time = 0.0
        self.g_time = 0.0
        #: explicit aggregate location (scatter-gather workers pin the
        #: file so the parent can fold it); None = pool scratch file
        self._explicit_agg = agg_path
        self.keep_aggregate = keep_aggregate
        self._agg_path: str | None = None

    def run(self, states: list[_ThreadState]) -> list[tuple]:
        """Execute J/G if the spec has them; returns the G rows."""
        spec = self.spec
        if not (spec.J or spec.G):
            return []
        agg_path = (
            self._explicit_agg
            if self._explicit_agg is not None
            else self.pool.aggregate_path()
        )
        self._agg_path = agg_path
        agg = sqlite3.connect(agg_path)
        try:
            if spec.I:
                agg.executescript(spec.I)
            agg.commit()
        finally:
            agg.close()
        if spec.J:
            self._j_stage(states, agg_path)
        if spec.G:
            return self._g_stage(agg_path)
        return []

    def _j_stage(self, states: list[_ThreadState], agg_path: str) -> None:
        spec = self.spec
        jb = time.perf_counter() if self.timing else 0.0
        sp = self.otr.start("query.sql", stage="J") if self.tracing else None
        try:
            for st in states:
                st.conn.execute(
                    "ATTACH DATABASE ? AS aggregate", (agg_path,)
                )
                try:
                    assert spec.J is not None
                    st.conn.executescript(spec.J)
                    st.conn.commit()
                finally:
                    st.conn.execute("DETACH DATABASE aggregate")
        finally:
            if sp is not None:
                self.otr.end(sp)
            if self.timing:
                self.j_time = time.perf_counter() - jb

    def _g_stage(self, agg_path: str) -> list[tuple]:
        spec = self.spec
        gb = time.perf_counter() if self.timing else 0.0
        sp = self.otr.start("query.sql", stage="G") if self.tracing else None
        try:
            agg = sqlite3.connect(agg_path)
            try:
                register(
                    agg, QueryContext(users=self.users, groups=self.groups)
                )
                assert spec.G is not None
                cur = agg.execute(spec.G)
                if cur.description is not None:
                    return cur.fetchall()
                return []
            finally:
                agg.close()
        finally:
            if sp is not None:
                self.otr.end(sp)
            if self.timing:
                self.g_time = time.perf_counter() - gb

    def cleanup(self) -> None:
        """Remove the aggregate database file, if one was created —
        unless the run asked to keep it (scatter-gather workers leave
        the file behind for the parent's fold)."""
        if self._agg_path is not None:
            if not self.keep_aggregate:
                try:
                    os.unlink(self._agg_path)
                except OSError:
                    pass
            self._agg_path = None
