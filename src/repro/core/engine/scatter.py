"""Scatter-gather query execution over subtree shards (multi-process).

The thread-parallel engine is GIL-bound: per-stage timings show the
cold hot path dominated by Python, not SQLite, so one process tops out
at roughly one core of useful work regardless of ``nthreads``. This
module is the way past that — the partitioned-parallel-query design of
Brindexer and Icicle applied to a GUFI tree:

* a **shard planner** walks the top levels of the index through the
  warm :class:`~repro.core.index.DirMetaCache`, replicating the
  engine's exact descent decisions (permissions, rollup cuts,
  tsummary pruning, plan depth windows), and splits the tree into a
  *spine* (every expanded directory, dispatched as a single-directory
  no-descend unit) and a *frontier* (subtree roots processed
  recursively). Frontier siblings that are permission-compatible with
  their parent — rollup's own grouping predicate,
  :func:`~repro.core.rollup.rollup_compatible` — are packed into the
  same shard, and shards are balanced by ``DirStats.totfiles``;
* one :class:`~repro.core.engine.engine.QueryEngine` per **worker
  process** runs its shard via ``run_shard``. Workers are spawn-safe:
  the task payload carries only the index path, ``Credentials``,
  ``QuerySpec``, ``QueryPlan``, and the unit list — all picklable.
  Under the default ``fork`` start method the parent's warm index
  cache is inherited for free;
* the **gather** folds everything back through the caller's single
  :class:`~repro.core.engine.sinks.ResultSink`: worker rows are
  emitted in worker order, per-worker aggregate databases (the ``J``
  stage output) are row-unioned into one parent aggregate on which
  ``G`` runs exactly once, and ``QueryResult`` counters,
  ``stage_seconds``, and obs metric snapshots are merged from every
  worker so observability stays whole-query.

Crash semantics: workers report results through a *result file*
(pickle + atomic rename), never a pipe the parent must block on. A
worker that dies without writing its file — OOM-killed, segfaulted —
surfaces as its shard's units counted in ``dirs_errored`` (plus a
``gufi_scatter_worker_crashes_total`` metric), not as a hang. A worker
that *reports* an exception re-raises in the parent, matching the
single-process walk-error contract.

Merge contract (documented in ARCHITECTURE.md): for scatter-gather to
be equivalent to a single-process run, ``J`` must be append-only into
the aggregate (``INSERT ... SELECT``) and ``I`` must be pure DDL —
both already true of every ``gufi_query``-shaped spec, where ``G`` is
a reduction over rows ``J`` deposited.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import sqlite3
import time
import traceback
from collections import defaultdict
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro import obs
from repro.fs.permissions import Credentials
from repro.scan.walker import WalkStats

from .. import db as dbmod
from ..index import DirMeta, GUFIIndex
from ..plan import QueryPlan
from ..rollup import rollup_compatible
from ..sqlfuncs import QueryContext, register
from .engine import QueryEngine
from .sinks import MemorySink, ResultSink
from .traversal import Traversal, normalize_path, path_depth
from .types import QueryResult, QuerySpec

#: set around fork-start so workers inherit the parent's warm index
#: handle (DirMeta cache included) instead of re-opening cold; spawn
#: children never see it and fall back to ``GUFIIndex.open``
_FORK_INDEX: GUFIIndex | None = None

#: one shard work unit: (source path, may_descend)
Unit = tuple[str, bool]


# ----------------------------------------------------------------------
# Shard plan
# ----------------------------------------------------------------------
@dataclass
class Shard:
    """One worker's slice of the tree."""

    units: list[Unit] = field(default_factory=list)
    weight: int = 0


@dataclass
class ShardPlan:
    """The planner's output: balanced shards plus bookkeeping the
    tests and benchmarks introspect."""

    shards: list[Shard]
    #: directories the planner expanded (each dispatched as a
    #: no-descend unit inside some shard)
    spine: list[str]
    #: recursive subtree roots across all shards
    frontier: list[str]
    start_depth: int


def _unit_weight(meta: DirMeta | None) -> int:
    """Balance weight of a recursive unit: the subtree's total file
    count when the summary stats carry one, else 1."""
    if meta is not None and meta.stats is not None:
        tot = meta.stats.totfiles
        if tot is not None:
            return max(1, int(tot))
    return 1


def _t_prunes(
    index: GUFIIndex, trav: Traversal, spec: QuerySpec, path: str, rel_depth: int
) -> bool:
    """Would the engine's T stage prune descent at this directory?
    Mirrors the walk: T runs only inside the plan's depth window, and
    prunes when tsummary has rows (unless ``t_no_prune``)."""
    if not spec.T or spec.t_no_prune or not trav.wants_level(rel_depth):
        return False
    try:
        conn = dbmod.open_ro(index.db_path(path))
    except Exception:
        return False
    try:
        (n,) = conn.execute("SELECT COUNT(*) FROM tsummary").fetchone()
        return bool(n)
    except sqlite3.Error:
        return False
    finally:
        conn.close()


def plan_shards(
    index: GUFIIndex,
    trav: Traversal,
    spec: QuerySpec,
    start: str,
    start_depth: int,
    processes: int,
    overshard: int = 4,
    max_levels: int = 4,
) -> ShardPlan | None:
    """Partition the subtree under ``start`` into balanced shards.

    Levels are expanded breadth-first until the recursive frontier is
    wide enough (``processes * overshard``) or ``max_levels`` deep.
    Every descent decision replicates the engine's own traversal layer
    — a directory the single-process walk would not descend into is
    never expanded here — so workers collectively visit exactly the
    directories one process would. Returns ``None`` when the tree is
    too narrow to shard (fewer than two frontier groups), in which
    case the caller falls back to single-process execution.
    """
    target = max(2, processes * overshard)
    metas: dict[str, DirMeta | None] = {}
    parents: dict[str, str] = {}
    spine: list[str] = []
    candidates = [start]
    level = 0
    while candidates and len(candidates) < target and level < max_levels:
        next_level: list[str] = []
        expanded = False
        for path in candidates:
            meta = metas.get(path)
            if path not in metas:
                meta = index.cached_dir_meta(path)
                metas[path] = meta
            spine.append(path)
            if meta is None or not trav.permitted(meta):
                # the worker processing this unit does the counting
                # (denied / errored); nothing descends below it
                continue
            rel_depth = path_depth(path) - start_depth
            t_pruned = _t_prunes(index, trav, spec, path, rel_depth)
            children = trav.descend(path, meta, rel_depth, t_pruned=t_pruned)
            if not children:
                continue
            expanded = True
            for child in children:
                parents[child] = path
                next_level.append(child)
        if not expanded:
            candidates = []
            break
        candidates = next_level
        level += 1

    frontier = candidates
    #: work groups kept together in one shard: [(path, may_descend,
    #: weight), ...]
    groups: list[list[tuple[str, bool, int]]] = []
    spine_rides_along = True
    if frontier:
        # Group frontier siblings that rollup could have merged into
        # their parent — they share a permission shape, so keeping
        # them in one shard keeps each worker's profile coherent.
        by_parent: dict[str, list[str]] = defaultdict(list)
        for path in frontier:
            by_parent[parents.get(path, start)].append(path)
        for parent, kids in by_parent.items():
            pmeta = metas.get(parent)
            compat: list[tuple[str, bool, int]] = []
            for kid in kids:
                kmeta = metas.get(kid)
                if kid not in metas:
                    kmeta = index.cached_dir_meta(kid)
                    metas[kid] = kmeta
                w = _unit_weight(kmeta)
                if (
                    pmeta is not None
                    and kmeta is not None
                    and rollup_compatible(
                        pmeta.mode, pmeta.uid, pmeta.gid,
                        kmeta.mode, kmeta.uid, kmeta.gid,
                    )
                ):
                    compat.append((kid, True, w))
                else:
                    groups.append([(kid, True, w)])
            if compat:
                groups.append(compat)

        # A compatibility group heavier than a fair share would defeat
        # balancing: break it back into single-directory groups.
        total_weight = sum(w for g in groups for _, _, w in g)
        fair = total_weight / max(1, processes)
        split: list[list[tuple[str, bool, int]]] = []
        for g in groups:
            if len(g) > 1 and sum(w for _, _, w in g) > fair:
                split.extend([item] for item in g)
            else:
                split.append(g)
        groups = split
    else:
        # The walk exhausted the tree during planning: every visitable
        # directory is on the spine. Shard the complete enumeration as
        # single-directory units instead of giving up — small-but-wide
        # trees still parallelise.
        groups = [
            [(path, False, _unit_weight(metas.get(path)))] for path in spine
        ]
        spine_rides_along = False
    if len(groups) < 2:
        return None

    # LPT greedy pack: heaviest group onto the lightest shard.
    nbins = min(processes, len(groups))
    shards = [Shard() for _ in range(nbins)]
    for g in sorted(groups, key=lambda g: -sum(w for _, _, w in g)):
        bin_ = min(shards, key=lambda s: s.weight)
        bin_.units.extend((path, rec) for path, rec, _ in g)
        bin_.weight += sum(w for _, _, w in g)
    if spine_rides_along:
        # Expanded directories ride along as single-directory units.
        for path in spine:
            bin_ = min(shards, key=lambda s: s.weight)
            bin_.units.append((path, False))
            bin_.weight += 1
    for shard in shards:
        shard.units.sort()
    return ShardPlan(
        shards=shards,
        spine=spine,
        frontier=sorted(frontier),
        start_depth=start_depth,
    )


# ----------------------------------------------------------------------
# Worker protocol
# ----------------------------------------------------------------------
@dataclass
class _WorkerTask:
    """Everything a worker process needs — picklable by construction
    (spawn-safe): paths, plain dataclasses, and primitives only."""

    worker_id: int
    index_root: str
    creds: Credentials
    spec: QuerySpec  # G stripped; J kept; output handled by the parent
    plan: QueryPlan | None
    units: list[Unit]
    start_depth: int
    nthreads: int
    users: dict[int, str]
    groups: dict[int, str]
    #: where the worker leaves its J-stage aggregate (None: no J)
    agg_path: str | None
    #: where the worker writes its pickled result (atomic rename)
    result_path: str
    #: enable the worker's own metrics registry and ship a snapshot
    obs_metrics: bool
    #: collect the shard's touched paths (the parent's result cache
    #: needs them as a validity token; workers have no cache)
    collect_paths: bool = False
    #: test hook, called with worker_id before any work (picklable
    #: module-level function; crash tests kill the process here)
    worker_init: Callable[[int], None] | None = None


@dataclass
class _WorkerResult:
    """What comes back through the result file."""

    worker_id: int
    rows: list[tuple]
    counters: dict[str, int]
    stage_seconds: dict[str, float] | None
    walk_processed: int
    walk_errored: int
    elapsed: float
    metrics: dict | None
    error: str | None
    #: the shard's touched paths when the parent asked for them
    visited: list[str] | None = None
    #: path -> (db.db stamp, listing stamp) this worker's DirMeta
    #: cache validated during the walk — the parent's result-cache
    #: store cross-checks these against its own store-time stamps
    #: (its cache never saw the reads; see resultcache.store)
    visited_stamps: dict[str, tuple] | None = None


_COUNTER_FIELDS = (
    "dirs_visited",
    "dirs_denied",
    "dbs_opened",
    "dirs_errored",
    "dirs_pruned_by_plan",
    "attaches_elided",
)


def _worker_main(task: _WorkerTask) -> None:
    """Worker process entry point: run the shard, write the result
    file. Never raises — failures travel back as ``error`` text."""
    payload: _WorkerResult
    try:
        # A forked child inherits the parent's live registry; recording
        # into it would double-count once the snapshot is merged back.
        # Start from a fresh (or null) recorder either way.
        obs.disable()
        if task.obs_metrics:
            obs.enable(metrics=True)
        if task.worker_init is not None:
            task.worker_init(task.worker_id)
        fork_index = _FORK_INDEX
        if fork_index is not None and str(fork_index.root) == task.index_root:
            index = fork_index  # warm cache, copy-on-write
        else:
            index = GUFIIndex.open(task.index_root)
        engine = QueryEngine(
            index,
            creds=task.creds,
            nthreads=task.nthreads,
            users=dict(task.users),
            groups=dict(task.groups),
        )
        engine.collect_visited = task.collect_paths
        try:
            result = engine.run_shard(
                task.spec,
                task.units,
                task.start_depth,
                plan=task.plan,
                sink=MemorySink(),
                agg_path=task.agg_path,
            )
        finally:
            engine.close()
        visited_stamps: dict[str, tuple] | None = None
        if task.collect_paths and result.visited_paths is not None:
            visited_stamps = {
                p: (
                    index.cache.peek_stamp(p),
                    index.cache.peek_subdir_stamp(p),
                )
                for p in set(result.visited_paths)
            }
        walk = result.walk_stats
        payload = _WorkerResult(
            worker_id=task.worker_id,
            rows=result.rows,
            counters={f: getattr(result, f) for f in _COUNTER_FIELDS},
            stage_seconds=result.stage_seconds,
            walk_processed=walk.items_processed if walk else 0,
            walk_errored=walk.items_errored if walk else 0,
            elapsed=result.elapsed,
            metrics=obs.snapshot().to_dict() if task.obs_metrics else None,
            error=None,
            visited=result.visited_paths,
            visited_stamps=visited_stamps,
        )
    except BaseException:
        payload = _WorkerResult(
            worker_id=task.worker_id,
            rows=[],
            counters={},
            stage_seconds=None,
            walk_processed=0,
            walk_errored=0,
            elapsed=0.0,
            metrics=None,
            error=traceback.format_exc(),
        )
    tmp = task.result_path + ".tmp"
    with open(tmp, "wb") as fh:
        pickle.dump(payload, fh)
    os.replace(tmp, task.result_path)


# ----------------------------------------------------------------------
# The gather side
# ----------------------------------------------------------------------
class ScatterGatherEngine:
    """Multi-process front end over a :class:`QueryEngine`.

    Owned lazily by the engine when ``processes > 1``; ``run`` has the
    engine's exact signature and result contract. The planner, the
    worker fan-out, and the gather all run under the parent's
    whole-query observability span, so a scatter-gather query is one
    ``query.run`` span with one set of merged counters — the workers'
    walker/session metrics fold in through snapshot merging.
    """

    def __init__(
        self,
        engine: QueryEngine,
        processes: int,
        mp_start_method: str | None = None,
        overshard: int = 4,
        max_levels: int = 4,
    ) -> None:
        self.engine = engine
        self.processes = max(2, int(processes))
        self.mp_start_method = mp_start_method
        self.overshard = overshard
        self.max_levels = max_levels
        #: test hook forwarded to every worker (see ``_WorkerTask``)
        self.worker_init: Callable[[int], None] | None = None
        self._seq = 0

    # ------------------------------------------------------------------
    def run(
        self,
        spec: QuerySpec,
        start: str = "/",
        plan: QueryPlan | None = None,
        sink: ResultSink | None = None,
    ) -> QueryResult:
        engine = self.engine
        sink = engine._default_sink(spec) if sink is None else sink
        sink._claim()
        return engine._observed(
            "query.run",
            spec,
            start,
            lambda otr: self._run_impl(spec, start, plan, sink, otr),
        )

    def _run_impl(
        self,
        spec: QuerySpec,
        start: str,
        plan: QueryPlan | None,
        sink: ResultSink,
        otr: Any,
    ) -> QueryResult:
        global _FORK_INDEX
        engine = self.engine
        t0 = time.monotonic()
        start = normalize_path(start)
        start_depth = path_depth(start)
        trav = Traversal(engine.index, engine.creds, spec, plan, start_depth)
        trav.check_root_reachable(start)
        if not engine.index.db_path(start).exists():
            raise FileNotFoundError(f"no index directory for {start!r}")

        shard_plan = plan_shards(
            engine.index,
            trav,
            spec,
            start,
            start_depth,
            self.processes,
            overshard=self.overshard,
            max_levels=self.max_levels,
        )
        if shard_plan is None:
            # Tree too narrow to shard: run single-process, same sink.
            return engine._run_impl(spec, start, plan, sink, otr)
        shards = shard_plan.shards

        timing = obs.metrics().enabled
        worker_spec = replace(spec, G=None, output_prefix=None)
        scratch = engine.pool.tmpdir
        seq = self._seq
        self._seq += 1
        nthreads = max(1, engine.nthreads // len(shards))
        tasks = [
            _WorkerTask(
                worker_id=wid,
                index_root=str(engine.index.root),
                creds=engine.creds,
                spec=worker_spec,
                plan=plan,
                units=shard.units,
                start_depth=start_depth,
                nthreads=nthreads,
                users=dict(engine.users),
                groups=dict(engine.groups),
                agg_path=(
                    os.path.join(scratch, f"scatter_{seq}_w{wid}.agg.db")
                    if spec.J
                    else None
                ),
                result_path=os.path.join(
                    scratch, f"scatter_{seq}_w{wid}.result.pkl"
                ),
                obs_metrics=timing,
                collect_paths=engine.collect_visited,
                worker_init=self.worker_init,
            )
            for wid, shard in enumerate(shards)
        ]

        ctx = mp.get_context(self.mp_start_method)
        procs = [
            ctx.Process(target=_worker_main, args=(task,), daemon=True)
            for task in tasks
        ]
        try:
            if ctx.get_start_method() == "fork":
                _FORK_INDEX = engine.index
            for p in procs:
                p.start()
        finally:
            _FORK_INDEX = None
        for p in procs:
            p.join()

        results: list[_WorkerResult | None] = []
        for task in tasks:
            res: _WorkerResult | None = None
            try:
                with open(task.result_path, "rb") as fh:
                    res = pickle.load(fh)
            except (OSError, pickle.UnpicklingError, EOFError):
                res = None  # the worker died before writing: a crash
            finally:
                try:
                    os.unlink(task.result_path)
                except OSError:
                    pass
            results.append(res)

        crashes = sum(1 for r in results if r is None)
        crashed_units = sum(
            len(task.units)
            for task, r in zip(tasks, results)
            if r is None
        )
        worker_error: tuple[int, str] | None = None
        for res in results:
            if res is not None and res.error is not None:
                worker_error = (res.worker_id, res.error)
                break

        rec = obs.metrics()
        if rec.enabled:
            from repro.obs.registry import MetricsSnapshot

            rec.counter("gufi_scatter_runs_total")
            rec.counter("gufi_scatter_shards_total", len(shards))
            if crashes:
                rec.counter("gufi_scatter_worker_crashes_total", crashes)
            for res in results:
                if res is not None and res.metrics is not None:
                    rec.merge_snapshot(MetricsSnapshot.from_dict(res.metrics))

        g_rows, g_time = self._fold_aggregates(spec, tasks, results)

        # Gather rows through the caller's sink, via one parent state.
        clean = [r for r in results if r is not None and r.error is None]
        st = engine.pool.acquire(spec.I, sink.thread_output_path(0))
        output_files: list[str] = []
        try:
            for res in clean:
                if res.rows:
                    sink.emit(st, res.rows)
            if g_rows:
                sink.emit_final(g_rows)
            summary = sink.finish([st])
        finally:
            out_path = st.finish_output()
            if out_path is not None:
                output_files.append(out_path)
            engine.pool.release([st])

        if worker_error is not None:
            wid, text = worker_error
            raise RuntimeError(
                f"query failed in scatter worker {wid}:\n{text}"
            )

        def total(name: str) -> int:
            return sum(r.counters.get(name, 0) for r in clean)

        walk = WalkStats(
            items_processed=sum(r.walk_processed for r in clean),
            items_errored=sum(r.walk_errored for r in clean),
            elapsed=time.monotonic() - t0,
            thread_completion_times=sorted(r.elapsed for r in clean),
            items_per_thread={
                r.worker_id: r.walk_processed + r.walk_errored for r in clean
            },
        )
        visited_paths: list[str] | None = None
        visited_stamps: dict[str, tuple] | None = None
        if engine.collect_visited and not crashes:
            # A crashed worker's touched set is unknowable, so the
            # whole token is withheld — the parent's cache then
            # (correctly) refuses to store this run. Same for the
            # walk-validated stamps: without every worker's, the
            # store-time race cross-check cannot be tied to the
            # actual reads, so nothing is cached.
            gathered: list[str] = []
            gathered_stamps: dict[str, tuple] = {}
            complete = True
            for res in clean:
                if res.visited is None or res.visited_stamps is None:
                    complete = False
                    break
                gathered.extend(res.visited)
                gathered_stamps.update(res.visited_stamps)
            if complete:
                visited_paths = gathered
                visited_stamps = gathered_stamps
        stage_seconds: dict[str, float] | None = None
        if timing:
            stage_seconds = {"T": 0.0, "S": 0.0, "E": 0.0, "J": 0.0, "G": g_time}
            for res in clean:
                for key, v in (res.stage_seconds or {}).items():
                    if key in ("T", "S", "E", "J"):
                        stage_seconds[key] += v
        return QueryResult(
            rows=summary.rows,
            elapsed=time.monotonic() - t0,
            dirs_visited=total("dirs_visited"),
            dirs_denied=total("dirs_denied"),
            dbs_opened=total("dbs_opened"),
            dirs_errored=total("dirs_errored") + crashed_units,
            dirs_pruned_by_plan=total("dirs_pruned_by_plan"),
            attaches_elided=total("attaches_elided"),
            output_files=sorted(output_files) if output_files else None,
            truncated=summary.truncated,
            walk_stats=walk,
            visited_paths=visited_paths,
            visited_stamps=visited_stamps,
            stage_seconds=stage_seconds,
        )

    # ------------------------------------------------------------------
    def _fold_aggregates(
        self,
        spec: QuerySpec,
        tasks: list[_WorkerTask],
        results: list[_WorkerResult | None],
    ) -> tuple[list[tuple], float]:
        """Row-union every clean worker's aggregate database into one
        parent aggregate built from the ``I`` script, then run ``G``
        exactly once against it. Returns (G rows, G seconds)."""
        engine = self.engine
        worker_aggs = [t.agg_path for t in tasks if t.agg_path is not None]
        if not (spec.J or spec.G):
            return [], 0.0
        g_rows: list[tuple] = []
        g_time = 0.0
        parent_agg = engine.pool.aggregate_path()
        try:
            conn = sqlite3.connect(parent_agg)
            try:
                if spec.I:
                    conn.executescript(spec.I)
                    conn.commit()
                for task, res in zip(tasks, results):
                    if (
                        task.agg_path is None
                        or res is None
                        or res.error is not None
                        or not os.path.exists(task.agg_path)
                    ):
                        continue
                    conn.execute(
                        "ATTACH DATABASE ? AS worker", (task.agg_path,)
                    )
                    try:
                        tables = [
                            name
                            for (name,) in conn.execute(
                                "SELECT name FROM worker.sqlite_master "
                                "WHERE type = 'table' "
                                "AND name NOT LIKE 'sqlite_%'"
                            )
                        ]
                        for table in tables:
                            here = conn.execute(
                                "SELECT name FROM main.sqlite_master "
                                "WHERE type = 'table' AND name = ?",
                                (table,),
                            ).fetchone()
                            if here is not None:
                                conn.execute(
                                    f'INSERT INTO main."{table}" '
                                    f'SELECT * FROM worker."{table}"'
                                )
                            else:
                                conn.execute(
                                    f'CREATE TABLE main."{table}" AS '
                                    f'SELECT * FROM worker."{table}"'
                                )
                        conn.commit()
                    finally:
                        conn.execute("DETACH DATABASE worker")
                if spec.G:
                    gb = time.perf_counter()
                    register(
                        conn,
                        QueryContext(
                            users=engine.users, groups=engine.groups
                        ),
                    )
                    cur = conn.execute(spec.G)
                    if cur.description is not None:
                        g_rows = cur.fetchall()
                    g_time = time.perf_counter() - gb
            finally:
                conn.close()
        finally:
            for path in [parent_agg, *worker_aggs]:
                try:
                    os.unlink(path)
                except OSError:
                    pass
        return g_rows, g_time
