"""Persistent query sessions: the per-thread state pool.

A cold ``GUFIQuery.run()`` historically paid large fixed costs that
have nothing to do with the data the caller can see: a fresh scratch
directory, one new SQLite connection per worker thread, re-registering
every SQL helper function, re-running the ``I`` init script, and
tearing it all down again — per query. A long-lived service (the
``core.server`` portal) issues thousands of queries against the same
warm index between refreshes, so those costs dominate exactly the
small repeated queries the paper says should be cheapest.

This module keeps that state alive across queries:

* :class:`_ThreadState` — one worker thread's scratch database
  connection, registered SQL functions, per-run counters/row buffer,
  and (optional) streamed-output file;
* :class:`ThreadStatePool` — a free-list of thread states owned by a
  :class:`~repro.core.query.GUFIQuery`. Worker threads check states
  out at the start of a run and the engine returns them at the end,
  so the *connections* survive even though the walker's *threads* do
  not. Scratch tables created by an ``I`` script are cleared (same
  script) or dropped and recreated (script changed) between runs —
  never the whole connection;
* :class:`QuerySession` — an explicit-lifecycle facade over
  ``GUFIQuery`` for callers that want ``with``-scoped cleanup.

Security note: nothing permission-relevant is cached here. Thread
states hold only *scratch* result tables; every per-directory
permission decision still reads the index's (mtime-validated,
explicitly invalidated) DirMeta — see :mod:`repro.core.index`.
"""

from __future__ import annotations

import os
import shutil
import sqlite3
import tempfile
import threading
import weakref

from repro import obs

from .sqlfuncs import QueryContext, register


class _ThreadState:
    """Per-worker-thread connection + context + per-run accounting.

    The counters and row buffer are written by exactly one thread
    during a walk (the thread that checked the state out), so the hot
    path needs no locks; the engine sums them after the walk ends.
    """

    __slots__ = (
        "conn",
        "ctx",
        "db_path",
        "out",
        "out_path",
        "rows",
        "visited",
        "denied",
        "opened",
        "errored",
        "pruned",
        "elided",
        "t_time",
        "s_time",
        "e_time",
        "touched",
        "_init_sql",
    )

    def __init__(self, conn: sqlite3.Connection, ctx: QueryContext, db_path: str):
        self.conn = conn
        self.ctx = ctx
        self.db_path = db_path
        self.out = None  # lazily opened per-thread output file
        self.out_path: str | None = None
        self.rows: list[tuple] = []
        self.visited = 0
        self.denied = 0
        self.opened = 0
        self.errored = 0
        self.pruned = 0
        self.elided = 0
        # per-stage wall-clock accumulators (seconds), filled only
        # when the process metrics recorder is enabled
        self.t_time = 0.0
        self.s_time = 0.0
        self.e_time = 0.0
        # source paths this thread's walk touched, collected only when
        # the engine needs a result-cache validity token
        self.touched: list[str] = []
        self._init_sql: str | None = None

    # ------------------------------------------------------------------
    def prepare(self, init_sql: str | None, out_path: str | None) -> None:
        """Make the state ready for a new run: reset counters, clear or
        rebuild the scratch schema, and (re)point the output file."""
        self.rows = []
        self.visited = self.denied = self.opened = self.errored = 0
        self.pruned = self.elided = 0
        self.t_time = self.s_time = self.e_time = 0.0
        self.touched = []
        # A previous run that died mid-directory (or mid-merge) may
        # have left a database attached; a stale attach would shadow
        # this run's.
        for alias in ("gufi", "aggregate"):
            try:
                self.conn.execute(f"DETACH DATABASE {alias}")
            except sqlite3.Error:
                pass
        if init_sql != self._init_sql:
            self._drop_scratch()
            if init_sql:
                self.conn.executescript(init_sql)
            self._init_sql = init_sql
        elif init_sql:
            # Same scratch schema as last run: emptying the tables is
            # much cheaper than dropping and re-running the DDL.
            for (name,) in self.conn.execute(
                "SELECT name FROM main.sqlite_master "
                "WHERE type = 'table' AND name NOT LIKE 'sqlite_%'"
            ).fetchall():
                self.conn.execute(f'DELETE FROM "{name}"')
        self._set_output(out_path)

    def _drop_scratch(self) -> None:
        objects = self.conn.execute(
            "SELECT type, name FROM main.sqlite_master "
            "WHERE name NOT LIKE 'sqlite_%'"
        ).fetchall()
        # views may depend on tables; drop them first
        for typ, name in sorted(objects, key=lambda o: o[0] != "view"):
            if typ in ("table", "view"):
                self.conn.execute(f'DROP {typ.upper()} IF EXISTS "{name}"')

    def _set_output(self, out_path: str | None) -> None:
        if out_path == self.out_path and self.out is not None:
            # same destination as the previous run: reuse the open
            # handle, truncating the old contents
            self.out.seek(0)
            self.out.truncate()
            return
        if self.out is not None:
            self.out.close()
            self.out = None
        self.out_path = out_path
        if out_path is not None:
            self.out = open(out_path, "w", encoding="utf-8")

    def finish_output(self) -> str | None:
        """Flush the streamed-output file at the end of a run so
        readers see complete contents; the handle stays open for reuse.
        Returns the path when one was written."""
        if self.out is None:
            return None
        try:
            self.out.flush()
        except OSError:
            pass
        return self.out_path

    def dispose(self) -> None:
        try:
            self.conn.close()
        except sqlite3.Error:
            pass
        if self.out is not None:
            try:
                self.out.close()
            except OSError:
                pass
            self.out = None


def _dispose_pool(states: list[_ThreadState], tmpdir_box: list[str | None]) -> None:
    """Finalizer body — module-level so the pool itself can be GC'd."""
    for st in states:
        st.dispose()
    states.clear()
    if tmpdir_box[0] is not None:
        shutil.rmtree(tmpdir_box[0], ignore_errors=True)
        tmpdir_box[0] = None


class ThreadStatePool:
    """Free-list of :class:`_ThreadState` shared across a query's runs.

    Walker threads are created per walk, so states are keyed by
    *checkout*, not by thread ident: ``acquire`` hands out a prepared
    state (reusing a parked one when available) and ``release`` parks
    them again. The pool owns one scratch directory holding every
    thread database plus per-run aggregate databases.
    """

    def __init__(
        self,
        users: dict[int, str] | None = None,
        groups: dict[int, str] | None = None,
    ):
        self.users = users if users is not None else {}
        self.groups = groups if groups is not None else {}
        self._lock = threading.Lock()
        self._free: list[_ThreadState] = []
        self._all: list[_ThreadState] = []
        self._tmpdir_box: list[str | None] = [None]
        self._seq = 0
        self._agg_seq = 0
        self._closed = False
        #: states ever created / checkouts served from the free list —
        #: the session layer's effectiveness counters
        self.created = 0
        self.reused = 0
        self._finalizer = weakref.finalize(
            self, _dispose_pool, self._all, self._tmpdir_box
        )

    # ------------------------------------------------------------------
    @property
    def tmpdir(self) -> str:
        if self._tmpdir_box[0] is None:
            self._tmpdir_box[0] = tempfile.mkdtemp(prefix="gufi_session_")
        return self._tmpdir_box[0]

    def acquire(self, init_sql: str | None, out_path: str | None) -> _ThreadState:
        """Check a prepared state out of the pool (creating one if all
        are busy)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("query session is closed")
            if self._free:
                st = self._free.pop()
                self.reused += 1
                fresh = False
            else:
                st = self._create_locked()
                self.created += 1
                fresh = True
        rec = obs.metrics()
        if rec.enabled:
            rec.counter(
                "gufi_session_states_created_total"
                if fresh
                else "gufi_session_states_reused_total"
            )
        st.prepare(init_sql, out_path)
        return st

    def _create_locked(self) -> _ThreadState:
        db_path = os.path.join(self.tmpdir, f"thread_{self._seq}.db")
        self._seq += 1
        # uri=True so read-only ATTACH URIs are honoured on this
        # connection (SQLITE_OPEN_URI is per-connection).
        conn = sqlite3.connect(
            f"file:{db_path}",
            uri=True,
            check_same_thread=False,
            isolation_level=None,
        )
        conn.execute("PRAGMA journal_mode = MEMORY")
        conn.execute("PRAGMA synchronous = OFF")
        ctx = QueryContext(users=self.users, groups=self.groups)
        register(conn, ctx)
        st = _ThreadState(conn, ctx, db_path)
        self._all.append(st)
        return st

    def release(self, states: list[_ThreadState]) -> None:
        with self._lock:
            if self._closed:
                for st in states:
                    st.dispose()
            else:
                self._free.extend(states)

    def aggregate_path(self) -> str:
        """A fresh path for one run's aggregate database (unique so
        concurrent runs on the same pool never collide)."""
        with self._lock:
            n = self._agg_seq
            self._agg_seq += 1
        return os.path.join(self.tmpdir, f"aggregate_{n}.db")

    def close(self) -> None:
        """Close every pooled connection and remove the scratch
        directory. Idempotent; checked-out states are disposed on
        release."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._finalizer()


class QuerySession:
    """Explicit-lifecycle handle for repeated queries on a warm index.

    A :class:`~repro.core.query.GUFIQuery` already keeps its thread
    pool and the index's DirMeta cache warm between ``run()`` calls;
    this facade adds ``with``-scoping and surfaces the session-layer
    counters, for callers (the portal, benchmarks) that manage many
    sessions and want deterministic cleanup::

        with QuerySession(index, creds=creds) as s:
            for _ in range(1000):
                s.run(spec)
    """

    def __init__(self, index, creds=None, nthreads: int = 8, **kwargs):
        from .query import GUFIQuery  # here to avoid an import cycle

        if creds is None:
            self.query = GUFIQuery(index, nthreads=nthreads, **kwargs)
        else:
            self.query = GUFIQuery(index, creds=creds, nthreads=nthreads, **kwargs)

    def run(self, spec, start: str = "/", plan=None):
        return self.query.run(spec, start, plan=plan)

    def run_single(self, spec, path: str = "/", plan=None):
        return self.query.run_single(spec, path, plan=plan)

    @property
    def pool(self) -> ThreadStatePool:
        return self.query.pool

    @property
    def cache_stats(self) -> dict[str, int]:
        return self.query.index.cache.stats()

    def close(self) -> None:
        self.query.close()

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
