"""Exporters: Prometheus text, human tables, JSON-lines traces.

Three audiences, three formats:

* **dashboards** — :func:`to_prometheus` renders a
  :class:`~repro.obs.registry.MetricsSnapshot` in the Prometheus text
  exposition format (counters, gauges, cumulative ``_bucket``/
  ``_sum``/``_count`` histogram series), ready to serve or scrape-dump;
* **humans** — :func:`render_metrics` is the ``repro-gufi ...
  --metrics`` / ``stats --metrics`` table, and
  :func:`render_slow_log` the slow-query report;
* **trace tooling** — :func:`spans_to_jsonl` /
  :func:`write_trace_jsonl` dump the tracer's ring buffer one JSON
  object per line (``--trace-out``), each span carrying its
  trace/span/parent ids so offline tools can rebuild the tree.

CI greps the Prometheus output for the core metric names, so renaming
a metric is a contract change, not a refactor.
"""

from __future__ import annotations

from pathlib import Path

from .registry import HistogramSnapshot, MetricsSnapshot
from .slowlog import SlowQueryLog
from .spans import Span


def _fmt_value(v: float) -> str:
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def _fmt_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(snapshot: MetricsSnapshot) -> str:
    """Prometheus text exposition format, series sorted by name."""
    lines: list[str] = []
    for (name, labels), value in sorted(snapshot.counters.items()):
        lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(value)}")
    for (name, labels), value in sorted(snapshot.gauges.items()):
        lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(value)}")
    for (name, labels), hist in sorted(snapshot.histograms.items()):
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            le = _fmt_labels(labels, f'le="{bound}"')
            lines.append(f"{name}_bucket{le} {cumulative}")
        inf = _fmt_labels(labels, 'le="+Inf"')
        lines.append(f"{name}_bucket{inf} {hist.count}")
        lines.append(f"{name}_sum{_fmt_labels(labels)} {repr(hist.sum)}")
        lines.append(f"{name}_count{_fmt_labels(labels)} {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _series_label(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _hist_line(label: str, hist: HistogramSnapshot) -> str:
    return (
        f"  {label:<52} n={hist.count:<8} mean={hist.mean * 1e3:9.3f}ms "
        f"p50={hist.quantile(0.5) * 1e3:9.3f}ms "
        f"p99={hist.quantile(0.99) * 1e3:9.3f}ms"
    )


def render_metrics(snapshot: MetricsSnapshot, title: str = "gufi metrics") -> str:
    """The human `gufi stats`-style metrics table."""
    lines = [title]
    if snapshot.counters:
        lines.append("counters:")
        for (name, labels), value in sorted(snapshot.counters.items()):
            lines.append(
                f"  {_series_label(name, labels):<52} {_fmt_value(value):>12}"
            )
    if snapshot.gauges:
        lines.append("gauges:")
        for (name, labels), value in sorted(snapshot.gauges.items()):
            lines.append(
                f"  {_series_label(name, labels):<52} {_fmt_value(value):>12}"
            )
    if snapshot.histograms:
        lines.append("histograms:")
        for (name, labels), hist in sorted(snapshot.histograms.items()):
            lines.append(_hist_line(_series_label(name, labels), hist))
    if len(lines) == 1:
        lines.append("  (no metrics recorded)")
    return "\n".join(lines)


def spans_to_jsonl(spans: list[Span]) -> str:
    """One JSON object per line, oldest span first."""
    return "".join(span.to_json() + "\n" for span in spans)


def write_trace_jsonl(path: Path | str, spans: list[Span]) -> int:
    """Dump spans to ``path``; returns the number written."""
    Path(path).write_text(spans_to_jsonl(spans), encoding="utf-8")
    return len(spans)


def render_slow_log(log: SlowQueryLog) -> str:
    """Human-readable slow-query report, slowest first."""
    entries = log.entries()
    header = (
        f"slow queries (threshold {log.threshold_ms}ms, "
        f"{len(entries)} recorded)"
    )
    if not entries:
        return header + "\n  (none)"
    lines = [header]
    for rec in sorted(entries, key=lambda r: -r.elapsed):
        who = f" user={rec.user}" if rec.user else ""
        lines.append(
            f"  {rec.elapsed * 1e3:9.2f}ms {rec.kind:<16} "
            f"start={rec.start}{who} {rec.detail}"
        )
    return "\n".join(lines)
