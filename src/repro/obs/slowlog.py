"""Slow-query log: capture every operation slower than a threshold.

The paper's evaluation is built around query latency; in production
the first observability question is always "*which* query was slow".
This log answers it without storing every invocation: operations whose
elapsed time clears ``threshold_ms`` are recorded — kind (``query.run``,
``server.invoke``), a compact description of the work, the start path,
the caller when known — into a bounded deque, so a runaway workload
can never exhaust memory through its own diagnostics.

Recording is one GIL-atomic ``deque.append``; the threshold check is a
single comparison, so leaving a ``record()`` call on the query path
costs nothing measurable when the log is disabled
(``threshold_ms is None``). Every recorded entry also bumps the
``gufi_slow_queries_total`` counter on the process metrics recorder,
which is how dashboards notice slowness without parsing the log.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class SlowQueryRecord:
    """One over-threshold operation."""

    #: wall-clock completion time (epoch seconds)
    at: float
    #: elapsed seconds
    elapsed: float
    #: operation kind: "query.run", "query.run_single", "server.invoke"
    kind: str
    #: compact description (spec summary, tool name, ...)
    detail: str
    #: traversal start path
    start: str
    #: authenticated caller, when the operation had one
    user: str | None = None


class SlowQueryLog:
    """Bounded log of operations slower than ``threshold_ms``.

    ``threshold_ms=None`` disables the log entirely (``enabled`` is
    False and ``record`` returns immediately); ``0`` records every
    operation, which the overhead benchmark uses as the worst case.
    """

    def __init__(self, threshold_ms: float | None = None, cap: int = 512):
        self.threshold_ms = threshold_ms
        self.cap = cap
        self._ring: deque[SlowQueryRecord] = deque(maxlen=cap)

    @property
    def enabled(self) -> bool:
        return self.threshold_ms is not None

    def record(
        self,
        elapsed_s: float,
        kind: str,
        detail: str,
        start: str = "/",
        user: str | None = None,
    ) -> bool:
        """Record one finished operation if it clears the threshold.
        Returns True when a record was written."""
        if self.threshold_ms is None or elapsed_s * 1000.0 < self.threshold_ms:
            return False
        self._ring.append(
            SlowQueryRecord(
                at=time.time(),
                elapsed=elapsed_s,
                kind=kind,
                detail=detail,
                start=start,
                user=user,
            )
        )
        # import at call time: repro.obs imports this module at load
        from repro import obs

        obs.metrics().counter("gufi_slow_queries_total", kind=kind)
        return True

    def entries(self) -> list[SlowQueryRecord]:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def reset(self) -> None:
        self._ring.clear()
