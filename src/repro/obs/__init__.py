"""Observability: process-wide metrics, span tracing, slow-query log.

The paper's whole evaluation (§IV) is measurement — ingest rate, query
latency, rollup reduction — and a production deployment needs the same
numbers continuously, not per-experiment. This package is the
measurement substrate the rest of the tree records into:

* :mod:`repro.obs.registry` — counters / gauges / histograms with
  lock-free per-thread shards merged on snapshot;
* :mod:`repro.obs.spans` — nested spans (walk → dir → attach → SQL)
  with cross-thread context propagation and a bounded ring buffer;
* :mod:`repro.obs.slowlog` — bounded log of over-threshold operations;
* :mod:`repro.obs.export` — Prometheus text, human tables, JSON-lines
  trace dumps.

State is **process-wide and off by default**: the module-level
recorder, tracer, and slow log start as null implementations whose
operations are no-ops, so instrumented hot paths cost ~nothing until
:func:`enable` swaps the real implementations in (CLI flags
``--metrics`` / ``--trace-out`` / ``--slow-query-ms``, server
deployments, benchmarks). Instrumented code always goes through the
accessors — ``obs.metrics()``, ``obs.tracer()``, ``obs.slow_log()`` —
and guards non-trivial work behind their ``enabled`` flags.

``benchmarks/bench_obs_overhead.py`` holds the contract: ≤5% hot-path
overhead with everything enabled, no measurable cost disabled.
"""

from __future__ import annotations

from contextlib import contextmanager

from .registry import (  # noqa: F401  (re-exported API)
    DEFAULT_BUCKETS,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    NullRecorder,
    series_key,
)
from .slowlog import SlowQueryLog, SlowQueryRecord  # noqa: F401
from .spans import NullTracer, Span, SpanContext, Tracer  # noqa: F401

NULL_METRICS = NullRecorder()
NULL_TRACER = NullTracer()
NULL_SLOW_LOG = SlowQueryLog(threshold_ms=None)

_metrics: MetricsRegistry | NullRecorder = NULL_METRICS
_tracer: Tracer | NullTracer = NULL_TRACER
_slow_log: SlowQueryLog = NULL_SLOW_LOG


def metrics() -> MetricsRegistry | NullRecorder:
    """The process metrics recorder (Null when disabled)."""
    return _metrics


def tracer() -> Tracer | NullTracer:
    """The process span tracer (Null when disabled)."""
    return _tracer


def slow_log() -> SlowQueryLog:
    """The process slow-query log (disabled unless a threshold is set)."""
    return _slow_log


def enable(
    metrics: bool = True,
    tracing: bool = False,
    slow_query_ms: float | None = None,
    trace_capacity: int = 4096,
) -> None:
    """Turn on the requested components. Components already enabled
    keep their accumulated state; components not mentioned are left
    alone (so ``enable(tracing=True)`` does not discard metrics)."""
    global _metrics, _tracer, _slow_log
    if metrics and not _metrics.enabled:
        _metrics = MetricsRegistry()
    if tracing and not _tracer.enabled:
        _tracer = Tracer(capacity=trace_capacity)
    if slow_query_ms is not None:
        _slow_log = SlowQueryLog(threshold_ms=slow_query_ms)


def disable() -> None:
    """Swap every component back to its near-zero-overhead null
    implementation. Accumulated data is discarded."""
    global _metrics, _tracer, _slow_log
    _metrics = NULL_METRICS
    _tracer = NULL_TRACER
    _slow_log = NULL_SLOW_LOG


def snapshot() -> MetricsSnapshot:
    """Merged point-in-time view of the process metrics."""
    return _metrics.snapshot()


def reset() -> None:
    """Zero metrics, drop recorded spans and slow-log entries (the
    components stay enabled)."""
    _metrics.reset()
    _tracer.reset()
    _slow_log.reset()


@contextmanager
def enabled(
    metrics: bool = True,
    tracing: bool = False,
    slow_query_ms: float | None = None,
    trace_capacity: int = 4096,
):
    """Scoped observability: enable for the ``with`` body, then restore
    the previous recorder/tracer/log objects (tests, benchmarks)."""
    global _metrics, _tracer, _slow_log
    prev = (_metrics, _tracer, _slow_log)
    enable(
        metrics=metrics,
        tracing=tracing,
        slow_query_ms=slow_query_ms,
        trace_capacity=trace_capacity,
    )
    try:
        yield
    finally:
        _metrics, _tracer, _slow_log = prev
