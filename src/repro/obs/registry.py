"""Process-wide metrics registry: counters, gauges, histograms.

The hot paths this registry serves (the query engine's per-directory
loop, the walker's per-item loop) already keep their accounting in
per-thread slots merged once per run — the lock-free idiom from
:mod:`repro.core.session` and :mod:`repro.scan.walker`. The registry
generalises it: every writing thread owns a private *shard* (reached
through ``threading.local``, registered once under a lock), counter
increments and histogram observations touch only that shard, and
:meth:`MetricsRegistry.snapshot` merges all shards on demand. No lock
is ever taken on the recording path.

Two recorder implementations share one duck type:

* :class:`MetricsRegistry` — the real thing (``enabled`` is True);
* :class:`NullRecorder` — every method is a no-op ``pass``
  (``enabled`` is False), so instrumented code costs one attribute
  check (or one empty call) when observability is off.

Instrumented code follows one convention: fetch the recorder once per
operation (``rec = obs.metrics()``), guard any non-trivial work —
``time.perf_counter()`` pairs, dict merging — behind ``rec.enabled``,
and fold per-thread tallies into the registry *once* at the end of the
operation rather than per item.

Metric naming follows Prometheus conventions: ``gufi_<subsystem>_
<what>_total`` for counters, ``_seconds`` for histograms of
durations; labels are passed as keyword arguments
(``rec.counter("gufi_query_stage_seconds_total", t, stage="E")``).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field

#: one metric series: (name, sorted (label, value) pairs)
SeriesKey = tuple[str, tuple[tuple[str, str], ...]]

#: default histogram bucket upper bounds, in seconds — spans the
#: microsecond-to-minutes range a metadata query system produces
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def series_key(name: str, labels: dict) -> SeriesKey:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class _Hist:
    """One thread-shard's view of one histogram series."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]):
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "HistogramSnapshot") -> None:
        """Fold a merged snapshot of the same series into this shard's
        live histogram (the cross-process gather path). Matching bucket
        layouts add count-for-count; a differing layout re-buckets each
        bucket by its upper bound — ``sum``/``count`` stay exact either
        way, only bucket attribution degrades."""
        if tuple(other.bounds) == tuple(self.bounds):
            for i, c in enumerate(other.counts):
                self.counts[i] += c
        else:
            edges = list(other.bounds) + [float("inf")]
            for bound, c in zip(edges, other.counts):
                if c:
                    self.counts[bisect_left(self.bounds, bound)] += c
        self.sum += other.sum
        self.count += other.count


class _Shard:
    """Per-thread metric storage. Written by exactly one thread."""

    __slots__ = ("counters", "hists")

    def __init__(self) -> None:
        self.counters: dict[SeriesKey, float] = {}
        self.hists: dict[SeriesKey, _Hist] = {}


@dataclass(frozen=True)
class HistogramSnapshot:
    """Merged view of one histogram series."""

    bounds: tuple[float, ...]
    counts: tuple[int, ...]  # len(bounds) + 1; last is +Inf
    sum: float
    count: int

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket counts (upper bound of
        the bucket holding the q-th observation)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


@dataclass
class MetricsSnapshot:
    """Point-in-time merge of every shard. Plain dicts keyed by
    :data:`SeriesKey`, plus lookup helpers used by tests, exporters,
    and the CLI table."""

    counters: dict[SeriesKey, float] = field(default_factory=dict)
    gauges: dict[SeriesKey, float] = field(default_factory=dict)
    histograms: dict[SeriesKey, HistogramSnapshot] = field(default_factory=dict)

    def counter(self, name: str, **labels) -> float:
        """Value of one counter series (0.0 when never incremented)."""
        return self.counters.get(series_key(name, labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all of its label sets."""
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def gauge(self, name: str, **labels) -> float | None:
        return self.gauges.get(series_key(name, labels))

    def histogram(self, name: str, **labels) -> HistogramSnapshot | None:
        return self.histograms.get(series_key(name, labels))

    def names(self) -> set[str]:
        out = {n for (n, _) in self.counters}
        out.update(n for (n, _) in self.gauges)
        out.update(n for (n, _) in self.histograms)
        return out

    # -- cross-process serialization -----------------------------------
    def to_dict(self) -> dict:
        """A plain-data (JSON/pickle-safe) form of the snapshot, for
        shipping a worker process's metrics back to its parent."""
        return {
            "counters": [
                [name, [list(lv) for lv in labels], v]
                for (name, labels), v in self.counters.items()
            ],
            "gauges": [
                [name, [list(lv) for lv in labels], v]
                for (name, labels), v in self.gauges.items()
            ],
            "histograms": [
                [
                    name,
                    [list(lv) for lv in labels],
                    list(h.bounds),
                    list(h.counts),
                    h.sum,
                    h.count,
                ]
                for (name, labels), h in self.histograms.items()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsSnapshot":
        """Inverse of :meth:`to_dict`."""

        def key(name: str, labels: list) -> SeriesKey:
            return (name, tuple((str(k), str(v)) for k, v in labels))

        snap = cls()
        for name, labels, v in data.get("counters", []):
            snap.counters[key(name, labels)] = float(v)
        for name, labels, v in data.get("gauges", []):
            snap.gauges[key(name, labels)] = float(v)
        for name, labels, bounds, counts, total, count in data.get(
            "histograms", []
        ):
            snap.histograms[key(name, labels)] = HistogramSnapshot(
                bounds=tuple(bounds),
                counts=tuple(counts),
                sum=float(total),
                count=int(count),
            )
        return snap


class MetricsRegistry:
    """Process-wide metrics store with lock-free per-thread shards.

    ``counter``/``observe`` touch only the calling thread's shard;
    ``gauge`` (rare: set at snapshot points, not in loops) takes the
    registry lock. ``snapshot()`` merges everything under the lock —
    safe against concurrent writers because shard dicts are only ever
    mutated by their owning thread with GIL-atomic operations, and the
    merge materialises each dict in one C-level call.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._shards: list[_Shard] = []
        self._gauges: dict[SeriesKey, float] = {}

    # -- recording (hot path) ------------------------------------------
    def _shard(self) -> _Shard:
        shard = getattr(self._tls, "shard", None)
        if shard is None:
            shard = _Shard()
            self._tls.shard = shard
            with self._lock:
                self._shards.append(shard)
        return shard

    def counter(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` to a monotonically increasing counter.
        Recording a 0 creates the series (so exporters list it)."""
        counters = self._shard().counters
        key = series_key(name, labels)
        counters[key] = counters.get(key, 0.0) + value

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> None:
        """Record one observation into a histogram series."""
        hists = self._shard().hists
        key = series_key(name, labels)
        h = hists.get(key)
        if h is None:
            h = hists[key] = _Hist(buckets)
        h.observe(value)

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a last-write-wins gauge (not a hot-path operation)."""
        with self._lock:
            self._gauges[series_key(name, labels)] = float(value)

    # -- reading -------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        snap = MetricsSnapshot()
        with self._lock:
            snap.gauges = dict(self._gauges)
            for shard in self._shards:
                for key, v in list(shard.counters.items()):
                    snap.counters[key] = snap.counters.get(key, 0.0) + v
                for key, h in list(shard.hists.items()):
                    counts, total, n = list(h.counts), h.sum, h.count
                    prev = snap.histograms.get(key)
                    if prev is None:
                        snap.histograms[key] = HistogramSnapshot(
                            bounds=tuple(h.bounds),
                            counts=tuple(counts),
                            sum=total,
                            count=n,
                        )
                    else:
                        snap.histograms[key] = HistogramSnapshot(
                            bounds=prev.bounds,
                            counts=tuple(
                                a + b for a, b in zip(prev.counts, counts)
                            ),
                            sum=prev.sum + total,
                            count=prev.count + n,
                        )
        return snap

    def merge_snapshot(self, snap: MetricsSnapshot) -> None:
        """Fold another process's merged snapshot into this registry —
        the gather half of scatter-gather observability. Counters and
        histogram tallies add; gauges are last-write-wins. The fold
        lands in the calling thread's shard, so concurrent merges from
        different threads stay lock-free on the counter path."""
        shard = self._shard()
        for key, v in snap.counters.items():
            shard.counters[key] = shard.counters.get(key, 0.0) + v
        for key, hs in snap.histograms.items():
            h = shard.hists.get(key)
            if h is None:
                h = shard.hists[key] = _Hist(tuple(hs.bounds))
            h.merge(hs)
        if snap.gauges:
            with self._lock:
                self._gauges.update(snap.gauges)

    def reset(self) -> None:
        """Zero every series. Shards stay registered (threads hold
        references to them through their ``threading.local``)."""
        with self._lock:
            for shard in self._shards:
                shard.counters.clear()
                shard.hists.clear()
            self._gauges.clear()


class NullRecorder:
    """The disabled-mode recorder: every operation is a no-op, so
    instrumentation left in hot paths costs one method call at most —
    and usually nothing, because call sites guard on ``enabled``."""

    enabled = False

    def counter(self, name: str, value: float = 1.0, **labels) -> None:
        pass

    def observe(self, name, value, buckets=DEFAULT_BUCKETS, **labels) -> None:
        pass

    def gauge(self, name: str, value: float, **labels) -> None:
        pass

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot()

    def merge_snapshot(self, snap: MetricsSnapshot) -> None:
        pass

    def reset(self) -> None:
        pass
