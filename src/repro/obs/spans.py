"""Span-based tracing for the walk→directory→attach→SQL pipeline.

A *span* is one timed stage with a name, attributes, and a parent —
``query.run`` contains ``walker.walk`` contains many ``query.dir``
spans, each containing ``query.attach`` and per-stage ``query.sql``
spans. Finished spans land in a bounded ring buffer (old spans are
dropped, never blocked on), exportable as JSON lines
(:func:`repro.obs.export.spans_to_jsonl`) for flamegraph-style
inspection of where a slow query actually spent its time.

Cross-thread propagation: :class:`~repro.scan.walker
.ParallelTreeWalker` creates fresh worker threads per walk, so the
caller's active span would normally be invisible to them. The walker
captures :meth:`Tracer.current_context` before starting workers and
each worker calls :meth:`Tracer.adopt` once — after that, spans opened
inside ``expand`` parent correctly across the thread boundary and
share the caller's trace id.

The active-span stack is per-thread (``threading.local``), so starting
and ending spans takes no lock on the hot path: the ring append is one
GIL-atomic ``deque.append`` of a plain tuple (materialised into
:class:`Span` objects only when :meth:`Tracer.spans` is read), and the
emitted tally lives in per-thread cells merged on read — the same
idiom as the metrics registry's shards. :class:`NullTracer` is the
disabled-mode stand-in (``enabled`` False), whose ``span()`` hands
back a shared no-op context manager.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

#: process-wide span-id source (``next()`` is GIL-atomic)
_ids = itertools.count(1)


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of an active span."""

    trace_id: int
    span_id: int


@dataclass
class Span:
    """One finished span."""

    name: str
    trace_id: int
    span_id: int
    parent_id: int | None
    #: wall-clock start (epoch seconds)
    start: float
    #: monotonic duration in seconds
    duration: float
    thread: str
    attrs: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "start": self.start,
                "duration_s": self.duration,
                "thread": self.thread,
                **({"attrs": self.attrs} if self.attrs else {}),
            },
            sort_keys=True,
        )


class _ActiveSpan:
    """A started-but-unfinished span (mutable, single-thread)."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id",
                 "start_epoch", "t0", "attrs")

    def __init__(self, name: str, parent: SpanContext | None, attrs: dict):
        self.name = name
        self.span_id = next(_ids)
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            self.trace_id = self.span_id
            self.parent_id = None
        self.start_epoch = time.time()
        self.t0 = time.perf_counter()
        self.attrs = attrs

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)


class _ThreadTraceState:
    """One thread's active-span stack + emit tally (owner-written)."""

    __slots__ = ("stack", "base", "emitted", "thread_name")

    def __init__(self, thread_name: str):
        self.stack: list[_ActiveSpan] = []
        self.base: SpanContext | None = None
        self.emitted = 0
        self.thread_name = thread_name


class Tracer:
    """Bounded-ring span recorder with per-thread active-span stacks."""

    enabled = True

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        # ring entries are Span-field tuples — cheaper to append than
        # dataclass instances on the per-directory hot path
        self._ring: deque[tuple] = deque(maxlen=capacity)
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._states: list[_ThreadTraceState] = []

    # -- context -------------------------------------------------------
    def _state(self) -> _ThreadTraceState:
        state = getattr(self._tls, "state", None)
        if state is None:
            state = _ThreadTraceState(threading.current_thread().name)
            self._tls.state = state
            with self._lock:
                self._states.append(state)
        return state

    def current_context(self) -> SpanContext | None:
        """The innermost active span on this thread, falling back to an
        adopted cross-thread context."""
        state = self._state()
        if state.stack:
            return state.stack[-1].context
        return state.base

    def adopt(self, ctx: SpanContext | None) -> None:
        """Install a parent context captured on another thread, so
        spans opened on *this* thread nest under it (walker workers
        call this once at start-up)."""
        self._state().base = ctx

    # -- span lifecycle ------------------------------------------------
    def start(self, name: str, **attrs) -> _ActiveSpan:
        state = self._state()
        if state.stack:
            parent = state.stack[-1].context
        else:
            parent = state.base
        span = _ActiveSpan(name, parent, attrs)
        state.stack.append(span)
        return span

    def end(self, span: _ActiveSpan, **attrs) -> None:
        duration = time.perf_counter() - span.t0
        state = self._state()
        stack = state.stack
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order end (error paths): remove wherever it is
            try:
                stack.remove(span)
            except ValueError:
                pass
        if attrs:
            span.attrs.update(attrs)
        state.emitted += 1  # owner-thread cell: no lock
        self._ring.append(
            (
                span.name,
                span.trace_id,
                span.span_id,
                span.parent_id,
                span.start_epoch,
                duration,
                state.thread_name,
                span.attrs,
            )
        )

    @contextmanager
    def span(self, name: str, **attrs):
        active = self.start(name, **attrs)
        try:
            yield active
        finally:
            self.end(active)

    # -- reading -------------------------------------------------------
    def spans(self) -> list[Span]:
        """Finished spans, oldest first (a copy; safe while tracing)."""
        return sorted(
            (Span(*fields) for fields in list(self._ring)),
            key=lambda s: (s.start, s.span_id),
        )

    @property
    def emitted(self) -> int:
        with self._lock:
            states = list(self._states)
        return sum(s.emitted for s in states)

    @property
    def dropped(self) -> int:
        """Spans evicted from the ring by newer ones."""
        return max(0, self.emitted - len(self._ring))

    def reset(self) -> None:
        with self._lock:
            for s in self._states:
                s.emitted = 0
        self._ring.clear()


class _NullSpanCm:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CM = _NullSpanCm()


class NullTracer:
    """Disabled-mode tracer: no state, no allocation per span."""

    enabled = False
    capacity = 0
    emitted = 0
    dropped = 0

    def current_context(self) -> SpanContext | None:
        return None

    def adopt(self, ctx) -> None:
        pass

    def start(self, name: str, **attrs):
        return None

    def end(self, span, **attrs) -> None:
        pass

    def span(self, name: str, **attrs):
        return _NULL_CM

    def spans(self) -> list[Span]:
        return []

    def reset(self) -> None:
        pass
