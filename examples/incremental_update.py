#!/usr/bin/env python
"""Incremental index updates and the emergency-visibility-fix flow.

The index is normally rebuilt on a schedule (the paper's site: every
4 hours), so it is minutes-to-hours stale. Two situations need the
single-directory update tool (§III-A3):

* a data-transfer tool just rewrote a directory and wants the index
  current *now*;
* a user exposed sensitive information in file names/metadata and
  must make it invisible immediately — waiting for the next rebuild
  is not acceptable.

This example also shows the interaction with rollup: updating a
directory that was merged into an ancestor undoes only the rollups on
the root-to-target path (each directory's rollup is independently
reversible, §III-C3), leaving sibling subtrees merged.

Run:  python examples/incremental_update.py
"""

from __future__ import annotations

import tempfile

from repro.core import (
    BuildOptions,
    GUFIQuery,
    QuerySpec,
    dir2index,
    rollup,
    update_directory,
    visible_db_count,
)
from repro.fs import Credentials
from repro.gen import dataset2

NTHREADS = 4
FIND_NAMES = QuerySpec(E="SELECT rpath(dname, d_isroot, name) FROM vrpentries")


def main() -> None:
    ns = dataset2(scale=0.0002, seed=61)
    tree = ns.tree
    index_root = tempfile.mkdtemp(prefix="gufi_update_")
    built = dir2index(tree, index_root, opts=BuildOptions(nthreads=NTHREADS))
    idx = built.index
    rollup(idx, limit=built.entries_inserted // 10, nthreads=NTHREADS)
    print(f"index built and rolled up: {visible_db_count(idx)} visible "
          f"databases for {built.dirs_created} directories")

    pop = ns.spec.population
    victim_uid = pop.uids[0]
    victim = Credentials(uid=victim_uid, gid=pop.primary_gid[victim_uid])
    snoop_uid = pop.uids[1]
    snoop = Credentials(uid=snoop_uid, gid=pop.primary_gid[snoop_uid])

    # The victim accidentally creates a world-visible directory whose
    # *file names* leak a secret (names are metadata — visible to
    # anyone who can list the directory, §III-A1).
    leak_dir = f"/scratch/u{victim_uid}/oops-public"
    tree.mkdir(leak_dir, mode=0o755, uid=victim_uid, gid=victim_uid)
    tree.create_file(f"{leak_dir}/merger-target-ACME.docx", size=100,
                     mode=0o600, uid=victim_uid, gid=victim_uid)
    # ... and their home area must be listable for the leak to matter
    tree.chmod(f"/scratch/u{victim_uid}", 0o755, victim)
    update_directory(idx, tree, f"/scratch/u{victim_uid}")
    result = update_directory(idx, tree, leak_dir)
    print(f"\nleak indexed (unrolled {len(result.unrolled_dirs)} dirs on "
          f"the path): {result.unrolled_dirs}")

    q_snoop = GUFIQuery(idx, creds=snoop, nthreads=NTHREADS)
    leaked = [r[0] for r in q_snoop.run(FIND_NAMES).rows if "ACME" in r[0]]
    print(f"snoop u{snoop_uid} can see: {leaked}")
    assert leaked, "the leak should be visible before the fix"

    # --- the emergency fix -------------------------------------------
    # The victim chmods the directory private on the source file system
    # and requests an immediate index update for that one directory.
    tree.chmod(leak_dir, 0o700, victim)
    result = update_directory(idx, tree, leak_dir)
    print(f"\nfix applied in {result.seconds * 1000:.0f} ms "
          f"(re-indexed {result.entries_indexed} entries, one directory)")

    leaked = [r[0] for r in q_snoop.run(FIND_NAMES).rows if "ACME" in r[0]]
    print(f"snoop u{snoop_uid} can now see: {leaked}")
    assert not leaked, "the fix must take effect immediately"

    # The owner still sees their own file, of course.
    q_victim = GUFIQuery(idx, creds=victim, nthreads=NTHREADS)
    mine = [r[0] for r in q_victim.run(FIND_NAMES).rows if "ACME" in r[0]]
    assert mine
    print(f"owner u{victim_uid} still sees: {mine}")

    # --- data-transfer refresh ----------------------------------------
    # A transfer tool rewrites a directory wholesale and refreshes it.
    xfer_dir = ns.dirs[len(ns.dirs) // 3]
    owner = tree.get_inode(xfer_dir)
    for i in range(5):
        tree.create_file(f"{xfer_dir}/transferred-{i}.dat", size=2**20,
                         uid=owner.uid, gid=owner.gid)
    update_directory(idx, tree, xfer_dir)
    q = GUFIQuery(idx, nthreads=NTHREADS)
    fresh = [r[0] for r in q.run(FIND_NAMES).rows if "transferred-" in r[0]]
    print(f"\ntransfer refresh: {len(fresh)} new files visible immediately")
    assert len(fresh) == 5
    print("\nOK")


if __name__ == "__main__":
    main()
