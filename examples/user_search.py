#!/usr/bin/env python
"""Unprivileged user search, including secure xattr-tag search.

The paper's motivating user story (§II): a researcher needs to find
their own files — by name, by age, by size, by data-label — across a
huge shared scratch system, interactively, without being able to see
anyone else's private data and without burning compute-node hours on
parallel `find`.

This example:

1. builds a scratch namespace where files carry ``user.experiment``
   xattr labels (AI data-labelling, §III-A2 motivation);
2. shows a user searching *their* world by name, size, and staleness;
3. shows xattr-label search through the per-user/per-group sharded
   xattr databases — another user's private labels stay invisible;
4. demonstrates that query cost tracks the user's accessible data,
   not index size.

Run:  python examples/user_search.py
"""

from __future__ import annotations

import tempfile

from repro.core import (
    BuildOptions,
    FindFilters,
    GUFIQuery,
    GUFITools,
    Q1_LIST_NAMES,
    dir2index,
)
from repro.fs import Credentials
from repro.gen import Sampler, dataset2

NTHREADS = 4


def main() -> None:
    print("generating labelled scratch namespace...")
    ns = dataset2(scale=0.0002, seed=5)
    tree = ns.tree

    # Label ~30% of files with an experiment tag, owned per-file.
    sampler = Sampler(99)
    labelled = 0
    for path in ns.files:
        if sampler.rng.random() < 0.3:
            ino = tree.get_inode(path)
            exp = f"exp-{sampler.rng.randint(1, 5):03d}"
            tree.setxattr(path, "user.experiment", exp.encode())
            labelled += 1
    print(f"  {labelled} files labelled with user.experiment tags")

    index_root = tempfile.mkdtemp(prefix="gufi_usersearch_")
    built = dir2index(tree, index_root, opts=BuildOptions(nthreads=NTHREADS))
    print(f"  indexed {built.entries_inserted} entries "
          f"({built.side_dbs_created} per-user/group xattr side databases)")

    pop = ns.spec.population
    uid = pop.uids[0]
    me = Credentials(uid=uid, gid=pop.primary_gid[uid])
    tools = GUFITools(built.index, creds=me, nthreads=NTHREADS)

    # --- name search -------------------------------------------------
    hits = tools.find("/", FindFilters(name_like="%.h5"))
    print(f"\n[u{uid}] *.h5 files I can see: {len(hits.rows)}")

    # --- large-and-stale search (purge-policy self-audit, §II) -------
    horizon = 3 * 365 * 86400
    stale = tools.find(
        "/",
        FindFilters(uid=uid, min_size=10 * 1024 * 1024,
                    mtime_before=horizon - 180 * 86400),
    )
    total = sum(r[2] for r in stale.rows)
    print(f"[u{uid}] my files >10MiB untouched for 180 days: "
          f"{len(stale.rows)} ({total:,} bytes at purge risk)")

    # --- xattr label search ------------------------------------------
    result = tools.xattr_search("exp-001")
    print(f"[u{uid}] files labelled exp-001 that I may see: "
          f"{len(result.rows)}")

    # --- security: another user's labels stay invisible --------------
    other_uid = pop.uids[1]
    other = Credentials(uid=other_uid, gid=pop.primary_gid[other_uid])
    mine = {r[0] for r in tools.xattr_search("exp-").rows}
    theirs = {
        r[0]
        for r in GUFITools(built.index, creds=other, nthreads=NTHREADS)
        .xattr_search("exp-").rows
    }
    admin = {
        r[0]
        for r in GUFITools(built.index, nthreads=NTHREADS)
        .xattr_search("exp-").rows
    }
    print(f"\nlabel visibility: admin {len(admin)}, "
          f"u{uid} {len(mine)}, u{other_uid} {len(theirs)}")
    assert mine <= admin and theirs <= admin

    # --- cost proportionality (§III-C2) -------------------------------
    q_admin = GUFIQuery(built.index, nthreads=NTHREADS)
    q_me = GUFIQuery(built.index, creds=me, nthreads=NTHREADS)
    ra = q_admin.run(Q1_LIST_NAMES)
    rm = q_me.run(Q1_LIST_NAMES)
    print(f"\nquery cost: admin read {ra.dirs_visited} databases, "
          f"u{uid} read {rm.dirs_visited} — user queries cost what the "
          f"user can see, not what the index holds")
    assert rm.dirs_visited <= ra.dirs_visited
    print("\nOK")


if __name__ == "__main__":
    main()
