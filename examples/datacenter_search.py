#!/usr/bin/env python
"""Data-center-wide search: multiple file systems, one index, one
restricted access point (paper Figs 2-4).

The full deployment story in one script:

1. three source "file systems" (home NFS, Lustre scratch, a kernel
   source mirror) are each scanned with the scanner suited to them
   and indexed separately;
2. the per-filesystem indexes are **grafted** under one data-center
   /Search root (the index is composable — §I);
3. a :class:`GUFIServer` fronts the unified index behind an LDAP-like
   identity provider and a restricted tool whitelist (Fig 4);
4. users query through the server / web-portal layer — cross-
   filesystem, permission-gated, re-authenticated per query;
5. one file system is decommissioned and **pruned** from the index.

Run:  python examples/datacenter_search.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import (
    BuildOptions,
    GUFIServer,
    IdentityProvider,
    Q1_LIST_PATHS,
    QueryPortal,
    ToolNotAllowed,
    dir2index,
    graft,
    prune,
    rollup,
    validate,
)
from repro.gen import dataset1, dataset2, linux_kernel_tree
from repro.scan import LesterScanner
from repro.core.build import build_from_stanzas

NTHREADS = 4


def main() -> None:
    base = Path(tempfile.mkdtemp(prefix="gufi_dc_"))

    # 1. Index each source system with its appropriate scanner.
    print("indexing three source file systems...")
    home = dataset1(scale=0.0002, seed=7)
    home_idx = dir2index(home.tree, base / "idx-home",
                         opts=BuildOptions(nthreads=NTHREADS))
    scratch = dataset2(scale=0.0002, seed=8)
    # Lustre: use the fast inode-table (Lester) scan, then ingest.
    stanzas = LesterScanner(scratch.tree).scan("/").stanzas
    scratch_idx = build_from_stanzas(stanzas, base / "idx-scratch",
                                     BuildOptions(nthreads=NTHREADS))
    kernel = linux_kernel_tree(scale=0.05)
    kernel_idx = dir2index(kernel.tree, base / "idx-kernel",
                           opts=BuildOptions(nthreads=NTHREADS))
    for label, built in (("home", home_idx), ("scratch", scratch_idx),
                         ("kernel", kernel_idx)):
        print(f"  {label}: {built.dirs_created} dirs, "
              f"{built.entries_inserted} entries")

    # 2. Compose them under one /Search root.
    from repro.core import GUFIIndex

    search = GUFIIndex.create(base / "search", source_name="datacenter")
    graft(search, home_idx.index, src_subtree="/home", at="/nfs-home/home")
    graft(search, scratch_idx.index, src_subtree="/scratch",
          at="/lustre-scratch/scratch")
    graft(search, kernel_idx.index, src_subtree="/linux",
          at="/mirrors/linux")
    from repro.core.compose import ensure_dir_db

    ensure_dir_db(search, "/")
    rollup(search, nthreads=NTHREADS)
    report = validate(search)
    print(f"\nunified index: {report.dirs_checked} directories, "
          f"{'valid' if report.ok else report.problems}")

    # 3. Access layer.
    idp = IdentityProvider()
    pop = home.spec.population
    for uid in pop.uids[:6]:
        idp.add_user(f"user{uid}", uid=uid, gid=pop.primary_gid[uid])
    idp.add_user("admin", uid=0, gid=0)
    server = GUFIServer(search, idp, nthreads=NTHREADS)
    portal = QueryPortal(server)

    # 4. Queries through the restricted shell.
    username = f"user{pop.uids[0]}"
    mine = server.invoke(username, "query", spec=Q1_LIST_PATHS)
    admin_all = server.invoke("admin", "query", spec=Q1_LIST_PATHS)
    print(f"\n{username} sees {len(mine.rows)} entries across the data "
          f"center (admin sees {len(admin_all.rows)})")
    fs_hit = {p.split('/')[1] for p, in mine.rows}
    print(f"  file systems with hits for {username}: {sorted(fs_hit)}")
    top = portal.my_largest_files(username, limit=3)
    print(f"  portal 'my largest files': {[(s, p) for p, s in top]}")

    try:
        server.invoke(username, "rollup")
    except ToolNotAllowed as exc:
        print(f"  restricted shell refused admin tool: {exc}")

    # 5. Decommission the kernel mirror.
    prune(search, "/mirrors")
    after = server.invoke("admin", "query", spec=Q1_LIST_PATHS)
    assert not any(p.startswith("/mirrors") for p, in after.rows)
    print(f"\npruned /mirrors: admin now sees {len(after.rows)} entries")
    print(f"audit log holds {len(server.audit_log)} invocations")
    print("\nOK")


if __name__ == "__main__":
    main()
