#!/usr/bin/env python
"""Quickstart: build a GUFI index and query it as root and as a user.

This walks the library's core loop end to end:

1. generate a small multi-user namespace (stands in for a production
   file system — see ``repro.fs`` / ``repro.gen``);
2. scan it and build the per-directory SQLite index (``dir2index``);
3. run the paper's flagship queries as an administrator;
4. run the same queries as an unprivileged user and watch both the
   results *and the work performed* shrink to what that user may see;
5. roll the index up and confirm queries get faster, not different.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile

from repro.core import (
    BuildOptions,
    GUFIQuery,
    GUFITools,
    Q1_LIST_PATHS,
    Q3_DU_SUMMARIES,
    Q4_DU_TSUMMARY,
    build_tsummary,
    dir2index,
    rollup,
    visible_db_count,
)
from repro.fs import Credentials
from repro.gen import dataset2

NTHREADS = 4


def main() -> None:
    # 1. A scratch-file-system-shaped namespace: ~600 dirs, ~18K files,
    #    heavy-tailed ownership across a dozen users.
    print("generating namespace...")
    ns = dataset2(scale=0.0003)
    tree = ns.tree
    print(f"  {tree.num_dirs} dirs, {tree.num_files} files, "
          f"{tree.num_symlinks} symlinks")

    # 2. Build the index: one SQLite database per directory, mirroring
    #    the source tree's structure, owners, and permission bits.
    index_root = tempfile.mkdtemp(prefix="gufi_quickstart_")
    print(f"building index at {index_root} ...")
    built = dir2index(tree, index_root, opts=BuildOptions(nthreads=NTHREADS))
    print(f"  {built.dirs_created} databases, "
          f"{built.entries_inserted} entries, {built.seconds:.1f}s")

    # 3. Administrator queries.
    admin = GUFIQuery(built.index, nthreads=NTHREADS)
    r1 = admin.run(Q1_LIST_PATHS)
    print(f"\nadmin: {len(r1.rows)} entries listed in {r1.elapsed:.2f}s "
          f"({r1.dirs_visited} databases)")
    r3 = admin.run(Q3_DU_SUMMARIES)
    print(f"admin: total space {int(r3.rows[-1][0]):,} bytes "
          f"(du via summary tables, {r3.elapsed:.2f}s)")

    # 4. The same query as an unprivileged user: the engine descends
    #    only directories the user could traverse on the real file
    #    system, so both the answer and the cost shrink.
    uid = ns.spec.population.uids[0]
    user = Credentials(uid=uid, gid=uid)
    uq = GUFIQuery(built.index, creds=user, nthreads=NTHREADS)
    ru = uq.run(Q1_LIST_PATHS)
    print(f"\nuser u{uid}: {len(ru.rows)} entries visible "
          f"({ru.dirs_visited} databases read, {ru.dirs_denied} denied)")

    tools = GUFITools(built.index, creds=user, nthreads=NTHREADS)
    print(f"user u{uid}: 3 largest files:")
    for path, size in tools.largest_files(limit=3):
        print(f"  {size:>14,}  {path}")

    # 5. Rollup: merge permission-compatible subtrees so queries open
    #    far fewer databases — answers must not change.
    print("\nrolling up ...")
    stats = rollup(built.index, limit=built.entries_inserted // 10,
                   nthreads=NTHREADS)
    print(f"  {stats.rolled} dirs absorbed children "
          f"({stats.blocked_perms} blocked by permissions); "
          f"visible databases: {built.dirs_created} -> "
          f"{visible_db_count(built.index)}")
    r1b = admin.run(Q1_LIST_PATHS)
    assert sorted(r1b.rows) == sorted(r1.rows), "rollup changed results!"
    print(f"  same {len(r1b.rows)} rows from {r1b.dirs_visited} databases "
          f"in {r1b.elapsed:.2f}s")

    # Bonus: build the tree summary and answer du from a single row.
    build_tsummary(built.index, "/")
    r4 = admin.run(Q4_DU_TSUMMARY)
    print(f"\ndu via tsummary: {int(r4.rows[0][0]):,} bytes from "
          f"{r4.dirs_visited} database read (the paper's 230x query)")
    assert int(r4.rows[0][0]) == int(r3.rows[-1][0])
    print("\nOK — see examples/user_search.py and examples/admin_reports.py")


if __name__ == "__main__":
    main()
