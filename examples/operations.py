#!/usr/bin/env python
"""Operations lifecycle: the 4-hour refresh loop, compressed (§III-A4).

What the paper's deployment does continuously, run end to end:

1. an :class:`IndexRefresher` builds version 0 from a consistent
   snapshot of the source system and publishes it by pointing the
   ``current`` symlink at it;
2. batch jobs mutate the source; queries keep answering from the
   published (slightly stale) version — "users are aware that even on
   live file systems namespace queries include out-of-date data";
3. the next refresh builds version 1 and swaps the link atomically;
   in-flight readers of v0 are undisturbed;
4. with two complete namespace snapshots on disk, the data-movement
   question ("what changed since last night?") is answered from the
   indexes alone — no source file system access;
5. the index is validated, rolled up, and characterised
   (``gufi_stats``) for the morning report.

Run:  python examples/operations.py
"""

from __future__ import annotations

import tempfile

from repro.core import (
    BuildOptions,
    GUFIQuery,
    IndexRefresher,
    Q1_LIST_PATHS,
    collect_stats,
    render_stats,
    rollup,
    validate,
    visible_db_count,
)
from repro.gen import Sampler, dataset2

NTHREADS = 4


def main() -> None:
    ns = dataset2(scale=0.0002, seed=97)
    tree = ns.tree
    pub = tempfile.mkdtemp(prefix="gufi_ops_")
    refresher = IndexRefresher(
        tree, pub, opts=BuildOptions(nthreads=NTHREADS), keep_versions=2
    )

    # --- cycle 1 -------------------------------------------------------
    rec0 = refresher.refresh()
    print(f"published v{rec0.version}: {rec0.dirs} dirs / {rec0.entries} "
          f"entries in {rec0.seconds:.1f}s -> {refresher.current_path}")

    # --- the data center runs ------------------------------------------
    sampler = Sampler(5)
    owner_uid = ns.spec.population.uids[0]
    tree.mkdir(f"/scratch/u{owner_uid}/run-0042", mode=0o700,
               uid=owner_uid, gid=owner_uid)
    for i in range(40):
        tree.create_file(
            f"/scratch/u{owner_uid}/run-0042/ts{i:04d}.ckpt",
            size=sampler.file_size(median=64 * 2**20, sigma=0.5),
            mode=0o600, uid=owner_uid, gid=owner_uid,
        )
    purged = ns.files[:25]
    for path in purged:
        tree.unlink(path)
    print(f"\nbatch jobs wrote 40 checkpoints; purge removed {len(purged)} files")

    # stale-but-consistent queries keep working against v0
    stale_rows = GUFIQuery(refresher.current(), nthreads=NTHREADS).run(
        Q1_LIST_PATHS
    ).rows
    print(f"queries against published v0 still see {len(stale_rows)} entries "
          f"(stale by design until the next pull)")

    # --- cycle 2: build + atomic swap ----------------------------------
    rec1 = refresher.refresh()
    fresh_rows = GUFIQuery(refresher.current(), nthreads=NTHREADS).run(
        Q1_LIST_PATHS
    ).rows
    print(f"\npublished v{rec1.version}; queries now see {len(fresh_rows)} "
          f"entries")
    assert len(fresh_rows) == len(stale_rows) + 40 - len(purged)

    # --- dual-snapshot data-movement report ----------------------------
    diff = refresher.diff_latest()
    print(f"\nsince last refresh: +{len(diff.created)} files, "
          f"-{len(diff.removed)}, {len(diff.resized)} resized, "
          f"net {diff.bytes_delta:+,} bytes")
    ckpts = [p for p in diff.created if "run-0042" in p]
    print(f"  (the new campaign accounts for {len(ckpts)} of the creations)")

    # --- morning hygiene -------------------------------------------------
    current = refresher.current()
    report = validate(current)
    assert report.ok
    stats_before = visible_db_count(current)
    rollup(current, limit=rec1.entries // 10, nthreads=NTHREADS)
    print(f"\nvalidated {report.dirs_checked} dirs; rollup "
          f"{stats_before} -> {visible_db_count(current)} visible DBs")
    stats = collect_stats(current, nthreads=NTHREADS)
    print()
    print(render_stats(stats))
    print("\nOK")


if __name__ == "__main__":
    main()
