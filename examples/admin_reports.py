#!/usr/bin/env python
"""Administrator reporting: the nightly-jobs workload (§II) without
touching the production file system.

Demonstrates the admin-side features:

1. per-user / per-group space accounting (quota enforcement);
2. purge-policy candidates: large files untouched past a threshold;
3. tree summaries (``bfti``) making whole-tree questions one-row reads;
4. dual-snapshot churn measurement (§III-A4): what moved between two
   index builds;
5. schema extensibility (§III-B): an admin adds a custom table to a
   copied index and queries it — "the same tools that query the index
   can be used to add tables and views".

Run:  python examples/admin_reports.py
"""

from __future__ import annotations

import sqlite3
import tempfile

from repro.core import (
    BuildOptions,
    GUFIQuery,
    GUFITools,
    QuerySpec,
    build_tsummary,
    dir2index,
    rollup,
)
from repro.core import db as gufi_db
from repro.fs import diff_snapshots, snapshot
from repro.gen import dataset2

NTHREADS = 4
HORIZON = 3 * 365 * 86400  # generator's "now"


def main() -> None:
    print("generating production-like scratch namespace...")
    ns = dataset2(scale=0.0003, seed=41)
    tree = ns.tree
    snap_nightly = snapshot(tree)  # last night's scan

    index_root = tempfile.mkdtemp(prefix="gufi_admin_")
    built = dir2index(snap_nightly, index_root,
                      opts=BuildOptions(nthreads=NTHREADS))
    rollup(built.index, limit=built.entries_inserted // 10, nthreads=NTHREADS)
    idx = built.index
    tools = GUFITools(idx, nthreads=NTHREADS)

    # 1. Space accounting --------------------------------------------
    usage = tools.space_by_user("/")
    print("\n== space by user (top 5) ==")
    for uid, nbytes in sorted(usage.items(), key=lambda kv: -kv[1])[:5]:
        print(f"  u{uid:<6} {nbytes:>16,} bytes")

    # 2. Purge candidates ---------------------------------------------
    cutoff = HORIZON - 365 * 86400  # untouched for a year
    purge_spec = QuerySpec(
        I="CREATE TABLE stale (p TEXT, uid INTEGER, size INTEGER)",
        E=(
            "INSERT INTO stale "
            "SELECT rpath(dname, d_isroot, name), uid, size FROM vrpentries "
            f"WHERE type='f' AND mtime < {cutoff} AND size > 1048576"
        ),
        J="INSERT INTO aggregate.stale SELECT p, uid, size FROM stale",
        G="SELECT uid, COUNT(*), TOTAL(size) FROM stale GROUP BY uid "
          "ORDER BY TOTAL(size) DESC LIMIT 5",
    )
    result = GUFIQuery(idx, nthreads=NTHREADS).run(purge_spec)
    print("\n== purge candidates: >1MiB files idle for a year, by user ==")
    for uid, count, nbytes in result.rows:
        print(f"  u{int(uid):<6} {int(count):>6} files  {int(nbytes):>16,} bytes")

    # 3. Tree summaries ------------------------------------------------
    ts = build_tsummary(idx, "/")
    whole_tree = GUFIQuery(idx, nthreads=NTHREADS).run(
        QuerySpec(T="SELECT totfiles, totsubdirs, totsize FROM tsummary "
                    "WHERE rectype = 0")
    )
    files, dirs, size = whole_tree.rows[0]
    print(f"\n== tree summary (built in {ts.seconds:.2f}s, answered from "
          f"{whole_tree.dirs_visited} database) ==")
    print(f"  {files:,} files, {dirs:,} dirs, {int(size):,} bytes")

    # 4. Churn between snapshots ---------------------------------------
    # batch jobs mutate the live tree after the nightly scan...
    tree.mkdir("/scratch/new-campaign", mode=0o755, uid=1001, gid=1001)
    for i in range(25):
        tree.create_file(f"/scratch/new-campaign/step{i:03d}.ckpt",
                         size=50 * 1024 * 1024, uid=1001, gid=1001)
    for path in ns.files[:15]:
        tree.unlink(path)
    snap_tonight = snapshot(tree)
    diff = diff_snapshots(snap_nightly, snap_tonight)
    print("\n== churn since last index build (dual-snapshot diff) ==")
    print(f"  created {len(diff.created)}, removed {len(diff.removed)}, "
          f"changed {len(diff.changed)}; net {diff.bytes_delta:+,} bytes")

    # 5. Schema extensibility ------------------------------------------
    # Admins may open databases read-write and extend the schema; here
    # we tag the root database with a scan-provenance table, exactly
    # the "copy, modify schema, adopt" flow §III-B describes.
    conn = gufi_db.open_rw(idx.db_path("/"))
    conn.execute("CREATE TABLE IF NOT EXISTS provenance "
                 "(scanner TEXT, scanned_at INTEGER, churn INTEGER)")
    conn.execute("INSERT INTO provenance VALUES (?,?,?)",
                 ("treewalk", HORIZON, diff.total_mutations))
    conn.close()
    check = sqlite3.connect(f"file:{idx.db_path('/')}?mode=ro", uri=True)
    row = check.execute("SELECT scanner, churn FROM provenance").fetchone()
    check.close()
    print(f"\n== custom schema extension == provenance row: {row}")
    print("\nOK")


if __name__ == "__main__":
    main()
