"""The FTS5 name-search sidecar: the artifact registry's proof of
extension. Built behind ``BuildOptions.optional_artifacts``, staged
and published by the shared commit protocol, queried through the same
permission gate as the primary database."""

from __future__ import annotations

import pytest

from repro.core.build import BuildOptions, dir2index
from repro.fs.permissions import Credentials
from repro.scan.faults import FaultPlan, InjectedFault
from repro.store import fts
from repro.store.layout import DirStore, classify_artifact

from .conftest import ALICE, BOB, NTHREADS, build_demo_tree

ROOT = Credentials(uid=0, gid=0)

pytestmark = pytest.mark.skipif(
    not fts.fts5_available(), reason="SQLite built without FTS5"
)


@pytest.fixture
def fts_index(tmp_path):
    result = dir2index(
        build_demo_tree(),
        tmp_path / "idx",
        opts=BuildOptions(
            nthreads=NTHREADS, optional_artifacts=(fts.FTS_KIND,)
        ),
    )
    return result.index


class TestSidecarBuild:
    def test_sidecar_built_everywhere(self, fts_index):
        for d in fts_index.iter_index_dirs():
            store = DirStore(d)
            assert fts.has_sidecar(store)
            kinds = {k for _n, k in store.artifacts()}
            assert fts.FTS_KIND in kinds
            assert store.list_partials() == []  # published, not staged

    def test_default_build_has_no_sidecar(self, demo_index):
        for d in demo_index.iter_index_dirs():
            assert not fts.has_sidecar(DirStore(d))

    def test_sidecar_is_a_registered_side_artifact(self, fts_index):
        store = fts_index.store("/public")
        names = store.side_artifacts()
        fts_names = [n for n in names if classify_artifact(n) == fts.FTS_KIND]
        assert len(fts_names) == 1

    def test_rebuild_removes_sidecar_with_the_rest(self, fts_index):
        store = fts_index.store("/public")
        assert fts.has_sidecar(store)
        store.remove_artifacts()
        assert not fts.has_sidecar(store)
        assert not store.db_path.exists()

    def test_unknown_optional_kind_fails_build(self, demo_tree, tmp_path):
        result = dir2index(
            demo_tree,
            tmp_path / "idx",
            opts=BuildOptions(
                nthreads=1, optional_artifacts=("no_such_kind",)
            ),
        )
        # every directory reports the unknown kind; nothing commits
        assert result.errors
        assert "no_such_kind" in str(result.errors[0][1])
        assert result.dirs_created == 0

    def test_fault_site_fires_per_sidecar(self, demo_tree, tmp_path):
        plan = FaultPlan.io_at(fts.FAULT_SITE, at=2)
        result = dir2index(
            demo_tree,
            tmp_path / "idx",
            opts=BuildOptions(
                nthreads=1,
                optional_artifacts=(fts.FTS_KIND,),
                faults=plan,
                retry=None,
            ),
        )
        fired = [f for f in plan.fired if f.site == fts.FAULT_SITE]
        assert len(fired) == 1
        assert result.errors or result.dirs_retried  # the fault surfaced


class TestSearch:
    def test_search_dir_hits(self, fts_index):
        store = fts_index.store("/public")
        hits = fts.search_dir(store, "readme")
        assert [n for n, _ino in hits] == ["readme"]

    def test_search_dir_without_sidecar_is_empty(self, demo_index):
        assert fts.search_dir(demo_index.store("/public"), "readme") == []

    def test_search_dir_limit(self, fts_index):
        store = fts_index.store("/public")
        assert len(fts.search_dir(store, "readme OR link", limit=1)) == 1

    def test_search_names_root_sees_everything(self, fts_index):
        hits = fts.search_names(fts_index, "txt", ROOT)
        assert ("/home/alice", "a.txt") in hits
        assert ("/home/bob", "b.txt") in hits
        assert ("/public/xonly", "hidden.txt") in hits

    def test_search_names_permission_gated(self, fts_index):
        # bob cannot read alice's 0700 home, and /public/xonly is
        # searchable-not-readable: names there stay invisible
        hits = fts.search_names(fts_index, "txt", BOB)
        assert ("/home/bob", "b.txt") in hits
        assert all(sp != "/home/alice" for sp, _n in hits)
        assert all(sp != "/public/xonly" for sp, _n in hits)

    def test_search_names_owner_sees_own(self, fts_index):
        hits = fts.search_names(fts_index, "txt", ALICE)
        assert ("/home/alice", "a.txt") in hits
        # alice cannot see bob's secret subtree
        assert all("secret" not in sp for sp, _n in hits)
