"""Tests for synthetic namespace generation: determinism, target
counts, layout-specific permission structure, xattr application."""

from __future__ import annotations

import pytest

from repro.gen.datasets import (
    TABLE1_SCAN_TYPE,
    dataset1,
    dataset2,
    linux_kernel_tree,
    table1_names,
    table1_namespace,
    table1_paper_counts,
)
from repro.gen.distributions import Population, Sampler
from repro.gen.namespace import (
    Layout,
    NamespaceSpec,
    apply_xattrs,
    build_namespace,
)


class TestSampler:
    def test_deterministic(self):
        a, b = Sampler(42), Sampler(42)
        assert [a.file_size() for _ in range(20)] == [
            b.file_size() for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        assert [Sampler(1).filename() for _ in range(5)] != [
            Sampler(2).filename() for _ in range(5)
        ]

    def test_zipf_skewed(self):
        s = Sampler(7)
        picks = [s.zipf_index(100) for _ in range(2000)]
        # index 0 should dominate
        assert picks.count(0) > picks.count(50) * 3
        assert all(0 <= p < 100 for p in picks)

    def test_zipf_degenerate(self):
        assert Sampler(0).zipf_index(1) == 0

    def test_fanout_bounded(self):
        s = Sampler(3)
        assert all(0 <= s.fanout(maximum=50) <= 50 for _ in range(500))

    def test_file_size_nonnegative(self):
        s = Sampler(3)
        assert all(s.file_size() >= 0 for _ in range(200))

    def test_age_bounded(self):
        s = Sampler(3)
        horizon = 1000
        assert all(0 <= s.age_seconds(horizon) <= horizon for _ in range(200))


class TestPopulation:
    def test_make(self):
        pop = Population.make(5, n_shared_groups=3)
        assert len(pop.uids) == 5
        assert len(pop.shared_gids) == 3
        assert all(pop.primary_gid[u] == u for u in pop.uids)


class TestBuildNamespace:
    def test_counts_hit_targets(self):
        spec = NamespaceSpec(
            name="t", n_dirs=100, n_files=500, layout=Layout.HOME,
            n_users=5, seed=1,
        )
        ns = build_namespace(spec)
        assert ns.tree.num_dirs >= 100  # +containers
        assert ns.tree.num_files + ns.tree.num_symlinks == 500
        assert len(ns.files) == 500

    def test_deterministic(self):
        spec = dict(name="t", n_dirs=50, n_files=120, layout=Layout.SCRATCH,
                    n_users=4, seed=9)
        a = build_namespace(NamespaceSpec(**spec))
        b = build_namespace(NamespaceSpec(**spec))
        assert a.dirs == b.dirs
        assert a.files == b.files
        sa = {p: (i.mode, i.uid, i.gid, i.size) for p, i in a.tree.iter_inodes()}
        sb = {p: (i.mode, i.uid, i.gid, i.size) for p, i in b.tree.iter_inodes()}
        assert sa == sb

    def test_home_layout_single_owner_areas(self):
        spec = NamespaceSpec(
            name="t", n_dirs=120, n_files=200, layout=Layout.HOME,
            n_users=6, seed=5,
        )
        ns = build_namespace(spec)
        # each area is overwhelmingly owned by its user
        for root in ns.area_roots:
            owner = ns.area_roots[root].uid
            owned = total = 0
            for p, ino in ns.tree.iter_inodes():
                if p.startswith(root + "/") or p == root:
                    total += 1
                    owned += ino.uid == owner
            assert owned / total > 0.9

    def test_project_layout_mixed(self):
        spec = NamespaceSpec(
            name="t", n_dirs=200, n_files=300, layout=Layout.PROJECT,
            n_users=8, seed=5,
        )
        ns = build_namespace(spec)
        owners = {i.uid for _, i in ns.tree.iter_inodes()}
        assert len(owners) > 2  # genuinely mixed ownership

    def test_kernel_layout_world_readable(self):
        ns = linux_kernel_tree(scale=0.02)
        for p, ino in ns.tree.iter_inodes():
            if ino.ftype.value == "d":
                assert ino.mode & 0o005 == 0o005, p


class TestDatasets:
    def test_kernel_counts(self):
        ns = linux_kernel_tree(scale=0.1)
        assert 300 <= ns.tree.num_dirs <= 600
        assert ns.tree.num_files + ns.tree.num_symlinks == 7400

    def test_dataset_presets(self):
        d1 = dataset1(scale=0.001)
        d2 = dataset2(scale=0.0001)
        assert d1.spec.layout is Layout.HOME
        assert d2.spec.layout is Layout.SCRATCH

    def test_table1(self):
        assert set(table1_names()) == set(TABLE1_SCAN_TYPE)
        dirs, files = table1_paper_counts("/users")
        assert (dirs, files) == (6_100_000, 43_000_000)
        ns = table1_namespace("/proj", scale=5e-5)
        assert ns.tree.num_dirs > 100

    def test_table1_deterministic_across_calls(self):
        a = table1_namespace("/users", scale=5e-5)
        b = table1_namespace("/users", scale=5e-5)
        assert a.dirs == b.dirs


class TestApplyXattrs:
    def test_coverage_and_needle(self):
        ns = dataset2(scale=0.0001, seed=3)
        tagged, needle = apply_xattrs(ns, 0.5)
        frac = len(tagged) / len(ns.files)
        assert 0.35 < frac < 0.65
        assert needle in tagged
        assert ns.tree.getxattr(needle, "user.needle") == b"found-me"
        # every tagged file carries the sentinel
        for p in tagged[:50]:
            assert ns.tree.getxattr(p, "user.ext") == b"1"

    def test_full_coverage(self):
        ns = dataset2(scale=0.0001, seed=3)
        tagged, _ = apply_xattrs(ns, 1.0)
        n_symlinks = sum(
            1 for p in ns.files if ns.tree.lstat(p).ftype.value == "l"
        )
        # all regular files tagged; symlinks cannot carry user xattrs
        assert len(tagged) == len(ns.files) - n_symlinks

    def test_zero_coverage_still_has_needle(self):
        ns = dataset2(scale=0.0001, seed=3)
        tagged, needle = apply_xattrs(ns, 0.0)
        assert len(tagged) == 1 and needle == tagged[0]
