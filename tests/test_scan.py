"""Tests for the scanning layer: parallel walker semantics, trace
format round-trips, and scanner-family equivalence."""

from __future__ import annotations

import io
import os
import threading

import pytest

from repro.fs.tree import VFSTree
from repro.gen.datasets import dataset2
from repro.scan.scanners import (
    COST_PRESETS,
    LesterScanner,
    SnapshotScanner,
    SQLScanner,
    TreeWalkScanner,
    make_scanner,
    record_from_inode,
)
from repro.scan.trace import DirStanza, TraceRecord, read_trace, write_trace
from repro.scan.walker import ParallelTreeWalker, default_worker_count


class TestWalker:
    def test_processes_everything(self):
        seen = []
        lock = threading.Lock()

        def expand(n):
            with lock:
                seen.append(n)
            return [n * 2, n * 2 + 1] if n < 8 else []

        stats = ParallelTreeWalker(3).walk([1], expand)
        assert sorted(seen) == sorted(set(seen))
        assert stats.items_processed == len(seen)
        assert 1 in seen and 15 in seen

    def test_completion_times_sorted(self):
        stats = ParallelTreeWalker(4).walk(range(20), lambda n: [])
        assert stats.thread_completion_times == sorted(
            stats.thread_completion_times
        )
        assert len(stats.thread_completion_times) == 4
        assert 0 <= stats.effective_concurrency <= 1

    def test_errors_collected_not_fatal(self):
        def expand(n):
            if n == 3:
                raise ValueError("boom")
            return []

        stats = ParallelTreeWalker(2).walk(range(6), expand)
        assert len(stats.errors) == 1
        # errored items are counted separately, not as processed
        assert stats.items_processed == 5
        assert stats.items_errored == 1
        assert sum(stats.items_per_thread.values()) == 6

    def test_errors_raised_when_requested(self):
        with pytest.raises(ValueError):
            ParallelTreeWalker(2).walk(
                [1], lambda n: (_ for _ in ()).throw(ValueError("x")),
                collect_errors=False,
            )

    def test_empty_roots(self):
        stats = ParallelTreeWalker(2).walk([], lambda n: [])
        assert stats.items_processed == 0

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            ParallelTreeWalker(0)

    def test_default_thread_count_tracks_affinity(self):
        expected = default_worker_count()
        assert expected >= 1
        assert ParallelTreeWalker().nthreads == expected
        try:
            affinity = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):
            affinity = os.cpu_count() or 1
        assert expected == affinity

    def test_items_per_thread_sums(self):
        stats = ParallelTreeWalker(3).walk(range(30), lambda n: [])
        assert sum(stats.items_per_thread.values()) == 30


class TestTraceFormat:
    def make_record(self, **kw) -> TraceRecord:
        base = dict(
            path="/a/b", ftype="f", ino=7, mode=0o644, nlink=1, uid=10,
            gid=20, size=1234, blksize=4096, blocks=3, atime=1, mtime=2,
            ctime=3, linkname="", xattrs={},
        )
        base.update(kw)
        return TraceRecord(**base)

    def test_encode_decode_roundtrip(self):
        rec = self.make_record(xattrs={"user.a": b"\x00\xff", "user.b": b"hi"})
        back = TraceRecord.decode(rec.encode())
        assert back == rec

    def test_name_and_parent(self):
        rec = self.make_record(path="/x/y/z.txt")
        assert rec.name == "z.txt"
        assert rec.parent == "/x/y"
        root = self.make_record(path="/", ftype="d")
        assert root.name == "/"

    def test_symlink_roundtrip(self):
        rec = self.make_record(ftype="l", linkname="/target/path")
        assert TraceRecord.decode(rec.encode()).linkname == "/target/path"

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord.decode("too\x1efew\x1efields")

    def test_stanza_head_must_be_dir(self):
        with pytest.raises(ValueError):
            DirStanza(directory=self.make_record(ftype="f"))

    def test_write_read_stream(self):
        d = self.make_record(path="/d", ftype="d", ino=1)
        stanza = DirStanza(directory=d, entries=[self.make_record(path="/d/f")])
        buf = io.StringIO()
        n = write_trace([stanza], buf)
        assert n == 2
        buf.seek(0)
        (back,) = list(read_trace(buf))
        assert back.directory.path == "/d"
        assert back.entries[0].path == "/d/f"

    def test_orphan_entry_rejected(self):
        buf = io.StringIO(self.make_record(path="/lost").encode() + "\n")
        with pytest.raises(ValueError):
            list(read_trace(buf))


class TestScanners:
    @pytest.fixture(scope="class")
    def ns(self):
        return dataset2(scale=0.0001, seed=4)

    def test_all_scanners_agree(self, ns):
        results = {}
        for kind in ("treewalk", "lester", "sql", "snapshot"):
            sc = make_scanner(kind, ns.tree, nthreads=2)
            r = sc.scan("/")
            results[kind] = {
                s.directory.path: sorted(e.path for e in s.entries)
                for s in r.stanzas
            }
        base = results["treewalk"]
        for kind, got in results.items():
            assert got == base, f"{kind} disagrees with treewalk"

    def test_scan_counts(self, ns):
        r = TreeWalkScanner(ns.tree, nthreads=2).scan("/")
        assert r.num_dirs == ns.tree.num_dirs
        assert r.num_entries == ns.tree.num_files + ns.tree.num_symlinks

    def test_subtree_scan(self, ns):
        full = LesterScanner(ns.tree).scan("/")
        area = next(iter(ns.area_roots))
        sub = LesterScanner(ns.tree).scan(area)
        assert 0 < sub.num_dirs < full.num_dirs
        assert all(
            s.directory.path == area or s.directory.path.startswith(area + "/")
            for s in sub.stanzas
        )

    def test_modeled_times_ordering(self, ns):
        tw = TreeWalkScanner(ns.tree, nthreads=4).scan("/")
        le = LesterScanner(ns.tree).scan("/")
        sq = SQLScanner(ns.tree).scan("/")
        # Table I: inode-table scans are much faster than tree walks;
        # SQL dumps sit between lester and tree walks per entry.
        assert le.modeled_time < sq.modeled_time < tw.modeled_time * 10
        assert le.modeled_time < tw.modeled_time

    def test_treewalk_parallel_speedup_modeled(self, ns):
        one = TreeWalkScanner(ns.tree, nthreads=1).scan("/")
        eight = TreeWalkScanner(ns.tree, nthreads=8).scan("/")
        assert eight.modeled_time < one.modeled_time / 4

    def test_sequential_scanners_ignore_threads(self, ns):
        r = SQLScanner(ns.tree).scan("/")
        assert r.nthreads == 1
        assert not r.cost_model.parallelizable

    def test_snapshot_scanner_consistent_under_mutation(self):
        t = VFSTree()
        t.mkdir("/d")
        for i in range(50):
            t.create_file(f"/d/f{i}", size=i)
        sc = SnapshotScanner(t, nthreads=2)
        r = sc.scan("/")
        # the live tree is untouched and the scan covers the snapshot
        assert r.num_entries == 50
        assert sc.tree is t  # restored after the scan
        assert r.modeled_time >= SnapshotScanner.SNAPSHOT_COST

    def test_record_from_inode_xattrs(self):
        t = VFSTree()
        t.mkdir("/d")
        t.create_file("/d/f", size=9)
        t.setxattr("/d/f", "user.k", b"v")
        rec = record_from_inode("/d/f", t.get_inode("/d/f"))
        assert rec.xattrs == {"user.k": b"v"}
        assert rec.size == 9

    def test_cost_presets(self):
        assert "lester" in COST_PRESETS
        assert COST_PRESETS["lester"].per_stat < COST_PRESETS["treewalk-nfs"].per_stat

    def test_unknown_scanner_kind(self, ns):
        with pytest.raises(ValueError):
            make_scanner("bogus", ns.tree)
