"""Schema migration: v0 read-compat, in-place upgrade with
byte-identical query results, and kill-at-50%/resume through the
checkpoint machinery (``gufi index migrate``)."""

from __future__ import annotations

import pytest

from repro.core.engine import QueryEngine
from repro.core.query import QuerySpec
from repro.fs.permissions import Credentials
from repro.scan.faults import BuildCrash, FaultPlan
from repro.store.connect import open_ro, open_rw
from repro.store.layout import DirStore, classify_artifact
from repro.store.migrate import (
    FAULT_SITE,
    MIGRATE_JOURNAL,
    migrate_db,
    migrate_index,
)
from repro.store.schema import (
    SCHEMA_VERSION,
    SchemaVersionError,
    db_schema_version,
    migrate_conn,
)

ROOT = Credentials(uid=0, gid=0)

#: a query touching entries, summary, and the pentries view — if
#: migration perturbed any row, this notices
SPEC = QuerySpec(
    S="SELECT name, totfiles, totsize FROM summary WHERE isroot = 1",
    E="SELECT name, inode, size, mtime FROM pentries",
)


def _pin_v0(index) -> int:
    """Rewind every database in the index to the unversioned epoch
    (what a pre-store build left on disk)."""
    pinned = 0
    for d in index.iter_index_dirs():
        store = DirStore(d)
        for name, _kind in store.artifacts():
            conn = open_rw(store.artifact_path(name))
            try:
                conn.execute("PRAGMA user_version = 0")
                conn.commit()
            finally:
                conn.close()
            pinned += 1
    return pinned


def _versions(index) -> set[int]:
    out = set()
    for d in index.iter_index_dirs():
        store = DirStore(d)
        for name, _kind in store.artifacts():
            conn = open_ro(store.artifact_path(name))
            try:
                out.add(db_schema_version(conn))
            finally:
                conn.close()
    return out


def _run(index) -> list[tuple]:
    result = QueryEngine(index, creds=ROOT, nthreads=2).run(SPEC, "/")
    return sorted(result.rows)


class TestMigrateRoundTrip:
    def test_v0_reads_migrates_and_rereads_identically(self, demo_index):
        baseline = _run(demo_index)
        assert baseline  # the demo tree is not empty

        pinned = _pin_v0(demo_index)
        assert pinned > 0
        assert _versions(demo_index) == {0}

        # read-compat: every query path works against v0 unchanged
        demo_index.cache.clear()
        assert _run(demo_index) == baseline

        result = migrate_index(demo_index)
        assert result.ok
        assert result.dirs_seen == result.dirs_migrated
        assert result.steps_applied >= result.dirs_migrated
        assert _versions(demo_index) == {SCHEMA_VERSION}

        # byte-identical rows after the upgrade
        demo_index.cache.clear()
        assert _run(demo_index) == baseline

    def test_migrate_is_idempotent(self, demo_index):
        first = migrate_index(demo_index)
        assert first.ok and first.dirs_migrated == 0
        assert first.dirs_skipped == first.dirs_seen

    def test_side_dbs_migrate_too(self, tmp_path):
        from repro.core.build import BuildOptions, dir2index
        from repro.fs.tree import VFSTree

        t = VFSTree()
        t.mkdir("/d", mode=0o750, uid=1001, gid=1001)
        t.create_file("/d/mine", mode=0o640, uid=1001, gid=1001)
        t.create_file("/d/bobs", mode=0o600, uid=1002, gid=1002)
        t.setxattr("/d/bobs", "user.bobs", b"b1")  # sharded: other uid
        index = dir2index(
            t, tmp_path / "idx", opts=BuildOptions(nthreads=2)
        ).index
        had_sides = any(
            classify_artifact(n) not in (None, "primary")
            for d in index.iter_index_dirs()
            for n, _k in DirStore(d).artifacts()
        )
        assert had_sides, "build must shard xattrs for this test"
        _pin_v0(index)
        result = migrate_index(index)
        assert result.ok
        assert result.side_dbs_migrated > 0
        assert _versions(index) == {SCHEMA_VERSION}

    def test_newer_schema_refuses(self, tmp_path):
        store = DirStore.open(tmp_path / "d")
        conn = store.create_primary()
        try:
            conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
            conn.commit()
        finally:
            conn.close()
        with pytest.raises(SchemaVersionError):
            migrate_db(store.db_path)

    def test_migrate_conn_reports_steps(self, tmp_path):
        store = DirStore.open(tmp_path / "d")
        conn = store.create_primary()
        try:
            conn.execute("PRAGMA user_version = 0")
            conn.commit()
            assert migrate_conn(conn) == SCHEMA_VERSION
            assert db_schema_version(conn) == SCHEMA_VERSION
            assert migrate_conn(conn) == 0  # already current
        finally:
            conn.close()


class TestMigrateCrashResume:
    def test_kill_at_half_then_resume(self, demo_index):
        baseline = _run(demo_index)
        _pin_v0(demo_index)
        n_dirs = sum(1 for _ in demo_index.iter_index_dirs())
        assert n_dirs >= 4
        half = n_dirs // 2 + 1

        with pytest.raises(BuildCrash):
            migrate_index(
                demo_index, faults=FaultPlan.crash_at(FAULT_SITE, half)
            )

        # the journal survived the crash and some dirs are still v0
        assert (demo_index.root / MIGRATE_JOURNAL).exists()
        assert 0 in _versions(demo_index)

        resumed = migrate_index(demo_index, resume=True)
        assert resumed.ok
        assert resumed.dirs_skipped >= half - 1  # journal-proven dirs
        assert resumed.dirs_migrated >= 1
        assert _versions(demo_index) == {SCHEMA_VERSION}
        # a finished migration finalizes (removes) its journal
        assert not (demo_index.root / MIGRATE_JOURNAL).exists()

        demo_index.cache.clear()
        assert _run(demo_index) == baseline

    def test_per_dir_failure_keeps_sweeping(self, demo_index):
        _pin_v0(demo_index)
        # corrupt one primary database so its migration fails
        victim = demo_index.db_path("/home/bob")
        victim.write_bytes(b"this is not a sqlite database")
        result = migrate_index(demo_index)
        assert not result.ok
        assert [sp for sp, _exc in result.errors] == ["/home/bob"]
        # every healthy directory still migrated
        assert result.dirs_migrated == result.dirs_seen - 1
