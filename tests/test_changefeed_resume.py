"""Crash/resume for the changefeed consumer (ISSUE satellite 2).

The consumer commits its cursor only after a batch is fully applied,
and every per-directory apply goes through the atomic
``.partial``+rename publish path — so a consumer killed mid-apply
(fault sites ``build_dir_db`` / ``build_dir_db.commit``) restarts from
the last checkpoint, re-drains the same events, and converges to
exactly the state an uninterrupted apply produces: exactly-once
effects, no half-published databases, no lost events.
"""

from __future__ import annotations

import os

import pytest

from repro.core.build import PARTIAL_SUFFIX, BuildOptions, dir2index
from repro.core.changefeed import changefeed2index
from repro.core.checkpoint import ChangefeedCheckpoint
from repro.core.query import Q1_LIST_PATHS, Q4_DU_TSUMMARY, GUFIQuery
from repro.core.tsummary import build_tsummary
from repro.fs.changelog import ChangeJournal
from repro.scan.faults import BuildCrash, FaultPlan
from tests.conftest import NTHREADS, build_demo_tree

OPTS = BuildOptions(nthreads=NTHREADS)


def query_rows(index) -> list:
    q = GUFIQuery(index, nthreads=NTHREADS)
    try:
        return sorted(q.run(Q1_LIST_PATHS).rows)
    finally:
        q.close()


def partials_under(root) -> list[str]:
    return [
        os.path.join(d, f)
        for d, _, files in os.walk(root)
        for f in files
        if f.endswith(PARTIAL_SUFFIX)
    ]


def mutate_batch(tree) -> None:
    """A batch dirtying several directories, including a pre-existing
    subtree move (so replay exercises the idempotent-move path)."""
    tree.create_file("/home/alice/n1.dat", size=10, mode=0o600,
                     uid=1001, gid=1001)
    tree.create_file("/home/bob/n2.dat", size=20, uid=1002, gid=1002)
    tree.create_file("/proj/shared/n3.c", size=30, mode=0o660,
                     uid=1001, gid=100)
    tree.create_file("/public/n4.txt", size=40, uid=0, gid=0)
    tree.chmod("/public/xonly", 0o700)
    tree.rename("/public/ronly", "/proj/ronly")


def setup(tmp_path, name="idx"):
    tree = build_demo_tree()
    index = dir2index(tree, tmp_path / name, opts=OPTS).index
    journal = ChangeJournal()
    tree.set_changelog(journal)
    return tree, index, journal


class TestCrashMidApply:
    """Kill the apply at 25/50/75% of its directory rebuilds."""

    def _reference_dirs_rebuilt(self, tmp_path) -> int:
        tree, index, journal = setup(tmp_path, "ref")
        mutate_batch(tree)
        return changefeed2index(index, tree, journal, opts=OPTS).dirs_rebuilt

    @pytest.mark.parametrize("frac", [0.25, 0.5, 0.75])
    def test_kill_resume_exactly_once(self, tmp_path, frac):
        n_rebuilds = self._reference_dirs_rebuilt(tmp_path)
        assert n_rebuilds >= 4  # the fractions below must differ
        tree, index, journal = setup(tmp_path)
        mutate_batch(tree)
        emitted = journal.head

        kill_at = max(1, int(n_rebuilds * frac))
        with pytest.raises(BuildCrash):
            changefeed2index(
                index, tree, journal, opts=OPTS,
                faults=FaultPlan.crash_at("build_dir_db", kill_at),
            )
        # nothing acknowledged: cursor still at 0, every event retained
        assert ChangefeedCheckpoint(index.root).load() == 0
        assert len(journal) == emitted

        resumed = changefeed2index(index, tree, journal, opts=OPTS)
        # the whole batch was re-drained and applied once, effectively
        assert resumed.events_applied == emitted
        assert resumed.cursor == emitted
        assert ChangefeedCheckpoint(index.root).load() == emitted
        assert len(journal) == 0  # acknowledged after commit
        assert partials_under(index.root) == []
        fresh = dir2index(tree, tmp_path / "fresh", opts=OPTS).index
        assert query_rows(index) == query_rows(fresh)

        # and a third run is a clean no-op
        again = changefeed2index(index, tree, journal, opts=OPTS)
        assert again.events_applied == 0

    def test_crash_at_commit_publishes_nothing_half(self, tmp_path):
        """Worst case: the rebuild dies with the staging file fully
        written but not yet renamed — the victim directory must show
        either no database at all or the pre-crash one, never a torn
        write; resume converges anyway."""
        tree, index, journal = setup(tmp_path)
        mutate_batch(tree)
        with pytest.raises(BuildCrash):
            changefeed2index(
                index, tree, journal,
                opts=BuildOptions(nthreads=1),
                faults=FaultPlan.crash_at("build_dir_db.commit", 1),
            )
        # any staging residue is invisible to queries (.partial only)
        for p in partials_under(index.root):
            assert not os.path.exists(p[: -len(PARTIAL_SUFFIX)])
        resumed = changefeed2index(index, tree, journal, opts=OPTS)
        assert resumed.events_applied == journal.head
        assert partials_under(index.root) == []
        fresh = dir2index(tree, tmp_path / "fresh", opts=OPTS).index
        assert query_rows(index) == query_rows(fresh)

    def test_repeated_crashes_still_converge(self, tmp_path):
        """Crash on every single rebuild attempt in turn; each restart
        makes progress-free replays safe until a clean run lands."""
        tree, index, journal = setup(tmp_path)
        mutate_batch(tree)
        for kill_at in (1, 1, 2):
            with pytest.raises(BuildCrash):
                changefeed2index(
                    index, tree, journal, opts=OPTS,
                    faults=FaultPlan.crash_at("build_dir_db", kill_at),
                )
        resumed = changefeed2index(index, tree, journal, opts=OPTS)
        assert resumed.cursor == journal.head == resumed.events_applied
        fresh = dir2index(tree, tmp_path / "fresh", opts=OPTS).index
        assert query_rows(index) == query_rows(fresh)


class TestPendingTsummary:
    def test_tsummary_owed_after_crash_is_refreshed_on_resume(
        self, tmp_path
    ):
        """A rebuild destroys the tsummary rows used to detect roots;
        the checkpoint records them *before* the rebuild phase, so a
        crashed apply still owes — and a resumed one delivers — the
        refresh."""
        tree, index, journal = setup(tmp_path)
        build_tsummary(index, "/", per_user_group=True)
        mutate_batch(tree)
        with pytest.raises(BuildCrash):
            changefeed2index(
                index, tree, journal, opts=OPTS,
                faults=FaultPlan.crash_at("build_dir_db", 2),
            )
        cursor, pending = ChangefeedCheckpoint(index.root).load_state()
        assert cursor == 0
        assert "/" in pending

        resumed = changefeed2index(index, tree, journal, opts=OPTS)
        assert resumed.tsummary_refreshed >= 1
        cursor, pending = ChangefeedCheckpoint(index.root).load_state()
        assert cursor == journal.head
        assert pending == []
        fresh = dir2index(tree, tmp_path / "fresh", opts=OPTS).index
        build_tsummary(fresh, "/", per_user_group=True)
        q_inc = GUFIQuery(index, nthreads=NTHREADS)
        q_new = GUFIQuery(fresh, nthreads=NTHREADS)
        assert sorted(q_inc.run(Q4_DU_TSUMMARY).rows) == sorted(
            q_new.run(Q4_DU_TSUMMARY).rows
        )
        q_inc.close()
        q_new.close()


class TestCheckpointUnit:
    def test_missing_reads_as_zero(self, tmp_path):
        assert ChangefeedCheckpoint(tmp_path).load() == 0

    def test_corrupt_reads_as_zero(self, tmp_path):
        ckpt = ChangefeedCheckpoint(tmp_path)
        ckpt.cursor_path.write_text("{not json", encoding="utf-8")
        assert ckpt.load_state() == (0, [])

    def test_commit_roundtrip(self, tmp_path):
        ckpt = ChangefeedCheckpoint(tmp_path)
        ckpt.commit(42, pending_tsummary=["/b", "/a"])
        assert ckpt.load_state() == (42, ["/a", "/b"])
        ckpt.commit(43)
        assert ckpt.load_state() == (43, [])
        ckpt.clear()
        assert ckpt.load() == 0
        ckpt.clear()  # idempotent
