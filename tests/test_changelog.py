"""Unit tests for the bounded change journal and its VFSTree wiring."""

from __future__ import annotations

import pytest

from repro.fs.changelog import (
    ChangeJournal,
    ChangelogOverflow,
    METADATA_OPS,
)
from repro.fs.snapshot import snapshot
from tests.conftest import build_demo_tree


class TestJournalSemantics:
    def test_seqs_monotonic_from_one(self):
        j = ChangeJournal()
        events = [j.emit("create", f"/f{i}", i, "f") for i in range(3)]
        assert [e.seq for e in events] == [1, 2, 3]
        assert j.head == 3
        assert j.oldest_retained == 1

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            ChangeJournal().emit("truncate", "/f", 1, "f")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ChangeJournal(capacity=0)

    def test_drain_is_non_destructive(self):
        j = ChangeJournal()
        j.emit("create", "/a", 1, "f")
        batch = j.drain(0)
        assert [e.path for e in batch.events] == ["/a"]
        assert batch.cursor == 1
        assert len(j) == 1  # still retained until release
        assert j.drain(0).cursor == 1  # re-drain sees the same batch

    def test_release_discards_acknowledged(self):
        j = ChangeJournal()
        for i in range(5):
            j.emit("create", f"/f{i}", i, "f")
        assert j.release(3) == 3
        assert len(j) == 2
        assert j.oldest_retained == 4

    def test_drain_respects_limit(self):
        j = ChangeJournal()
        for i in range(10):
            j.emit("create", f"/f{i}", i, "f")
        batch = j.drain(0, limit=4)
        assert batch.raw_count == 4
        assert batch.cursor == 4  # next drain continues from here
        rest = j.drain(batch.cursor)
        assert rest.raw_count == 6

    def test_empty_drain_keeps_cursor(self):
        j = ChangeJournal()
        batch = j.drain(0)
        assert batch.events == () and batch.cursor == 0

    def test_overflow_on_lagging_cursor(self):
        j = ChangeJournal(capacity=3)
        for i in range(6):
            j.emit("create", f"/f{i}", i, "f")
        assert j.dropped_total == 3
        assert j.overflowed(0)
        with pytest.raises(ChangelogOverflow):
            j.drain(0)
        # a consumer at the retention boundary is fine
        assert not j.overflowed(3)
        assert j.drain(3).raw_count == 3

    def test_metadata_coalesces_structural_does_not(self):
        j = ChangeJournal()
        j.emit("create", "/a", 7, "f")
        j.emit("chmod", "/a", 7, "f")
        j.emit("chown", "/a", 7, "f")
        j.emit("chmod", "/b", 8, "f")  # different path: kept
        j.emit("utime", "/b", 8, "f")  # coalesces into the /b chmod
        batch = j.drain(0)
        assert [e.op for e in batch.events] == ["create", "chmod"]
        assert batch.coalesced == 3
        assert batch.raw_count == 5
        assert batch.cursor == 5  # covers coalesced events too

    def test_recreated_inode_not_coalesced_across_ino(self):
        """Same path, different inode (unlink + recreate): the second
        chmod targets a different file and must survive."""
        j = ChangeJournal()
        j.emit("chmod", "/a", 1, "f")
        j.emit("chmod", "/a", 2, "f")
        assert len(j.drain(0).events) == 2

    def test_events_between_window(self):
        j = ChangeJournal()
        for i in range(5):
            j.emit("create", f"/f{i}", i, "f")
        window = j.events_between(1, 3)
        assert [e.seq for e in window] == [2, 3]
        assert j.events_between(3, 3) == []
        j.release(2)
        assert j.events_between(0, 4) is None  # partially evicted

    def test_lifetime_counters(self):
        j = ChangeJournal(capacity=2)
        for i in range(4):
            j.emit("create", f"/f{i}", i, "f")
        j.release(j.head)
        assert j.events_total == 4
        assert j.dropped_total == 2
        assert len(j) == 0


class TestTreeEmission:
    def setup_method(self):
        self.tree = build_demo_tree()
        self.journal = ChangeJournal()
        self.tree.set_changelog(self.journal)

    def ops(self):
        # events_between is the raw (uncoalesced) view of the window
        return [(e.op, e.path, e.dst_path)
                for e in self.journal.events_between(0, self.journal.head)]

    def test_every_mutation_emits(self):
        t = self.tree
        t.create_file("/public/f1", size=1, uid=0, gid=0)
        t.mkdir("/public/d1", mode=0o755, uid=0, gid=0)
        t.rename("/public/f1", "/public/d1/f1")
        t.chmod("/public/d1/f1", 0o600)
        t.chown("/public/d1/f1", uid=7, gid=7)
        t.utime("/public/d1/f1", atime=1, mtime=2)
        t.setxattr("/public/d1/f1", "user.k", b"v")
        t.removexattr("/public/d1/f1", "user.k")
        t.unlink("/public/d1/f1")
        t.rmdir("/public/d1")
        assert self.ops() == [
            ("create", "/public/f1", None),
            ("create", "/public/d1", None),
            ("rename", "/public/f1", "/public/d1/f1"),
            ("chmod", "/public/d1/f1", None),
            ("chown", "/public/d1/f1", None),
            ("utime", "/public/d1/f1", None),
            ("setxattr", "/public/d1/f1", None),
            ("removexattr", "/public/d1/f1", None),
            ("unlink", "/public/d1/f1", None),
            ("rmdir", "/public/d1", None),
        ]

    def test_event_ftype_distinguishes_dirs(self):
        self.tree.mkdir("/public/d", mode=0o755, uid=0, gid=0)
        self.tree.create_file("/public/f", size=1, uid=0, gid=0)
        self.tree.symlink("/public/l", "/public/f", uid=0, gid=0)
        ftypes = {e.path: e.ftype for e in self.journal.drain(0).events}
        assert ftypes == {"/public/d": "d", "/public/f": "f",
                          "/public/l": "l"}
        assert all(e.op == "create" for e in self.journal.drain(0).events)

    def test_failed_mutation_emits_nothing(self):
        from repro.fs.errors import FSError

        with pytest.raises(FSError):
            self.tree.unlink("/no/such/file")
        with pytest.raises(FSError):
            self.tree.rmdir("/home/bob")  # non-empty
        assert self.journal.head == 0

    def test_reads_emit_nothing(self):
        self.tree.stat("/home/bob/b.txt")
        self.tree.readdir("/public")
        self.tree.walk("/")
        assert self.journal.head == 0

    def test_snapshot_detaches_journal(self):
        """Scanning a snapshot (refresh path) must not feed phantom
        events into the live tree's journal."""
        frozen = snapshot(self.tree)
        frozen.create_file("/public/ghost", size=1, uid=0, gid=0)
        assert self.journal.head == 0
        self.tree.create_file("/public/real", size=1, uid=0, gid=0)
        assert self.journal.head == 1

    def test_metadata_ops_constant_matches_emitters(self):
        assert METADATA_OPS == {
            "chmod", "chown", "utime", "setxattr", "removexattr"
        }
