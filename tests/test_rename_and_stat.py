"""Tests for VFS rename(2) semantics and the gufi_stat tool."""

from __future__ import annotations

import pytest

from repro.core.build import BuildOptions, dir2index
from repro.core.tools import GUFITools
from repro.core.update import update_directory
from repro.fs.errors import (
    AlreadyExists,
    InvalidArgument,
    NoSuchEntry,
    PermissionDenied,
)
from repro.fs.permissions import Credentials
from repro.fs.tree import VFSTree
from tests.conftest import ALICE, BOB, NTHREADS, build_demo_tree


class TestRename:
    @pytest.fixture
    def tree(self):
        t = VFSTree()
        t.mkdir("/a", mode=0o755, uid=1001, gid=1001)
        t.mkdir("/b", mode=0o755, uid=1001, gid=1001)
        t.create_file("/a/f", size=9, uid=1001, gid=1001)
        t.mkdir("/a/sub", mode=0o755, uid=1001, gid=1001)
        t.create_file("/a/sub/deep", size=3, uid=1001, gid=1001)
        return t

    def test_file_move(self, tree):
        tree.rename("/a/f", "/b/g", ALICE)
        assert not tree.exists("/a/f")
        assert tree.stat("/b/g").st_size == 9

    def test_directory_move_carries_subtree(self, tree):
        tree.rename("/a/sub", "/b/sub2", ALICE)
        assert tree.stat("/b/sub2/deep").st_size == 3
        assert not tree.exists("/a/sub")
        assert tree.stat("/a").st_nlink == 2
        assert tree.stat("/b").st_nlink == 3

    def test_refuses_existing_destination(self, tree):
        tree.create_file("/b/g", uid=1001, gid=1001)
        with pytest.raises(AlreadyExists):
            tree.rename("/a/f", "/b/g", ALICE)

    def test_refuses_move_into_self(self, tree):
        # as root so permission checks pass and the cycle check fires
        with pytest.raises(InvalidArgument):
            tree.rename("/a", "/a/sub/a2")

    def test_missing_source(self, tree):
        with pytest.raises(NoSuchEntry):
            tree.rename("/a/nope", "/b/x", ALICE)

    def test_needs_write_on_both_parents(self, tree):
        with pytest.raises(PermissionDenied):
            tree.rename("/a/f", "/b/g", BOB)  # bob can't write either

    def test_counters_stable(self, tree):
        files, dirs = tree.num_files, tree.num_dirs
        tree.rename("/a/sub", "/b/s", ALICE)
        assert (tree.num_files, tree.num_dirs) == (files, dirs)

    def test_rename_then_reindex(self, tree, tmp_path):
        """The data-transfer scenario: a rename on the source followed
        by directory updates brings the index in line."""
        idx = dir2index(tree, tmp_path / "i",
                        opts=BuildOptions(nthreads=NTHREADS)).index
        tree.rename("/a/f", "/b/moved", ALICE)
        update_directory(idx, tree, "/a")
        update_directory(idx, tree, "/b")
        tools = GUFITools(idx, nthreads=NTHREADS)
        assert tools.stat("/a/f") is None
        got = tools.stat("/b/moved")
        assert got and got["size"] == 9


class TestStatTool:
    @pytest.fixture
    def tools(self, tmp_path):
        idx = dir2index(build_demo_tree(), tmp_path / "i",
                        opts=BuildOptions(nthreads=NTHREADS)).index
        return GUFITools(idx, nthreads=NTHREADS)

    def test_file(self, tools):
        got = tools.stat("/home/bob/b.txt")
        assert got["type"] == "f"
        assert got["size"] == 300
        assert got["uid"] == 1002

    def test_symlink(self, tools):
        got = tools.stat("/public/link")
        assert got["type"] == "l"
        assert got["linkname"] == "/home/bob/b.txt"

    def test_directory(self, tools):
        got = tools.stat("/proj/shared")
        assert got["type"] == "d"
        assert got["mode"] == 0o770
        assert got["totfiles"] == 1

    def test_missing(self, tools):
        assert tools.stat("/home/bob/nope") is None

    def test_permission_enforced(self, tmp_path):
        idx = dir2index(build_demo_tree(), tmp_path / "i2",
                        opts=BuildOptions(nthreads=NTHREADS)).index
        bob_tools = GUFITools(idx, creds=BOB, nthreads=NTHREADS)
        from repro.core.query import QueryPermissionError

        with pytest.raises(QueryPermissionError):
            bob_tools.stat("/home/alice/a.txt")

    def test_stat_needs_only_search_on_target_dir(self, tmp_path):
        """gufi_stat of a name inside an x-only directory works —
        POSIX stat semantics carried into the index."""
        idx = dir2index(build_demo_tree(), tmp_path / "i3",
                        opts=BuildOptions(nthreads=NTHREADS)).index
        bob_tools = GUFITools(idx, creds=BOB, nthreads=NTHREADS)
        # /public/xonly is 0711: listing is denied...
        from repro.core.query import QueryPermissionError

        with pytest.raises(QueryPermissionError):
            bob_tools.stat("/public/xonly/hidden.txt")
        # (run_single requires r on the directory holding the entry —
        # GUFI's query tools read the db, which IS the listing; the
        # paper accepts this: a 0711 dir's db is unreadable to users.)
