"""Tests for streamed per-thread query output (the tool's -o flag)."""

from __future__ import annotations

import pytest

from repro.core.build import BuildOptions, dir2index
from repro.core.query import GUFIQuery, QuerySpec
from tests.conftest import BOB, NTHREADS, build_demo_tree


@pytest.fixture
def idx(tmp_path):
    return dir2index(
        build_demo_tree(), tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS)
    ).index


class TestOutputFiles:
    def test_rows_streamed_not_accumulated(self, idx, tmp_path):
        spec = QuerySpec(
            E="SELECT rpath(dname, d_isroot, name), size FROM vrpentries",
            output_prefix=str(tmp_path / "out"),
        )
        result = GUFIQuery(idx, nthreads=NTHREADS).run(spec)
        assert result.rows == []
        assert result.output_files
        lines = []
        for path in result.output_files:
            with open(path) as fh:
                lines.extend(ln.rstrip("\n") for ln in fh)
        # same content the in-memory variant returns
        in_mem = GUFIQuery(idx, nthreads=NTHREADS).run(
            QuerySpec(E="SELECT rpath(dname, d_isroot, name), size "
                        "FROM vrpentries")
        )
        expected = sorted(f"{p}\t{s}" for p, s in in_mem.rows)
        assert sorted(lines) == expected

    def test_one_file_per_worker_thread(self, idx, tmp_path):
        spec = QuerySpec(
            E="SELECT name FROM pentries",
            output_prefix=str(tmp_path / "o"),
        )
        result = GUFIQuery(idx, nthreads=NTHREADS).run(spec)
        assert 1 <= len(result.output_files) <= NTHREADS
        assert all(p.startswith(str(tmp_path / "o") + ".") for p in result.output_files)

    def test_permission_gating_applies(self, idx, tmp_path):
        spec = QuerySpec(
            E="SELECT rpath(dname, d_isroot, name) FROM vrpentries",
            output_prefix=str(tmp_path / "bob"),
        )
        result = GUFIQuery(idx, creds=BOB, nthreads=NTHREADS).run(spec)
        content = "".join(
            open(p).read() for p in result.output_files
        )
        assert "alice" not in content

    def test_aggregation_still_returns_rows(self, idx, tmp_path):
        """-o only streams per-directory SELECTs; the G stage's merged
        result still comes back in rows."""
        spec = QuerySpec(
            I="CREATE TABLE n (c INTEGER)",
            E="INSERT INTO n SELECT COUNT(*) FROM pentries",
            J="INSERT INTO aggregate.n SELECT TOTAL(c) FROM n",
            G="SELECT TOTAL(c) FROM n",
            output_prefix=str(tmp_path / "agg"),
        )
        result = GUFIQuery(idx, nthreads=NTHREADS).run(spec)
        assert result.rows[-1][0] == 9  # all demo entries

    def test_none_values_serialised_empty(self, idx, tmp_path):
        spec = QuerySpec(
            S="SELECT spath(name, isroot), minsize FROM summary",
            output_prefix=str(tmp_path / "s"),
        )
        result = GUFIQuery(idx, nthreads=NTHREADS).run(spec)
        lines = [
            ln for p in result.output_files for ln in open(p).read().splitlines()
        ]
        # dirs without files have NULL minsize -> empty field, line intact
        assert any(ln.endswith("\t") for ln in lines)
