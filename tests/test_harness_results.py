"""Tests for result rendering (tables, CSV, ASCII charts) and the
modelled-time helper the figure drivers share."""

from __future__ import annotations

import pytest

from repro.harness.experiments import PER_DB_OVERHEAD, modeled_gufi_time
from repro.harness.results import ResultTable, ascii_chart
from repro.sim.blktrace import IOTracer
from repro.sim.ssd import SSDModel, StorageHost


class TestCsv:
    def test_roundtrippable(self):
        import csv
        import io

        t = ResultTable(title="T", columns=["a", "b"])
        t.add("x,with,commas", 1.5)
        t.add("y", None)
        rows = list(csv.reader(io.StringIO(t.to_csv())))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["x,with,commas", "1.5"]


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart(
            "demo", {"s": [(1, 0.0), (2, 5.0), (3, 10.0)]}, width=20, height=5
        )
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert "* s" in lines[-1]
        # min and max labels present
        assert any("10" in ln for ln in lines)
        assert any("0" in ln for ln in lines)

    def test_multi_series_glyphs(self):
        chart = ascii_chart(
            "m", {"one": [(1, 1)], "two": [(2, 2)]}, width=10, height=4
        )
        assert "* one" in chart and "o two" in chart
        assert "*" in chart and "o" in chart

    def test_logx(self):
        chart = ascii_chart(
            "log", {"s": [(1, 1), (10, 2), (100, 3), (1000, 4)]},
            width=30, height=6, logx=True,
        )
        assert "log10(x)" in chart
        # equal spacing in log space: the glyph columns are evenly spread
        rows = [ln.split("|", 1)[1] for ln in chart.splitlines()
                if "|" in ln]
        cols = sorted(
            row.index("*") for row in rows if "*" in row
        )
        gaps = [b - a for a, b in zip(cols, cols[1:])]
        assert max(gaps) - min(gaps) <= 2

    def test_empty(self):
        assert "(no data)" in ascii_chart("e", {})

    def test_flat_series(self):
        chart = ascii_chart("flat", {"s": [(1, 5), (2, 5)]}, width=10, height=4)
        assert "flat" in chart  # no div-by-zero


class TestModeledTime:
    def test_io_plus_overhead(self):
        tr = IOTracer()
        for i in range(10):
            tr.record(f"/db{i}", 1_000_000)
        host = StorageHost(
            SSDModel(max_bw=1e9, stream_bw=1e9, min_efficient_read=1),
            n_ssds=1,
        )
        t = modeled_gufi_time(tr, nthreads=1, host=host)
        expected = 10e6 / 1e9 + 10 * PER_DB_OVERHEAD
        assert t == pytest.approx(expected)

    def test_threads_amortise_overhead(self):
        tr = IOTracer()
        for i in range(100):
            tr.record(f"/db{i}", 10_000)
        host = StorageHost(SSDModel(), n_ssds=1)
        assert modeled_gufi_time(tr, 100, host) < modeled_gufi_time(tr, 1, host)

    def test_empty_trace(self):
        host = StorageHost(SSDModel(), n_ssds=1)
        assert modeled_gufi_time(IOTracer(), 4, host) == 0.0
