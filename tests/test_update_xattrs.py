"""Incremental update must refresh xattr shards, not just entries —
stale side databases would leak values the user already changed."""

from __future__ import annotations

import pytest

from repro.core.build import BuildOptions, dir2index
from repro.core.query import GUFIQuery, QuerySpec
from repro.core.update import update_directory
from repro.fs.permissions import Credentials
from repro.fs.tree import VFSTree
from tests.conftest import NTHREADS

ALICE = Credentials(uid=1001, gid=1001)
XQ = QuerySpec(E="SELECT name, exattrs FROM xpentries", xattrs=True)


@pytest.fixture
def setup(tmp_path):
    t = VFSTree()
    t.mkdir("/d", mode=0o755, uid=1001, gid=1001)
    t.create_file("/d/f", mode=0o600, uid=1001, gid=1001)
    t.setxattr("/d/f", "user.secret", b"old-value", ALICE)
    idx = dir2index(t, tmp_path / "idx",
                    opts=BuildOptions(nthreads=NTHREADS)).index
    return t, idx


class TestXattrUpdate:
    def test_value_change_visible_after_update(self, setup):
        t, idx = setup
        t.setxattr("/d/f", "user.secret", b"new-value", ALICE)
        update_directory(idx, t, "/d")
        rows = dict(
            GUFIQuery(idx, creds=ALICE, nthreads=NTHREADS).run(XQ, "/d").rows
        )
        assert "new-value" in rows["f"]
        assert "old-value" not in rows["f"]

    def test_removed_value_gone_after_update(self, setup):
        t, idx = setup
        t.removexattr("/d/f", "user.secret", ALICE)
        update_directory(idx, t, "/d")
        rows = GUFIQuery(idx, creds=ALICE, nthreads=NTHREADS).run(XQ, "/d").rows
        assert rows == []

    def test_stale_side_db_removed(self, setup):
        """The file's ownership changes so its shard destination moves;
        the old side database must not linger."""
        t, idx = setup
        side = idx.index_dir("/d") / "xattrs.db.u1001"
        assert side.exists()
        t.chown("/d/f", 1001, 1001)
        t.chmod("/d/f", 0o644, ALICE)  # now matches dir read bits
        update_directory(idx, t, "/d")
        # value moved to the main db; per-user shard rebuilt away
        assert not side.exists()
        rows = dict(GUFIQuery(idx, nthreads=NTHREADS).run(XQ, "/d").rows)
        assert "user.secret=old-value" in rows["f"]

    def test_protection_tightening_effective(self, setup):
        """Making a value group-unreadable must take effect on the
        very next update (the §III-A3 emergency path, xattr flavour)."""
        t, idx = setup
        # initially: 0600 file in a 0755 dir -> per-user shard only;
        # loosen first so another user can see it via group_r
        t.chown("/d/f", 1001, 100)
        t.chmod("/d/f", 0o640, ALICE)
        update_directory(idx, t, "/d")
        groupie = Credentials(uid=1002, gid=1002, groups=frozenset({100}))
        rows = dict(
            GUFIQuery(idx, creds=groupie, nthreads=NTHREADS).run(XQ, "/d").rows
        )
        assert "f" in rows  # group member sees the value
        # tighten
        t.chmod("/d/f", 0o600, ALICE)
        update_directory(idx, t, "/d")
        rows = dict(
            GUFIQuery(idx, creds=groupie, nthreads=NTHREADS).run(XQ, "/d").rows
        )
        assert rows == {}
