"""Result sinks: the pluggable layer-3 of the query engine, and the
server's bounded/paginated responses built on it."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.engine import (
    AggregateDBSink,
    BoundedSink,
    MemorySink,
    PaginatedSink,
    QueryEngine,
    ThreadFileSink,
)
from repro.core.query import GUFIQuery, Q1_LIST_PATHS, QuerySpec
from repro.core.server import GUFIServer, IdentityProvider, QueryPortal
from repro.core.tools import FindFilters

from .conftest import NTHREADS

SPEC = Q1_LIST_PATHS


@pytest.fixture
def engine(demo_index):
    with QueryEngine(demo_index, nthreads=NTHREADS) as q:
        yield q


def _all_rows(engine):
    return sorted(engine.run(SPEC).rows)


class TestMemorySink:
    def test_explicit_memory_sink_matches_default(self, engine):
        default = engine.run(SPEC)
        explicit = engine.run(SPEC, sink=MemorySink())
        assert sorted(default.rows) == sorted(explicit.rows)
        assert not explicit.truncated

    def test_sink_instance_is_single_use(self, engine):
        sink = MemorySink()
        engine.run(SPEC, sink=sink)
        with pytest.raises(RuntimeError, match="one run"):
            engine.run(SPEC, sink=sink)

    def test_single_use_applies_to_run_single(self, engine):
        sink = MemorySink()
        engine.run_single(SPEC, "/home/bob", sink=sink)
        with pytest.raises(RuntimeError, match="one run"):
            engine.run_single(SPEC, "/home/bob", sink=sink)


class TestThreadFileSink:
    def _lines(self, result):
        lines = []
        for path in result.output_files or []:
            with open(path) as fh:
                lines.extend(ln.rstrip("\n") for ln in fh)
        return sorted(lines)

    def test_matches_output_prefix_shorthand(self, engine, tmp_path):
        via_spec = engine.run(
            QuerySpec(E=SPEC.E, output_prefix=str(tmp_path / "a"))
        )
        via_sink = engine.run(
            QuerySpec(E=SPEC.E), sink=ThreadFileSink(str(tmp_path / "b"))
        )
        assert via_spec.rows == via_sink.rows == []
        assert self._lines(via_spec) == self._lines(via_sink)
        assert via_sink.output_files
        assert all(p.startswith(str(tmp_path / "b.")) for p in via_sink.output_files)

    def test_streams_every_row(self, engine, tmp_path):
        expected = ["\t".join(str(v) for v in r) for r in _all_rows(engine)]
        result = engine.run(SPEC, sink=ThreadFileSink(str(tmp_path / "o")))
        assert self._lines(result) == sorted(expected)

    def test_run_single_streams(self, engine, tmp_path):
        result = engine.run_single(
            SPEC, "/home/bob", sink=ThreadFileSink(str(tmp_path / "s"))
        )
        assert result.rows == []
        assert result.output_files is not None
        assert self._lines(result)


class TestBoundedSink:
    def test_caps_rows_and_counts_dropped(self, engine):
        total = len(_all_rows(engine))
        assert total > 3
        sink = BoundedSink(3)
        result = engine.run(SPEC, sink=sink)
        assert len(result.rows) == 3
        assert result.truncated
        assert sink.dropped == total - 3

    def test_under_cap_is_not_truncated(self, engine):
        total = len(_all_rows(engine))
        result = engine.run(SPEC, sink=BoundedSink(total + 10))
        assert len(result.rows) == total
        assert not result.truncated

    def test_rejects_negative_cap(self):
        with pytest.raises(ValueError):
            BoundedSink(-1)

    def test_kept_rows_are_real_rows(self, engine):
        all_rows = set(_all_rows(engine))
        result = engine.run(SPEC, sink=BoundedSink(4))
        assert all(r in all_rows for r in result.rows)


class TestPaginatedSink:
    def test_pages_partition_the_rows(self, engine):
        sink = PaginatedSink(page_size=4)
        result = engine.run(SPEC, sink=sink)
        assert not result.truncated
        paged = []
        for n in range(sink.num_pages):
            page = sink.page(n)
            assert 0 < len(page) <= 4
            paged.extend(page)
        assert paged == result.rows
        assert sink.page(sink.num_pages) == []

    def test_exact_max_rows_cap(self, engine):
        sink = PaginatedSink(page_size=4, max_rows=5)
        result = engine.run(SPEC, sink=sink)
        assert len(result.rows) == 5
        assert result.truncated
        assert len(sink.page(1)) == 1  # short last page

    def test_max_pages_cap(self, engine):
        sink = PaginatedSink(page_size=2, max_pages=2)
        result = engine.run(SPEC, sink=sink)
        assert len(result.rows) == 4
        assert sink.num_pages == 2

    def test_rejects_bad_page_args(self):
        with pytest.raises(ValueError):
            PaginatedSink(0)
        sink = PaginatedSink(2)
        with pytest.raises(ValueError):
            sink.page(-1)


class TestAggregateDBSink:
    def test_rows_land_in_results_table(self, engine, tmp_path):
        db = str(tmp_path / "results.db")
        sink = AggregateDBSink(db)
        result = engine.run(SPEC, sink=sink)
        assert result.rows == []
        expected = _all_rows(engine)
        assert sink.row_count == len(expected)
        conn = sink.connect()
        try:
            got = sorted(conn.execute("SELECT * FROM results"))
            assert [r[0] for r in got] == [r[0] for r in expected]
        finally:
            conn.close()

    def test_rejects_hostile_table_name(self, tmp_path):
        with pytest.raises(ValueError):
            AggregateDBSink(str(tmp_path / "x.db"), table="results; DROP")

    def test_empty_run_creates_no_table(self, engine, tmp_path):
        db = str(tmp_path / "empty.db")
        sink = AggregateDBSink(db)
        spec = QuerySpec(E="SELECT name FROM pentries WHERE size > 10000000")
        engine.run(spec, sink=sink)
        assert sink.row_count == 0


class TestFacadeSinkPassthrough:
    def test_facade_accepts_sinks(self, demo_index):
        with GUFIQuery(demo_index, nthreads=NTHREADS) as q:
            bounded = q.run(SPEC, sink=BoundedSink(2))
            assert len(bounded.rows) == 2
            assert bounded.truncated


# ----------------------------------------------------------------------
# Bounded server responses
# ----------------------------------------------------------------------


def _server(demo_index, **kwargs) -> GUFIServer:
    idp = IdentityProvider()
    idp.add_user("root", uid=0, gid=0)
    idp.add_user("alice", uid=1001, gid=1001)
    return GUFIServer(demo_index, idp, nthreads=NTHREADS, **kwargs)


class TestServerRowCap:
    def test_default_cap_leaves_small_results_alone(self, demo_index):
        with _server(demo_index) as server:
            result = server.invoke("root", "query", "/", spec=SPEC)
            assert not result.truncated
            assert result.rows
            assert server.max_rows == GUFIServer.DEFAULT_MAX_ROWS

    def test_cap_truncates_and_audits(self, demo_index):
        with _server(demo_index, max_rows=2) as server:
            with obs.enabled(metrics=True):
                result = server.invoke("root", "query", "/", spec=SPEC)
                assert result.truncated
                assert len(result.rows) == 2
                snap = obs.metrics().snapshot()
            entry = server.audit_log[-1]
            assert entry.tool == "query" and entry.truncated
        assert (
            snap.counter("gufi_server_rows_truncated_total", tool="query")
            == 1.0
        )

    def test_find_is_capped_too(self, demo_index):
        with _server(demo_index, max_rows=1) as server:
            result = server.invoke(
                "root", "find", "/", filters=FindFilters(ftype="f")
            )
            assert result.truncated
            assert len(result.rows) == 1
            assert server.audit_log[-1].truncated

    def test_untruncated_invocations_audit_false(self, demo_index):
        with _server(demo_index, max_rows=2) as server:
            server.invoke("root", "du", "/")
            assert not server.audit_log[-1].truncated

    def test_cap_disabled_with_nonpositive(self, demo_index):
        with _server(demo_index, max_rows=0) as server:
            assert server.max_rows is None
            result = server.invoke("root", "query", "/", spec=SPEC)
            assert not result.truncated

    def test_unprivileged_caller_capped(self, demo_index):
        with _server(demo_index, max_rows=1) as server:
            result = server.invoke("alice", "query", "/", spec=SPEC)
            assert len(result.rows) == 1
            assert result.truncated

    def test_portal_search_is_capped(self, demo_index):
        with _server(demo_index, max_rows=1) as server:
            portal = QueryPortal(server)
            result = portal.search("root", "type:f")
            assert result.truncated
            assert len(result.rows) == 1
