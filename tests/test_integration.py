"""Integration tests: full pipelines across packages — scan → trace →
index → rollup → tsummary → query; dual-snapshot data-movement
analysis; multi-filesystem unified indexes; deployment-style flows."""

from __future__ import annotations

import pytest

from repro.baselines.brindexer import BrindexerIndex
from repro.core.build import BuildOptions, build_from_stanzas, dir2index, trace2index
from repro.core.query import (
    GUFIQuery,
    Q1_LIST_PATHS,
    Q3_DU_SUMMARIES,
    Q4_DU_TSUMMARY,
    QuerySpec,
)
from repro.core.rollup import rollup, visible_db_count
from repro.core.tools import GUFITools
from repro.core.tsummary import build_tsummary
from repro.core.update import update_directory
from repro.fs.permissions import Credentials
from repro.fs.snapshot import diff_snapshots, snapshot
from repro.gen.datasets import dataset2, linux_kernel_tree
from repro.scan.scanners import LesterScanner, TreeWalkScanner
from repro.scan.trace import read_trace, write_trace
from tests.conftest import NTHREADS


class TestFullPipeline:
    def test_scan_trace_index_query(self, dataset2_small, tmp_path):
        """The production flow: privileged scan -> trace file on disk ->
        parallel ingest -> queries match the live tree."""
        ns = dataset2_small
        scan = TreeWalkScanner(ns.tree, nthreads=NTHREADS).scan("/")
        trace_path = tmp_path / "fs.trace"
        n = write_trace(scan.stanzas, trace_path)
        assert n == scan.total_records
        result = trace2index(trace_path, tmp_path / "idx",
                             BuildOptions(nthreads=NTHREADS))
        assert result.dirs_created == ns.tree.num_dirs
        q = GUFIQuery(result.index, nthreads=NTHREADS)
        rows = q.run(Q1_LIST_PATHS).rows
        assert len(rows) == ns.tree.num_files + ns.tree.num_symlinks
        assert sorted(r[0] for r in rows) == sorted(ns.files)

    def test_lester_scan_equivalent_index(self, dataset2_small, tmp_path):
        """A custom (inode-table) scanner must produce an identical
        index to the generic tree walk."""
        ns = dataset2_small
        s1 = TreeWalkScanner(ns.tree, nthreads=NTHREADS).scan("/").stanzas
        s2 = LesterScanner(ns.tree).scan("/").stanzas
        i1 = build_from_stanzas(s1, tmp_path / "a", BuildOptions(nthreads=NTHREADS))
        i2 = build_from_stanzas(s2, tmp_path / "b", BuildOptions(nthreads=NTHREADS))
        q1 = sorted(GUFIQuery(i1.index, nthreads=NTHREADS).run(Q1_LIST_PATHS).rows)
        q2 = sorted(GUFIQuery(i2.index, nthreads=NTHREADS).run(Q1_LIST_PATHS).rows)
        assert q1 == q2

    def test_rollup_tsummary_query_stack(self, dataset2_small, tmp_path):
        ns = dataset2_small
        built = dir2index(ns.tree, tmp_path / "idx",
                          opts=BuildOptions(nthreads=NTHREADS))
        idx = built.index
        q = GUFIQuery(idx, nthreads=NTHREADS)
        du_before = q.run(Q3_DU_SUMMARIES).rows[-1][0]
        dbs_before = visible_db_count(idx)
        rollup(idx, limit=max(4, built.entries_inserted // 20),
               nthreads=NTHREADS)
        assert visible_db_count(idx) < dbs_before
        assert q.run(Q3_DU_SUMMARIES).rows[-1][0] == pytest.approx(du_before)
        build_tsummary(idx, "/")
        r4 = q.run(Q4_DU_TSUMMARY)
        assert r4.dirs_visited == 1
        assert r4.rows[0][0] == pytest.approx(du_before)

    def test_gufi_vs_brindexer_same_answers(self, dataset2_small, tmp_path):
        """Both indexes must agree on content; they differ in speed and
        security, not in answers (for root)."""
        ns = dataset2_small
        stanzas = TreeWalkScanner(ns.tree, nthreads=NTHREADS).scan("/").stanzas
        gufi = build_from_stanzas(stanzas, tmp_path / "g",
                                  BuildOptions(nthreads=NTHREADS)).index
        brin, _ = BrindexerIndex.build(stanzas, tmp_path / "b", n_shards=16)
        g_names = sorted(
            r[0] for r in GUFIQuery(gufi, nthreads=NTHREADS)
            .run(QuerySpec(E="SELECT name FROM pentries")).rows
        )
        b_names = sorted(r[0] for r in brin.list_names(nthreads=NTHREADS).rows)
        assert g_names == b_names
        g_du = GUFIQuery(gufi, nthreads=NTHREADS).run(Q3_DU_SUMMARIES).rows[-1][0]
        b_du = brin.du(nthreads=NTHREADS).rows[0][0]
        assert g_du == pytest.approx(b_du)


class TestMultiFilesystemIndex:
    def test_unified_search_across_sources(self, tmp_path):
        """§III-A: multiple file systems indexed under one /Search
        root, queried together (the Fig 3 layout)."""
        from repro.scan.trace import DirStanza, TraceRecord

        kernel = linux_kernel_tree(scale=0.02)
        scratch = dataset2(scale=0.00005, seed=9)
        stanzas = []
        root_rec = TraceRecord(
            path="/", ftype="d", ino=10**9, mode=0o755, nlink=4, uid=0,
            gid=0, size=0, blksize=4096, blocks=0, atime=0, mtime=0, ctime=0,
        )
        stanzas.append(DirStanza(directory=root_rec))
        for prefix, ns in (("/fs-kernel", kernel), ("/fs-scratch", scratch)):
            sub = TreeWalkScanner(ns.tree, nthreads=NTHREADS).scan("/").stanzas
            for st in sub:
                st.directory.path = prefix + (
                    "" if st.directory.path == "/" else st.directory.path
                )
                # keep inode uniqueness across sources
                st.directory.ino += hash(prefix) % 10**6 * 10**7
                for e in st.entries:
                    e.path = prefix + e.path
                    e.ino += hash(prefix) % 10**6 * 10**7
                stanzas.append(st)
        built = build_from_stanzas(stanzas, tmp_path / "search",
                                   BuildOptions(nthreads=NTHREADS))
        q = GUFIQuery(built.index, nthreads=NTHREADS)
        all_rows = [r[0] for r in q.run(Q1_LIST_PATHS).rows]
        assert any(r.startswith("/fs-kernel/") for r in all_rows)
        assert any(r.startswith("/fs-scratch/") for r in all_rows)
        # a single-source query is a subtree query
        sub_rows = q.run(Q1_LIST_PATHS, start="/fs-kernel").rows
        assert 0 < len(sub_rows) < len(all_rows)


class TestSnapshotDataMovement:
    def test_dual_snapshot_measures_mutation(self, tmp_path):
        """§III-A4: two namespace snapshots a scan-interval apart
        passively measure data movement."""
        ns = dataset2(scale=0.00005, seed=13)
        snap_t0 = snapshot(ns.tree)
        # a batch job writes, a purge removes, a user chmods
        ns.tree.mkdir("/scratch/jobout", mode=0o755, uid=1001, gid=1001)
        for i in range(10):
            ns.tree.create_file(f"/scratch/jobout/out{i}.dat", size=10**6,
                                uid=1001, gid=1001)
        victim = ns.files[0]
        ns.tree.unlink(victim)
        snap_t1 = snapshot(ns.tree)
        diff = diff_snapshots(snap_t0, snap_t1)
        assert len(diff.created) == 11  # dir + 10 files
        assert diff.removed == [victim]
        assert diff.bytes_delta == pytest.approx(
            10 * 10**6 - snap_t0.stat(victim).st_size
        )

    def test_index_swap_between_snapshots(self, tmp_path):
        """The §III-A4 update model: build from a snapshot, mutate the
        live tree, rebuild, and atomically point queries at the new
        index (here: two roots; the swap is the caller's symlink)."""
        ns = dataset2(scale=0.00005, seed=13)
        idx_old = dir2index(snapshot(ns.tree), tmp_path / "idx0",
                            opts=BuildOptions(nthreads=NTHREADS)).index
        ns.tree.create_file("/scratch/brand-new.bin", size=123,
                            uid=1001, gid=1001)
        idx_new = dir2index(snapshot(ns.tree), tmp_path / "idx1",
                            opts=BuildOptions(nthreads=NTHREADS)).index
        old_rows = {r[0] for r in GUFIQuery(idx_old, nthreads=NTHREADS)
                    .run(Q1_LIST_PATHS).rows}
        new_rows = {r[0] for r in GUFIQuery(idx_new, nthreads=NTHREADS)
                    .run(Q1_LIST_PATHS).rows}
        assert "/scratch/brand-new.bin" not in old_rows
        assert "/scratch/brand-new.bin" in new_rows
        assert new_rows - old_rows == {"/scratch/brand-new.bin"}


class TestDeploymentFlow:
    def test_user_workflow(self, dataset2_small, tmp_path):
        """A user finds their stale large files, an admin verifies the
        totals — the paper's motivating workflow."""
        ns = dataset2_small
        idx = dir2index(ns.tree, tmp_path / "idx",
                        opts=BuildOptions(nthreads=NTHREADS)).index
        uid = ns.spec.population.uids[0]
        user = Credentials(uid=uid, gid=uid)
        tools = GUFITools(idx, creds=user, nthreads=NTHREADS)
        top = tools.largest_files(limit=5)
        assert len(top) <= 5
        assert all(size >= 0 for _, size in top)
        usage = tools.space_by_user("/")
        admin_tools = GUFITools(idx, nthreads=NTHREADS)
        admin_usage = admin_tools.space_by_user("/")
        # user-visible usage for their own uid can't exceed admin's view
        assert usage.get(uid, 0) <= admin_usage[uid]

    def test_update_then_rollup_cycle(self, tmp_path):
        """Index lifecycle: build -> rollup -> incremental update
        (forces partial unroll) -> re-rollup -> queries stay exact."""
        ns = dataset2(scale=0.00005, seed=31)
        idx = dir2index(ns.tree, tmp_path / "idx",
                        opts=BuildOptions(nthreads=NTHREADS)).index
        rollup(idx, nthreads=NTHREADS)
        target_dir = ns.dirs[len(ns.dirs) // 2]
        ns.tree.create_file(f"{target_dir}/added-later.txt", size=55,
                            uid=ns.tree.get_inode(target_dir).uid,
                            gid=ns.tree.get_inode(target_dir).gid)
        update_directory(idx, ns.tree, target_dir)
        rollup(idx, nthreads=NTHREADS)
        rows = {r[0] for r in GUFIQuery(idx, nthreads=NTHREADS)
                .run(Q1_LIST_PATHS).rows}
        assert f"{target_dir}/added-later.txt" in rows
        assert len(rows) == len(ns.files) + 1
