"""Concurrency tests: simultaneous queries, query-during-admin-ops,
walker stress, and engine determinism under parallelism."""

from __future__ import annotations

import threading

import pytest

from repro.core.build import BuildOptions, dir2index
from repro.core.query import GUFIQuery, Q1_LIST_PATHS, Q3_DU_SUMMARIES
from repro.core.tsummary import build_tsummary
from repro.scan.walker import ParallelTreeWalker
from tests.conftest import ALICE, BOB, NTHREADS, build_demo_tree


@pytest.fixture
def idx(tmp_path):
    return dir2index(
        build_demo_tree(), tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS)
    ).index


class TestConcurrentQueries:
    def test_many_simultaneous_readers(self, idx):
        """Several queries with different credentials run concurrently
        against the same index files; each must get its own exact
        answer (read-only opens never interfere)."""
        results = {}
        errors = []

        def worker(name, creds):
            try:
                q = GUFIQuery(idx, creds=creds, nthreads=2)
                results[name] = sorted(q.run(Q1_LIST_PATHS).rows)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        expected = {
            name: sorted(
                GUFIQuery(idx, creds=creds, nthreads=2).run(Q1_LIST_PATHS).rows
            )
            for name, creds in (("alice", ALICE), ("bob", BOB))
        }
        threads = [
            threading.Thread(target=worker, args=(name, creds))
            for name, creds in (("alice", ALICE), ("bob", BOB))
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert results["alice"] == expected["alice"]
        assert results["bob"] == expected["bob"]

    def test_query_repeatability(self, idx):
        """Parallel descent must not introduce nondeterminism in the
        result *set* (ordering may differ)."""
        q = GUFIQuery(idx, nthreads=NTHREADS)
        first = sorted(q.run(Q1_LIST_PATHS).rows)
        for _ in range(5):
            assert sorted(q.run(Q1_LIST_PATHS).rows) == first

    def test_aggregation_repeatable(self, idx):
        q = GUFIQuery(idx, nthreads=NTHREADS)
        totals = {q.run(Q3_DU_SUMMARIES).rows[-1][0] for _ in range(5)}
        assert len(totals) == 1

    def test_query_during_tsummary_build(self, idx):
        """bfti writes only the start directory's tsummary table;
        concurrent read-only queries must keep answering."""
        stop = threading.Event()
        errors = []

        def reader():
            q = GUFIQuery(idx, nthreads=2)
            while not stop.is_set():
                try:
                    q.run(Q1_LIST_PATHS)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                    return

        t = threading.Thread(target=reader)
        t.start()
        try:
            for _ in range(3):
                build_tsummary(idx, "/")
        finally:
            stop.set()
            t.join()
        assert not errors


class TestWalkerStress:
    def test_deep_chain(self):
        """A 5000-deep chain must not recurse (the walker is iterative)."""
        def expand(n):
            return [n + 1] if n < 5000 else []

        stats = ParallelTreeWalker(2).walk([0], expand)
        assert stats.items_processed == 5001

    def test_wide_fanout(self):
        hits = []
        lock = threading.Lock()

        def expand(n):
            if n == 0:
                return list(range(1, 2001))
            with lock:
                hits.append(n)
            return []

        stats = ParallelTreeWalker(4).walk([0], expand)
        assert stats.items_processed == 2001
        assert len(hits) == 2000

    def test_walker_reusable(self):
        walker = ParallelTreeWalker(3)
        for _ in range(3):
            stats = walker.walk(range(50), lambda n: [])
            assert stats.items_processed == 50

    def test_exceptions_do_not_leak_items(self):
        def expand(n):
            if n % 7 == 0:
                raise RuntimeError("x")
            return []

        stats = ParallelTreeWalker(3).walk(range(100), expand)
        n_bad = len([n for n in range(100) if n % 7 == 0])
        assert stats.items_processed == 100 - n_bad
        assert stats.items_errored == n_bad
        assert sum(stats.items_per_thread.values()) == 100
        assert len(stats.errors) == n_bad
