"""The serving layer end-to-end: auth, QoS, deadlines, cursors.

Every test drives the *full* ASGI request path in-process
(:class:`~repro.serve.client.ASGIClient`) — auth header, QoS rings,
worker-thread executor, JSON response — against a real index of the
demo tree, so the serving layer is tested as deployed, minus only the
TCP socket.

The cancellation tests also cover the engine half directly: the
cooperative :class:`~repro.core.engine.CancelToken` must be observed
*inside* the traversal loop (a late query stops mid-walk, it does not
finish the tree and apologise), and an aborted walk must return its
thread states to the session pool instead of leaking connections.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro import obs
from repro.core.build import BuildOptions, dir2index
from repro.core.changefeed import changefeed2index
from repro.core.engine import (
    CancelToken,
    MemorySink,
    QueryCancelled,
    QueryEngine,
    QuerySpec,
)
from repro.core.server import GUFIServer, IdentityProvider
from repro.fs.changelog import ChangeJournal
from repro.fs.permissions import ROOT
from repro.serve import ASGIClient, GUFIApp
from tests.conftest import NTHREADS, build_demo_tree

E_ALL = "SELECT rpath(dname, d_isroot, name), size FROM vrpentries"


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def identity():
    idp = IdentityProvider()
    idp.add_user("alice", uid=1001, gid=1001)
    idp.add_user("bob", uid=1002, gid=1002)
    idp.add_user("carol", uid=1003, gid=1003, groups=frozenset({100}))
    idp.add_user("root", uid=0, gid=0)
    idp.add_user("mallory", uid=1999, gid=1999, enabled=False)
    return idp


@pytest.fixture
def server(demo_index, identity):
    with GUFIServer(
        demo_index, identity, nthreads=NTHREADS, result_cache_mb=8.0
    ) as srv:
        yield srv


@pytest.fixture
def app(server):
    with GUFIApp(server, max_inflight=2, queue_limit=4) as a:
        yield a


@pytest.fixture
def client(app):
    return ASGIClient(app)


class TestRoutesAndAuth:
    def test_healthz(self, client):
        resp = run(client.request("GET", "/healthz"))
        assert resp.status == 200 and resp.json() == {"ok": True}

    def test_unknown_route_404(self, client):
        resp = run(client.request("GET", "/nope"))
        assert resp.status == 404
        assert resp.json()["error"]["code"] == "not_found"

    def test_missing_user_header(self, client):
        resp = run(client.invoke("", "du"))
        assert resp.status == 401
        assert resp.json()["error"]["code"] == "auth_required"

    def test_unknown_and_disabled_users(self, client):
        for user in ("nobody", "mallory"):
            resp = run(client.invoke(user, "du"))
            assert resp.status == 401
            assert resp.json()["error"]["code"] == "auth_failed"

    def test_off_whitelist_tool(self, client):
        resp = run(client.invoke("alice", "chmod"))
        assert resp.status == 403
        assert resp.json()["error"]["code"] == "permission_denied"

    def test_bad_json_body(self, client):
        resp = run(
            client.request(
                "POST", "/v1/invoke", user="alice",
                headers={"content-type": "application/json"},
            )
        )
        # empty body parses to {} and fails on the missing tool
        assert resp.status == 400


class TestInvoke:
    def test_scalar_tool(self, client, server):
        resp = run(client.invoke("alice", "du", "/"))
        assert resp.status == 200
        body = resp.json()
        assert body["ok"] and body["result"] == server.invoke(
            "alice", "du", "/"
        )

    def test_query_rows_match_direct_invoke(self, client, server):
        resp = run(
            client.invoke(
                "root", "query", args={"spec": {"E": E_ALL}}
            )
        )
        assert resp.status == 200
        body = resp.json()
        direct = server.invoke(
            "root", "query", spec=QuerySpec(E=E_ALL)
        )
        assert [tuple(r) for r in body["rows"]] == direct.rows
        assert body["meta"]["total_rows"] == len(direct.rows)

    def test_permission_scoping_over_http(self, client):
        alice = run(
            client.invoke("alice", "query", args={"spec": {"E": E_ALL}})
        ).json()
        bob = run(
            client.invoke("bob", "query", args={"spec": {"E": E_ALL}})
        ).json()
        alice_paths = {r[0] for r in alice["rows"]}
        bob_paths = {r[0] for r in bob["rows"]}
        assert "/home/alice/a.txt" in alice_paths
        assert "/home/alice/a.txt" not in bob_paths
        assert "/home/bob/secret/s.key" not in alice_paths

    def test_find_with_filters(self, client, server):
        resp = run(
            client.invoke(
                "root", "find",
                args={"filters": {"ftype": "f", "min_size": 200}},
            )
        )
        assert resp.status == 200
        rows = resp.json()["rows"]
        assert rows  # b.txt (300), deep.dat (250), p.c, d.h5
        direct = server.invoke("root", "find", "/")
        assert len(rows) < len(direct.rows)

    def test_wire_spec_cannot_set_output_prefix(self, client):
        resp = run(
            client.invoke(
                "root", "query",
                args={"spec": {"E": E_ALL, "output_prefix": "/tmp/x"}},
            )
        )
        assert resp.status == 400

    def test_wire_args_cannot_smuggle_sink(self, client):
        resp = run(client.invoke("root", "du", args={"sink": "x"}))
        assert resp.status == 400

    def test_every_invoke_is_audited(self, client, server):
        before = len(server.audit_log)
        run(client.invoke("alice", "du", "/"))
        run(client.invoke("alice", "largest_files", "/", args={"limit": 3}))
        assert len(server.audit_log) == before + 2
        assert all(e.ok for e in list(server.audit_log)[-2:])


class TestQoS:
    def test_rate_limit_rejects_with_retry_after(self, server):
        with GUFIApp(
            server, max_inflight=2, queue_limit=4,
            tenant_qps=0.001, tenant_burst=1.0,
        ) as app:
            client = ASGIClient(app)
            with obs.enabled(metrics=True):
                first = run(client.invoke("alice", "du"))
                second = run(client.invoke("alice", "du"))
                # the bucket is per tenant: bob is not affected
                other = run(client.invoke("bob", "du"))
                snap = obs.snapshot()
            assert first.status == 200
            assert second.status == 429
            body = second.json()
            assert body["error"]["code"] == "rate_limited"
            assert body["retry_after"] > 0
            assert other.status == 200
            assert snap.counter(
                "gufi_serve_rejected_total", reason="rate_limit"
            ) == 1.0

    def test_tenant_concurrency_quota(self, server):
        with GUFIApp(
            server, max_inflight=4, queue_limit=8, tenant_concurrency=1
        ) as app:
            client = ASGIClient(app)

            async def flood():
                return await asyncio.gather(
                    *(client.invoke("alice", "du") for _ in range(4))
                )

            with obs.enabled(metrics=True):
                responses = run(flood())
            statuses = sorted(r.status for r in responses)
            assert 200 in statuses and 429 in statuses
            for r in responses:
                if r.status == 429:
                    assert r.json()["error"]["code"] == "quota_exceeded"

    def test_load_shedding_when_queue_full(self, server):
        with GUFIApp(server, max_inflight=1, queue_limit=0) as app:
            client = ASGIClient(app)

            async def flood():
                return await asyncio.gather(
                    *(client.invoke("alice", "du") for _ in range(5))
                )

            with obs.enabled(metrics=True):
                responses = run(flood())
                snap = obs.snapshot()
            shed = [r for r in responses if r.status == 503]
            assert shed, "expected at least one shed response"
            body = shed[0].json()
            assert body["error"]["code"] == "overloaded"
            assert body["retry_after"] > 0
            assert snap.counter(
                "gufi_serve_shed_total", reason="queue_full"
            ) == len(shed)


class TestDeadlines:
    def test_deadline_stops_traversal_mid_walk(
        self, server, monkeypatch
    ):
        """The acceptance case: a slow query with a short deadline is
        cancelled *inside* the walk (a directory-granular stop), comes
        back as a structured 504, and counts a serve timeout."""
        from repro.core.engine.stages import StageRunner

        visited = []
        real = StageRunner.s_e_stages

        def slow(self, st, index_dir, creds, run_s, run_e, rows):
            visited.append(str(index_dir))
            time.sleep(0.03)
            return real(self, st, index_dir, creds, run_s, run_e, rows)

        monkeypatch.setattr(StageRunner, "s_e_stages", slow)
        with GUFIApp(server, max_inflight=2, queue_limit=4) as app:
            client = ASGIClient(app)
            with obs.enabled(metrics=True):
                resp = run(
                    client.invoke(
                        "root", "query",
                        args={"spec": {"E": E_ALL}},
                        deadline_ms=50,
                    )
                )
                snap = obs.snapshot()
        assert resp.status == 504
        body = resp.json()
        assert body["error"]["code"] == "deadline_exceeded"
        # the walk stopped early: the demo index has 12 processable
        # directories at ~30ms each; a 50ms deadline admits only a few
        assert 0 < len(visited) < 12
        assert snap.counter(
            "gufi_serve_timeouts_total", tool="query"
        ) == 1.0

    def test_expired_deadline_never_reaches_the_engine(self, server):
        with GUFIApp(server, max_inflight=2, queue_limit=4) as app:
            client = ASGIClient(app)
            with obs.enabled(metrics=True):
                resp = run(
                    client.invoke(
                        "root", "query",
                        args={"spec": {"E": E_ALL}},
                        deadline_ms=0.0001,
                    )
                )
                snap = obs.snapshot()
        assert resp.status == 504
        assert resp.json()["error"]["code"] == "deadline_exceeded"
        assert snap.counter_total("gufi_serve_timeouts_total") == 1.0


class TestEngineCancellation:
    """The engine half of deadline enforcement, tested without HTTP."""

    def test_pretripped_token_raises_before_dispatch(self, demo_index):
        token = CancelToken()
        token.cancel()
        with QueryEngine(demo_index, ROOT, nthreads=NTHREADS) as eng:
            with pytest.raises(QueryCancelled):
                eng.run(QuerySpec(E=E_ALL), "/", cancel=token)
            with pytest.raises(QueryCancelled):
                eng.run_single(QuerySpec(E=E_ALL), "/", cancel=token)

    def test_cancel_mid_walk_stops_early(self, dataset2_index):
        """Tripping the token after the first emitted batch must abort
        the walk long before the full tree (442 dirs) is traversed."""
        index = dataset2_index.index
        token = CancelToken()
        emits = []

        class TripwireSink(MemorySink):
            def emit(self, st, rows):
                emits.append(len(rows))
                token.cancel()
                super().emit(st, rows)

        with QueryEngine(index, ROOT, nthreads=NTHREADS) as eng:
            baseline = eng.run(QuerySpec(E=E_ALL), "/")
            with pytest.raises(QueryCancelled):
                eng.run(
                    QuerySpec(E=E_ALL), "/",
                    sink=TripwireSink(), cancel=token,
                )
        assert baseline.dirs_visited > 100
        # each worker finishes at most its in-flight directory after
        # the trip, so the emit count stays tiny
        assert 0 < len(emits) <= NTHREADS + 1

    def test_deadline_token_trips_by_clock(self):
        token = CancelToken.after(0.0)
        assert token.cancelled
        later = CancelToken.after(60.0)
        assert not later.cancelled
        assert 0 < later.remaining() <= 60.0

    def test_aborted_walks_release_thread_states(self, demo_index):
        """Routine timeouts on a long-lived server must not leak
        pooled connections: the pool stays at its steady-state size
        across many aborted runs."""
        with QueryEngine(demo_index, ROOT, nthreads=NTHREADS) as eng:
            for _ in range(6):
                token = CancelToken()
                token.cancel()

                class Trip(MemorySink):
                    pass

                with pytest.raises(QueryCancelled):
                    eng.run(QuerySpec(E=E_ALL), "/", cancel=token)
            # tokens tripped pre-dispatch never check out states; now
            # trip mid-walk a few times
            for _ in range(6):
                token = CancelToken()
                sink = MemorySink()
                orig_emit = sink.emit

                def emit(st, rows, _t=token, _o=orig_emit):
                    _t.cancel()
                    _o(st, rows)

                sink.emit = emit  # type: ignore[method-assign]
                with pytest.raises(QueryCancelled):
                    eng.run(QuerySpec(E=E_ALL), "/", sink=sink, cancel=token)
            assert len(eng.pool._all) <= NTHREADS + 1
            # and the session still works
            good = eng.run(QuerySpec(E=E_ALL), "/")
            assert good.rows


class TestCursorPagination:
    def _first_page(self, client, user="root", page_size=2):
        return run(
            client.invoke(
                user, "query", args={"spec": {"E": E_ALL}},
                page_size=page_size,
            )
        )

    def test_paging_is_byte_identical_to_unpaginated(self, client):
        """>3 pages, concatenated, must equal the unpaginated rows
        exactly — same rows, same order."""
        full = run(
            client.invoke("root", "query", args={"spec": {"E": E_ALL}})
        ).json()["rows"]
        assert len(full) == 9
        resp = self._first_page(client, page_size=2)
        body = resp.json()
        assert body["num_pages"] == 5
        pages = [body["rows"]]
        cursor = body["next_cursor"]
        while cursor is not None:
            body = run(client.invoke("root", cursor=cursor)).json()
            pages.append(body["rows"])
            cursor = body["next_cursor"]
        assert len(pages) == 5
        assert [len(p) for p in pages] == [2, 2, 2, 2, 1]
        flat = [row for page in pages for row in page]
        assert flat == full

    def test_cursor_replay_is_cache_served(self, client):
        resp = self._first_page(client)
        cursor = resp.json()["next_cursor"]
        body = run(client.invoke("root", cursor=cursor)).json()
        # the replayed run came from the materialized result cache
        assert body["meta"]["cached"] is True

    def test_cursor_invalid_across_tenants(self, client):
        resp = self._first_page(client, user="root")
        cursor = resp.json()["next_cursor"]
        stolen = run(client.invoke("alice", cursor=cursor))
        assert stolen.status == 403
        assert stolen.json()["error"]["code"] == "invalid_cursor"

    def test_tampered_cursor_rejected(self, client):
        resp = self._first_page(client)
        cursor = resp.json()["next_cursor"]
        for bad in (cursor[:-4], cursor + "AAAA", "garbage", cursor.swapcase()):
            r = run(client.invoke("root", cursor=bad))
            assert r.status == 400
            assert r.json()["error"]["code"] == "invalid_cursor"

    def test_cursor_survives_unrelated_churn(self, identity, tmp_path):
        """An index change that cannot affect the paged result leaves
        the cursor valid: the replay revalidates through the result
        cache (or re-runs) and serves identical rows."""
        tree = build_demo_tree()
        journal = ChangeJournal()
        tree.set_changelog(journal)
        index = dir2index(
            tree, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS)
        ).index
        with GUFIServer(
            index, identity, nthreads=NTHREADS, result_cache_mb=8.0
        ) as srv, GUFIApp(srv, max_inflight=2, queue_limit=4) as app:
            client = ASGIClient(app)
            spec = {"E": E_ALL}
            first = run(
                client.invoke(
                    "alice", "query", "/home/alice",
                    args={"spec": spec}, page_size=1,
                )
            ).json()
            cursor = first["next_cursor"]
            # churn far away from /home/alice, applied via changefeed
            tree.create_file(
                "/public/new.bin", size=1, mode=0o644, uid=0, gid=0
            )
            changefeed2index(
                index, tree, journal, opts=BuildOptions(nthreads=NTHREADS)
            )
            body = run(client.invoke("alice", cursor=cursor)).json()
            assert body["ok"]
            assert body["rows"]
            flat = first["rows"] + body["rows"]
            cursor = body["next_cursor"]
            while cursor is not None:
                body = run(client.invoke("alice", cursor=cursor)).json()
                flat.extend(body["rows"])
                cursor = body["next_cursor"]
            paths = {r[0] for r in flat}
            assert paths == {"/home/alice/a.txt", "/home/alice/sub/deep.dat"}

    def test_cursor_expires_after_relevant_changefeed_apply(
        self, identity, tmp_path
    ):
        """The acceptance case: a changefeed apply that changes the
        paged result must expire the cursor cleanly — never serve
        stale rows."""
        tree = build_demo_tree()
        journal = ChangeJournal()
        tree.set_changelog(journal)
        index = dir2index(
            tree, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS)
        ).index
        with GUFIServer(
            index, identity, nthreads=NTHREADS, result_cache_mb=8.0
        ) as srv, GUFIApp(srv, max_inflight=2, queue_limit=4) as app:
            client = ASGIClient(app)
            first = run(
                client.invoke(
                    "root", "query", args={"spec": {"E": E_ALL}},
                    page_size=2,
                )
            ).json()
            cursor = first["next_cursor"]
            # a write *inside* the queried tree, applied via changefeed
            tree.create_file(
                "/home/bob/new.txt", size=123, mode=0o644,
                uid=1002, gid=1002,
            )
            changefeed2index(
                index, tree, journal, opts=BuildOptions(nthreads=NTHREADS)
            )
            resp = run(client.invoke("root", cursor=cursor))
            assert resp.status == 410
            assert resp.json()["error"]["code"] == "cursor_expired"
            # restarting from page 0 sees the new row
            fresh = run(
                client.invoke(
                    "root", "query", args={"spec": {"E": E_ALL}},
                    page_size=100,
                )
            ).json()
            assert "/home/bob/new.txt" in {r[0] for r in fresh["rows"]}


class TestMetricsEndpoint:
    def test_prometheus_serves_every_serve_series(self, server):
        """CI greps these names; all six ``gufi_serve_*`` series must
        appear after one request each of: success, rejection, shed,
        timeout."""
        with obs.enabled(metrics=True), GUFIApp(
            server, max_inflight=1, queue_limit=0,
            tenant_qps=0.001, tenant_burst=2.0,
        ) as app:
            client = ASGIClient(app)

            async def traffic():
                await client.invoke("alice", "du")  # success
                await client.invoke(  # timeout
                    "alice", "query", args={"spec": {"E": E_ALL}},
                    deadline_ms=0.0001,
                )
                await client.invoke("alice", "du")  # rate-limited
                await asyncio.gather(  # one of these is shed
                    *(client.invoke("bob", "du") for _ in range(4))
                )
                return await client.request("GET", "/metrics")

            resp = run(traffic())
        assert resp.status == 200
        text = resp.text
        for series in (
            "gufi_serve_requests_total",
            "gufi_serve_rejected_total",
            "gufi_serve_shed_total",
            "gufi_serve_timeouts_total",
            "gufi_serve_queue_depth",
            "gufi_serve_request_seconds",
        ):
            assert series in text, f"missing {series}\n{text}"
