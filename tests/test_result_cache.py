"""Materialized query-result cache (ISSUE 8 tentpole).

The contract under test: a :class:`~repro.core.engine.ResultCache`
replay must be **observably identical** to a cold traversal, at every
point of an arbitrary interleaving of namespace mutations, changefeed
applies, and queries — no stale reads, no permission leakage across
credential keys — while actually being a cache (second run of a hot
query replays instead of walking).

Layout:

* ``TestCacheBasics`` — hit/miss/replay mechanics, counters, spec
  normalization, sink variants.
* ``TestInvalidation`` — push invalidation precision, stamp-pass
  validation, changefeed semantics (unapplied events must *not*
  invalidate: the index is unchanged).
* ``TestCredentialScoping`` — no replay across principals, per-scope
  budgets.
* ``TestBounds`` — LRU byte/entry budgets, oversized-entry refusal.
* ``TestScatterGather`` — the ``processes>1`` parent caches the
  gathered result; workers bypass.
* ``TestNoStaleReadsProperty`` — the acceptance property, PR 7 style:
  hypothesis-driven mutate/apply/query interleavings under root and
  unprivileged creds, with and without rollups and ``processes>1``.
"""

from __future__ import annotations

import multiprocessing as mp

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.build import BuildOptions, dir2index
from repro.core.changefeed import changefeed2index
from repro.core.engine import (
    BoundedSink,
    PaginatedSink,
    QueryEngine,
    QuerySpec,
    ResultCache,
    ThreadFileSink,
)
from repro.core.query import (
    Q1_LIST_PATHS,
    Q2_DIR_SIZES,
    Q3_DU_SUMMARIES,
    GUFIQuery,
)
from repro.core.rollup import rollup
from repro.core.session import QuerySession
from repro.fs.changelog import ChangeJournal
from repro.fs.permissions import ROOT
from repro.gen.datasets import dataset2
from repro.gen.namespace import NamespaceMutator
from tests.conftest import ALICE, BOB, NTHREADS, build_demo_tree

OPTS = BuildOptions(nthreads=NTHREADS)
FORK = mp.get_context().get_start_method() == "fork"

E_ALL = QuerySpec(E="SELECT path() || '/' || name, size FROM pentries")


def cold_rows(index, spec, creds=ROOT, plan=None):
    """Oracle: a fresh, cache-less engine's sorted rows."""
    eng = QueryEngine(index, creds=creds, nthreads=NTHREADS)
    try:
        return sorted(eng.run(spec, plan=plan).rows)
    finally:
        eng.close()


@pytest.fixture
def cached_engine(demo_index):
    cache = ResultCache()
    eng = QueryEngine(demo_index, nthreads=NTHREADS, result_cache=cache)
    yield eng, cache
    eng.close()


class TestCacheBasics:
    def test_second_run_is_a_hit_with_identical_rows(self, cached_engine):
        eng, cache = cached_engine
        r1 = eng.run(E_ALL)
        r2 = eng.run(E_ALL)
        assert not r1.cached and r2.cached
        assert sorted(r1.rows) == sorted(r2.rows)
        assert cache.hits == 1 and cache.misses == 1

    def test_replay_preserves_counters(self, cached_engine):
        eng, _ = cached_engine
        r1 = eng.run(E_ALL)
        r2 = eng.run(E_ALL)
        for f in ("dirs_visited", "dirs_denied", "dbs_opened",
                  "dirs_errored", "dirs_pruned_by_plan", "attaches_elided"):
            assert getattr(r2, f) == getattr(r1, f), f

    def test_aggregate_spec_replays_g_rows(self, cached_engine):
        eng, _ = cached_engine
        r1 = eng.run(Q3_DU_SUMMARIES)
        r2 = eng.run(Q3_DU_SUMMARIES)
        assert r2.cached
        assert r1.rows == r2.rows
        assert r1.rows  # the G reduction produced something

    def test_spec_whitespace_normalization_shares_entry(self, cached_engine):
        eng, cache = cached_engine
        eng.run(QuerySpec(E="SELECT name FROM pentries"))
        r = eng.run(QuerySpec(E="SELECT   name\n  FROM  pentries"))
        assert r.cached
        assert len(cache) == 1

    def test_whitespace_inside_literals_distinguishes_entries(
        self, cached_engine
    ):
        """Normalization must never collapse whitespace *inside* a SQL
        string literal: ``'a  b'`` and ``'a b'`` are different queries
        and sharing a key would serve one query the other's rows."""
        eng, cache = cached_engine
        a = eng.run(QuerySpec(E="SELECT name || ' one  two' FROM pentries"))
        b = eng.run(QuerySpec(E="SELECT name || ' one two' FROM pentries"))
        assert not b.cached
        assert len(cache) == 2
        assert sorted(a.rows) != sorted(b.rows)

    def test_norm_sql_is_quote_aware(self):
        from repro.core.engine.resultcache import _norm_sql

        assert _norm_sql("SELECT  a\n FROM t") == "SELECT a FROM t"
        assert _norm_sql("WHERE n = 'a  b'") == "WHERE n = 'a  b'"
        assert _norm_sql("WHERE n = 'a\tb'") != _norm_sql("WHERE n = 'a b'")
        assert _norm_sql('SELECT "a  b" FROM t') == 'SELECT "a  b" FROM t'
        # a literal with an alias must not collapse into an escaped
        # quote inside one literal
        assert _norm_sql("SELECT 'a' 'b'") != _norm_sql("SELECT 'a''b'")

    def test_different_start_paths_are_distinct_entries(self, cached_engine):
        eng, cache = cached_engine
        r_home = eng.run(E_ALL, "/home")
        r_proj = eng.run(E_ALL, "/proj")
        assert not r_proj.cached
        assert sorted(r_home.rows) != sorted(r_proj.rows)
        assert len(cache) == 2
        assert eng.run(E_ALL, "/home").cached
        assert eng.run(E_ALL, "/proj").cached

    def test_plan_window_is_part_of_the_key(self, demo_index):
        from repro.core.plan import QueryPlan

        cache = ResultCache()
        eng = QueryEngine(demo_index, nthreads=NTHREADS, result_cache=cache)
        try:
            shallow = QueryPlan(max_level=1, entries_shaped=False)
            r1 = eng.run(E_ALL, plan=shallow)
            r2 = eng.run(E_ALL)  # unplanned: different key, full tree
            assert not r2.cached
            assert len(r2.rows) > len(r1.rows)
            assert eng.run(E_ALL, plan=shallow).cached
            assert sorted(eng.run(E_ALL, plan=shallow).rows) == sorted(
                cold_rows(demo_index, E_ALL, plan=shallow)
            )
        finally:
            eng.close()

    def test_run_single_bypasses_the_cache(self, cached_engine):
        eng, cache = cached_engine
        eng.run_single(QuerySpec(E="SELECT name FROM pentries"), "/public")
        assert len(cache) == 0

    def test_shared_cache_across_engines(self, demo_index):
        cache = ResultCache()
        e1 = QueryEngine(demo_index, nthreads=NTHREADS, result_cache=cache)
        e2 = QueryEngine(demo_index, nthreads=NTHREADS, result_cache=cache)
        try:
            r1 = e1.run(E_ALL)
            r2 = e2.run(E_ALL)
            assert r2.cached
            assert sorted(r1.rows) == sorted(r2.rows)
        finally:
            e1.close()
            e2.close()

    def test_server_shared_cache_scoped_per_principal(self, demo_index):
        from repro.core.server import GUFIServer, IdentityProvider

        idp = IdentityProvider()
        idp.add_user("alice", uid=1001, gid=1001)
        idp.add_user("bob", uid=1002, gid=1002)
        with GUFIServer(
            demo_index, idp, nthreads=NTHREADS, result_cache_mb=8
        ) as server:
            cache = server.result_cache
            assert cache is not None and cache.max_scope_bytes is not None
            server.invoke("alice", "du", "/")
            server.invoke("alice", "du", "/")
            assert cache.hits == 1  # warm session replayed
            server.invoke("bob", "du", "/")  # own scope: a miss
            assert cache.hits == 1 and len(cache) == 2

    def test_session_and_facade_pass_through(self, demo_index):
        cache = ResultCache()
        with QuerySession(
            demo_index, nthreads=NTHREADS, result_cache=cache
        ) as q:
            q.run(E_ALL)
            assert q.run(E_ALL).cached
        with GUFIQuery(
            demo_index, nthreads=NTHREADS, result_cache=cache
        ) as q2:
            assert q2.run(E_ALL).cached


class TestSinkReplay:
    """Replay goes through the caller's sink, so every sink shape
    behaves exactly as it would on a real run."""

    def test_bounded_sink_cap_applies_on_replay(self, cached_engine):
        eng, _ = cached_engine
        full = eng.run(E_ALL)
        capped = eng.run(E_ALL, sink=BoundedSink(3))
        assert capped.cached and capped.truncated
        assert len(capped.rows) == 3
        assert set(capped.rows) <= set(full.rows)

    def test_paginated_sink_on_replay(self, cached_engine):
        eng, _ = cached_engine
        full = eng.run(E_ALL)
        sink = PaginatedSink(page_size=2)
        res = eng.run(E_ALL, sink=sink)
        assert res.cached
        paged = [r for n in range(sink.num_pages) for r in sink.page(n)]
        assert sorted(paged) == sorted(full.rows)

    def test_thread_file_sink_written_on_replay(self, cached_engine, tmp_path):
        eng, _ = cached_engine
        full = eng.run(E_ALL)
        res = eng.run(E_ALL, sink=ThreadFileSink(str(tmp_path / "out")))
        assert res.cached and res.output_files
        lines = []
        for path in res.output_files:
            with open(path) as fh:
                lines += [ln.rstrip("\n") for ln in fh]
        want = sorted(
            "\t".join("" if v is None else str(v) for v in row)
            for row in full.rows
        )
        assert sorted(lines) == want

    def test_capture_does_not_inherit_callers_row_cap(self, cached_engine):
        """A bounded first caller must not poison the entry: the tee
        records the pre-cap stream, so a later unbounded caller gets
        the full rows."""
        eng, _ = cached_engine
        capped = eng.run(E_ALL, sink=BoundedSink(2))
        assert capped.truncated and not capped.cached
        full = eng.run(E_ALL)
        assert full.cached and not full.truncated
        assert sorted(full.rows) == cold_rows(eng.index, E_ALL)


class TestInvalidation:
    def test_explicit_invalidate_drops_only_touched_entries(
        self, cached_engine
    ):
        eng, cache = cached_engine
        eng.run(E_ALL, "/home/bob")
        eng.run(E_ALL, "/proj")
        assert len(cache) == 2
        eng.index.invalidate_cache("/home/bob")
        assert len(cache) == 1
        assert not eng.run(E_ALL, "/home/bob").cached
        assert eng.run(E_ALL, "/proj").cached

    def test_subtree_invalidation_matches_descendants(self, cached_engine):
        eng, cache = cached_engine
        eng.run(E_ALL, "/proj")  # visits /proj/shared/data
        eng.run(E_ALL, "/public")
        eng.index.cache.invalidate_subtree("/proj/shared")
        assert not eng.run(E_ALL, "/proj").cached
        assert eng.run(E_ALL, "/public").cached

    def test_ancestor_entry_invalidated_by_child_write(self, cached_engine):
        """An entry whose walk visited /home must die when /home/alice
        (a visited dir) — or even a *parent* of a visited dir — is
        invalidated."""
        eng, _ = cached_engine
        eng.run(E_ALL, "/home")
        eng.index.invalidate_cache("/home/alice")
        assert not eng.run(E_ALL, "/home").cached

    def test_stamp_pass_catches_out_of_band_write(
        self, demo_tree, tmp_path
    ):
        """No journal, no hooks: a foreign process writes a directory
        database behind the cache's back; the per-directory stamp
        validation must refuse the entry."""
        import sqlite3

        index = dir2index(demo_tree, tmp_path / "idx", opts=OPTS).index
        cache = ResultCache()
        eng = QueryEngine(index, nthreads=NTHREADS, result_cache=cache)
        try:
            eng.run(E_ALL)
            assert eng.run(E_ALL).cached
            con = sqlite3.connect(index.db_path("/public"))
            con.execute(
                "INSERT INTO entries (name, type, mode, uid, gid, size) "
                "VALUES ('oob.txt', 'f', 420, 0, 0, 11)"
            )
            con.commit()
            con.close()
            hits_before = cache.hits
            r = eng.run(E_ALL)
            assert not r.cached and cache.hits == hits_before
            assert any("oob.txt" in str(row[0]) for row in r.rows)
            assert sorted(r.rows) == cold_rows(index, E_ALL)
        finally:
            eng.close()

    def test_journal_fast_path_bounded_by_stamp_ttl(self, demo_tree,
                                                    tmp_path):
        """A writer in *another process* journals nothing and fires no
        hooks, so the stat-free changefeed fast path cannot see it.
        Unless the journal is declared exclusive, the fast path must
        fall back to the stamp pass within ``stamp_ttl`` — a foreign
        rewrite is detected, not masked forever."""
        import sqlite3

        index = dir2index(demo_tree, tmp_path / "idx", opts=OPTS).index
        journal = ChangeJournal()
        demo_tree.set_changelog(journal)
        # ttl 0: every lookup re-stamps, so detection is immediate
        cache = ResultCache(journal=journal, stamp_ttl=0.0)
        eng = QueryEngine(index, nthreads=NTHREADS, result_cache=cache)
        try:
            eng.run(E_ALL)
            assert eng.run(E_ALL).cached
            con = sqlite3.connect(index.db_path("/public"))
            con.execute(
                "INSERT INTO entries (name, type, mode, uid, gid, size) "
                "VALUES ('foreign.txt', 'f', 420, 0, 0, 3)"
            )
            con.commit()
            con.close()
            r = eng.run(E_ALL)
            assert not r.cached
            assert any("foreign.txt" in str(row[0]) for row in r.rows)
            assert sorted(r.rows) == cold_rows(index, E_ALL)
        finally:
            eng.close()

    def test_permission_change_on_ancestor_invalidates(self, demo_tree,
                                                       tmp_path):
        """chmod on an *ancestor* of the query start changes
        reachability; the ancestor stamps in the validity token must
        catch it even though the walk never processed that dir."""
        index = dir2index(demo_tree, tmp_path / "idx", opts=OPTS).index
        journal = ChangeJournal()
        demo_tree.set_changelog(journal)
        cache = ResultCache(journal=journal)
        eng = QueryEngine(
            index, creds=ALICE, nthreads=NTHREADS, result_cache=cache
        )
        try:
            eng.run(E_ALL, "/home/alice/sub")
            assert eng.run(E_ALL, "/home/alice/sub").cached
            demo_tree.chmod("/home/alice", 0o000, ALICE)
            changefeed2index(index, demo_tree, journal, opts=OPTS)
            from repro.core.engine import QueryPermissionError

            with pytest.raises(QueryPermissionError):
                eng.run(E_ALL, "/home/alice/sub")
        finally:
            eng.close()

    def test_unapplied_tree_events_do_not_invalidate(self, demo_tree,
                                                     tmp_path):
        """Mutating the *tree* without applying to the *index* leaves
        the index — and therefore the cached result — unchanged: the
        entry must keep serving (and keep matching a cold run)."""
        index = dir2index(demo_tree, tmp_path / "idx", opts=OPTS).index
        journal = ChangeJournal()
        demo_tree.set_changelog(journal)
        cache = ResultCache(journal=journal)
        eng = QueryEngine(index, nthreads=NTHREADS, result_cache=cache)
        try:
            eng.run(E_ALL)
            demo_tree.create_file("/public/pending.txt", size=1,
                                  uid=0, gid=0)
            r = eng.run(E_ALL)
            assert r.cached
            assert sorted(r.rows) == cold_rows(index, E_ALL)
        finally:
            eng.close()

    def test_changefeed_apply_invalidates_then_recaches(self, demo_tree,
                                                        tmp_path):
        index = dir2index(demo_tree, tmp_path / "idx", opts=OPTS).index
        journal = ChangeJournal()
        demo_tree.set_changelog(journal)
        cache = ResultCache(journal=journal)
        eng = QueryEngine(index, nthreads=NTHREADS, result_cache=cache)
        try:
            eng.run(E_ALL)
            demo_tree.create_file("/public/applied.txt", size=77,
                                  uid=0, gid=0)
            changefeed2index(index, demo_tree, journal, opts=OPTS)
            r = eng.run(E_ALL)
            assert not r.cached
            assert sorted(r.rows) == cold_rows(index, E_ALL)
            assert any("applied.txt" in str(row[0]) for row in r.rows)
            assert eng.run(E_ALL).cached
        finally:
            eng.close()

    def test_mid_run_invalidation_aborts_the_store(self, cached_engine):
        eng, cache = cached_engine
        before = cache.capture_aborts
        real_store = cache.store

        def racing_store(key, capture, result, index, inv_seq):
            # a writer lands between run start and store
            eng.index.invalidate_cache("/public")
            return real_store(key, capture, result, index, inv_seq)

        cache.store = racing_store
        try:
            r = eng.run(E_ALL)
        finally:
            cache.store = real_store
        assert not r.cached
        assert len(cache) == 0
        assert cache.capture_aborts == before + 1


class TestCredentialScoping:
    def test_no_replay_across_principals(self, cached_engine):
        eng, cache = cached_engine
        index = eng.index
        root_rows = sorted(eng.run(E_ALL).rows)
        alice = QueryEngine(
            index, creds=ALICE, nthreads=NTHREADS,
            result_cache=cache,
        )
        bob = QueryEngine(
            index, creds=BOB, nthreads=NTHREADS, result_cache=cache
        )
        try:
            ra = alice.run(E_ALL)
            assert not ra.cached  # root's entry must not serve alice
            assert sorted(ra.rows) == cold_rows(index, E_ALL, ALICE)
            rb = bob.run(E_ALL)
            assert not rb.cached
            assert sorted(rb.rows) == cold_rows(index, E_ALL, BOB)
            # alice's private rows never reachable through bob's key
            assert not any("/home/alice/" in str(r[0]) for r in rb.rows)
            assert sorted(ra.rows) != sorted(rb.rows) != root_rows
            # every principal hits its own entry on re-run
            assert alice.run(E_ALL).cached
            assert bob.run(E_ALL).cached
        finally:
            alice.close()
            bob.close()

    def test_scope_budget_confines_one_tenants_evictions(self, demo_index):
        cache = ResultCache()
        alice = QueryEngine(
            demo_index, creds=ALICE, nthreads=NTHREADS, result_cache=cache
        )
        root = QueryEngine(
            demo_index, nthreads=NTHREADS, result_cache=cache
        )
        try:
            root.run(E_ALL, "/home")  # measure one entry
            per_entry = cache.total_bytes
            cache.clear()
            # one /home-sized entry fits per scope; a second does not
            cache.max_scope_bytes = per_entry
            root.run(E_ALL, "/home")
            alice.run(E_ALL, "/home")  # separate scope, separate budget
            root.run(E_ALL, "/proj")  # busts *root's* budget only
            assert cache.evictions >= 1
            assert alice.run(E_ALL, "/home").cached  # alice untouched
            assert not root.run(E_ALL, "/home").cached  # root's LRU gone
        finally:
            alice.close()
            root.close()


class TestBounds:
    def test_lru_eviction_by_entry_count(self, cached_engine):
        eng, cache = cached_engine
        cache.max_entries = 2
        eng.run(E_ALL, "/home")
        eng.run(E_ALL, "/proj")
        eng.run(E_ALL, "/public")  # evicts /home (LRU)
        assert len(cache) == 2
        assert not eng.run(E_ALL, "/home").cached
        assert cache.evictions >= 1

    def test_oversized_entry_is_not_stored(self, demo_index):
        cache = ResultCache(max_entry_bytes=64)
        eng = QueryEngine(demo_index, nthreads=NTHREADS, result_cache=cache)
        try:
            r1 = eng.run(E_ALL)
            r2 = eng.run(E_ALL)
            assert not r2.cached  # overflowed the tee, nothing stored
            assert len(cache) == 0
            assert sorted(r1.rows) == sorted(r2.rows)
        finally:
            eng.close()

    def test_byte_budget_evicts_lru_first(self, cached_engine):
        eng, cache = cached_engine
        eng.run(E_ALL, "/home")
        eng.run(E_ALL, "/proj")
        entry_bytes = cache.total_bytes
        cache.max_bytes = max(1, entry_bytes - 1)  # force one eviction
        eng.run(E_ALL, "/public")
        assert cache.total_bytes <= cache.max_bytes
        assert cache.evictions >= 1


class TestBinding:
    """A long-lived shared cache bound to many short-lived indexes
    must not pin their DirMeta caches (or listener cycles) in
    memory."""

    def test_bound_index_cache_is_not_pinned(self, demo_tree, tmp_path):
        import gc
        import weakref

        cache = ResultCache()
        index = dir2index(demo_tree, tmp_path / "idx", opts=OPTS).index
        eng = QueryEngine(index, nthreads=NTHREADS, result_cache=cache)
        eng.run(E_ALL)
        eng.close()
        ref = weakref.ref(index.cache)
        del eng, index
        gc.collect()
        assert ref() is None  # the shared cache held no strong ref

    def test_bind_is_idempotent_per_index(self, demo_index):
        cache = ResultCache()
        e1 = QueryEngine(demo_index, nthreads=NTHREADS, result_cache=cache)
        e2 = QueryEngine(demo_index, nthreads=NTHREADS, result_cache=cache)
        try:
            assert len(demo_index.cache._listeners) == 1
        finally:
            e1.close()
            e2.close()

    def test_close_unhooks_listeners(self, demo_index):
        cache = ResultCache()
        eng = QueryEngine(demo_index, nthreads=NTHREADS, result_cache=cache)
        try:
            n = len(demo_index.cache._listeners)
            assert n >= 1
            cache.close()
            assert len(demo_index.cache._listeners) == n - 1
            cache.close()  # idempotent
        finally:
            eng.close()

    def test_dead_cache_listener_self_removes(self, demo_index):
        import gc

        cache = ResultCache()
        eng = QueryEngine(demo_index, nthreads=NTHREADS, result_cache=cache)
        eng.close()
        del eng, cache
        gc.collect()
        # the orphaned hook drops itself on the next notification
        demo_index.cache.invalidate("/public")
        assert len(demo_index.cache._listeners) == 0


@pytest.mark.skipif(not FORK, reason="scatter cache tests rely on fork")
class TestScatterGather:
    def test_parent_caches_the_gathered_result(self, dataset2_index):
        index = dataset2_index.index
        cache = ResultCache()
        eng = QueryEngine(
            index, nthreads=NTHREADS, processes=2, result_cache=cache
        )
        try:
            r1 = eng.run(E_ALL)
            r2 = eng.run(E_ALL)
            assert not r1.cached and r2.cached
            assert sorted(r1.rows) == sorted(r2.rows)
            assert sorted(r2.rows) == cold_rows(index, E_ALL)
        finally:
            eng.close()

    def test_workers_ship_walk_validated_stamps(self, dataset2_index):
        """The parent's DirMeta cache never saw the workers' reads, so
        the store-time race cross-check must run against the stamps
        the workers validated and shipped back — one per touched
        path."""
        index = dataset2_index.index
        cache = ResultCache()
        eng = QueryEngine(
            index, nthreads=NTHREADS, processes=2, result_cache=cache
        )
        try:
            r = eng.run(E_ALL)
            assert not r.cached
            assert r.visited_stamps is not None
            assert set(r.visited_stamps) == set(r.visited_paths)
            # at least the visited (db-opened) paths carry a db stamp
            assert any(
                db is not None for db, _ in r.visited_stamps.values()
            )
            assert eng.run(E_ALL).cached  # matching stamps stored fine
        finally:
            eng.close()

    def test_mismatched_worker_stamps_abort_the_store(self, dataset2_index):
        """A shipped walk stamp that disagrees with the store-time
        stamp means a write landed between a worker's read and the
        parent's store: nothing may be cached."""
        index = dataset2_index.index
        cache = ResultCache()
        eng = QueryEngine(
            index, nthreads=NTHREADS, processes=2, result_cache=cache
        )
        real_store = cache.store

        def tampered_store(key, capture, result, index_, inv_seq):
            result.visited_stamps = {
                p: ((0, 0, 0), None) for p in result.visited_paths
            }
            return real_store(key, capture, result, index_, inv_seq)

        cache.store = tampered_store
        before = cache.capture_aborts
        try:
            r = eng.run(E_ALL)
        finally:
            cache.store = real_store
            eng.close()
        assert not r.cached
        assert len(cache) == 0
        assert cache.capture_aborts == before + 1

    def test_worker_crash_withholds_the_store(self, dataset2_index):
        from repro.core.engine.scatter import ScatterGatherEngine
        from tests.test_scatter_gather import _kill_worker_zero

        index = dataset2_index.index
        cache = ResultCache()
        eng = QueryEngine(
            index, nthreads=NTHREADS, processes=2, result_cache=cache
        )
        try:
            scatter = eng._scatter()
            assert isinstance(scatter, ScatterGatherEngine)
            scatter.worker_init = _kill_worker_zero
            r = eng.run(E_ALL)
            assert r.dirs_errored > 0  # the crashed shard
            # an incomplete result must never be materialized
            assert len(cache) == 0
            scatter.worker_init = None
            assert not eng.run(E_ALL).cached
        finally:
            eng.close()


class TestNoStaleReadsProperty:
    """The acceptance property (ISSUE 8): arbitrary interleavings of
    mutations, changefeed applies, and cached queries — the cached
    engine answers every query identically to a cold engine, for root
    and unprivileged creds."""

    SPECS = (E_ALL, Q1_LIST_PATHS, Q2_DIR_SIZES)

    def _check_round(self, engines, index):
        for creds, eng in engines:
            for spec in self.SPECS:
                got = sorted(eng.run(spec).rows)
                assert got == cold_rows(index, spec, creds), (
                    f"stale read under {creds} for {spec}"
                )

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        steps=st.lists(
            st.sampled_from(["mutate", "apply", "query"]),
            min_size=3,
            max_size=8,
        ),
    )
    def test_interleaved_mutate_apply_query(
        self, tmp_path_factory, seed, steps
    ):
        ns = dataset2(scale=0.00005, seed=seed)
        root = tmp_path_factory.mktemp("rcprop")
        index = dir2index(ns.tree, root / "idx", opts=OPTS).index
        journal = ChangeJournal()
        ns.tree.set_changelog(journal)
        cache = ResultCache(journal=journal)
        engines = [
            (ROOT, QueryEngine(index, nthreads=NTHREADS,
                               result_cache=cache)),
            (ALICE, QueryEngine(index, creds=ALICE, nthreads=NTHREADS,
                                result_cache=cache)),
        ]
        mut = NamespaceMutator(ns, seed=seed ^ 0xBEEF)
        try:
            self._check_round(engines, index)  # populate
            for step in steps:
                if step == "mutate":
                    mut.mutate(4)
                elif step == "apply":
                    changefeed2index(index, ns.tree, journal, opts=OPTS)
                else:
                    self._check_round(engines, index)
            changefeed2index(index, ns.tree, journal, opts=OPTS)
            self._check_round(engines, index)
            self._check_round(engines, index)  # hit path, post-converge
        finally:
            for _, eng in engines:
                eng.close()

    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_rolled_namespace_property(self, tmp_path_factory, seed):
        ns = dataset2(scale=0.00005, seed=seed)
        root = tmp_path_factory.mktemp("rcroll")
        index = dir2index(ns.tree, root / "idx", opts=OPTS).index
        rollup(index, nthreads=NTHREADS)
        journal = ChangeJournal()
        ns.tree.set_changelog(journal)
        cache = ResultCache(journal=journal)
        engines = [
            (ROOT, QueryEngine(index, nthreads=NTHREADS,
                               result_cache=cache)),
            (ALICE, QueryEngine(index, creds=ALICE, nthreads=NTHREADS,
                                result_cache=cache)),
        ]
        mut = NamespaceMutator(ns, seed=seed)
        try:
            self._check_round(engines, index)
            mut.mutate(10)
            self._check_round(engines, index)  # unapplied: still equal
            changefeed2index(index, ns.tree, journal, opts=OPTS)
            self._check_round(engines, index)
            self._check_round(engines, index)
        finally:
            for _, eng in engines:
                eng.close()

    @pytest.mark.skipif(not FORK, reason="needs fork for cheap workers")
    @settings(
        max_examples=2,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_multiprocess_property(self, tmp_path_factory, seed):
        ns = dataset2(scale=0.00005, seed=seed)
        root = tmp_path_factory.mktemp("rcmp")
        index = dir2index(ns.tree, root / "idx", opts=OPTS).index
        journal = ChangeJournal()
        ns.tree.set_changelog(journal)
        cache = ResultCache(journal=journal)
        engines = [
            (ROOT, QueryEngine(index, nthreads=NTHREADS, processes=2,
                               result_cache=cache)),
            (ALICE, QueryEngine(index, creds=ALICE, nthreads=NTHREADS,
                                processes=2, result_cache=cache)),
        ]
        mut = NamespaceMutator(ns, seed=seed ^ 0xF00D)
        try:
            self._check_round(engines, index)
            mut.mutate(8)
            changefeed2index(index, ns.tree, journal, opts=OPTS)
            self._check_round(engines, index)
            self._check_round(engines, index)
        finally:
            for _, eng in engines:
                eng.close()
