"""Cache-invalidation suite for the DirMeta/subdir-name cache.

The cache holds security metadata (mode/uid/gid/rolledup), so every
path that rewrites an index directory — incremental update, refresh
swap, rollup/unrollup — must leave warm query sessions unable to
observe pre-mutation permissions. These tests drive *warm* sessions
(caches populated by a prior query) through each mutation and assert
the very next query honours the new state."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import db as dbmod
from repro.core.build import BuildOptions, dir2index
from repro.core.changefeed import changefeed2index
from repro.core.index import DirMetaCache, GUFIIndex
from repro.core.query import GUFIQuery, Q1_LIST_PATHS, Q3_DU_SUMMARIES
from repro.core.refresh import IndexRefresher
from repro.core.rollup import rollup, unrollup_dir
from repro.core.update import update_directory
from repro.fs.changelog import ChangeJournal
from repro.fs.permissions import Credentials
from tests.conftest import ALICE, BOB, NTHREADS, build_demo_tree


def paths(result):
    return sorted(r[0] for r in result.rows)


class TestDirMetaCacheUnit:
    def test_stamp_mismatch_evicts(self, demo_index):
        meta = demo_index.cached_dir_meta("/home/bob")
        assert meta is not None
        assert demo_index.cache.meta_misses == 1
        assert demo_index.cached_dir_meta("/home/bob") is not None
        assert demo_index.cache.meta_hits == 1
        # rewrite db.db (unlink+recreate changes st_ino): must re-read
        db = demo_index.db_path("/home/bob")
        payload = db.read_bytes()
        db.unlink()
        db.write_bytes(payload)
        demo_index.cached_dir_meta("/home/bob")
        assert demo_index.cache.meta_misses == 2

    def test_invalidate_subtree_drops_descendants_only(self, demo_index):
        for p in ("/home/bob", "/home/bob/secret", "/public"):
            demo_index.cached_dir_meta(p)
        demo_index.cache.invalidate_subtree("/home/bob")
        assert demo_index.cache.invalidations > 0
        before = demo_index.cache.meta_hits
        demo_index.cached_dir_meta("/public")  # untouched: still cached
        assert demo_index.cache.meta_hits == before + 1
        demo_index.cached_dir_meta("/home/bob/secret")  # dropped: miss
        assert demo_index.cache.meta_hits == before + 1

    def test_root_subtree_clears_everything(self, demo_index):
        demo_index.cached_dir_meta("/home/bob")
        demo_index.cache.invalidate_subtree("/")
        assert demo_index.cache.stats()["meta_entries"] == 0

    def test_missing_db_not_cached(self, tmp_path):
        cache = DirMetaCache()
        assert cache.get_meta("/x", tmp_path / "nope.db") is None
        assert cache.meta_misses == 1


class TestUpdateInvalidation:
    def test_chmod_then_update_hides_immediately(self, demo_tree, demo_index):
        """The §III-A3 scenario against a *warm* session: bob's home is
        world-readable, alice has cached its DirMeta, bob chmods it and
        requests an update — alice's very next warm query must not see
        inside."""
        alice = GUFIQuery(demo_index, creds=ALICE, nthreads=NTHREADS)
        assert "/home/bob/b.txt" in paths(alice.run(Q1_LIST_PATHS))
        demo_tree.chmod("/home/bob", 0o700, BOB)
        update_directory(demo_index, demo_tree, "/home/bob")
        assert not any(
            p.startswith("/home/bob/")
            for p in paths(alice.run(Q1_LIST_PATHS))
        )
        alice.close()

    def test_chmod_open_then_update_reveals_immediately(
        self, demo_tree, demo_index
    ):
        alice = GUFIQuery(demo_index, creds=ALICE, nthreads=NTHREADS)
        assert "/home/bob/secret/s.key" not in paths(alice.run(Q1_LIST_PATHS))
        demo_tree.chmod("/home/bob/secret", 0o755, BOB)
        demo_tree.chmod("/home/bob/secret/s.key", 0o644, BOB)
        update_directory(demo_index, demo_tree, "/home/bob/secret")
        assert "/home/bob/secret/s.key" in paths(alice.run(Q1_LIST_PATHS))
        alice.close()

    def test_chown_then_update_honoured(self, demo_tree, demo_index):
        bob = GUFIQuery(demo_index, creds=BOB, nthreads=NTHREADS)
        assert not any(
            p.startswith("/home/alice/") for p in paths(bob.run(Q1_LIST_PATHS))
        )
        demo_tree.chown("/home/alice", uid=BOB.uid, gid=BOB.gid)
        demo_tree.chown("/home/alice/a.txt", uid=BOB.uid, gid=BOB.gid)
        update_directory(demo_index, demo_tree, "/home/alice")
        assert "/home/alice/a.txt" in paths(bob.run(Q1_LIST_PATHS))
        bob.close()

    def test_recursive_update_new_subdir_visible_warm(
        self, demo_tree, demo_index
    ):
        """A warm session has cached /home/bob's subdir listing; a
        recursive update that creates a brand-new child directory must
        invalidate that listing so descent finds the newcomer."""
        q = GUFIQuery(demo_index, nthreads=NTHREADS)
        q.run(Q1_LIST_PATHS)
        demo_tree.mkdir("/home/bob/fresh", mode=0o755, uid=1002, gid=1002)
        demo_tree.create_file("/home/bob/fresh/f.txt", size=5,
                              mode=0o644, uid=1002, gid=1002)
        update_directory(demo_index, demo_tree, "/home/bob", recursive=True)
        assert "/home/bob/fresh/f.txt" in paths(q.run(Q1_LIST_PATHS))
        q.close()

    def test_recursive_update_removed_subdir_gone_warm(
        self, demo_tree, demo_index
    ):
        q = GUFIQuery(demo_index, creds=BOB, nthreads=NTHREADS)
        assert "/home/bob/secret/s.key" in paths(q.run(Q1_LIST_PATHS))
        demo_tree.unlink("/home/bob/secret/s.key")
        demo_tree.rmdir("/home/bob/secret", BOB)
        update_directory(demo_index, demo_tree, "/home/bob", recursive=True)
        assert not any(
            "secret" in p for p in paths(q.run(Q1_LIST_PATHS))
        )
        q.close()


class TestRefreshInvalidation:
    def test_swap_serves_new_data_to_new_sessions(self, tmp_path):
        tree = build_demo_tree()
        r = IndexRefresher(
            tree, tmp_path / "pub",
            opts=BuildOptions(nthreads=NTHREADS), keep_versions=2,
        )
        r.refresh()
        idx_v0 = r.current()
        q0 = GUFIQuery(idx_v0, nthreads=NTHREADS)
        before = paths(q0.run(Q1_LIST_PATHS))
        tree.create_file("/home/bob/fresh.dat", size=7, uid=1002, gid=1002)
        r.refresh()
        # a new session resolves the swapped link: sees the new build
        q1 = GUFIQuery(r.current(), nthreads=NTHREADS)
        after = paths(q1.run(Q1_LIST_PATHS))
        assert "/home/bob/fresh.dat" in after
        assert "/home/bob/fresh.dat" not in before
        # the in-flight session keeps answering from the old version
        # (two coexisting snapshots, §III-A4) — its cache was cleared
        # at swap time so it revalidates, but the old files still exist
        assert paths(q0.run(Q1_LIST_PATHS)) == before
        q0.close()
        q1.close()

    def test_current_handle_shared_within_a_version(self, tmp_path):
        tree = build_demo_tree()
        r = IndexRefresher(
            tree, tmp_path / "pub", opts=BuildOptions(nthreads=NTHREADS),
        )
        r.refresh()
        assert r.current() is r.current()  # one DirMeta cache per version
        r.refresh()
        assert r.current() is not None


class TestRollupInvalidation:
    @pytest.fixture
    def idx(self, tmp_path):
        tree = build_demo_tree()
        return tree, dir2index(
            tree, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS)
        ).index

    def test_rollup_with_warm_session_no_double_count(self, idx):
        tree, index = idx
        q = GUFIQuery(index, nthreads=NTHREADS)
        cold_paths = paths(q.run(Q1_LIST_PATHS))
        cold_total = q.run(Q3_DU_SUMMARIES).rows[-1][0]
        rollup(index, nthreads=NTHREADS)
        # warm session, post-rollup: same answer, nothing duplicated
        assert paths(q.run(Q1_LIST_PATHS)) == cold_paths
        assert q.run(Q3_DU_SUMMARIES).rows[-1][0] == cold_total
        q.close()

    def test_rolledup_flag_visible_to_warm_session(self, idx):
        tree, index = idx
        q = GUFIQuery(index, creds=ALICE, nthreads=NTHREADS)
        before = paths(q.run(Q1_LIST_PATHS))
        rollup(index, nthreads=NTHREADS)
        # the cached rolledup=0 must not survive: descent pruning now
        # depends on the new flag, and results must stay identical
        assert index.cached_dir_meta("/home/alice").rolledup > 0
        assert paths(q.run(Q1_LIST_PATHS)) == before
        q.close()

    def test_unrollup_with_warm_session(self, idx):
        tree, index = idx
        rollup(index, nthreads=NTHREADS)
        q = GUFIQuery(index, creds=ALICE, nthreads=NTHREADS)
        rolled = paths(q.run(Q1_LIST_PATHS))
        assert index.cached_dir_meta("/home/alice").rolledup > 0
        unrollup_dir(index, "/home/alice")
        assert index.cached_dir_meta("/home/alice").rolledup == 0
        assert paths(q.run(Q1_LIST_PATHS)) == rolled
        q.close()

    def test_update_after_rollup_with_warm_session(self, idx):
        """update unrolls the target's path; a warm session must see
        both the new file and the flag flip."""
        tree, index = idx
        rollup(index, nthreads=NTHREADS)
        q = GUFIQuery(index, creds=ALICE, nthreads=NTHREADS)
        q.run(Q1_LIST_PATHS)
        tree.create_file("/home/alice/sub/late.dat", size=4,
                         mode=0o600, uid=1001, gid=1001)
        update_directory(index, tree, "/home/alice/sub")
        assert "/home/alice/sub/late.dat" in paths(q.run(Q1_LIST_PATHS))
        q.close()


UIDS = [0, 1001, 1002, 1003]
DIR_MODES = [0o700, 0o750, 0o755, 0o711, 0o770]


class TestWarmEqualsColdProperty:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(
        uid=st.sampled_from(UIDS),
        gid=st.sampled_from([0, 100, 1001, 1002, 1003]),
        in_proj=st.booleans(),
        mutations=st.lists(
            st.tuples(
                st.sampled_from(
                    ["/home/alice", "/home/bob", "/home/bob/secret",
                     "/proj/shared", "/public/xonly"]
                ),
                st.sampled_from(DIR_MODES),
            ),
            min_size=0,
            max_size=4,
        ),
    )
    def test_warm_result_equals_cold_result(
        self, tmp_path_factory, uid, gid, in_proj, mutations
    ):
        """For random credentials and a random sequence of
        chmod+update mutations, a warm session's answer after each
        mutation equals a cold query against a brand-new index handle
        (empty caches). Any stale mode/uid/gid surviving in the cache
        breaks this equality."""
        creds = Credentials(
            uid=uid, gid=gid,
            groups=frozenset({100}) if in_proj else frozenset(),
        )
        tree = build_demo_tree()
        root = tmp_path_factory.mktemp("wc")
        index = dir2index(
            tree, root / "idx", opts=BuildOptions(nthreads=NTHREADS)
        ).index
        warm = GUFIQuery(index, creds=creds, nthreads=NTHREADS)
        warm.run(Q1_LIST_PATHS)  # populate caches
        for target, mode in mutations:
            tree.chmod(target, mode)
            update_directory(index, tree, target)
            got = paths(warm.run(Q1_LIST_PATHS))
            cold_index = GUFIIndex.open(index.root)
            cold = GUFIQuery(cold_index, creds=creds, nthreads=NTHREADS)
            assert got == paths(cold.run(Q1_LIST_PATHS))
            cold.close()
        warm.close()


class TestChangefeedInvalidation:
    """Satellite: the changefeed consumer must leave no warm cache
    entry alive for any directory an event touched — the very next
    lookup has to re-read the rewritten database."""

    @pytest.fixture
    def wired(self, tmp_path):
        tree = build_demo_tree()
        index = dir2index(
            tree, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS)
        ).index
        journal = ChangeJournal()
        tree.set_changelog(journal)
        return tree, index, journal

    def _assert_next_lookup_fresh(self, index, path):
        """The warm handle's next lookup must serve exactly what a
        cold handle (empty cache) reads — any surviving pre-mutation
        entry breaks this. (The apply may legitimately *re*-populate
        the cache with post-rewrite metadata, so asserting a literal
        miss would overconstrain the mechanism.)"""
        got = index.cached_dir_meta(path)
        cold = GUFIIndex.open(index.root).cached_dir_meta(path)
        assert got is not None
        assert got == cold, f"stale DirMeta served for {path}"

    @pytest.mark.parametrize(
        "mutate, touched",
        [
            (lambda t: t.create_file(
                "/home/bob/cf.dat", size=1, uid=1002, gid=1002
            ), "/home/bob"),
            (lambda t: t.unlink("/home/bob/b.txt"), "/home/bob"),
            (lambda t: t.mkdir(
                "/home/bob/cfd", mode=0o755, uid=1002, gid=1002
            ), "/home/bob"),
            (lambda t: t.chmod("/home/bob", 0o700, BOB), "/home/bob"),
            (lambda t: t.chown("/home/bob/b.txt", uid=0, gid=0),
             "/home/bob"),
            (lambda t: t.utime("/home/bob/b.txt", atime=1, mtime=2),
             "/home/bob"),
            (lambda t: t.setxattr("/home/bob/b.txt", "user.k", b"v"),
             "/home/bob"),
            (lambda t: t.rename("/home/bob/b.txt", "/home/bob/c.txt"),
             "/home/bob"),
        ],
        ids=["create", "unlink", "mkdir", "chmod", "chown", "utime",
             "setxattr", "rename-in-place"],
    )
    def test_touched_dir_lookup_misses_after_event(
        self, wired, mutate, touched
    ):
        tree, index, journal = wired
        index.cached_dir_meta(touched)  # warm
        mutate(tree)
        changefeed2index(
            index, tree, journal, opts=BuildOptions(nthreads=NTHREADS)
        )
        self._assert_next_lookup_fresh(index, touched)

    def test_rename_across_dirs_invalidates_both_parents(self, wired):
        """Regression: a cross-directory rename rewrites *two* parent
        databases; a warm session holding either side's DirMeta must
        miss on both."""
        tree, index, journal = wired
        index.cached_dir_meta("/home/bob")
        index.cached_dir_meta("/public")
        tree.rename("/home/bob/b.txt", "/public/b.txt")
        changefeed2index(
            index, tree, journal, opts=BuildOptions(nthreads=NTHREADS)
        )
        self._assert_next_lookup_fresh(index, "/home/bob")
        self._assert_next_lookup_fresh(index, "/public")

    def test_warm_query_sees_chmod_immediately(self, wired):
        """The §III-A3 staleness scenario through the changefeed: bob
        closes his home, the consumer applies the event, and a warm
        unprivileged session must not see inside anymore."""
        tree, index, journal = wired
        alice = GUFIQuery(index, creds=ALICE, nthreads=NTHREADS)
        assert "/home/bob/b.txt" in paths(alice.run(Q1_LIST_PATHS))
        tree.chmod("/home/bob", 0o700, BOB)
        changefeed2index(
            index, tree, journal, opts=BuildOptions(nthreads=NTHREADS)
        )
        assert not any(
            p.startswith("/home/bob/")
            for p in paths(alice.run(Q1_LIST_PATHS))
        )
        alice.close()

    def test_warm_query_tracks_cross_dir_rename(self, wired):
        tree, index, journal = wired
        q = GUFIQuery(index, nthreads=NTHREADS)
        before = paths(q.run(Q1_LIST_PATHS))
        assert "/home/bob/b.txt" in before
        tree.rename("/home/bob/b.txt", "/public/b.txt")
        changefeed2index(
            index, tree, journal, opts=BuildOptions(nthreads=NTHREADS)
        )
        after = paths(q.run(Q1_LIST_PATHS))
        assert "/home/bob/b.txt" not in after
        assert "/public/b.txt" in after
        q.close()

    def test_subtree_move_invalidates_old_prefix(self, wired):
        """A directory rename leaves nothing cached under the old
        prefix and answers from the new one."""
        tree, index, journal = wired
        q = GUFIQuery(index, creds=BOB, nthreads=NTHREADS)
        assert "/home/bob/secret/s.key" in paths(q.run(Q1_LIST_PATHS))
        tree.rename("/home/bob/secret", "/home/bob/vault")
        changefeed2index(
            index, tree, journal, opts=BuildOptions(nthreads=NTHREADS)
        )
        got = paths(q.run(Q1_LIST_PATHS))
        assert "/home/bob/vault/s.key" in got
        assert not any(p.startswith("/home/bob/secret") for p in got)
        q.close()


# ----------------------------------------------------------------------
# Invalidation listeners + read-stability (ISSUE 8 satellites)
# ----------------------------------------------------------------------


class TestInvalidationListeners:
    """The ``DirMetaCache.add_listener`` hook is the push channel the
    materialized result cache hangs off — every explicit invalidation
    must announce itself exactly once, after the drop."""

    def test_invalidate_notifies_path(self, demo_index):
        seen = []
        demo_index.cache.add_listener(lambda p, s: seen.append((p, s)))
        demo_index.invalidate_cache("/home/bob")
        assert ("/home/bob", False) in seen

    def test_subtree_and_clear_notify(self, demo_index):
        seen = []
        demo_index.cache.add_listener(lambda p, s: seen.append((p, s)))
        demo_index.cache.invalidate_subtree("/proj")
        assert ("/proj", True) in seen
        demo_index.cache.clear()
        assert (None, True) in seen

    def test_result_cache_rides_the_hooks(self, demo_index):
        from repro.core.engine import QueryEngine, QuerySpec, ResultCache

        cache = ResultCache()
        spec = QuerySpec(E="SELECT name FROM pentries")
        with QueryEngine(
            demo_index, nthreads=NTHREADS, result_cache=cache
        ) as eng:
            eng.run(spec, "/public")
            assert len(cache) == 1
            demo_index.invalidate_cache("/public")
            assert len(cache) == 0
            assert cache.invalidations >= 1


class TestReadStablePublish:
    """``dir_meta``/``cached_dir_meta`` take the stamp *before* the
    read and re-check it after: a write racing the read must never pin
    its predecessor's DirMeta (the stamp-before-read race fix)."""

    def _flipping_stamp(self, real, db_path):
        """A file_stamp that reports a different post-read stamp for
        ``db_path`` — exactly what a racing writer produces."""
        calls = {"n": 0}

        def fake(path):
            stamp = real(path)
            if str(path) == str(db_path):
                calls["n"] += 1
                if calls["n"] >= 2 and stamp is not None:
                    return (stamp[0], stamp[1] + 1, stamp[2])
            return stamp

        return fake

    def test_cached_dir_meta_discards_on_mismatch(
        self, demo_index, monkeypatch
    ):
        # StampBracket re-stats through the store layer, so the race is
        # simulated where the stamp authority now lives.
        import repro.store.layout as layout

        db_path = demo_index.db_path("/home/bob")
        monkeypatch.setattr(
            layout,
            "file_stamp",
            self._flipping_stamp(dbmod.file_stamp, db_path),
        )
        meta = demo_index.cached_dir_meta("/home/bob")
        assert meta is not None  # the read itself still answers
        # ...but nothing was published: the cache must not hold it
        assert demo_index.cache.peek_stamp("/home/bob") is None

    def test_dir_meta_discards_on_mismatch(self, demo_index, monkeypatch):
        import repro.store.layout as layout

        db_path = demo_index.db_path("/public")
        monkeypatch.setattr(
            layout,
            "file_stamp",
            self._flipping_stamp(dbmod.file_stamp, db_path),
        )
        assert demo_index.dir_meta("/public") is not None
        assert demo_index.cache.peek_stamp("/public") is None

    def test_stable_read_still_publishes(self, demo_index):
        assert demo_index.cached_dir_meta("/home/bob") is not None
        assert demo_index.cache.peek_stamp("/home/bob") is not None


@pytest.mark.skipif(
    __import__("multiprocessing").get_start_method() != "fork",
    reason="fork inheritance under test",
)
class TestForkStalenessAfterRefresh:
    """A ``processes>1`` run forks workers that inherit the parent's
    warm index; after an incremental refresh they must answer from the
    rebuilt databases, never the inherited pre-refresh cache."""

    def test_multiprocess_query_after_incremental_refresh(self, tmp_path):
        from repro.core.engine import QueryEngine

        tree = build_demo_tree()
        index = dir2index(
            tree, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS)
        ).index
        journal = ChangeJournal()
        tree.set_changelog(journal)
        # warm the parent cache the way a long-lived session would
        with GUFIQuery(index, nthreads=NTHREADS) as warm:
            warm.run(Q1_LIST_PATHS)
        tree.create_file("/public/post.txt", size=3, uid=0, gid=0)
        tree.unlink("/public/readme")
        changefeed2index(
            index, tree, journal, opts=BuildOptions(nthreads=NTHREADS)
        )
        with QueryEngine(index, nthreads=NTHREADS, processes=2) as multi, \
                QueryEngine(index, nthreads=NTHREADS) as single:
            got = sorted(multi.run(Q1_LIST_PATHS).rows)
            assert got == sorted(single.run(Q1_LIST_PATHS).rows)
        flat = [str(r[0]) for r in got]
        assert any(p.endswith("/post.txt") for p in flat)
        assert not any(p.endswith("/readme") for p in flat)
