"""Unit tests for the shared SQL-literal escaping helpers."""

import sqlite3

import pytest

from repro.core.sqltext import like_pattern, quote_literal


def _roundtrip(value: str) -> str:
    """Embed ``value`` as a literal and read it back through SQLite."""
    conn = sqlite3.connect(":memory:")
    try:
        (out,) = conn.execute(f"SELECT {quote_literal(value)}").fetchone()
    finally:
        conn.close()
    return out


class TestQuoteLiteral:
    def test_plain(self):
        assert quote_literal("abc") == "'abc'"
        assert _roundtrip("abc") == "abc"

    def test_empty(self):
        assert quote_literal("") == "''"
        assert _roundtrip("") == ""

    def test_single_quote_doubled(self):
        assert quote_literal("o'brien") == "'o''brien'"
        assert _roundtrip("o'brien") == "o'brien"

    def test_injection_shape_stays_data(self):
        evil = "x'; DROP TABLE entries; --"
        assert _roundtrip(evil) == evil

    def test_percent_and_underscore_pass_through(self):
        # % and _ are not special inside a string literal — only LIKE
        # interprets them, and that is like_pattern()'s job.
        assert quote_literal("100%_done") == "'100%_done'"
        assert _roundtrip("100%_done") == "100%_done"

    def test_backslash_not_an_escape(self):
        assert quote_literal("a\\b") == "'a\\b'"
        assert _roundtrip("a\\b") == "a\\b"

    def test_nul_rejected(self):
        with pytest.raises(ValueError, match="NUL"):
            quote_literal("secret\x00' OR 1=1")

    def test_unicode(self):
        assert _roundtrip("naïve—π") == "naïve—π"


class TestLikePattern:
    def test_wildcards_escaped(self):
        assert like_pattern("100%") == "100\\%"
        assert like_pattern("a_b") == "a\\_b"
        assert like_pattern("a\\b") == "a\\\\b"

    def test_matches_literally(self):
        conn = sqlite3.connect(":memory:")
        try:
            conn.execute("CREATE TABLE t (name TEXT)")
            conn.executemany(
                "INSERT INTO t VALUES (?)",
                [("100%done",), ("100Xdone",), ("a_b",), ("axb",)],
            )
            pat = quote_literal(f"%{like_pattern('100%')}%")
            rows = conn.execute(
                f"SELECT name FROM t WHERE name LIKE {pat} ESCAPE '\\'"
            ).fetchall()
            assert rows == [("100%done",)]
            pat = quote_literal(like_pattern("a_b"))
            rows = conn.execute(
                f"SELECT name FROM t WHERE name LIKE {pat} ESCAPE '\\'"
            ).fetchall()
            assert rows == [("a_b",)]
        finally:
            conn.close()
