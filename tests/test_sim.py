"""Unit tests for the device and remote-FS cost models (the Fig 1 /
Fig 7 substitutions): virtual clock, netfs charging, SSD saturation
curves, I/O tracing."""

from __future__ import annotations

import threading

import pytest

from repro.fs.mounts import MountedFS
from repro.fs.tree import VFSTree
from repro.sim.blktrace import IOTracer
from repro.sim.clock import StopwatchRegion, VirtualClock
from repro.sim.netfs import LUSTRE, NFS, XFS_LOCAL, NetFSCostModel, PRESETS
from repro.sim.ssd import SSDModel, StorageHost


class TestVirtualClock:
    def test_charge_accumulates(self):
        c = VirtualClock()
        c.charge(1.5)
        c.charge(0.5)
        assert c.now == pytest.approx(2.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().charge(-1)

    def test_thread_safety(self):
        c = VirtualClock()
        def worker():
            for _ in range(1000):
                c.charge(0.001)
        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.now == pytest.approx(4.0)

    def test_stopwatch(self):
        c = VirtualClock()
        c.charge(1.0)
        with StopwatchRegion(c) as sw:
            c.charge(2.5)
        assert sw.elapsed == pytest.approx(2.5)


class TestNetFS:
    def test_presets_registered(self):
        assert set(PRESETS) >= {"gpfs", "lustre", "nfs", "xfs-local"}

    def test_stat_charging(self):
        c = VirtualClock()
        LUSTRE.charge_stat(c, n=100)
        assert c.now == pytest.approx(100 * LUSTRE.stat)

    def test_readdir_batching(self):
        c = VirtualClock()
        NFS.charge_readdir(c, nentries=300)
        rpcs = -(-300 // NFS.readdir_batch)
        expected = NFS.opendir + rpcs * NFS.readdir_rpc + 300 * NFS.readdir_per_entry
        assert c.now == pytest.approx(expected)

    def test_empty_dir_still_one_rpc(self):
        c = VirtualClock()
        NFS.charge_readdir(c, nentries=0)
        assert c.now >= NFS.readdir_rpc

    def test_remote_slower_than_local(self):
        # the Fig 1 ordering must be baked into the presets
        assert LUSTRE.stat > NFS.stat > XFS_LOCAL.stat

    def test_mounted_fs_charges(self):
        t = VFSTree()
        t.mkdir("/d")
        t.create_file("/d/f", size=5)
        m = MountedFS(t, NFS)
        m.stat("/d/f")
        m.readdir("/d")
        assert m.clock.now > 0
        assert m.name == "nfs"

    def test_custom_model(self):
        model = NetFSCostModel(
            name="x", stat=1.0, readdir_rpc=0, readdir_per_entry=0,
            readdir_batch=1, getxattr=0, opendir=0,
        )
        c = VirtualClock()
        model.charge_stat(c)
        assert c.now == 1.0


class TestSSDModel:
    def test_linear_then_saturated(self):
        ssd = SSDModel(max_bw=3.2e9, stream_bw=30e6)
        assert ssd.throughput(1) == pytest.approx(30e6)
        assert ssd.throughput(10) == pytest.approx(300e6)
        assert ssd.throughput(1000) == pytest.approx(3.2e9)

    def test_saturation_qd(self):
        ssd = SSDModel(max_bw=3.2e9, stream_bw=30e6)
        assert ssd.saturation_qd == pytest.approx(3.2e9 / 30e6)

    def test_small_read_padding(self):
        ssd = SSDModel(min_efficient_read=16 * 1024)
        # 1000 reads of 4 KiB are padded up to 16 KiB each
        assert ssd.effective_bytes(4_096_000, 1000) == 16_384_000
        # big reads pass through
        assert ssd.effective_bytes(10**9, 10) == 10**9

    def test_host_ceiling(self):
        host = StorageHost(SSDModel(max_bw=3.2e9, stream_bw=30e6),
                           n_ssds=4, host_max_bw=6e9)
        assert host.device_ceiling == pytest.approx(12.8e9)
        # even unbounded concurrency is capped by the host
        assert host.throughput(10_000) == pytest.approx(6e9)
        assert host.utilization(10_000) == pytest.approx(6 / 12.8)

    def test_two_ssd_utilization_shape(self):
        # Fig 7b: two SSDs land in the ~80-95% utilisation band at 224
        # threads, one SSD saturates at ~112.
        one = StorageHost(SSDModel(), n_ssds=1, host_max_bw=6e9)
        two = StorageHost(SSDModel(), n_ssds=2, host_max_bw=6e9)
        assert one.utilization(112) > 0.95
        assert 0.75 < two.utilization(224) <= 1.0

    def test_query_time(self):
        host = StorageHost(SSDModel(max_bw=1e9, stream_bw=1e9,
                                    min_efficient_read=1), n_ssds=1)
        assert host.query_time(2e9, 10, queue_depth=1) == pytest.approx(2.0)

    def test_zero_depth(self):
        host = StorageHost(SSDModel(), n_ssds=1)
        assert host.throughput(0) == 0.0
        assert host.query_time(100, 1, 0) == float("inf")


class TestIOTracer:
    def test_record_and_totals(self):
        tr = IOTracer()
        tr.record("/a", 100)
        tr.record("/b", 200)
        assert tr.total_bytes == 300
        assert tr.num_reads == 2
        assert tr.mean_read_size() == pytest.approx(150)

    def test_reset(self):
        tr = IOTracer()
        tr.record("/a", 100)
        tr.reset()
        assert tr.total_bytes == 0

    def test_bytes_by_thread(self):
        tr = IOTracer()
        def w():
            tr.record("/x", 10)
        th = threading.Thread(target=w, name="t-A")
        th.start(); th.join()
        tr.record("/y", 20)
        by = tr.bytes_by_thread()
        assert by["t-A"] == 10
        assert sum(by.values()) == 30

    def test_concurrency_profile(self):
        tr = IOTracer()
        for _ in range(10):
            tr.record("/x", 1)
        prof = tr.concurrency_profile(nbuckets=5)
        assert len(prof) == 5
        assert max(prof) >= 1

    def test_empty_profile(self):
        assert IOTracer().concurrency_profile() == []
        assert IOTracer().mean_read_size() == 0.0
