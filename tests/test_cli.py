"""CLI tests: every subcommand through the argparse entry point."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.build import BuildOptions, dir2index
from repro.scan.scanners import TreeWalkScanner
from repro.scan.trace import write_trace
from tests.conftest import NTHREADS, build_demo_tree


@pytest.fixture
def index_root(tmp_path):
    tree = build_demo_tree()
    dir2index(tree, tmp_path / "idx", opts=BuildOptions(nthreads=NTHREADS))
    return str(tmp_path / "idx")


def run_cli(*args) -> int:
    return main(list(args))


class TestCLI:
    def test_trace2index(self, tmp_path, capsys):
        tree = build_demo_tree()
        stanzas = TreeWalkScanner(tree, nthreads=1).scan("/").stanzas
        write_trace(stanzas, tmp_path / "t.trace")
        rc = run_cli("trace2index", str(tmp_path / "t.trace"),
                     str(tmp_path / "idx"), "-n", "2")
        assert rc == 0
        out = capsys.readouterr().out
        assert "12 dirs" in out

    def test_trace2index_fault_plan_then_resume(self, tmp_path, capsys):
        """--fault-plan kills the build (exit 1, resume hint); a rerun
        with --resume finishes it and the index answers queries."""
        tree = build_demo_tree()
        stanzas = TreeWalkScanner(tree, nthreads=1).scan("/").stanzas
        write_trace(stanzas, tmp_path / "t.trace")
        idx = str(tmp_path / "idx")
        rc = run_cli("trace2index", str(tmp_path / "t.trace"), idx,
                     "-n", "2", "--fault-plan", "crash:build_dir_db:5")
        captured = capsys.readouterr()
        assert rc == 1
        assert "build crashed" in captured.err
        assert "--resume" in captured.err
        assert (tmp_path / "idx" / "gufi_build.journal").exists()

        rc = run_cli("trace2index", str(tmp_path / "t.trace"), idx,
                     "-n", "2", "--resume")
        captured = capsys.readouterr()
        assert rc == 0
        assert "resumed-over" in captured.out
        assert not (tmp_path / "idx" / "gufi_build.journal").exists()
        rc = run_cli("query", idx, "-E", "SELECT name FROM pentries", "-n", "2")
        assert rc == 0
        assert "b.txt" in capsys.readouterr().out

    def test_demo_index_and_stats(self, tmp_path, capsys):
        rc = run_cli("demo-index", str(tmp_path / "idx"),
                     "--scale", "0.00003", "-n", "2")
        assert rc == 0
        rc = run_cli("stats", str(tmp_path / "idx"))
        assert rc == 0
        out = capsys.readouterr().out
        assert "databases:" in out

    def test_query(self, index_root, capsys):
        rc = run_cli("query", index_root, "-E", "SELECT name FROM pentries",
                     "-n", "2")
        assert rc == 0
        out = capsys.readouterr().out
        assert "b.txt" in out

    def test_query_as_user(self, index_root, capsys):
        rc = run_cli("query", index_root, "-E", "SELECT name FROM pentries",
                     "--uid", "1002", "--gid", "1002", "-n", "2")
        assert rc == 0
        out = capsys.readouterr().out
        assert "a.txt" not in out  # alice's private file
        assert "b.txt" in out

    def test_query_aggregation_flags(self, index_root, capsys):
        rc = run_cli(
            "query", index_root,
            "-I", "CREATE TABLE sizes (s INTEGER)",
            "-E", "INSERT INTO sizes SELECT TOTAL(size) FROM pentries",
            "-J", "INSERT INTO aggregate.sizes SELECT TOTAL(s) FROM sizes",
            "-G", "SELECT TOTAL(s) FROM sizes",
            "-n", "2",
        )
        assert rc == 0
        out = capsys.readouterr().out.strip()
        assert float(out.splitlines()[-1]) > 0

    def test_find(self, index_root, capsys):
        rc = run_cli("find", index_root, "--name", "%.txt", "-n", "2")
        assert rc == 0
        out = capsys.readouterr().out
        assert "/home/bob/b.txt" in out

    def test_du_and_tsummary_flow(self, index_root, capsys):
        rc = run_cli("du", index_root, "-n", "2")
        assert rc == 0
        du_plain = int(capsys.readouterr().out.strip())
        assert run_cli("bfti", index_root) == 0
        capsys.readouterr()
        assert run_cli("du", index_root, "--tsummary", "-n", "2") == 0
        du_ts = int(capsys.readouterr().out.strip())
        assert du_ts == du_plain

    def test_rollup_unrollup(self, index_root, capsys):
        assert run_cli("rollup", index_root, "-n", "2") == 0
        out = capsys.readouterr().out
        assert "rolled" in out
        assert run_cli("unrollup", index_root, "/home/alice") == 0

    def test_rollup_with_limit(self, index_root, capsys):
        assert run_cli("rollup", index_root, "-L", "2", "-n", "2") == 0
        assert "limit" in capsys.readouterr().out

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            run_cli()

    def test_unknown_index(self, tmp_path):
        from repro.core.index import IndexError_

        with pytest.raises(IndexError_):
            run_cli("stats", str(tmp_path))
