"""The store layer's layout authority: artifact registry, commit
protocol, orphan GC, stamps, doctor, and the encapsulation lint that
keeps layout literals from leaking back out of ``repro.store``."""

from __future__ import annotations

import ast
import sqlite3
from pathlib import Path

import pytest

from repro.core.build import BuildOptions, dir2index
from repro.store import schema
from repro.store.doctor import doctor
from repro.store.connect import open_ro, open_rw, table_bytes
from repro.store.layout import (
    DB_NAME,
    PARTIAL_SUFFIX,
    DirStore,
    StampBracket,
    artifact_bytes,
    artifact_kind,
    artifact_kinds,
    classify_artifact,
    file_stamp,
    is_side_artifact,
    side_db_name,
    stamp_matches,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


# ----------------------------------------------------------------------
# Encapsulation lint
# ----------------------------------------------------------------------

#: substrings that may only appear in string literals under repro.store
_LAYOUT_LITERALS = ("db.db", "xattrs.db", PARTIAL_SUFFIX)


def _docstring_nodes(tree: ast.AST) -> set[int]:
    """ids of Constant nodes that are docstrings (allowed to mention
    file names — they document, they don't construct paths)."""
    out: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node,
            (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                out.add(id(body[0].value))
    return out


def _layout_literals_in(path: Path) -> list[tuple[int, str]]:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    docstrings = _docstring_nodes(tree)
    hits: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and id(node) not in docstrings
        ):
            if any(lit in node.value for lit in _LAYOUT_LITERALS):
                hits.append((node.lineno, node.value))
    return hits


class TestEncapsulationLint:
    def test_no_layout_literals_outside_store(self):
        """No module outside repro.store may hard-code the primary db
        name, the xattr shard prefix, or the staging suffix — the
        whole point of the layer is that layout facts live once."""
        offenders = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            if (SRC_ROOT / "store") in path.parents:
                continue
            for lineno, value in _layout_literals_in(path):
                offenders.append(f"{path}:{lineno}: {value!r}")
        assert not offenders, (
            "layout literals leaked outside repro.store:\n"
            + "\n".join(offenders)
        )

    def test_lint_actually_detects(self, tmp_path):
        """The lint is alive: a planted literal is found."""
        bad = tmp_path / "bad.py"
        bad.write_text('p = root / "db.db"\n', encoding="utf-8")
        assert _layout_literals_in(bad)
        # ...and docstrings stay exempt
        ok = tmp_path / "ok.py"
        ok.write_text('"""Talks about db.db harmlessly."""\n')
        assert not _layout_literals_in(ok)


# ----------------------------------------------------------------------
# Artifact registry
# ----------------------------------------------------------------------

class TestArtifactRegistry:
    def test_builtin_kinds_registered(self):
        keys = {k.key for k in artifact_kinds()}
        assert {
            "primary",
            "xattr_user",
            "xattr_group_r",
            "xattr_group_nr",
            "names_fts",
        } <= keys

    def test_classify(self):
        assert classify_artifact(DB_NAME) == "primary"
        assert classify_artifact(side_db_name("user", 1001)) == "xattr_user"
        assert classify_artifact(side_db_name("group_r", 100)) == "xattr_group_r"
        assert classify_artifact(side_db_name("group_nr", 100)) == "xattr_group_nr"
        # staged names classify as their final kind
        assert classify_artifact(DB_NAME + PARTIAL_SUFFIX) == "primary"
        assert classify_artifact("gufi_index.json") is None
        assert classify_artifact("stray.txt") is None

    def test_is_side_artifact(self):
        assert not is_side_artifact(DB_NAME)
        assert is_side_artifact(side_db_name("user", 1))
        assert not is_side_artifact("random.file")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            artifact_kind("no-such-kind")
        with pytest.raises(ValueError):
            side_db_name("bogus", 1)


# ----------------------------------------------------------------------
# Commit protocol + orphan GC
# ----------------------------------------------------------------------

class TestCommitProtocol:
    def test_stage_publish_roundtrip(self, tmp_path):
        store = DirStore.open(tmp_path / "d")
        conn = store.stage_primary()
        conn.execute(
            "INSERT INTO entries (name, type, inode) VALUES ('x', 'f', 1)"
        )
        conn.commit()
        conn.close()
        assert not store.db_path.exists()  # not yet committed
        assert store.list_partials() == [DB_NAME + PARTIAL_SUFFIX]
        store.publish([])
        assert store.db_path.exists()
        assert store.list_partials() == []
        ro = store.open_ro()
        try:
            (n,) = ro.execute("SELECT COUNT(*) FROM entries").fetchone()
        finally:
            ro.close()
        assert n == 1

    def test_open_sweeps_orphan_partials(self, tmp_path):
        d = tmp_path / "d"
        d.mkdir()
        orphan = d / (DB_NAME + PARTIAL_SUFFIX)
        orphan.write_bytes(b"crashed build residue")
        (d / ("stray.bin" + PARTIAL_SUFFIX)).write_bytes(b"x")
        store = DirStore.open(d)  # default sweep=True
        assert store.list_partials() == []
        assert not orphan.exists()

    def test_open_can_skip_sweep(self, tmp_path):
        d = tmp_path / "d"
        d.mkdir()
        (d / ("a" + PARTIAL_SUFFIX)).write_bytes(b"x")
        store = DirStore.open(d, sweep=False)
        assert store.list_partials() == ["a" + PARTIAL_SUFFIX]

    def test_remove_artifacts_only_ours(self, tmp_path):
        store = DirStore.open(tmp_path / "d")
        conn = store.stage_primary()
        conn.close()
        store.publish([])
        (store.index_dir / side_db_name("user", 7)).write_bytes(b"shard")
        keep = store.index_dir / "gufi_index.json"
        keep.write_text("{}")
        store.remove_artifacts()
        assert not store.db_path.exists()
        assert store.side_artifacts() == []
        assert keep.exists()  # not a layout artifact: untouched


# ----------------------------------------------------------------------
# Stamps
# ----------------------------------------------------------------------

class TestStamps:
    def test_file_stamp_missing_is_none(self, tmp_path):
        assert file_stamp(tmp_path / "nope") is None
        assert not stamp_matches(tmp_path / "nope", None)

    def test_stamp_matches_roundtrip(self, tmp_path):
        f = tmp_path / "f"
        f.write_bytes(b"abc")
        st = file_stamp(f)
        assert stamp_matches(f, st)
        f.write_bytes(b"abcd")  # size change flips the stamp
        assert not stamp_matches(f, st)

    def test_bracket(self, tmp_path):
        missing = StampBracket(tmp_path / "nope")
        assert missing.missing and not missing.unchanged()
        f = tmp_path / "f"
        f.write_bytes(b"abc")
        b = StampBracket(f)
        assert not b.missing and b.unchanged()
        f.write_bytes(b"wxyz")
        assert not b.unchanged()


# ----------------------------------------------------------------------
# Sizing consistency (the old db_file_bytes/table_bytes split)
# ----------------------------------------------------------------------

class TestSizing:
    def test_artifact_bytes_missing_is_zero(self, tmp_path):
        assert artifact_bytes(tmp_path / "nope") == 0

    def test_table_bytes_missing_backing_is_zero(self, tmp_path):
        """table_bytes and artifact_bytes agree on missing files: both
        report 0 instead of one raising and one guessing."""
        store = DirStore.open(tmp_path / "d")
        conn = store.create_primary()
        conn.close()
        main = sqlite3.connect(":memory:")
        try:
            main.execute(
                "ATTACH DATABASE ? AS gufi", (str(store.db_path),)
            )
            present = table_bytes(main, "gufi", {"summary"})
            assert present > 0
            main.execute("DETACH DATABASE gufi")
            store.db_path.unlink()
            empty = tmp_path / "d" / "empty.db"
            empty.touch()
            main.execute("ATTACH DATABASE ? AS gone", (str(empty),))
            assert table_bytes(main, "gone", {"summary"}) == 0
            assert table_bytes(main, "no_such_alias", {"summary"}) == 0
        finally:
            main.close()


# ----------------------------------------------------------------------
# Version stamping + doctor
# ----------------------------------------------------------------------

class TestVersionStamp:
    def test_new_dbs_carry_schema_version(self, tmp_path):
        store = DirStore.open(tmp_path / "d")
        conn = store.create_primary()
        try:
            assert schema.db_schema_version(conn) == schema.SCHEMA_VERSION
            assert schema.SCHEMA_VERSION > 0
        finally:
            conn.close()

    def test_every_built_dir_is_stamped(self, demo_tree, tmp_path):
        result = dir2index(
            demo_tree, tmp_path / "idx", opts=BuildOptions(nthreads=2)
        )
        index = result.index
        checked = 0
        for d in index.iter_index_dirs():
            conn = open_ro(Path(d) / DB_NAME)
            try:
                assert schema.db_schema_version(conn) == schema.SCHEMA_VERSION
            finally:
                conn.close()
            checked += 1
        assert checked == result.dirs_created


class TestDoctor:
    def test_healthy_index(self, demo_index):
        report = doctor(demo_index)
        assert report.healthy
        assert report.dirs_seen > 0
        assert report.versions == {schema.SCHEMA_VERSION: report.dirs_seen}
        assert report.dirs_outdated == 0
        assert report.missing_shards == []
        assert report.stale_partials == []

    def test_reports_stale_partials_and_missing_shards(self, demo_index):
        victim = demo_index.index_dir("/home/bob")
        (victim / (DB_NAME + PARTIAL_SUFFIX)).write_bytes(b"residue")
        conn = open_rw(victim / DB_NAME)
        try:
            conn.execute(
                "INSERT INTO xattrs_avail (filename, uid, gid, mode) "
                "VALUES (?, 4242, 4242, 384)",
                (side_db_name("user", 4242),),
            )
            conn.commit()
        finally:
            conn.close()
        report = doctor(demo_index)
        assert not report.healthy
        assert ("/home/bob", DB_NAME + PARTIAL_SUFFIX) in report.stale_partials
        assert ("/home/bob", side_db_name("user", 4242)) in report.missing_shards

    def test_reports_outdated_versions(self, demo_index):
        conn = open_rw(demo_index.db_path("/public"))
        try:
            conn.execute("PRAGMA user_version = 0")
            conn.commit()
        finally:
            conn.close()
        report = doctor(demo_index)
        assert report.dirs_outdated == 1
        assert report.versions.get(0) == 1
