"""Xattr protection semantics on the VFS (names are metadata, values
are data — §III-A1/§III-A2) and snapshot isolation/diffing."""

from __future__ import annotations

import pytest

from repro.fs.errors import NoSuchAttr, PermissionDenied
from repro.fs.permissions import Credentials
from repro.fs.snapshot import diff_snapshots, snapshot
from repro.fs.tree import VFSTree

ALICE = Credentials(uid=1001, gid=1001)
BOB = Credentials(uid=1002, gid=1002)


@pytest.fixture
def tree():
    t = VFSTree()
    t.mkdir("/d", mode=0o755, uid=1001, gid=1001)
    t.create_file("/d/f", size=5, mode=0o640, uid=1001, gid=1001)
    t.setxattr("/d/f", "user.tag", b"hello", ALICE)
    return t


class TestXattrOps:
    def test_set_get_list_remove(self, tree):
        assert tree.getxattr("/d/f", "user.tag", ALICE) == b"hello"
        assert tree.listxattr("/d/f", ALICE) == ["user.tag"]
        tree.setxattr("/d/f", "user.b", b"\x00\x01", ALICE)
        assert tree.listxattr("/d/f", ALICE) == ["user.b", "user.tag"]
        tree.removexattr("/d/f", "user.b", ALICE)
        assert tree.listxattr("/d/f", ALICE) == ["user.tag"]

    def test_missing_attr(self, tree):
        with pytest.raises(NoSuchAttr):
            tree.getxattr("/d/f", "user.none", ALICE)
        with pytest.raises(NoSuchAttr):
            tree.removexattr("/d/f", "user.none", ALICE)

    def test_names_are_metadata_values_are_data(self, tree):
        # Bob cannot read the file (0640, not owner/group) -> value denied
        with pytest.raises(PermissionDenied):
            tree.getxattr("/d/f", "user.tag", BOB)
        # ...but names only need ancestor search bits.
        assert tree.listxattr("/d/f", BOB) == ["user.tag"]

    def test_set_needs_write(self, tree):
        with pytest.raises(PermissionDenied):
            tree.setxattr("/d/f", "user.evil", b"x", BOB)

    def test_value_copied(self, tree):
        val = bytearray(b"mut")
        tree.setxattr("/d/f", "user.m", bytes(val), ALICE)
        val[0] = ord("X")
        assert tree.getxattr("/d/f", "user.m", ALICE) == b"mut"


class TestSnapshot:
    def test_snapshot_is_isolated(self, tree):
        snap = snapshot(tree)
        tree.create_file("/d/new", size=1)
        tree.unlink("/d/f")
        assert not snap.exists("/d/new")
        assert snap.stat("/d/f").st_size == 5

    def test_snapshot_preserves_xattrs(self, tree):
        snap = snapshot(tree)
        tree.removexattr("/d/f", "user.tag", ALICE)
        assert snap.getxattr("/d/f", "user.tag", ALICE) == b"hello"

    def test_snapshot_counts(self, tree):
        snap = snapshot(tree)
        assert snap.num_dirs == tree.num_dirs
        assert snap.num_files == tree.num_files

    def test_diff_created_removed_changed(self, tree):
        old = snapshot(tree)
        tree.create_file("/d/new", size=100)
        tree.unlink("/d/f")
        tree.mkdir("/d/sub")
        new = snapshot(tree)
        diff = diff_snapshots(old, new)
        assert "/d/new" in diff.created
        assert "/d/sub" in diff.created
        assert "/d/f" in diff.removed
        assert diff.bytes_delta == 100 - 5

    def test_diff_detects_chmod(self, tree):
        old = snapshot(tree)
        tree.chmod("/d/f", 0o600, ALICE)
        diff = diff_snapshots(old, snapshot(tree))
        assert diff.changed == ["/d/f"]
        assert diff.total_mutations == 1

    def test_diff_empty(self, tree):
        old = snapshot(tree)
        diff = diff_snapshots(old, snapshot(tree))
        assert diff.total_mutations == 0
        assert diff.bytes_delta == 0
